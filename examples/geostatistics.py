#!/usr/bin/env python
"""Geostatistical prediction (kriging) with the TLR Cholesky pipeline.

The paper's HiCMA experiments come from extreme-scale geostatistics (its
ref. [6]): fit a Gaussian-process model of a spatial field, factorize the
covariance matrix, and predict at unobserved locations.  This example runs
the whole pipeline with the reproduction's numerical kernels:

1. sample a synthetic spatial field at N Morton-ordered sites;
2. compress the st-2d-sqexp covariance into TLR form;
3. TLR-Cholesky factorize; solve A·w = z with the low-rank factor;
4. krige (predict) at held-out sites and compare against the truth.

Run:  python examples/geostatistics.py
"""

import numpy as np

from repro.hicma import SqExpProblem, TLRMatrix, tlr_cholesky, tlr_solve
from repro.units import fmt_size


def main() -> None:
    n, tile, tol, beta = 1024, 128, 1e-9, 0.12
    rng = np.random.default_rng(7)
    print(f"Gaussian-process geostatistics: N={n} sites, sqexp kernel "
          f"(beta={beta}), TLR tile={tile}, accuracy={tol:g}\n")

    # 1. Ground truth: a sample from the GP itself.
    problem = SqExpProblem(n, beta=beta, nugget=1e-3, seed=7)
    cov = problem.dense()
    field = np.linalg.cholesky(cov) @ rng.standard_normal(n)
    # Observe a noisy version at all sites; hold out every 8th for testing.
    noise = 0.03
    z = field + noise * rng.standard_normal(n)
    held_out = np.arange(0, n, 8)

    # 2-3. Compress + factorize + solve with the TLR machinery.
    tlr = TLRMatrix.from_problem(problem, tile_size=tile, tol=tol, maxrank=100)
    print(f"compressed covariance: {fmt_size(tlr.compression_bytes())} "
          f"(dense {fmt_size(n * n * 8)}), mean off-band rank "
          f"{tlr.mean_offband_rank():.1f}")
    stats = tlr_cholesky(tlr, tol=tol, maxrank=100)
    print(f"factorized with {stats.total_tasks} tile kernels")
    weights = tlr_solve(tlr, z)  # w = (K + nugget I)^{-1} z

    # 4. Kriging prediction at the held-out sites: k_*^T w.
    pts = problem.points
    d2 = ((pts[held_out, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    k_star = np.exp(-d2 / (2 * beta**2))
    pred = k_star @ weights

    err = np.sqrt(np.mean((pred - field[held_out]) ** 2))
    base = np.sqrt(np.mean((z[held_out] - field[held_out]) ** 2))
    print(f"\nprediction RMSE : {err:.4f}")
    print(f"observation noise: {base:.4f}")
    print("kriging smooths below the noise level" if err < base
          else "warning: prediction no better than raw observations")
    assert err < base, "GP prediction should beat the raw noisy observations"

    # Sanity: the TLR solve agrees with a dense solve.
    dense_w = np.linalg.solve(cov, z)
    agree = np.linalg.norm(weights - dense_w) / np.linalg.norm(dense_w)
    print(f"TLR vs dense solve relative difference: {agree:.2e}")


if __name__ == "__main__":
    main()
