#!/usr/bin/env python
"""Quickstart: compare the MPI and LCI communication backends.

Builds a small task graph with cross-node dataflows, runs it on a simulated
two-node cluster under both PaRSEC communication backends, and prints the
time-to-solution and end-to-end communication latency side by side —
the paper's headline comparison in miniature.

Run:  python examples/quickstart.py
"""

from repro.config import scaled_platform
from repro.runtime import ParsecContext, TaskGraph
from repro.units import KiB, fmt_time


def build_graph(stages: int = 8, width: int = 16, flow_bytes: int = 96 * KiB) -> TaskGraph:
    """A pipelined stencil-ish graph: each stage's tasks alternate nodes and
    consume their predecessor's dataflow."""
    g = TaskGraph()
    prev = {}
    for stage in range(stages):
        for lane in range(width):
            inputs = [prev[lane]] if lane in prev else []
            task = g.add_task(
                node=(stage + lane) % 2,
                duration=20e-6,
                priority=float(stages - stage),
                inputs=inputs,
                kind=f"stage{stage}",
            )
            prev[lane] = g.add_flow(task, flow_bytes)
    return g


def main() -> None:
    print("Simulated platform: 2 Expanse-like nodes, 100 Gbit/s HDR fabric\n")
    results = {}
    for backend in ("mpi", "lci"):
        ctx = ParsecContext(
            scaled_platform(num_nodes=2, cores_per_node=8), backend=backend
        )
        results[backend] = ctx.run(build_graph(), until=10.0)

    for backend, stats in results.items():
        print(f"[{backend}]")
        print(f"  time-to-solution : {fmt_time(stats.makespan)}")
        print(f"  mean e2e latency : {fmt_time(stats.mean_flow_latency)}")
        print(f"  ACTIVATEs sent   : {stats.activates_sent} "
              f"({stats.activations_aggregated} aggregated)")
        print(f"  wire traffic     : {stats.wire_bytes / 1024:.0f} KiB")
        print()

    mpi, lci = results["mpi"], results["lci"]
    gain = (mpi.makespan - lci.makespan) / mpi.makespan
    lat_gain = (mpi.mean_flow_latency - lci.mean_flow_latency) / mpi.mean_flow_latency
    print(f"LCI vs MPI: {gain:+.1%} time-to-solution, {lat_gain:+.1%} latency")
    print("(the paper reports up to 12% time-to-solution and >50% latency "
          "improvements on HiCMA at scale)")


if __name__ == "__main__":
    main()
