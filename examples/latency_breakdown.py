#!/usr/bin/env python
"""Protocol-phase latency breakdown (Fig. 1 anatomy).

Traces every remote dataflow through the three phases of the PaRSEC
communication protocol — ACTIVATE delivery, GET DATA request (including
priority deferral), and the put data transfer — and shows where each
backend spends its latency.

Run:  python examples/latency_breakdown.py
"""

from repro.analysis.ascii_plot import ascii_table
from repro.analysis.latency import breakdown, phase_summary
from repro.config import scaled_platform
from repro.runtime import ParsecContext, TaskGraph
from repro.units import KiB


def workload(n_flows=60, size=128 * KiB) -> TaskGraph:
    g = TaskGraph()
    for i in range(n_flows):
        t = g.add_task(node=i % 2, duration=2e-6)
        f = g.add_flow(t, size)
        g.add_task(node=(i + 1) % 2, duration=2e-6, inputs=[f])
    return g


def main() -> None:
    rows = []
    for backend in ("mpi", "lci"):
        ctx = ParsecContext(
            scaled_platform(num_nodes=2, cores_per_node=6),
            backend=backend,
            collect_traces=True,
        )
        ctx.run(workload(), until=10.0)
        summary = phase_summary(breakdown(ctx.trace))
        for phase in ("activate", "getdata", "transfer", "total"):
            s = summary[phase]
            rows.append(
                (
                    backend,
                    phase,
                    f"{s['mean'] * 1e6:.2f}",
                    f"{s['p95'] * 1e6:.2f}",
                    f"{s['share']:.0%}",
                )
            )

    print(
        ascii_table(
            ["backend", "phase", "mean (us)", "p95 (us)", "share"],
            rows,
            title="Per-flow latency breakdown: ACTIVATE -> GET DATA -> put "
            "(128 KiB flows, 2 nodes)",
        )
    )
    print("\nThe MPI backend's extra latency concentrates in the phases "
          "executed on its single comm thread, which also runs every "
          "callback (paper §4.3); LCI offloads matching and completions to "
          "the progress thread (§5.3).")


if __name__ == "__main__":
    main()
