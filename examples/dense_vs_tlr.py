#!/usr/bin/env python
"""Dense (DPLASMA) vs. tile-low-rank (HiCMA) Cholesky on the simulator.

HiCMA's premise (§6.4.1): compressing off-band tiles slashes flops and
bytes — but the resulting low-rank kernels are far less compute-dense, so
the runtime must move many small messages fast; that is what makes the
communication backend matter.  This example factorizes the same matrix
both ways on the simulated runtime and compares compute, traffic, and
time-to-solution.

Run:  python examples/dense_vs_tlr.py           (~1 minute)
"""

from repro.analysis.ascii_plot import ascii_table
from repro.config import scaled_platform
from repro.hicma import KernelTimeModel, RankModel, build_tlr_cholesky_graph
from repro.hicma.dag import build_dense_cholesky_graph
from repro.runtime import ParsecContext


def main() -> None:
    matrix, tile, nodes = 36_000, 1800, 4
    nt = matrix // tile
    platform = scaled_platform(num_nodes=nodes, cores_per_node=8)
    times = KernelTimeModel(platform.compute)
    ranks = RankModel(nt, tile, maxrank=150)

    graphs = {
        "dense (DPLASMA)": build_dense_cholesky_graph(nt, tile, nodes, times),
        "TLR (HiCMA)": build_tlr_cholesky_graph(
            nt, tile, nodes, rank_model=ranks, time_model=times
        ),
    }
    rows = []
    for name, graph in graphs.items():
        ctx = ParsecContext(platform, backend="lci")
        stats = ctx.run(graph, until=3600.0)
        rows.append(
            (
                name,
                f"{stats.makespan * 1e3:.1f}",
                f"{graph.total_remote_bytes() / 1e6:.0f}",
                f"{stats.mean_flow_latency * 1e3:.3f}",
                f"{stats.worker_utilization:.0%}",
            )
        )

    print(
        ascii_table(
            ["algorithm", "TTS (ms)", "remote data (MB)", "e2e latency (ms)", "util"],
            rows,
            title=f"Cholesky N={matrix}, tile={tile}, {nodes} nodes, LCI backend",
        )
    )
    print(f"\nmean off-band rank (TLR model): {ranks.mean_rank():.1f} "
          f"of {tile} — ~{ranks.mean_rank() / tile:.1%} of dense")
    print("TLR wins on both compute and traffic, but its tasks are far less "
          "compute-dense — which is why HiCMA stresses the communication "
          "engine (paper §6.4.1).")


if __name__ == "__main__":
    main()
