#!/usr/bin/env python
"""End-to-end latency anatomy: backends, multithreading, thread binding.

Reproduces, at example scale, the three latency findings of the paper:

1. the LCI backend lowers mean end-to-end latency (ACTIVATE handoff →
   data arrival across the multicast tree) versus the MPI backend;
2. letting compute threads send ACTIVATEs directly (communication
   multithreading, §6.4.3) helps LCI but not MPI;
3. free-floating comm/progress threads cost up to ~25 % extra latency
   versus dedicated cores near the NIC (§6.1.2).

Run:  python examples/latency_study.py           (~1-2 minutes)
"""

import dataclasses

from repro.analysis.ascii_plot import ascii_table
from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark
from repro.config import scaled_platform


def main() -> None:
    cfg = HicmaConfig(matrix_size=36_000, tile_size=600, num_nodes=8)
    rows = []
    for backend in ("mpi", "lci"):
        for mt in (False, True):
            r = run_hicma_benchmark(
                backend,
                dataclasses.replace(cfg, multithreaded_activate=mt),
            )
            rows.append(
                (
                    backend,
                    "worker-sent" if mt else "comm thread",
                    "pinned",
                    f"{r.time_to_solution * 1e3:.1f}",
                    f"{r.mean_flow_latency * 1e3:.3f}",
                )
            )
        floating = dataclasses.replace(
            scaled_platform(num_nodes=cfg.num_nodes, cores_per_node=8),
            dedicated_comm_cores=False,
        )
        r = run_hicma_benchmark(backend, cfg, platform=floating)
        rows.append(
            (
                backend,
                "comm thread",
                "floating",
                f"{r.time_to_solution * 1e3:.1f}",
                f"{r.mean_flow_latency * 1e3:.3f}",
            )
        )

    print(
        ascii_table(
            ["backend", "ACTIVATE path", "threads", "TTS (ms)", "e2e latency (ms)"],
            rows,
            title=f"Latency anatomy: TLR Cholesky N={cfg.matrix_size}, "
            f"tile={cfg.tile_size}, {cfg.num_nodes} nodes",
        )
    )
    print("\nExpected pattern (as in the paper): LCI < MPI; multithreaded "
          "ACTIVATE helps LCI, not MPI; floating threads add latency.")


if __name__ == "__main__":
    main()
