#!/usr/bin/env python
"""Ping-pong bandwidth sweep (a miniature of the paper's Fig. 2a).

Sweeps task granularity in the windowed ping-pong benchmark and prints the
achieved bandwidth for both backends next to the NetPIPE baseline, as an
ASCII chart.

Run:  python examples/pingpong_bandwidth.py
"""

from repro.analysis.ascii_plot import ascii_chart, ascii_table
from repro.bench.pingpong import PingPongConfig, run_pingpong_benchmark
from repro.config import NetworkConfig
from repro.network.netpipe import netpipe_bandwidth_curve
from repro.units import KiB, MiB, gbit_per_s


def main() -> None:
    sizes = [16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]
    curves = {"mpi": [], "lci": []}
    print("Running ping-pong sweeps (one stream, 8 MiB per iteration)...")
    for backend in ("mpi", "lci"):
        for size in sizes:
            r = run_pingpong_benchmark(
                backend,
                PingPongConfig(fragment_size=size, total_bytes=8 * MiB, iterations=5),
            )
            curves[backend].append((size, r.bandwidth_gbit))
    curves["netpipe"] = [
        (s, gbit_per_s(bw))
        for s, bw in netpipe_bandwidth_curve(sizes, NetworkConfig())
    ]

    print()
    print(
        ascii_chart(
            curves,
            title="PaRSEC ping-pong bandwidth (cf. paper Fig. 2a)",
            logx=True,
            x_label="fragment size (bytes)",
            y_label="Gbit/s",
        )
    )
    rows = []
    for i, size in enumerate(sizes):
        rows.append(
            (
                f"{size // 1024} KiB",
                f"{curves['mpi'][i][1]:.1f}",
                f"{curves['lci'][i][1]:.1f}",
                f"{curves['netpipe'][i][1]:.1f}",
            )
        )
    print()
    print(ascii_table(["fragment", "MPI", "LCI", "NetPIPE"], rows,
                      title="Bandwidth (Gbit/s)"))
    print("\nLCI sustains peak bandwidth at ~2.8x smaller fragments than MPI "
          "(paper: 2.83x).")


if __name__ == "__main__":
    main()
