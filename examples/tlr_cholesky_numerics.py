#!/usr/bin/env python
"""Numerical TLR Cholesky on a real st-2d-sqexp covariance matrix.

This is the HiCMA half of the reproduction running *actual numerics*:
generate a geostatistics covariance problem, compress it to tile-low-rank
form, factorize with low-rank kernels, and verify the factorization against
the dense matrix — including the compression statistics the paper quotes
(mean/max off-band tile ranks, packed-format memory footprint).

Run:  python examples/tlr_cholesky_numerics.py
"""

import numpy as np

from repro.hicma import SqExpProblem, TLRMatrix, tlr_cholesky
from repro.units import fmt_size


def main() -> None:
    n, tile, tol = 1024, 128, 1e-9
    print(f"Problem: st-2d-sqexp, N={n}, tile={tile}, accuracy={tol:g}\n")

    print("1. Generating covariance matrix (Morton-ordered 2D points)...")
    problem = SqExpProblem(n, beta=0.12, seed=42)
    dense = problem.dense()

    print("2. Compressing off-diagonal tiles to U x V^T form...")
    tlr = TLRMatrix.from_problem(problem, tile_size=tile, tol=tol, maxrank=100)
    dense_bytes = n * n * 8
    print(f"   mean off-band rank : {tlr.mean_offband_rank():.2f}")
    print(f"   max off-band rank  : {tlr.max_offband_rank()}")
    print(f"   memory             : {fmt_size(tlr.compression_bytes())} "
          f"vs dense {fmt_size(dense_bytes)} "
          f"({tlr.compression_bytes() / dense_bytes:.1%})")
    rel = np.linalg.norm(tlr.to_dense() - dense) / np.linalg.norm(dense)
    print(f"   compression error  : {rel:.2e}")

    print("\n3. TLR Cholesky factorization (band 1, low-rank kernels)...")
    stats = tlr_cholesky(tlr, tol=tol, maxrank=100)
    print(f"   kernels: {stats.potrf} potrf, {stats.trsm} trsm, "
          f"{stats.syrk} syrk, {stats.gemm} gemm "
          f"({stats.total_tasks} tasks total)")
    if stats.final_ranks:
        print(f"   final factor ranks: mean {np.mean(stats.final_ranks):.1f}, "
              f"max {max(stats.final_ranks)}")

    print("\n4. Verifying L * L^T against the dense matrix...")
    l = tlr.lower_dense()
    err = np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense)
    print(f"   ||L L^T - A||_F / ||A||_F = {err:.2e}")
    assert err < 1e-6, "factorization accuracy regression"
    print("   OK — within the requested accuracy regime.")


if __name__ == "__main__":
    main()
