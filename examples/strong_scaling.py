#!/usr/bin/env python
"""Strong scaling of a simulated HiCMA TLR Cholesky (miniature Fig. 5a).

Keeps the matrix fixed and sweeps node counts for both backends, picking
each backend's best tile size per node count — reproducing the structure
of the paper's Table 2 ("LCI scales to smaller tiles") and Fig. 5a.

Run:  python examples/strong_scaling.py           (~2-3 minutes)
"""

from repro.analysis.ascii_plot import ascii_table
from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark


def main() -> None:
    matrix = 36_000
    sweeps = {1: [900, 1200, 1800], 4: [600, 900, 1200], 8: [450, 600, 900]}
    print(f"TLR Cholesky strong scaling, N={matrix} (scaled problem)\n")

    rows = []
    for nodes, tiles in sweeps.items():
        entry = {"nodes": nodes}
        for backend in ("mpi", "lci"):
            best_tile, best = None, None
            for tile in tiles:
                cfg = HicmaConfig(matrix_size=matrix, tile_size=tile, num_nodes=nodes)
                r = run_hicma_benchmark(backend, cfg)
                if best is None or r.time_to_solution < best.time_to_solution:
                    best, best_tile = r, tile
            entry[backend] = (best_tile, best.time_to_solution)
            print(f"  nodes={nodes} {backend}: best tile {best_tile} "
                  f"-> {best.time_to_solution * 1e3:.1f} ms")
        rows.append(
            (
                nodes,
                f"{entry['mpi'][1] * 1e3:.1f}",
                entry["mpi"][0],
                f"{entry['lci'][1] * 1e3:.1f}",
                entry["lci"][0],
            )
        )

    print()
    print(
        ascii_table(
            ["nodes", "MPI TTS (ms)", "MPI tile", "LCI TTS (ms)", "LCI tile"],
            rows,
            title="Strong scaling with per-backend best tile size",
        )
    )
    print("\nAs in the paper's Table 2, the optimal tile size shrinks with "
          "node count, and LCI's optimum is at or below MPI's.")


if __name__ == "__main__":
    main()
