#!/usr/bin/env python
"""Worker-occupancy timelines: *seeing* the communication bottleneck.

Runs the same small HiCMA TLR Cholesky under both backends with task
tracing enabled and renders per-worker ASCII Gantt charts.  Sparse bars =
workers starved waiting for data; the MPI backend's chart shows more white
space at communication-bound tile sizes.

Run:  python examples/worker_timeline.py
"""

from repro.analysis.gantt import occupancy, render_gantt, worker_intervals
from repro.config import scaled_platform
from repro.hicma import KernelTimeModel, RankModel, build_tlr_cholesky_graph
from repro.runtime import ParsecContext


def main() -> None:
    matrix, tile, nodes = 18_000, 450, 4
    nt = matrix // tile
    platform = scaled_platform(num_nodes=nodes, cores_per_node=4)
    for backend in ("mpi", "lci"):
        graph = build_tlr_cholesky_graph(
            nt,
            tile,
            num_nodes=nodes,
            rank_model=RankModel(nt, tile, maxrank=150),
            time_model=KernelTimeModel(platform.compute),
        )
        ctx = ParsecContext(platform, backend=backend, collect_traces=True)
        stats = ctx.run(graph, until=600.0)
        print(f"\n=== {backend} backend: TTS {stats.makespan * 1e3:.1f} ms, "
              f"e2e latency {stats.mean_flow_latency * 1e3:.3f} ms ===")
        print(render_gantt(ctx.trace, width=68, max_workers=8))
        occ = occupancy(worker_intervals(ctx.trace))
        mean_occ = sum(occ.values()) / len(occ)
        print(f"mean worker occupancy: {mean_occ:.1%}")


if __name__ == "__main__":
    main()
