"""Calibration regression tests.

The cost constants in ``repro/config.py`` were tuned once against the
paper's Fig. 2a anchor points and then frozen.  These tests pin the
calibration: if someone perturbs a constant, the measured curve drifts out
of the tolerance bands below and this file fails — keeping every benchmark
comparable to the paper.

Tolerances are deliberately wide (±30 % or so): the goal is regime
stability, not digit matching.
"""

import pytest

from repro.bench.pingpong import PingPongConfig, run_pingpong_benchmark
from repro.units import KiB, MiB


def bandwidth(backend: str, fragment: int) -> float:
    r = run_pingpong_benchmark(
        backend,
        PingPongConfig(fragment_size=fragment, total_bytes=8 * MiB, iterations=5),
    )
    return r.bandwidth_gbit


class TestFig2aAnchors:
    def test_mpi_at_128kib(self):
        """Paper: 62.5 Gbit/s at 128 KiB."""
        assert 50.0 <= bandwidth("mpi", 128 * KiB) <= 82.0

    def test_mpi_at_90kib(self):
        """Paper: 45.2 Gbit/s at 90.5 KiB."""
        assert 36.0 <= bandwidth("mpi", int(90.5 * KiB)) <= 62.0

    def test_lci_at_45kib(self):
        """Paper: 64.1 Gbit/s at 45.25 KiB."""
        assert 52.0 <= bandwidth("lci", int(45.25 * KiB)) <= 82.0

    def test_lci_at_32kib(self):
        """Paper: 43.5 Gbit/s at 32 KiB."""
        assert 36.0 <= bandwidth("lci", 32 * KiB) <= 62.0

    def test_peak_bandwidth_near_line_rate(self):
        for backend in ("mpi", "lci"):
            assert bandwidth(backend, 4 * MiB) >= 88.0

    def test_granularity_ratio(self):
        """Paper: LCI sustains tasks ≈2.83× smaller at similar efficiency.

        Measured as the ratio of fragment sizes where each backend first
        reaches 60 Gbit/s."""

        def crossing(backend):
            prev = None
            for frag in (16, 24, 32, 48, 64, 96, 128, 192, 256):
                bw = bandwidth(backend, frag * KiB)
                if bw >= 60.0:
                    return frag if prev is None else prev + (frag - prev) / 2
                prev = frag
            return None

        mpi_size = crossing("mpi")
        lci_size = crossing("lci")
        assert mpi_size is not None and lci_size is not None
        assert 1.8 <= mpi_size / lci_size <= 4.5


class TestLatencyRegime:
    def test_lci_per_fragment_cost_band(self):
        """Implied per-fragment serialized cost ≈ 6 µs for LCI (paper
        anchor: 45.25 KiB / 64.1 Gbit/s ≈ 5.8 µs)."""
        bw = bandwidth("lci", 32 * KiB)
        cost = 32 * KiB / (bw / 8 * 1e9)
        assert 4e-6 <= cost <= 9e-6

    def test_mpi_per_fragment_cost_band(self):
        """Implied per-fragment serialized cost ≈ 17 µs for MPI (paper
        anchor: 128 KiB / 62.5 Gbit/s ≈ 16.8 µs)."""
        bw = bandwidth("mpi", 64 * KiB)
        cost = 64 * KiB / (bw / 8 * 1e9)
        assert 10e-6 <= cost <= 25e-6
