"""The sweep engine: cache correctness, determinism, failure handling."""

import json
import subprocess
import sys

import pytest

from repro.config import SweepConfig
from repro.errors import SweepError
from repro.sweep import (
    PointView,
    ResultCache,
    SweepPoint,
    SweepSpec,
    default_cache_dir,
    execute_point,
    named_grid,
    pingpong_grid,
    point_key,
    run_sweep,
    stable_hash,
)


def tiny_grid():
    """Two fast ping-pong points (one per backend)."""
    return pingpong_grid(fragments=[256 * 1024], total_bytes=1024 * 1024)


class TestStableHash:
    def test_key_order_independent(self):
        assert stable_hash({"a": 1, "b": [2.5]}) == stable_hash({"b": [2.5], "a": 1})

    def test_value_sensitivity(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            stable_hash({"a": float("nan")})

    def test_stable_across_processes(self):
        """The content address must be machine/process independent."""
        point = tiny_grid().points[0]
        code = (
            "from repro.sweep import pingpong_grid, point_key;"
            "print(point_key(pingpong_grid(fragments=[256*1024],"
            " total_bytes=1024*1024).points[0]))"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == point_key(point)


class TestPointKey:
    def test_params_change_key(self):
        a, b = tiny_grid().points  # mpi vs lci
        assert point_key(a) != point_key(b)

    def test_platform_change_invalidates(self, monkeypatch):
        """Recalibration (here: paper scale flips the platform) must miss."""
        point = SweepPoint(
            kind="hicma", backend="lci",
            params={"matrix_size": 7200, "tile_size": 1200, "num_nodes": 2,
                    "seed": 0},
        )
        cold = point_key(point)
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert point_key(point) != cold

    def test_unknown_kind_rejected(self):
        with pytest.raises(SweepError):
            SweepPoint(kind="nope", backend="lci")
        with pytest.raises(SweepError):
            SweepPoint(kind="hicma", backend="tcp")


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("00" * 32) is None
        cache.put("00" * 32, {"spec": 1}, {"x": 1.5})
        assert cache.get("00" * 32) == {"x": 1.5}
        assert cache.stats().entries == 1

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {}, {"x": 1})
        cache.path_for(key).write_text("{ truncated garba")
        assert cache.get(key) is None          # evicted, reported as miss
        assert not cache.path_for(key).exists()
        cache.put(key, {}, {"x": 2})           # re-simulation repopulates
        assert cache.get(key) == {"x": 2}

    def test_key_mismatch_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {}, {"x": 1})
        doc = json.loads(cache.path_for(key).read_text())
        doc["key"] = "ef" * 32
        cache.path_for(key).write_text(json.dumps(doc))
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("11" * 32, {}, {})
        cache.put("22" * 32, {}, {})
        assert cache.clear() == 2
        assert cache.stats().entries == 0

    def test_default_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"


class TestRunSweep:
    def test_serial_executes_then_caches(self, tmp_path):
        spec = tiny_grid()
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, SweepConfig(jobs=1), cache=cache)
        assert (first.executed, first.cached) == (len(spec), 0)
        warm = run_sweep(spec, SweepConfig(jobs=1), cache=cache)
        assert (warm.executed, warm.cached) == (0, len(spec))
        # Bit-identical replay, byte-for-byte (same canonical codec).
        assert json.dumps(warm.records) == json.dumps(first.records)

    def test_parallel_matches_serial_bit_identical(self, tmp_path):
        spec = pingpong_grid(
            fragments=[128 * 1024, 512 * 1024], total_bytes=1024 * 1024
        )
        serial = run_sweep(spec, SweepConfig(jobs=1, cache_enabled=False))
        parallel = run_sweep(spec, SweepConfig(jobs=2, cache_enabled=False))
        assert serial.records == parallel.records
        assert json.dumps(serial.records) == json.dumps(parallel.records)
        # And a parallel run warms the cache identically.
        cache = ResultCache(tmp_path)
        run_sweep(spec, SweepConfig(jobs=2), cache=cache)
        cached = run_sweep(spec, SweepConfig(jobs=1), cache=cache)
        assert cached.executed == 0
        assert json.dumps(cached.records) == json.dumps(serial.records)

    def test_records_match_direct_execution(self):
        spec = tiny_grid()
        outcome = run_sweep(spec, SweepConfig(cache_enabled=False))
        direct = json.loads(json.dumps(execute_point(spec.points[0]), sort_keys=True))
        assert json.dumps(outcome.records[0]) == json.dumps(direct)

    def test_obs_events_and_counters(self, tmp_path):
        from repro.obs import ObsBus

        bus = ObsBus()
        run_sweep(tiny_grid(), SweepConfig(jobs=1), cache=ResultCache(tmp_path),
                  obs=bus)
        kinds = [e.kind for e in bus.memory.events]
        assert kinds[0] == "sweep_start" and kinds[-1] == "sweep_end"
        assert kinds.count("sweep_point") == 2
        assert bus.counter_totals().get("sweep.executed") == 2

    def test_retry_then_fail_fast(self, monkeypatch):
        spec = SweepSpec(
            name="boom",
            points=(SweepPoint(kind="pingpong", backend="mpi",
                               params={"fragment_size": -1}),),
        )
        with pytest.raises(SweepError):
            run_sweep(spec, SweepConfig(cache_enabled=False, retries=1))

    def test_failure_recorded_without_fail_fast(self):
        spec = SweepSpec(
            name="boom",
            points=(SweepPoint(kind="pingpong", backend="mpi",
                               params={"fragment_size": -1}),),
        )
        outcome = run_sweep(
            spec, SweepConfig(cache_enabled=False, retries=0, fail_fast=False)
        )
        assert outcome.failed == 1
        assert outcome.records == [None]
        assert outcome.errors and outcome.errors[0][0] == spec.points[0].label


class TestGridsAndViews:
    def test_named_grid_unknown(self):
        with pytest.raises(SweepError):
            named_grid("fig99")

    def test_fig4_grid_shape(self):
        spec = named_grid("fig4")
        assert spec.name == "fig4"
        assert all(p.kind == "hicma" for p in spec.points)
        assert {p.backend for p in spec.points} == {"mpi", "lci"}
        assert all(p.params["num_nodes"] == 16 for p in spec.points)
        assert any(p.params["multithreaded_activate"] for p in spec.points)

    def test_point_view_surface(self):
        view = PointView({"time_to_solution": 1.25,
                          "flow_latency": {"mean": 2e-3}})
        assert view.time_to_solution == 1.25
        assert view.mean_flow_latency == 2e-3
        with pytest.raises(AttributeError):
            view.not_a_field

    def test_sweep_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SweepConfig(jobs=0)
        with pytest.raises(ConfigError):
            SweepConfig(retries=-1)
