"""Tests for the simulated LCI library."""

import pytest

from repro.config import LciCosts
from repro.errors import LciError
from repro.lci import (
    LCI_ERR_RETRY,
    LCI_OK,
    CompletionQueue,
    CompletionRecord,
    LciWorld,
    Synchronizer,
)
from repro.network import Fabric
from repro.sim.core import Simulator
from repro.units import KiB, MiB


def make_world(n=2, costs=None):
    sim = Simulator()
    fabric = Fabric(sim, n)
    world = LciWorld(sim, fabric, costs)
    return sim, world


def progress_loop(sim, dev, stop):
    """Background progress thread: drains the device until `stop` is set."""

    def loop():
        while not stop():
            worked = yield from dev.progress()
            if not worked:
                idx_val = yield sim.any_of([dev.activity_event(), sim.timeout(1e-4)])
                del idx_val
        return None

    return sim.process(loop())


class TestImmediate:
    def test_sendi_delivers_to_handler(self):
        sim, world = make_world()
        d0, d1 = world.devices
        got = []

        def handler(rec):
            got.append((rec.peer, rec.tag, rec.payload))
            d1.free_rx_packet()

        d1.am_handler = handler

        def main():
            status = yield from d0.sendi(dst=1, tag=3, size=32, data="ping")
            assert status == LCI_OK
            # Drive receiver progress until the AM lands.
            while not got:
                yield from d1.progress()
                if not got:
                    yield d1.activity_event()
            return got[0]

        assert sim.run_process(main()) == (0, 3, "ping")

    def test_sendi_over_limit_raises(self):
        sim, world = make_world()

        def main():
            yield from world.devices[0].sendi(dst=1, tag=0, size=128)

        with pytest.raises(LciError, match="immediate limit"):
            sim.run_process(main())

    def test_am_without_handler_raises(self):
        sim, world = make_world()
        d0, d1 = world.devices

        def main():
            yield from d0.sendi(dst=1, tag=0, size=8)
            yield sim.timeout(1e-3)
            yield from d1.progress()

        with pytest.raises(LciError, match="no handler"):
            sim.run_process(main())


class TestBuffered:
    def test_sendb_roundtrip_with_completion(self):
        sim, world = make_world()
        d0, d1 = world.devices
        got = []
        d1.am_handler = lambda rec: (got.append(rec.payload), d1.free_rx_packet())
        sync = Synchronizer(sim)

        def main():
            status = yield from d0.sendb(dst=1, tag=5, size=4 * KiB, data="bulk", comp=sync)
            assert status == LCI_OK
            rec = yield from sync.wait()
            assert rec.op == "sendb"
            while not got:
                yield from d1.progress()
                if not got:
                    yield d1.activity_event()
            return got[0]

        assert sim.run_process(main()) == "bulk"

    def test_sendb_over_limit_raises(self):
        sim, world = make_world()

        def main():
            yield from world.devices[0].sendb(dst=1, tag=0, size=16 * KiB)

        with pytest.raises(LciError, match="buffered limit"):
            sim.run_process(main())

    def test_sendb_backpressure_retry(self):
        # Make CPU injection much faster than the wire so the pool drains.
        costs = LciCosts(packet_pool_size=2, buffered_send=1e-9, copy_per_byte=0.0)
        sim, world = make_world(costs=costs)
        d0 = world.devices[0]
        world.devices[1].am_handler = lambda rec: None

        def main():
            s1 = yield from d0.sendb(dst=1, tag=0, size=8 * KiB)
            s2 = yield from d0.sendb(dst=1, tag=0, size=8 * KiB)
            s3 = yield from d0.sendb(dst=1, tag=0, size=8 * KiB)
            return (s1, s2, s3)

        assert sim.run_process(main()) == (LCI_OK, LCI_OK, LCI_ERR_RETRY)

    def test_tx_packets_recycled(self):
        costs = LciCosts(packet_pool_size=1)
        sim, world = make_world(costs=costs)
        d0, d1 = world.devices
        d1.am_handler = lambda rec: d1.free_rx_packet()

        def main():
            ok = 0
            for _ in range(5):
                status = LCI_ERR_RETRY
                while status == LCI_ERR_RETRY:
                    status = yield from d0.sendb(dst=1, tag=0, size=8 * KiB)
                    if status == LCI_ERR_RETRY:
                        yield sim.timeout(1e-4)
                ok += 1
            return ok

        assert sim.run_process(main()) == 5

    def test_rx_pool_exhaustion_stalls_am_delivery(self):
        costs = LciCosts(packet_pool_size=1)
        sim, world = make_world(costs=costs)
        d0, d1 = world.devices
        got = []
        d1.am_handler = lambda rec: got.append(rec.payload)  # never frees

        def main():
            yield from d0.sendb(dst=1, tag=0, size=1 * KiB, data="a")
            # sender pool recycles after wire drain; send another
            yield sim.timeout(1e-3)
            yield from d0.sendb(dst=1, tag=0, size=1 * KiB, data="b")
            yield sim.timeout(1e-3)
            yield from d1.progress()
            yield from d1.progress()
            assert got == ["a"]  # second stalled: no RX packet
            d1.free_rx_packet()
            yield from d1.progress()
            return got

        assert sim.run_process(main()) == ["a", "b"]


class TestDirect:
    def run_transfer(self, size, n_pre_post=True):
        sim, world = make_world()
        d0, d1 = world.devices
        send_cq = CompletionQueue(sim)
        recv_cq = CompletionQueue(sim)
        stop = {"v": False}
        p0 = progress_loop(sim, d0, lambda: stop["v"])
        p1 = progress_loop(sim, d1, lambda: stop["v"])

        def main():
            status = yield from d1.recvd(src=0, tag=9, size=size, comp=recv_cq)
            assert status == LCI_OK
            status = yield from d0.sendd(dst=1, tag=9, size=size, data="payload", comp=send_cq)
            assert status == LCI_OK
            rrec = yield from recv_cq.pop()
            srec = yield from send_cq.pop()
            stop["v"] = True
            return (sim.now, srec, rrec)

        t, srec, rrec = sim.run_process(main())
        sim.run()
        assert p0.triggered and p1.triggered
        return sim, world, t, srec, rrec

    def test_rendezvous_transfer_completes_both_sides(self):
        _sim, world, t, srec, rrec = self.run_transfer(2 * MiB)
        assert srec.op == "sendd" and rrec.op == "recvd"
        assert rrec.payload == "payload"
        assert rrec.size == 2 * MiB
        # Time at least the line-rate transfer time.
        assert t > 2 * MiB / world.fabric.cfg.bandwidth

    def test_direct_slots_freed_after_completion(self):
        sim, world, *_ = self.run_transfer(1 * MiB)
        assert world.devices[0].send_slots_free == world.costs.direct_slots
        assert world.devices[1].recv_slots_free == world.costs.direct_slots

    def test_sendd_retry_when_slots_exhausted(self):
        costs = LciCosts(direct_slots=1)
        sim, world = make_world(costs=costs)
        d0 = world.devices[0]

        def main():
            s1 = yield from d0.sendd(dst=1, tag=0, size=1 * MiB)
            s2 = yield from d0.sendd(dst=1, tag=0, size=1 * MiB)
            return (s1, s2)

        assert sim.run_process(main()) == (LCI_OK, LCI_ERR_RETRY)

    def test_recvd_retry_when_slots_exhausted(self):
        costs = LciCosts(direct_slots=1)
        sim, world = make_world(costs=costs)
        d1 = world.devices[1]

        def main():
            s1 = yield from d1.recvd(src=0, tag=0, size=1 * MiB)
            s2 = yield from d1.recvd(src=0, tag=1, size=1 * MiB)
            return (s1, s2)

        assert sim.run_process(main()) == (LCI_OK, LCI_ERR_RETRY)

    def test_rts_before_recvd_is_matched_later(self):
        """Handshake racing ahead of the posted receive must still work."""
        sim, world = make_world()
        d0, d1 = world.devices
        sync = Synchronizer(sim)
        stop = {"v": False}
        progress_loop(sim, d0, lambda: stop["v"])
        progress_loop(sim, d1, lambda: stop["v"])

        def main():
            yield from d0.sendd(dst=1, tag=4, size=64 * KiB, data="late-post")
            yield sim.timeout(1e-3)  # RTS arrives; no receive posted yet
            yield from d1.recvd(src=0, tag=4, size=64 * KiB, comp=sync)
            rec = yield from sync.wait()
            stop["v"] = True
            return rec.payload

        assert sim.run_process(main()) == "late-post"
        sim.run()

    def test_recv_too_small_raises(self):
        sim, world = make_world()
        d0, d1 = world.devices

        def main():
            yield from d1.recvd(src=0, tag=4, size=1 * KiB)
            yield from d0.sendd(dst=1, tag=4, size=1 * MiB)
            yield sim.timeout(1e-3)
            yield from d1.progress()

        with pytest.raises(LciError, match="too small"):
            sim.run_process(main())


class TestCompletionMechanisms:
    def test_handler_completion(self):
        sim, world = make_world()
        d0, d1 = world.devices
        d1.am_handler = lambda rec: d1.free_rx_packet()
        calls = []

        def main():
            yield from d0.sendb(dst=1, tag=0, size=1 * KiB, comp=calls.append)
            yield sim.timeout(1e-3)
            return calls

        out = sim.run_process(main())
        assert len(out) == 1 and out[0].op == "sendb"

    def test_synchronizer_records_value(self):
        sim = Simulator()
        sync = Synchronizer(sim)
        rec = CompletionRecord("am", 1, 2, 3)
        sync.signal(rec)

        def main():
            got = yield from sync.wait()
            return got

        assert sim.run_process(main()) is rec
        assert sync.triggered

    def test_cq_try_pop(self):
        sim = Simulator()
        cq = CompletionQueue(sim)
        assert cq.try_pop() is None
        rec = CompletionRecord("am", 0, 0, 0)
        cq.push(rec)
        assert cq.try_pop() is rec

    def test_invalid_completion_target_raises(self):
        sim, world = make_world()
        d0 = world.devices[0]
        world.devices[1].am_handler = lambda rec: None

        def main():
            yield from d0.sendb(dst=1, tag=0, size=64, comp=42)
            yield sim.timeout(1e-3)

        with pytest.raises(LciError, match="unsupported completion"):
            sim.run_process(main())

    def test_free_without_alloc_raises(self):
        sim, world = make_world()
        with pytest.raises(LciError):
            world.devices[0].free_rx_packet()


class TestRxPacketDepletion:
    """§5.2 hardware receive-queue depletion: delivered AMs stall when the
    RX packet pool is empty and drain once a consumer frees a packet."""

    def test_am_queue_stalls_then_drains_after_free(self):
        from repro.obs import ObsBus
        from repro.sim.core import Simulator

        sim = Simulator()
        fabric = Fabric(sim, 2)
        bus = ObsBus()
        bus.bind_clock(sim)
        world = LciWorld(sim, fabric, LciCosts(packet_pool_size=2), obs=bus)
        d0, d1 = world.devices
        got = []
        # Handler hoards its buffer: nothing calls free_rx_packet yet.
        d1.am_handler = lambda rec: got.append(rec.payload)
        stalls = bus.counter("lci.rx_am_stalls", 1)

        def main():
            for i in range(4):
                status = yield from d0.sendi(dst=1, tag=0, size=16, data=i)
                assert status == LCI_OK
            yield sim.timeout(1e-3)  # let all four AMs arrive
            n = yield from d1.progress()
            # Pool of 2: two AMs consumed, two stalled in the RX queue.
            assert n == 2
            assert got == [0, 1]
            assert d1.rx_packets_free == 0
            assert len(d1._rx_am) == 2
            assert stalls.value == 1
            # Progressing again without freeing must not consume more.
            n = yield from d1.progress()
            assert n == 0
            assert stalls.value == 2
            # A consumer frees one packet: exactly one more AM drains.
            d1.free_rx_packet()
            n = yield from d1.progress()
            assert n == 1
            assert got == [0, 1, 2]
            assert stalls.value == 3
            # Free the rest: the queue empties and the stall counter stops.
            d1.free_rx_packet()
            d1.free_rx_packet()
            n = yield from d1.progress()
            assert n == 1
            assert got == [0, 1, 2, 3]
            assert not d1._rx_am
            assert stalls.value == 3

        sim.run_process(main())
