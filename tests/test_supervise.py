"""Supervised execution: run guards, worker supervision, crash-safe resume."""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark
from repro.config import SweepConfig
from repro.errors import (
    ConfigError,
    HicmaError,
    NoProgressError,
    RunBudgetExceeded,
    SupervisionError,
    SweepError,
)
from repro.obs.bus import ObsBus
from repro.supervise import (
    RunGuards,
    SweepJournal,
    classify_failure,
    is_deterministic_failure,
    read_journal,
)
from repro.sweep import SweepPoint, SweepSpec, pingpong_grid, run_sweep

ROOT = Path(__file__).resolve().parent.parent

SMALL = dict(matrix_size=2048, tile_size=256, num_nodes=4)


def tiny_grid():
    """Four fast ping-pong points (two fragments x two backends)."""
    return pingpong_grid(fragments=[64 * 1024, 128 * 1024],
                         total_bytes=256 * 1024)


def no_cache(**kw) -> SweepConfig:
    return SweepConfig(cache_enabled=False, **kw)


def records_json(outcome) -> str:
    return json.dumps(outcome.records, sort_keys=True)


class TestRunGuards:
    def test_validation(self):
        for bad in (dict(deadline=0), dict(max_events=-1),
                    dict(max_rss_bytes=0), dict(no_progress_window=0.0),
                    dict(check_every=0)):
            with pytest.raises(ConfigError):
                RunGuards(**bad)

    def test_disabled_guards_are_noop(self):
        guards = RunGuards()
        assert not guards.enabled
        r1 = run_hicma_benchmark("lci", HicmaConfig(**SMALL))
        r2 = run_hicma_benchmark("lci", HicmaConfig(**SMALL), guards=guards)
        assert r1.time_to_solution == r2.time_to_solution

    def test_event_budget_aborts_with_snapshot_and_partial(self):
        with pytest.raises(RunBudgetExceeded) as exc_info:
            run_hicma_benchmark(
                "lci", HicmaConfig(**SMALL),
                guards=RunGuards(max_events=1000, check_every=256),
            )
        exc = exc_info.value
        assert "event budget" in str(exc)
        snap = exc.snapshot
        assert snap["reason"] == str(exc)
        assert snap["tasks_done"] > 0
        assert snap["tasks_total"] == 120
        assert snap["events_processed"] >= 1000
        assert "counters" in snap and "quiescence" in snap
        # Salvaged partial stats are real measurements, not placeholders.
        assert exc.partial is not None
        assert 0 < exc.partial.tasks_executed < 120
        assert exc.partial.makespan > 0

    def test_deadline_aborts(self):
        with pytest.raises(RunBudgetExceeded) as exc_info:
            run_hicma_benchmark(
                "lci", HicmaConfig(**SMALL),
                guards=RunGuards(deadline=1e-9, check_every=64),
            )
        assert "deadline" in str(exc_info.value)

    def test_memory_ceiling_aborts(self):
        # 1 byte of RSS budget trips on the first check.
        with pytest.raises(RunBudgetExceeded) as exc_info:
            run_hicma_benchmark(
                "lci", HicmaConfig(**SMALL),
                guards=RunGuards(max_rss_bytes=1, check_every=64),
            )
        assert "memory ceiling" in str(exc_info.value)

    def test_no_progress_aborts(self):
        # A window far below the inter-completion gap reads as live-lock.
        with pytest.raises(NoProgressError) as exc_info:
            run_hicma_benchmark(
                "lci", HicmaConfig(**SMALL),
                guards=RunGuards(no_progress_window=1e-9, check_every=64),
            )
        assert "no progress" in str(exc_info.value)
        assert exc_info.value.snapshot["tasks_total"] == 120

    def test_generous_guards_bit_identical(self):
        r1 = run_hicma_benchmark("lci", HicmaConfig(**SMALL))
        r2 = run_hicma_benchmark(
            "lci", HicmaConfig(**SMALL),
            guards=RunGuards(deadline=3600.0, max_events=10**9,
                             no_progress_window=3600.0),
        )
        assert r1.time_to_solution == r2.time_to_solution
        assert r1.tasks == r2.tasks
        assert r1.flow_latency == r2.flow_latency

    def test_guards_chain_progress_tick(self):
        from repro.obs.progress import ProgressReporter

        reporter = ProgressReporter(interval=0.0)
        r = run_hicma_benchmark(
            "lci", HicmaConfig(**SMALL), progress=reporter,
            guards=RunGuards(deadline=3600.0),
        )
        base = run_hicma_benchmark("lci", HicmaConfig(**SMALL))
        assert r.time_to_solution == base.time_to_solution
        assert reporter.beats > 0  # the chained tick still fired

    def test_abort_emits_watchdog_event_and_snapshots_trail(self):
        from repro.bench.workloads import random_layered_dag
        from repro.config import scaled_platform
        from repro.runtime.context import ParsecContext

        graph = random_layered_dag([4, 6, 6, 4], num_nodes=3, seed=11)
        ctx = ParsecContext(scaled_platform(num_nodes=3, cores_per_node=3),
                            backend="lci", observability=True)
        with pytest.raises(RunBudgetExceeded) as exc_info:
            ctx.run(graph, until=30.0,
                    guards=RunGuards(max_events=200, check_every=64))
        assert "watchdog_abort" in [e.kind for e in ctx.obs.memory.events]
        # With an in-memory sink attached the snapshot carries the trail.
        trail = exc_info.value.snapshot["last_events"]
        assert 0 < len(trail) <= 25
        assert all("kind" in e and "time" in e for e in trail)

    def test_legacy_core_abort_parity(self):
        code = (
            "from repro.bench.hicma_bench import HicmaConfig, "
            "run_hicma_benchmark\n"
            "from repro.supervise import RunGuards\n"
            "from repro.errors import RunBudgetExceeded\n"
            "try:\n"
            "    run_hicma_benchmark('lci', HicmaConfig(matrix_size=2048, "
            "tile_size=256, num_nodes=4), "
            "guards=RunGuards(max_events=1000, check_every=256))\n"
            "    print('NOABORT')\n"
            "except RunBudgetExceeded as e:\n"
            "    print('PARTIAL', e.partial.tasks_executed)\n"
        )
        env = dict(os.environ, REPRO_SIM_CORE="legacy",
                   PYTHONPATH=str(ROOT / "src"))
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("PARTIAL "), proc.stdout
        # Same abort point as the epoch core: the tick cadence and event
        # accounting agree across kernels.
        with pytest.raises(RunBudgetExceeded) as exc_info:
            run_hicma_benchmark(
                "lci", HicmaConfig(**SMALL),
                guards=RunGuards(max_events=1000, check_every=256),
            )
        epoch_tasks = exc_info.value.partial.tasks_executed
        assert proc.stdout.split() == ["PARTIAL", str(epoch_tasks)]


class TestClassifyFailure:
    def test_deterministic_kinds(self):
        for exc in (ConfigError("x"), SweepError("x"), HicmaError("x"),
                    TypeError("x"), ValueError("x"), KeyError("x")):
            assert classify_failure(exc) == "deterministic"
            assert is_deterministic_failure(exc)

    def test_transient_kinds(self):
        for exc in (OSError("x"), MemoryError(), RuntimeError("x"),
                    Exception("x")):
            assert classify_failure(exc) == "transient"
            assert not is_deterministic_failure(exc)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j"
        journal = SweepJournal(path).open()
        journal.begin("grid", ["k0", "k1"], {"jobs": 2})
        journal.attempt(0, 1)
        journal.outcome_ok(0, {"v": 1.5})
        journal.attempt(1, 1)
        journal.outcome_failed(1, "Boom('x')")
        journal.interrupted("SIGTERM")
        journal.end(1, 0, 1)
        journal.close()
        state = read_journal(path)
        assert state.begin["name"] == "grid"
        assert state.completed == {0: {"v": 1.5}}
        assert state.failed == {1: "Boom('x')"}
        assert state.attempts == {0: 1, 1: 1}
        assert state.interrupted and state.finished
        assert not state.corrupt_tail
        assert "1 points complete" in state.summary()

    def test_later_ok_supersedes_failed(self, tmp_path):
        path = tmp_path / "j"
        journal = SweepJournal(path).open()
        journal.outcome_failed(0, "flaky")
        journal.outcome_ok(0, {"v": 2})
        journal.close()
        state = read_journal(path)
        assert state.completed == {0: {"v": 2}}
        assert state.failed == {}

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j"
        journal = SweepJournal(path).open()
        journal.outcome_ok(0, {"v": 1})
        journal.outcome_ok(1, {"v": 2})
        journal.close()
        text = path.read_text()
        lines = text.splitlines()
        path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        state = read_journal(path)
        assert state.completed == {0: {"v": 1}}
        assert state.corrupt_tail

    def test_bit_rot_stops_replay(self, tmp_path):
        path = tmp_path / "j"
        journal = SweepJournal(path).open()
        journal.outcome_ok(0, {"v": 1})
        journal.outcome_ok(1, {"v": 2})
        journal.close()
        # Valid JSON, wrong checksum: flip a digit inside the record.
        lines = path.read_text().splitlines()
        assert '"v":1' in lines[0]  # canonical JSON is compact
        doctored = lines[0].replace('"v":1', '"v":7')
        path.write_text(doctored + "\n" + lines[1] + "\n")
        state = read_journal(path)
        assert state.completed == {}  # nothing after the damaged line
        assert state.corrupt_tail

    def test_missing_file_is_empty_state(self, tmp_path):
        state = read_journal(tmp_path / "absent")
        assert state.entries == 0 and not state.corrupt_tail

    def test_resume_rejects_different_sweep(self, tmp_path):
        path = tmp_path / "j"
        journal = SweepJournal(path).open()
        journal.begin("grid", ["k0", "k1"], {})
        journal.close()
        other = SweepJournal.begin_entry("grid", ["k0", "DIFFERENT"], {})
        with pytest.raises(SweepError, match="different sweep"):
            SweepJournal(path).load_for_resume(other)

    def test_truncate_discards_open(self, tmp_path):
        path = tmp_path / "j"
        journal = SweepJournal(path).open(truncate=True)
        journal.outcome_ok(0, {"v": 1})
        journal.close()
        SweepJournal(path).open(truncate=True).close()
        assert path.read_text() == ""


class TestSupervisedSweep:
    def test_parallel_matches_serial_bit_identical(self):
        spec = tiny_grid()
        serial = run_sweep(spec, no_cache(jobs=1))
        parallel = run_sweep(spec, no_cache(jobs=2))
        assert records_json(serial) == records_json(parallel)
        assert parallel.executed == len(spec.points)

    def test_worker_kill_respawns_and_retries(self, tmp_path, monkeypatch):
        spec = tiny_grid()
        baseline = run_sweep(spec, no_cache(jobs=1))
        monkeypatch.setenv("REPRO_HARNESS_CHAOS",
                           f"worker_kill@1:{tmp_path}/markers")
        bus = ObsBus()
        out = run_sweep(spec, no_cache(jobs=2), obs=bus)
        assert records_json(out) == records_json(baseline)
        assert out.retried >= 1
        totals = bus.counter_totals()
        assert totals.get("supervise.respawned", 0) >= 1
        deaths = [e for e in bus.memory.events
                  if e.kind == "watchdog_worker" and e.info == "died"]
        assert deaths

    def test_worker_hang_detected_and_retried(self, tmp_path, monkeypatch):
        spec = tiny_grid()
        baseline = run_sweep(spec, no_cache(jobs=1))
        monkeypatch.setenv("REPRO_HARNESS_CHAOS",
                           f"worker_hang@2:{tmp_path}/markers")
        bus = ObsBus()
        out = run_sweep(spec, no_cache(jobs=2, heartbeat_timeout=1.0),
                        obs=bus)
        assert records_json(out) == records_json(baseline)
        assert bus.counter_totals().get("supervise.hung", 0) >= 1

    def test_deterministic_failure_burns_no_retries(self, tmp_path):
        # An unknown parameter raises ConfigError in the worker — retrying
        # cannot help, so exactly one attempt must be journaled per point.
        bad = SweepPoint(kind="pingpong", backend="mpi",
                         params={"nonsense_parameter": 1})
        spec = SweepSpec(name="bad", points=(bad,) * 2)
        journal = tmp_path / "j"
        out = run_sweep(
            spec, no_cache(jobs=1, retries=3, fail_fast=False),
            journal=journal,
        )
        assert out.failed == 2 and out.retried == 0
        state = read_journal(journal)
        assert state.attempts == {0: 1, 1: 1}
        assert "ConfigError" in state.failed[0]
        assert "does not accept parameter" in state.failed[0]

    def test_deterministic_failure_fails_fast_parallel(self, tmp_path):
        good = tiny_grid().points
        bad = SweepPoint(kind="pingpong", backend="mpi",
                         params={"nonsense_parameter": 1})
        spec = SweepSpec(name="mixed", points=(*good, bad))
        journal = tmp_path / "j"
        out = run_sweep(
            spec, no_cache(jobs=2, retries=3, fail_fast=False),
            journal=journal,
        )
        assert out.failed == 1 and out.executed == len(good)
        assert read_journal(journal).attempts[len(good)] == 1

    def test_journal_resume_completes_bit_identical(self, tmp_path,
                                                    monkeypatch):
        spec = tiny_grid()
        baseline = run_sweep(spec, no_cache(jobs=1))
        journal = tmp_path / "j"
        monkeypatch.setenv("REPRO_HARNESS_CHAOS",
                           f"journal_truncate@2:{tmp_path}/markers")
        run_sweep(spec, no_cache(jobs=1), journal=journal)
        monkeypatch.delenv("REPRO_HARNESS_CHAOS")
        state = read_journal(journal)
        assert state.corrupt_tail and len(state.completed) == 2
        resumed = run_sweep(spec, no_cache(jobs=1), journal=journal,
                            resume=True)
        assert resumed.resumed == 2
        assert resumed.executed == len(spec.points) - 2
        assert records_json(resumed) == records_json(baseline)

    def test_resume_requires_journal(self):
        with pytest.raises(SweepError, match="requires a journal"):
            run_sweep(tiny_grid(), no_cache(jobs=1), resume=True)

    def test_resumed_points_skip_cache_and_emit(self, tmp_path):
        spec = tiny_grid()
        journal = tmp_path / "j"
        bus = ObsBus()
        run_sweep(spec, no_cache(jobs=1), journal=journal)
        resumed = run_sweep(spec, no_cache(jobs=1), journal=journal,
                            resume=True, obs=bus)
        assert resumed.resumed == len(spec.points)
        assert bus.counter_totals().get("sweep.resumed") == len(spec.points)

    def test_heartbeat_timeout_validation(self):
        with pytest.raises(ConfigError):
            SweepConfig(heartbeat_timeout=0.0)


class TestOutcomePersistence:
    def test_save_load_round_trip(self, tmp_path):
        out = run_sweep(tiny_grid(), no_cache(jobs=1))
        path = tmp_path / "nested" / "outcome.json"
        out.save(path)
        doc = out.load_doc(path)
        assert doc["records"] == out.records
        assert doc["keys"] == out.keys
        assert doc["spec"]["name"] == out.spec.name
        assert "wall_time" not in doc  # content, not circumstance
        # No temp file left behind (atomic rename completed).
        assert [p.name for p in path.parent.iterdir()] == ["outcome.json"]

    def test_save_is_canonical_json(self, tmp_path):
        out = run_sweep(tiny_grid(), no_cache(jobs=1))
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        out.save(p1)
        out.save(p2)
        assert p1.read_bytes() == p2.read_bytes()


class TestSupervisionErrors:
    def test_hierarchy(self):
        assert issubclass(RunBudgetExceeded, SupervisionError)
        assert issubclass(NoProgressError, SupervisionError)
        exc = RunBudgetExceeded("x", snapshot={"reason": "x"})
        assert exc.snapshot == {"reason": "x"}
        assert exc.partial is None


class TestInterruptResumeTool:
    def test_interrupt_resume_checker(self):
        # End to end through the CLI: baseline, worker_kill, SIGTERM +
        # --resume, worker_hang — all byte-identical (~15 s).
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "check_interrupt_resume.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "ok interrupt+resume" in proc.stdout
        assert "ok worker_kill" in proc.stdout
        assert "ok worker_hang" in proc.stdout
