"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator, Interrupt


def test_timeout_advances_time():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.5)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(1.5)
    assert sim.now == pytest.approx(1.5)


def test_zero_timeout_runs_at_same_time():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(0.0)
        seen.append(sim.now)

    sim.run_process(proc())
    assert seen == [0.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(3.0, "c"))
    sim.process(waiter(1.0, "a"))
    sim.process(waiter(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def waiter(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        sim.process(waiter(tag))
    sim.run()
    assert order == list(range(10))


def test_event_value_passes_through_yield():
    sim = Simulator()
    evt = sim.event()

    def trigger():
        yield sim.timeout(1.0)
        evt.succeed("payload")

    def waiter():
        value = yield evt
        return value

    sim.process(trigger())
    assert sim.run_process(waiter()) == "payload"


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    evt = sim.event()

    def trigger():
        yield sim.timeout(0.5)
        evt.fail(ValueError("boom"))

    def waiter():
        yield evt

    sim.process(trigger())
    with pytest.raises(ValueError, match="boom"):
        sim.run_process(waiter())


def test_event_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)
    with pytest.raises(SimulationError):
        evt.fail(RuntimeError("x"))


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value


def test_callback_added_after_trigger_still_runs():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(42)
    sim.run()
    seen = []
    evt.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == [42]


def test_process_is_waitable_event():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "done"

    def parent():
        result = yield sim.process(child())
        return (sim.now, result)

    assert sim.run_process(parent()) == (pytest.approx(2.0), "done")


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise KeyError("inner")

    def parent():
        yield sim.process(child())

    with pytest.raises(KeyError):
        sim.run_process(parent())


def test_yielding_non_event_raises():
    # Numbers are the sleep shorthand; anything else non-Event is an error.
    sim = Simulator()

    def bad():
        yield "not an event"

    proc = sim.process(bad())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_yielding_number_sleeps():
    sim = Simulator()

    def proc():
        sent = yield 1.5
        assert sent == 1.5
        sent = yield 2  # ints work too (bools do not)
        assert sent == 2
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(3.5)


def test_yielding_negative_number_raises():
    sim = Simulator()

    def bad():
        yield -0.5

    proc = sim.process(bad())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            log.append(("interrupted", sim.now, exc.cause))

    def interrupter(proc):
        yield sim.timeout(1.0)
        proc.interrupt("wakeup")

    p = sim.process(sleeper())
    sim.process(interrupter(p))
    sim.run()
    assert log == [("interrupted", 1.0, "wakeup")]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)

    p = sim.process(quick())
    sim.run()
    p.interrupt("late")  # must not raise
    sim.run()
    assert p.ok


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def waiter():
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
        return (sim.now, values)

    t, values = sim.run_process(waiter())
    assert t == pytest.approx(3.0)
    assert values == ["a", "b"]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()

    def waiter():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(waiter()) == []


def test_any_of_returns_first():
    sim = Simulator()

    def waiter():
        idx, value = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
        return (sim.now, idx, value)

    t, idx, value = sim.run_process(waiter())
    assert t == pytest.approx(1.0)
    assert (idx, value) == (1, "fast")


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(10.0)

    sim.process(proc())
    sim.run(until=4.0)
    assert sim.now == pytest.approx(4.0)
    sim.run()
    assert sim.now == pytest.approx(10.0)


def test_call_soon_and_call_later_ordering():
    sim = Simulator()
    order = []
    sim.call_later(1.0, order.append, "later")
    sim.call_soon(order.append, "soon1")
    sim.call_soon(order.append, "soon2")
    sim.run()
    assert order == ["soon1", "soon2", "later"]


def test_call_later_negative_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(-0.1, lambda: None)


def test_run_process_unfinished_raises():
    sim = Simulator()
    evt = sim.event()

    def forever():
        yield evt

    with pytest.raises(SimulationError, match="did not finish"):
        sim.run_process(forever())


def test_nested_process_chains():
    sim = Simulator()

    def leaf(n):
        yield sim.timeout(0.1 * n)
        return n

    def mid(n):
        a = yield sim.process(leaf(n))
        b = yield sim.process(leaf(n + 1))
        return a + b

    def root():
        total = 0
        for i in range(3):
            total += yield sim.process(mid(i))
        return total

    # (0+1) + (1+2) + (2+3) = 9
    assert sim.run_process(root()) == 9


def test_events_processed_counter_increases():
    sim = Simulator()

    def proc():
        for _ in range(5):
            yield sim.timeout(0.1)

    sim.run_process(proc())
    assert sim.events_processed >= 5
