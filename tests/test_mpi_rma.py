"""Tests for MPI RMA dynamic windows and the RMA put mode (§4.2.2's
unexplored alternative, implemented here as an ablation)."""

import pytest

from repro.config import scaled_platform
from repro.errors import MpiError, RuntimeBackendError
from repro.mpi import MpiWorld
from repro.network import Fabric
from repro.runtime import ParsecContext, TaskGraph
from repro.sim.core import Simulator
from repro.units import KiB, MiB


def make_world(n=2):
    sim = Simulator()
    fabric = Fabric(sim, n)
    return sim, MpiWorld(sim, fabric)


class TestRmaPrimitives:
    def test_rma_put_completes_without_target_cpu(self):
        sim, world = make_world()
        r0, r1 = world.ranks

        def origin():
            yield from r0.win_attach(1 * MiB)  # symmetric usage
            req = yield from r0.rma_put(1, 1 * MiB, payload="remote-write")
            assert not req.done
            yield from r0.flush(req)
            return (req.done, sim.now)

        done, t = sim.run_process(origin())
        assert done
        # Transfer at line rate plus latencies; target never called MPI.
        assert t > 1 * MiB / world.fabric.cfg.bandwidth
        assert r1.pending_incoming == 0  # nothing for the target's software

    def test_attach_detach_charge_time(self):
        sim, world = make_world()
        r0 = world.ranks[0]

        def proc():
            yield from r0.win_attach(4 * KiB)
            yield from r0.win_detach()
            return sim.now

        t = sim.run_process(proc())
        assert t == pytest.approx(
            world.costs.win_attach + world.costs.win_detach
        )

    def test_invalid_target_rejected(self):
        sim, world = make_world()

        def proc():
            yield from world.ranks[0].rma_put(7, 64)

        with pytest.raises(MpiError, match="RMA target"):
            sim.run_process(proc())

    def test_flush_returns_immediately_if_done(self):
        sim, world = make_world()
        r0 = world.ranks[0]

        def proc():
            req = yield from r0.rma_put(1, 4 * KiB)
            yield sim.timeout(1e-3)  # let it complete on its own
            t0 = sim.now
            yield from r0.flush(req)
            return sim.now - t0

        dt = sim.run_process(proc())
        assert dt == pytest.approx(world.costs.rma_flush)


class TestRmaPutMode:
    def graph(self, n=12, size=256 * KiB):
        g = TaskGraph()
        for _ in range(n):
            t = g.add_task(node=0, duration=2e-6)
            f = g.add_flow(t, size)
            g.add_task(node=1, duration=2e-6, inputs=[f])
        return g

    def test_rma_mode_completes_workload(self):
        ctx = ParsecContext(
            scaled_platform(num_nodes=2, cores_per_node=4),
            backend="mpi",
            mpi_put_mode="rma",
        )
        g = self.graph()
        stats = ctx.run(g, until=10.0)
        assert stats.tasks_executed == g.num_tasks

    def test_rma_mode_slower_than_twosided(self):
        """The paper's rationale for not using MPI RMA: dynamic-window
        attach/detach plus the extra notification round cost more than the
        emulated two-sided put."""
        lat = {}
        for mode in ("twosided", "rma"):
            ctx = ParsecContext(
                scaled_platform(num_nodes=2, cores_per_node=4),
                backend="mpi",
                mpi_put_mode=mode,
            )
            lat[mode] = ctx.run(self.graph(), until=10.0).mean_flow_latency
        assert lat["rma"] > lat["twosided"]

    def test_unknown_put_mode_rejected(self):
        from repro.runtime.mpi_backend import MpiBackend

        sim, world = make_world()
        with pytest.raises(RuntimeBackendError, match="put mode"):
            MpiBackend(sim, world.ranks[0], put_mode="windows95")

    def test_multicast_works_under_rma(self):
        g = TaskGraph()
        t = g.add_task(node=0, duration=1e-6)
        f = g.add_flow(t, 128 * KiB)
        for node in range(4):
            g.add_task(node=node, duration=1e-6, inputs=[f])
        ctx = ParsecContext(
            scaled_platform(num_nodes=4, cores_per_node=4),
            backend="mpi",
            mpi_put_mode="rma",
        )
        stats = ctx.run(g, until=10.0)
        assert stats.tasks_executed == 5
