"""Simulator self-validation: measured behaviour vs closed-form models."""

import pytest

from repro.analysis.validation import (
    ValidationResult,
    predicted_one_way,
    validate_compute_bound_makespan,
    validate_netpipe_bandwidth,
    validate_netpipe_latency,
)
from repro.config import NetworkConfig
from repro.units import KiB, MiB


class TestValidationResult:
    def test_deviation_and_ok(self):
        r = ValidationResult("x", predicted=100.0, measured=104.0, tolerance=0.05)
        assert r.deviation == pytest.approx(0.04)
        assert r.ok

    def test_failing_case(self):
        r = ValidationResult("x", predicted=100.0, measured=120.0, tolerance=0.05)
        assert not r.ok
        assert "FAIL" in r.summary()

    def test_zero_prediction(self):
        r = ValidationResult("x", predicted=0.0, measured=1.0, tolerance=0.1)
        assert not r.ok


class TestNetpipeAgainstClosedForm:
    @pytest.mark.parametrize("size", [64, 4 * KiB, 256 * KiB, 4 * MiB])
    def test_latency_matches(self, size):
        r = validate_netpipe_latency(size)
        assert r.ok, r.summary()

    @pytest.mark.parametrize("size", [64 * KiB, 4 * MiB])
    def test_bandwidth_matches(self, size):
        r = validate_netpipe_bandwidth(size)
        assert r.ok, r.summary()

    def test_custom_network_config(self):
        slow = NetworkConfig(bandwidth=1.25e9, wire_latency=5e-6)
        r = validate_netpipe_latency(1 * MiB, slow)
        assert r.ok, r.summary()
        # The closed form itself must reflect the slower wire.
        assert predicted_one_way(1 * MiB, slow) > predicted_one_way(1 * MiB)


class TestRuntimeAgainstClosedForm:
    def test_compute_bound_makespan(self):
        r = validate_compute_bound_makespan(num_tasks=64, workers=8)
        assert r.ok, r.summary()

    def test_single_wave(self):
        r = validate_compute_bound_makespan(num_tasks=8, workers=8)
        assert r.ok, r.summary()

    def test_uneven_last_wave(self):
        # 65 tasks on 8 workers: 9 waves.
        r = validate_compute_bound_makespan(num_tasks=65, workers=8)
        assert r.ok, r.summary()
