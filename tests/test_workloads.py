"""Tests for the reusable workload generators."""

import pytest

from repro.bench.workloads import (
    all_to_all_rounds,
    chain,
    fan_out,
    halo_exchange,
    random_layered_dag,
)
from repro.config import scaled_platform
from repro.errors import BenchmarkError
from repro.runtime import ParsecContext


class TestGenerators:
    def test_chain_structure(self):
        g = chain(10, num_nodes=2)
        g.validate(num_nodes=2)
        assert g.num_tasks == 10
        assert g.num_flows == 10
        assert len(g.source_tasks()) == 1

    def test_chain_rejects_empty(self):
        with pytest.raises(BenchmarkError):
            chain(0, 2)

    def test_fan_out_structure(self):
        g = fan_out(consumers_per_node=3, num_nodes=4)
        g.validate(num_nodes=4)
        assert g.num_tasks == 1 + 12
        flow = g.flows[0]
        assert len(flow.consumers) == 12

    def test_halo_exchange_structure(self):
        g = halo_exchange(num_nodes=4, steps=3, tiles_per_node=4)
        g.validate(num_nodes=4)
        assert g.num_tasks == 3 * 4 * 4
        # A middle-step boundary tile has 2 inputs (own state + halo).
        boundary_inputs = [
            len(t.inputs) for t in g.tasks.values() if t.kind == "step1"
        ]
        assert max(boundary_inputs) == 2

    def test_halo_needs_two_nodes(self):
        with pytest.raises(BenchmarkError):
            halo_exchange(num_nodes=1, steps=1)

    def test_random_dag_deterministic_by_seed(self):
        g1 = random_layered_dag([3, 4, 2], num_nodes=3, seed=7)
        g2 = random_layered_dag([3, 4, 2], num_nodes=3, seed=7)
        assert [t.node for t in g1.tasks.values()] == [
            t.node for t in g2.tasks.values()
        ]
        g3 = random_layered_dag([3, 4, 2], num_nodes=3, seed=8)
        assert g1.num_tasks == g3.num_tasks

    def test_random_dag_valid(self):
        g = random_layered_dag([4, 6, 6, 2], num_nodes=4, seed=1)
        g.validate(num_nodes=4)

    def test_all_to_all_structure(self):
        n, rounds = 4, 2
        g = all_to_all_rounds(n, rounds)
        g.validate(num_nodes=n)
        assert g.num_tasks == n * rounds + n  # producers + sinks


class TestGeneratorsRunOnRuntime:
    @pytest.mark.parametrize(
        "graph_fn",
        [
            lambda: chain(12, 2),
            lambda: fan_out(2, 4),
            lambda: halo_exchange(4, 3),
            lambda: random_layered_dag([3, 5, 3], 3, seed=3),
            lambda: all_to_all_rounds(3, 2),
        ],
        ids=["chain", "fanout", "halo", "random", "a2a"],
    )
    @pytest.mark.parametrize("backend", ["mpi", "lci"])
    def test_completes(self, graph_fn, backend):
        g = graph_fn()
        nodes = max(t.node for t in g.tasks.values()) + 1
        ctx = ParsecContext(
            scaled_platform(num_nodes=max(nodes, 2), cores_per_node=2),
            backend=backend,
        )
        stats = ctx.run(g, until=30.0)
        assert stats.tasks_executed == g.num_tasks
