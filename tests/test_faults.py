"""Tests for the deterministic fault-injection engine and reliable transport."""

import dataclasses

import pytest

from repro.config import FaultConfig, LciCosts
from repro.errors import ConfigError, FaultError
from repro.faults import (
    FAULT_PLANS,
    FaultEngine,
    NULL_FAULTS,
    SeqTracker,
    fault_plan,
    wire_checksum,
)
from repro.lci.device import LciWorld
from repro.network import Fabric, MessageClass, WireMessage
from repro.obs import ObsBus
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams


def make_faulty_fabric(cfg: FaultConfig, num_nodes: int = 2, seed: int = 7):
    sim = Simulator()
    bus = ObsBus()
    bus.bind_clock(sim)
    engine = FaultEngine(cfg, sim=sim, rng=RngStreams(seed), obs=bus)
    fabric = Fabric(sim, num_nodes, faults=engine)
    return sim, fabric, engine, bus


class TestSeqTracker:
    def test_in_order_and_duplicates(self):
        t = SeqTracker()
        assert t.accept(0) and t.accept(1)
        assert not t.accept(0)
        assert not t.accept(1)
        assert t.cum == 1

    def test_out_of_order_gap_closes(self):
        t = SeqTracker()
        assert t.accept(2)
        assert t.cum == -1 and 2 in t.seen
        assert t.accept(0) and t.accept(1)
        assert t.cum == 2 and not t.seen
        assert not t.accept(2)


class TestChecksum:
    def test_covers_header_fields(self):
        m = WireMessage(src=0, dst=1, size=64, msg_class=MessageClass.DATA,
                        channel="t", seq=5)
        base = wire_checksum(m)
        assert wire_checksum(dataclasses.replace(m, seq=6)) != base
        assert wire_checksum(dataclasses.replace(m, size=65)) != base
        assert wire_checksum(dataclasses.replace(m, dst=0)) != base


class TestNullEngine:
    def test_null_faults_is_inert(self):
        assert not NULL_FAULTS.enabled
        assert NULL_FAULTS.compute_scale(3) == 1.0
        assert NULL_FAULTS.route_latency(0, 1, 2.5e-6) == 2.5e-6
        NULL_FAULTS.bind(None)
        NULL_FAULTS.bind_stop(lambda: True)
        NULL_FAULTS.schedule_pool_spikes(None)
        NULL_FAULTS.quiesce()

    def test_fabric_without_faults_has_no_transport(self):
        fabric = Fabric(Simulator(), 2)
        assert fabric.faults is NULL_FAULTS
        assert fabric._rel is None


class TestPlans:
    def test_named_plans_valid_and_enabled(self):
        for name, plan in FAULT_PLANS.items():
            assert plan.enabled, name
            assert fault_plan(name) is plan

    def test_unknown_plan_raises(self):
        with pytest.raises(ConfigError, match="unknown fault plan"):
            fault_plan("nope")


class TestJudgeDeterminism:
    def test_same_seed_same_verdicts(self):
        cfg = FaultConfig(drop_rate=0.3, dup_rate=0.2, corrupt_rate=0.2,
                          reorder_rate=0.3)
        msg = WireMessage(src=0, dst=1, size=64, msg_class=MessageClass.DATA)
        verdicts = []
        for _ in range(2):
            sim = Simulator()
            eng = FaultEngine(cfg, sim=sim, rng=RngStreams(42))
            verdicts.append([eng.judge(msg, 0.0) for _ in range(200)])
        assert verdicts[0] == verdicts[1]


class TestReliableDelivery:
    def _run(self, cfg, n_msgs=40):
        sim, fabric, engine, bus = make_faulty_fabric(cfg)
        seen = []
        fabric.register_handler(1, "t", lambda m: seen.append(m.payload))
        for i in range(n_msgs):
            fabric.send(WireMessage(src=0, dst=1, size=4096,
                                    msg_class=MessageClass.DATA,
                                    channel="t", payload=i))
        sim.run()
        return seen, fabric, bus

    def test_drops_recovered_exactly_once(self):
        seen, fabric, bus = self._run(FaultConfig(drop_rate=0.25))
        assert sorted(seen) == list(range(40))
        assert len(seen) == 40  # dedup: no double delivery
        assert fabric._rel.inflight_count == 0
        totals = bus.counter_totals()
        assert totals["fault.injected.drop"] > 0
        assert totals["rel.retransmits"] > 0
        # Injected counts include drops of ACK/NACK control probes; those are
        # recovered by the data-side timer but not per-kind credited, so
        # recovered <= injected.
        assert 0 < totals["fault.recovered.drop"] <= totals["fault.injected.drop"]

    def test_corruption_detected_and_nacked(self):
        seen, fabric, bus = self._run(FaultConfig(corrupt_rate=0.3))
        assert sorted(seen) == list(range(40))
        totals = bus.counter_totals()
        assert totals["fault.injected.corrupt"] > 0
        assert totals["rel.nacks"] > 0

    def test_duplicates_suppressed(self):
        seen, fabric, bus = self._run(FaultConfig(dup_rate=0.4))
        assert sorted(seen) == list(range(40))
        assert bus.counter_totals()["rel.dup_dropped"] > 0

    def test_reorder_still_delivers_all(self):
        seen, fabric, bus = self._run(FaultConfig(reorder_rate=0.5,
                                                  reorder_delay=50e-6))
        assert sorted(seen) == list(range(40))

    def test_retransmit_budget_exhaustion_raises(self):
        # Every transmission *and* every control message is corrupted, so no
        # attempt can ever be acknowledged.
        cfg = FaultConfig(corrupt_rate=1.0, max_retransmits=3, rto=5e-6)
        sim, fabric, engine, bus = make_faulty_fabric(cfg)
        fabric.register_handler(1, "t", lambda m: None)
        fabric.send(WireMessage(src=0, dst=1, size=64,
                                msg_class=MessageClass.DATA, channel="t"))
        with pytest.raises(FaultError, match="undeliverable"):
            sim.run()

    def test_loopback_bypasses_transport(self):
        cfg = FaultConfig(drop_rate=1.0)  # would kill any wire message
        sim, fabric, engine, bus = make_faulty_fabric(cfg)
        seen = []
        fabric.register_handler(0, "t", lambda m: seen.append(m.payload))
        fabric.send(WireMessage(src=0, dst=0, size=64,
                                msg_class=MessageClass.DATA, channel="t",
                                payload="self"))
        sim.run()
        assert seen == ["self"]


class TestLinkFlapAndBreaker:
    def test_breaker_trips_and_reroutes(self):
        # A permanently-down link: the first window opens immediately and
        # never closes, so every attempt is a flap loss until the breaker
        # trips and traffic takes the alternate path.
        cfg = FaultConfig(flap_rate=1e9, flap_duration=1e6,
                          breaker_threshold=3, rto=5e-6)
        sim, fabric, engine, bus = make_faulty_fabric(cfg)
        seen = []
        fabric.register_handler(1, "t", lambda m: seen.append(m.payload))
        base = fabric.cfg.latency(fabric.topology.hops(0, 1))
        fabric.send(WireMessage(src=0, dst=1, size=64,
                                msg_class=MessageClass.DATA, channel="t",
                                payload="x"))
        sim.run()
        assert seen == ["x"]
        totals = bus.counter_totals()
        assert totals["fault.injected.flap"] >= cfg.breaker_threshold
        # The link is down in both directions (ACKs flap too), so up to two
        # routes may trip their breakers.
        assert 1 <= totals["fault.reroutes"] <= 2
        # Re-routed path is longer than the direct one.
        assert fabric.base_latency(0, 1) > base
        assert fabric.base_latency(0, 1) == pytest.approx(
            fabric.cfg.latency(fabric.topology.alternate_hops(0, 1))
        )

    def test_degraded_latency_before_breaker(self):
        # The first flap window opens just after t=0, so the initial send at
        # t=0 sails through; the RTO retransmit at ~5 us lands inside the
        # window and is the first loss on the forward route.
        cfg = FaultConfig(flap_rate=1e9, flap_duration=1e6,
                          breaker_threshold=100, degraded_latency_factor=3.0,
                          rto=5e-6, rto_jitter=0.0)
        sim, fabric, engine, bus = make_faulty_fabric(cfg)
        base = fabric.cfg.latency(fabric.topology.hops(0, 1))
        fabric.register_handler(1, "t", lambda m: None)
        fabric.send(WireMessage(src=0, dst=1, size=64,
                                msg_class=MessageClass.DATA, channel="t"))
        sim.run(until=20e-6)
        assert fabric.base_latency(0, 1) == pytest.approx(3.0 * base)


class TestTopologyAlternatePath:
    def test_alternate_hops(self):
        from repro.network import FatTreeTopology

        topo = FatTreeTopology(32, nodes_per_leaf=16, levels=2)
        assert topo.alternate_hops(0, 0) == 0
        assert topo.alternate_hops(0, 1) == topo.hops(0, 1) + 2
        assert topo.alternate_hops(0, 20) == topo.hops(0, 20) + 2


class TestStragglerAndBackoff:
    def test_compute_scale(self):
        sim = Simulator()
        eng = FaultEngine(FaultConfig(straggler_nodes=(1,), straggler_factor=2.5),
                          sim=sim, rng=RngStreams(0))
        assert eng.compute_scale(1) == 2.5
        assert eng.compute_scale(0) == 1.0

    def test_rto_delay_backs_off_and_caps(self):
        sim = Simulator()
        cfg = FaultConfig(rto=10e-6, rto_backoff=2.0, rto_max=40e-6,
                          rto_jitter=0.0)
        eng = FaultEngine(cfg, sim=sim, rng=RngStreams(0))
        assert eng.rto_delay(1) == pytest.approx(10e-6)
        assert eng.rto_delay(2) == pytest.approx(20e-6)
        assert eng.rto_delay(5) == pytest.approx(40e-6)  # capped

    def test_backoff_policy_default_matches_legacy_constant(self):
        from repro.runtime.comm_engine import BackoffPolicy

        p = BackoffPolicy()
        assert p.delay(1) == p.delay(7) == pytest.approx(0.5e-6)

    def test_backoff_policy_exponential_with_cap(self):
        from repro.runtime.comm_engine import BackoffPolicy

        p = BackoffPolicy(base=1e-6, factor=2.0, max_delay=4e-6)
        assert [p.delay(a) for a in (1, 2, 3, 4)] == pytest.approx(
            [1e-6, 2e-6, 4e-6, 4e-6]
        )


class TestPoolSpikes:
    def test_spike_steals_and_restores(self):
        cfg = FaultConfig(pool_spike_rate=2e5, pool_spike_fraction=0.5,
                          pool_spike_duration=20e-6)
        sim = Simulator()
        bus = ObsBus()
        bus.bind_clock(sim)
        engine = FaultEngine(cfg, sim=sim, rng=RngStreams(3), obs=bus)
        fabric = Fabric(sim, 2, faults=engine)
        world = LciWorld(sim, fabric, LciCosts(packet_pool_size=8))
        engine.schedule_pool_spikes(world)
        sim.run(until=100e-6)
        assert bus.counter_totals()["fault.injected.pool_spike"] > 0
        engine.quiesce()
        sim.run()  # outstanding restores drain, chain dies
        for dev in world.devices:
            assert dev.rx_packets_free == dev.costs.packet_pool_size
            assert dev.tx_packets_free == dev.costs.packet_pool_size


class TestDisabledIsIdentical:
    def test_disabled_plan_run_matches_no_plan(self):
        from repro.bench.workloads import random_layered_dag
        from repro.config import scaled_platform
        from repro.runtime import ParsecContext

        results = []
        for faults in (None, FaultConfig(enabled=False)):
            g = random_layered_dag([3, 4, 3], num_nodes=2, seed=5)
            ctx = ParsecContext(
                scaled_platform(num_nodes=2, cores_per_node=2),
                backend="lci", faults=faults,
            )
            s = ctx.run(g, until=30.0)
            results.append((s.makespan, s.events_processed, s.wire_bytes,
                            tuple(s.flow_latencies)))
        assert results[0] == results[1]
