"""Round-trip tests for the canonical config codec (repro.codec)."""

import dataclasses

import pytest

from repro.bench.hicma_bench import HicmaConfig
from repro.bench.overlap import OverlapConfig
from repro.bench.pingpong import PingPongConfig
from repro.codec import canonical_json, stable_hash, to_plain
from repro.config import (
    ComputeConfig,
    FaultConfig,
    LciCosts,
    MpiCosts,
    NetworkConfig,
    PlatformConfig,
    RuntimeCosts,
    SweepConfig,
)
from repro.errors import ConfigError

EXEMPLARS = [
    NetworkConfig(),
    MpiCosts(),
    LciCosts(),
    RuntimeCosts(),
    ComputeConfig(),
    FaultConfig(),
    SweepConfig(),
    PlatformConfig(),
    PingPongConfig(fragment_size=256 * 1024),
    OverlapConfig(fragment_size=1024 * 1024),
    HicmaConfig(matrix_size=7200, tile_size=1200),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "instance", EXEMPLARS, ids=lambda i: type(i).__name__
    )
    def test_exemplar_roundtrips(self, instance):
        doc = instance.to_dict()
        assert isinstance(doc, dict)
        assert type(instance).from_dict(doc) == instance

    @pytest.mark.parametrize(
        "instance", EXEMPLARS, ids=lambda i: type(i).__name__
    )
    def test_canonical_text_survives_json(self, instance):
        """to_dict output is exactly what a JSON round-trip reproduces."""
        import json

        doc = instance.to_dict()
        assert json.loads(canonical_json(doc)) == doc

    def test_nested_platform_revives_sections(self):
        platform = PlatformConfig()
        revived = PlatformConfig.from_dict(platform.to_dict())
        assert isinstance(revived.network, NetworkConfig)
        assert isinstance(revived.mpi, MpiCosts)
        assert isinstance(revived.lci, LciCosts)
        assert revived == platform

    def test_modified_value_roundtrips(self):
        cfg = dataclasses.replace(PingPongConfig(fragment_size=256 * 1024),
                                  fragment_size=64 * 1024, iterations=9)
        assert PingPongConfig.from_dict(cfg.to_dict()) == cfg

    def test_partial_dict_fills_defaults(self):
        cfg = PingPongConfig.from_dict({"fragment_size": 4096})
        assert cfg.fragment_size == 4096
        assert cfg.iterations == PingPongConfig(fragment_size=4096).iterations

    def test_missing_required_key_rejected(self):
        with pytest.raises(ConfigError, match="missing required key"):
            PingPongConfig.from_dict({"iterations": 3})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown key"):
            NetworkConfig.from_dict({"bandwidht": 1.0})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigError, match="expects a dict"):
            NetworkConfig.from_dict([1, 2, 3])

    def test_bad_value_wrapped_as_config_error(self):
        with pytest.raises(ConfigError):
            FaultConfig.from_dict({"drop_rate": 0.1, "enabled": 1, "seed": {},
                                   "unknown-extra": 1})


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert stable_hash({"b": 1, "a": 2}) == stable_hash({"a": 2, "b": 1})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_to_plain_lowers_tuples_and_dataclasses(self):
        plain = to_plain({"t": (1, 2), "cfg": FaultConfig()})
        assert plain["t"] == [1, 2]
        assert isinstance(plain["cfg"], dict)

    def test_sweep_hash_delegates_to_codec(self):
        """The historical import location stays valid and agrees."""
        from repro.sweep.cache import stable_hash as sweep_hash

        payload = {"grid": "fig4", "points": [1, 2, 3]}
        assert sweep_hash(payload) == stable_hash(payload)
