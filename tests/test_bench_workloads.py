"""Tests for the benchmark workload generators and drivers."""

import pytest

from repro.bench.overlap import (
    OverlapConfig,
    no_overlap_flops,
    roofline_flops,
    run_overlap_benchmark,
)
from repro.bench.pingpong import (
    PingPongConfig,
    build_pingpong_graph,
    run_pingpong_benchmark,
)
from repro.bench.report import Comparison
from repro.config import scaled_platform
from repro.errors import BenchmarkError
from repro.units import KiB, MiB


class TestPingPongGraph:
    def test_task_count_no_sync(self):
        cfg = PingPongConfig(
            fragment_size=64 * KiB, total_bytes=512 * KiB, iterations=3, sync=False
        )
        g = build_pingpong_graph(cfg, 1e9)
        # window=8 fragments x 3 iterations, no sync/relay tasks.
        assert g.num_tasks == 8 * 3

    def test_task_count_with_sync(self):
        cfg = PingPongConfig(
            fragment_size=64 * KiB, total_bytes=512 * KiB, iterations=3, sync=True
        )
        g = build_pingpong_graph(cfg, 1e9)
        # 24 pingpongs + per boundary (2): 1 sync + 8 relays.
        assert g.num_tasks == 24 + 2 * (1 + 8)

    def test_round_robin_node_assignment(self):
        cfg = PingPongConfig(
            fragment_size=256 * KiB, total_bytes=512 * KiB, iterations=2, sync=False
        )
        g = build_pingpong_graph(cfg, 1e9)
        nodes = {t.kind: t.node for t in g.tasks.values()}
        assert nodes["pp0"] == 0 and nodes["pp1"] == 1

    def test_fragment_larger_than_total_rejected(self):
        cfg = PingPongConfig(fragment_size=2 * MiB, total_bytes=1 * MiB)
        with pytest.raises(BenchmarkError):
            _ = cfg.window

    def test_intensity_sets_duration(self):
        cfg = PingPongConfig(
            fragment_size=64 * KiB,
            total_bytes=128 * KiB,
            iterations=2,
            sync=False,
            intensity=10.0,
        )
        g = build_pingpong_graph(cfg, flops_per_core=1e9)
        d = next(iter(g.tasks.values())).duration
        # (64KiB/8 elements) * 10 FMA * 2 flops / 1e9 flops/s
        assert d == pytest.approx((64 * KiB / 8) * 10 * 2 / 1e9)

    def test_graph_validates(self):
        cfg = PingPongConfig(
            fragment_size=64 * KiB, total_bytes=256 * KiB, iterations=3, streams=2
        )
        g = build_pingpong_graph(cfg, 1e9)
        g.validate(num_nodes=2)


class TestPingPongDriver:
    def test_result_fields(self):
        r = run_pingpong_benchmark(
            "lci",
            PingPongConfig(fragment_size=256 * KiB, total_bytes=1 * MiB, iterations=4),
        )
        assert r.bandwidth > 0
        assert r.bandwidth_gbit == pytest.approx(r.bandwidth * 8 / 1e9)
        assert len(r.iteration_times) == 4
        assert r.tasks > 0
        assert "lci" in r.summary()

    def test_deterministic(self):
        cfg = PingPongConfig(fragment_size=256 * KiB, total_bytes=1 * MiB, iterations=4)
        a = run_pingpong_benchmark("mpi", cfg)
        b = run_pingpong_benchmark("mpi", cfg)
        assert a.bandwidth == b.bandwidth


class TestOverlapConfig:
    def test_iterations_scale_with_sqrt(self):
        big = OverlapConfig(fragment_size=4 * MiB, total_bytes=32 * MiB, base_iterations=4)
        small = OverlapConfig(fragment_size=1 * MiB, total_bytes=32 * MiB, base_iterations=4)
        assert small.iterations() == pytest.approx(2 * big.iterations(), abs=1)

    def test_intensity_gemm_like(self):
        cfg = OverlapConfig(fragment_size=8 * 100**2)
        assert cfg.intensity() == pytest.approx(100.0)

    def test_bounds_ordering(self):
        plat = scaled_platform(num_nodes=2)
        cfg = OverlapConfig(fragment_size=512 * KiB, total_bytes=8 * MiB)
        assert roofline_flops(cfg, plat) >= no_overlap_flops(cfg, plat)

    def test_driver_runs(self):
        plat = scaled_platform(num_nodes=2)
        cfg = OverlapConfig(fragment_size=1 * MiB, total_bytes=4 * MiB)
        r = run_overlap_benchmark("lci", cfg, plat)
        assert r.flops_per_s > 0
        assert r.total_flops > 0
        assert "overlap" in r.summary()


class TestComparison:
    class _R:
        def __init__(self, v):
            self.metric = v

    def test_winner_higher_is_better(self):
        c = Comparison("t", {"a": self._R(1.0), "b": self._R(2.0)}, "metric")
        assert c.winner() == "b"

    def test_winner_lower_is_better(self):
        c = Comparison(
            "t", {"a": self._R(1.0), "b": self._R(2.0)}, "metric", higher_is_better=False
        )
        assert c.winner() == "a"

    def test_ratio(self):
        c = Comparison("t", {"a": self._R(1.0), "b": self._R(4.0)}, "metric")
        assert c.ratio("b", "a") == 4.0

    def test_summary_mentions_winner(self):
        c = Comparison("title", {"a": self._R(3.0), "b": self._R(1.0)}, "metric")
        assert "winner: a" in c.summary()

    def test_dict_results_supported(self):
        c = Comparison("t", {"a": {"metric": 5.0}}, "metric")
        assert c.value("a") == 5.0

    def test_missing_metric_raises(self):
        c = Comparison("t", {"a": object()}, "nope")
        with pytest.raises(AttributeError):
            c.value("a")


class TestApiFacade:
    def test_quick_compare(self):
        import repro

        comp = repro.quick_compare(
            fragment_size=256 * KiB, total_bytes=1 * MiB, iterations=3
        )
        assert set(comp.results) == {"mpi", "lci"}
        assert comp.winner() == "lci"

    def test_run_pingpong_facade(self):
        import repro

        r = repro.run_pingpong(
            128 * KiB, repro.BackendKind.MPI, total_bytes=512 * KiB, iterations=3
        )
        assert r.backend == "mpi"

    def test_run_hicma_facade(self):
        import repro

        r = repro.run_hicma(7200, 1200, "lci", num_nodes=2)
        assert r.tasks > 0
