"""End-to-end tests of the PaRSEC-like runtime with both backends."""

import pytest

from repro.config import scaled_platform
from repro.errors import RuntimeBackendError
from repro.runtime import ParsecContext, TaskGraph
from repro.units import KiB, MiB

BACKENDS = ["mpi", "lci"]


def platform(nodes=2, cores=4):
    return scaled_platform(num_nodes=nodes, cores_per_node=cores)


def chain_graph(sizes=(64 * KiB, 64 * KiB)):
    """A → B(on node 1) → C(on node 0) dependency chain."""
    g = TaskGraph()
    a = g.add_task(node=0, duration=10e-6, kind="A")
    f1 = g.add_flow(a, sizes[0])
    b = g.add_task(node=1, duration=10e-6, inputs=[f1], kind="B")
    f2 = g.add_flow(b, sizes[1])
    g.add_task(node=0, duration=10e-6, inputs=[f2], kind="C")
    return g


def fan_out_graph(num_nodes, size=32 * KiB, consumers_per_node=2):
    """One producer, consumers on every node (multicast)."""
    g = TaskGraph()
    a = g.add_task(node=0, duration=5e-6, kind="root")
    f = g.add_flow(a, size)
    for node in range(num_nodes):
        for _ in range(consumers_per_node):
            g.add_task(node=node, duration=5e-6, inputs=[f])
    return g


@pytest.mark.parametrize("backend", BACKENDS)
class TestBasicExecution:
    def test_chain_completes(self, backend):
        ctx = ParsecContext(platform(), backend=backend)
        stats = ctx.run(chain_graph(), until=1.0)
        assert stats.tasks_executed == 3
        assert stats.makespan > 20e-6  # at least the three compute times

    def test_single_node_no_comm(self, backend):
        g = TaskGraph()
        a = g.add_task(node=0, duration=10e-6)
        f = g.add_flow(a, 1 * MiB)
        g.add_task(node=0, duration=10e-6, inputs=[f])
        ctx = ParsecContext(platform(nodes=1), backend=backend)
        stats = ctx.run(g, until=1.0)
        assert stats.tasks_executed == 2
        assert stats.wire_bytes == 0  # all dataflow stayed local

    def test_flow_latency_recorded_per_destination(self, backend):
        ctx = ParsecContext(platform(nodes=4), backend=backend)
        stats = ctx.run(fan_out_graph(4), until=1.0)
        # Flow reaches 3 remote nodes -> 3 end-to-end latency samples.
        assert len(stats.flow_latencies) == 3
        assert all(lat > 0 for lat in stats.flow_latencies)

    def test_multicast_satisfies_all_consumers(self, backend):
        ctx = ParsecContext(platform(nodes=4), backend=backend)
        stats = ctx.run(fan_out_graph(4, consumers_per_node=3), until=1.0)
        assert stats.tasks_executed == 1 + 4 * 3

    def test_parallel_independent_tasks_use_workers(self, backend):
        g = TaskGraph()
        for _ in range(8):
            g.add_task(node=0, duration=100e-6)
        ctx = ParsecContext(platform(nodes=1, cores=4), backend=backend)
        stats = ctx.run(g, until=1.0)
        # 8 tasks of 100 µs on 4 workers ≈ 2 waves, far less than serial.
        assert stats.makespan < 8 * 100e-6 * 0.5
        assert stats.makespan >= 2 * 100e-6

    def test_deterministic_reruns(self, backend):
        r1 = ParsecContext(platform(), backend=backend).run(chain_graph(), until=1.0)
        r2 = ParsecContext(platform(), backend=backend).run(chain_graph(), until=1.0)
        assert r1.makespan == r2.makespan
        assert r1.flow_latencies == r2.flow_latencies

    def test_timeout_raises(self, backend):
        ctx = ParsecContext(platform(), backend=backend)
        with pytest.raises(RuntimeBackendError, match="did not complete"):
            ctx.run(chain_graph(), until=1e-6)

    def test_large_flow_uses_data_path(self, backend):
        g = chain_graph(sizes=(4 * MiB, 4 * MiB))
        ctx = ParsecContext(platform(), backend=backend)
        stats = ctx.run(g, until=1.0)
        assert stats.tasks_executed == 3
        # Wire carried at least the two 4 MiB transfers.
        assert stats.wire_bytes >= 8 * MiB

    def test_priority_order_on_single_worker(self, backend):
        """Higher-priority ready tasks must run first."""
        g = TaskGraph()
        gate = g.add_task(node=0, duration=1e-6, kind="gate")
        f = g.add_flow(gate, 1 * KiB)
        order = []
        low = g.add_task(node=0, duration=1e-6, priority=1.0, inputs=[f], kind="low")
        high = g.add_task(node=0, duration=1e-6, priority=10.0, inputs=[f], kind="high")
        mid = g.add_task(node=0, duration=1e-6, priority=5.0, inputs=[f], kind="mid")
        ctx = ParsecContext(platform(nodes=1, cores=1), backend=backend)
        original = ctx.on_task_done

        def spy(task):
            order.append(task.kind)
            original(task)

        ctx.on_task_done = spy
        ctx.run(g, until=1.0)
        assert order == ["gate", "high", "mid", "low"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestDataflowBookkeeping:
    def test_cleanup_counters(self, backend):
        ctx = ParsecContext(platform(nodes=2), backend=backend)
        ctx.run(fan_out_graph(2, consumers_per_node=1), until=1.0)
        node0 = ctx.nodes[0]
        # The producer served one remote child and cleaned up.
        assert node0.cleanups_done >= 0
        assert not node0.serves_remaining or all(
            v > 0 for v in node0.serves_remaining.values()
        )

    def test_task_counts_per_node(self, backend):
        ctx = ParsecContext(platform(nodes=2), backend=backend)
        ctx.run(fan_out_graph(2, consumers_per_node=2), until=1.0)
        assert ctx.nodes[0].tasks_executed == 3  # root + 2 consumers
        assert ctx.nodes[1].tasks_executed == 2

    def test_activates_aggregated_when_funneled(self, backend):
        """Many flows completing together toward one destination should be
        aggregated by the comm thread into fewer ACTIVATE messages."""
        g = TaskGraph()
        flows = []
        for _ in range(6):
            t = g.add_task(node=0, duration=1e-6)
            flows.append(g.add_flow(t, 8 * KiB))
        for f in flows:
            g.add_task(node=1, duration=1e-6, inputs=[f])
        ctx = ParsecContext(platform(nodes=2, cores=8), backend=backend)
        stats = ctx.run(g, until=1.0)
        assert stats.tasks_executed == 12
        assert stats.activations_aggregated > 0
        assert stats.activates_sent < 6

    def test_multithreaded_activate_disables_aggregation(self, backend):
        g = TaskGraph()
        flows = []
        for _ in range(6):
            t = g.add_task(node=0, duration=1e-6)
            flows.append(g.add_flow(t, 8 * KiB))
        for f in flows:
            g.add_task(node=1, duration=1e-6, inputs=[f])
        ctx = ParsecContext(
            platform(nodes=2, cores=8), backend=backend, multithreaded_activate=True
        )
        stats = ctx.run(g, until=1.0)
        assert stats.activations_aggregated == 0
        assert stats.activates_sent == 6


class TestBackendComparison:
    def test_lci_lower_latency_than_mpi(self):
        """The paper's headline microbenchmark direction: LCI's end-to-end
        latency is below MPI's for the same workload."""
        lat = {}
        for backend in BACKENDS:
            ctx = ParsecContext(platform(nodes=2), backend=backend)
            stats = ctx.run(chain_graph(), until=1.0)
            lat[backend] = stats.mean_flow_latency
        assert lat["lci"] < lat["mpi"]

    def test_lci_uses_one_fewer_worker(self):
        p = platform(nodes=2, cores=8)
        mpi = ParsecContext(p, backend="mpi").run(chain_graph(), until=1.0)
        lci = ParsecContext(p, backend="lci").run(chain_graph(), until=1.0)
        assert mpi.workers_per_node == 7  # 8 - comm thread
        assert lci.workers_per_node == 6  # 8 - comm - progress thread

    def test_floating_threads_increase_latency(self):
        """§6.1.2: free-floating comm/progress threads showed up to 25 %
        higher mean end-to-end latency than dedicated cores."""
        import dataclasses

        base = platform(nodes=2)
        floating = dataclasses.replace(base, dedicated_comm_cores=False)
        for backend in BACKENDS:
            pinned = ParsecContext(base, backend=backend).run(chain_graph(), until=1.0)
            free = ParsecContext(floating, backend=backend).run(chain_graph(), until=1.0)
            assert free.mean_flow_latency > pinned.mean_flow_latency


class TestClockSyncMeasurement:
    def test_clock_sync_latencies_close_to_truth(self):
        truth = ParsecContext(platform(nodes=2), backend="lci").run(
            chain_graph(), until=1.0
        )
        measured = ParsecContext(
            platform(nodes=2), backend="lci", clock_sync=True
        ).run(chain_graph(), until=1.0)
        assert measured.mean_flow_latency == pytest.approx(
            truth.mean_flow_latency, rel=0.25
        )
        # But not bit-identical: the measurement path has sync error.
        assert measured.flow_latencies != truth.flow_latencies


class TestStressPressure:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_many_concurrent_transfers_no_deadlock(self, backend):
        """Exceed the MPI 30-transfer cap / LCI slot pools in both
        directions simultaneously; everything must still complete."""
        g = TaskGraph()
        n_each = 40
        for src, dst in ((0, 1), (1, 0)):
            for _ in range(n_each):
                t = g.add_task(node=src, duration=1e-6)
                f = g.add_flow(t, 256 * KiB)
                g.add_task(node=dst, duration=1e-6, inputs=[f])
        ctx = ParsecContext(platform(nodes=2, cores=8), backend=backend)
        stats = ctx.run(g, until=5.0)
        assert stats.tasks_executed == 4 * n_each

    def test_unknown_backend_rejected(self):
        with pytest.raises(RuntimeBackendError, match="unknown backend"):
            ParsecContext(platform(), backend="gasnet")
