"""Tests for the docs generator and assorted uncovered branches."""

import subprocess
import sys
import pathlib

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.network.message import MessageClass
from repro.network.nic import NicState
from repro.units import KiB, MiB, US

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestApiDocsGenerator:
    def test_generates_and_covers_all_packages(self, tmp_path):
        out = tmp_path / "api.md"
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "gen_api_docs.py"), str(out)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        text = out.read_text()
        for mod in (
            "repro.sim.core",
            "repro.network.fabric",
            "repro.mpi.world",
            "repro.lci.device",
            "repro.runtime.context",
            "repro.hicma.cholesky",
            "repro.bench.pingpong",
            "repro.analysis.latency",
            "repro.faults.engine",
            "repro.faults.transport",
            "repro.sweep.spec",
            "repro.sweep.cache",
            "repro.sweep.engine",
            "repro.api",
            "repro.codec",
            "repro.explore.explorer",
            "repro.explore.invariants",
            "repro.explore.policy",
            "repro.explore.scenarios",
            "repro.explore.schedule",
        ):
            assert f"### `{mod}`" in text, f"missing {mod}"

    def test_checked_in_copy_exists(self):
        assert (ROOT / "docs" / "api.md").exists()

    def test_checked_in_copy_covers_new_packages(self):
        text = (ROOT / "docs" / "api.md").read_text()
        for mod in ("repro.faults", "repro.sweep", "repro.explore", "repro.api"):
            assert f"### `{mod}`" in text, f"docs/api.md stale: missing {mod}"

    @pytest.mark.parametrize("package", ["sweep", "explore"])
    def test_strict_docstrings_enforced(self, tmp_path, package):
        """An undocumented public symbol in a strict package must fail."""
        import shutil

        src = tmp_path / "src" / "repro"
        shutil.copytree(ROOT / "src" / "repro", src)
        (src / package / "bare.py").write_text("def naked(x):\n    return x\n")
        (tmp_path / "tools").mkdir()
        tool = tmp_path / "tools" / "gen_api_docs.py"
        shutil.copy(ROOT / "tools" / "gen_api_docs.py", tool)
        proc = subprocess.run(
            [sys.executable, str(tool), str(tmp_path / "api.md")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert f"repro.{package}.bare.naked" in proc.stderr


class TestRepoCheckers:
    """The standalone tools/ checkers must pass on the checked-in tree."""

    def test_no_adhoc_tracing(self):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "check_no_adhoc_tracing.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_docs_in_sync(self):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "check_docs.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_fault_determinism(self):
        # One backend keeps this under a few seconds; the checker still runs
        # the replay, the disabled-plan==no-plan invariant, and the bundled
        # explore-schedule replay.
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "check_fault_determinism.py"),
             "--backend", "lci"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bit-identical" in proc.stdout
        assert "ok schedule replay" in proc.stdout

    def test_bench_ab_smoke(self):
        # Legacy-vs-batched kernel A/B: the smoke sizes still assert full
        # trace bit-identity across both backends.
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "bench_ab.py"), "--smoke"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bench_ab OK: cores bit-identical" in proc.stdout

    def test_paper_scale_budget(self, tmp_path):
        # Build-only mode (~5 s): asserts the NT=150 graph build/memory
        # budgets; --out keeps the checked-in BENCH_scale.json untouched.
        proc = subprocess.run(
            [sys.executable,
             str(ROOT / "tools" / "check_paper_scale_budget.py"),
             "--out", str(tmp_path / "BENCH_scale.json")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "paper-scale budgets OK" in proc.stdout

    def test_explorer_finds_planted_bugs(self):
        # The mutation smoke test: the explorer must catch both known-bad
        # protocol variants and replay each from its shrunk schedule.
        proc = subprocess.run(
            [sys.executable,
             str(ROOT / "tools" / "check_explorer_finds_bugs.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "caught both" in proc.stdout


class TestNicEjectControl:
    def test_control_eject_bypasses_data_backlog(self):
        nic = NicState(NetworkConfig())
        # Large data arrival occupies the rx data channel.
        big_arrival = 1e-3
        nic.eject(0.0, big_arrival, 8 * MiB, MessageClass.DATA)
        # A control message arriving now must not wait for it.
        deliver = nic.eject(0.0, 2 * US, 128, MessageClass.CONTROL)
        assert deliver < 10 * US

    def test_control_eject_serializes_with_itself(self):
        nic = NicState(NetworkConfig())
        ser = nic.serialization(4 * KiB)
        d1 = nic.eject(0.0, ser, 4 * KiB, MessageClass.CONTROL)
        d2 = nic.eject(0.0, ser, 4 * KiB, MessageClass.CONTROL)
        assert d2 >= d1 + ser * 0.99


class TestClockSyncSingleNode:
    def test_single_node_clock_sync_context(self):
        """clock_sync=True must not break single-node runs (no peers)."""
        from repro.config import scaled_platform
        from repro.runtime import ParsecContext, TaskGraph

        g = TaskGraph()
        g.add_task(node=0, duration=1e-6)
        ctx = ParsecContext(
            scaled_platform(num_nodes=1, cores_per_node=2), clock_sync=True
        )
        stats = ctx.run(g, until=1.0)
        assert stats.tasks_executed == 1


class TestFinalRanksBounded:
    def test_factor_ranks_respect_maxrank(self):
        from repro.hicma import SqExpProblem, TLRMatrix, tlr_cholesky

        # A smooth kernel keeps true ranks below the cap, so capping does
        # not destroy positive definiteness.
        prob = SqExpProblem(512, beta=0.25, seed=33)
        cap = 30
        tlr = TLRMatrix.from_problem(prob, tile_size=64, tol=1e-9, maxrank=cap)
        stats = tlr_cholesky(tlr, tol=1e-9, maxrank=cap)
        assert stats.final_ranks
        assert max(stats.final_ranks) <= cap


class TestApiFacadeOverlap:
    def test_run_overlap_facade(self):
        import repro

        r = repro.run_overlap(1 * MiB, repro.BackendKind.LCI, total_bytes=4 * MiB)
        assert r.flops_per_s > 0

    def test_backend_kind_str(self):
        import repro

        assert str(repro.BackendKind.MPI) == "mpi"
        assert repro.BackendKind("lci") is repro.BackendKind.LCI
