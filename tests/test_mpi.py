"""Tests for the simulated MPI library: matching, protocols, requests."""

import pytest

from repro.config import MpiCosts
from repro.errors import MpiError
from repro.mpi import ANY_SOURCE, MpiWorld
from repro.mpi.matching import Envelope, MatchEngine
from repro.mpi.requests import RecvRequest
from repro.network import Fabric
from repro.sim.core import Simulator
from repro.units import KiB, MiB


def make_world(n=2, costs=None):
    sim = Simulator()
    fabric = Fabric(sim, n)
    world = MpiWorld(sim, fabric, costs)
    return sim, world


class TestMatchEngine:
    def _recv(self, src=None, tag=None, size=1 << 20):
        return RecvRequest(Simulator(), src, tag, size)

    def test_post_then_arrive(self):
        m = MatchEngine()
        r = self._recv(src=0, tag=5)
        assert m.post_recv(r) is None
        got = m.arrive(Envelope(src=0, tag=5, size=10, kind="eager"))
        assert got is r

    def test_arrive_then_post(self):
        m = MatchEngine()
        env = Envelope(src=1, tag=2, size=10, kind="eager")
        assert m.arrive(env) is None
        r = self._recv(src=1, tag=2)
        assert m.post_recv(r) is env

    def test_any_source_matches(self):
        m = MatchEngine()
        r = self._recv(src=None, tag=9)
        m.post_recv(r)
        assert m.arrive(Envelope(src=7, tag=9, size=1, kind="eager")) is r

    def test_tag_mismatch_queues(self):
        m = MatchEngine()
        m.post_recv(self._recv(src=0, tag=1))
        assert m.arrive(Envelope(src=0, tag=2, size=1, kind="eager")) is None
        assert m.unexpected_count == 1
        assert m.posted_count == 1

    def test_fifo_matching_order(self):
        m = MatchEngine()
        e1 = Envelope(src=0, tag=1, size=1, kind="eager", payload="first")
        e2 = Envelope(src=0, tag=1, size=1, kind="eager", payload="second")
        m.arrive(e1)
        m.arrive(e2)
        assert m.post_recv(self._recv(src=0, tag=1)) is e1
        assert m.post_recv(self._recv(src=0, tag=1)) is e2

    def test_posted_fifo_order(self):
        m = MatchEngine()
        r1 = self._recv(src=None, tag=None)
        r2 = self._recv(src=None, tag=None)
        m.post_recv(r1)
        m.post_recv(r2)
        assert m.arrive(Envelope(src=0, tag=0, size=1, kind="eager")) is r1

    def test_cancel(self):
        m = MatchEngine()
        r = self._recv()
        m.post_recv(r)
        assert m.cancel(r) is True
        assert m.cancel(r) is False

    def test_walked_counter(self):
        m = MatchEngine()
        m.post_recv(self._recv(src=0, tag=1))
        m.post_recv(self._recv(src=0, tag=2))
        m.arrive(Envelope(src=0, tag=2, size=1, kind="eager"))
        assert m.take_walked() == 2
        assert m.take_walked() == 0


class TestEagerPath:
    def test_send_recv_roundtrip(self):
        sim, world = make_world()
        r0, r1 = world.ranks

        def sender():
            yield from r0.send(dst=1, tag=42, size=1 * KiB, payload="hello")

        def receiver():
            rreq = yield from r1.recv(src=0, tag=42, max_size=4 * KiB)
            return (rreq.payload, rreq.source, rreq.recv_tag, rreq.recv_size)

        sim.process(sender())
        out = sim.run_process(receiver())
        assert out == ("hello", 0, 42, 1 * KiB)

    def test_eager_send_completes_locally_fast(self):
        sim, world = make_world()
        r0 = world.ranks[0]
        # Even with no receiver posted, an eager send completes.
        world.ranks[1]  # receiver side exists but never calls MPI

        def sender():
            sreq = yield from r0.isend(dst=1, tag=1, size=512, payload=b"x")
            return (sreq.done, sreq.protocol)

        assert sim.run_process(sender()) == (True, "eager")

    def test_unexpected_then_post(self):
        sim, world = make_world()
        r0, r1 = world.ranks

        def sender():
            yield from r0.send(dst=1, tag=3, size=256, payload="early")

        def receiver():
            yield sim.timeout(1e-3)  # let the message become unexpected
            rreq = yield from r1.recv(src=0, tag=3, max_size=1 * KiB)
            return rreq.payload

        sim.process(sender())
        assert sim.run_process(receiver()) == "early"

    def test_any_source_recv(self):
        sim, world = make_world(n=3)

        def sender(rank, payload):
            yield from world.ranks[rank].send(dst=0, tag=9, size=128, payload=payload)

        def receiver():
            a = yield from world.ranks[0].recv(ANY_SOURCE, 9, 1 * KiB)
            b = yield from world.ranks[0].recv(ANY_SOURCE, 9, 1 * KiB)
            return {a.payload, b.payload}

        sim.process(sender(1, "from1"))
        sim.process(sender(2, "from2"))
        assert sim.run_process(receiver()) == {"from1", "from2"}

    def test_truncation_raises(self):
        sim, world = make_world()
        r0, r1 = world.ranks

        def sender():
            yield from r0.send(dst=1, tag=1, size=2 * KiB, payload="big")

        def receiver():
            yield from r1.recv(src=0, tag=1, max_size=1 * KiB)

        sim.process(sender())
        with pytest.raises(MpiError, match="truncation"):
            sim.run_process(receiver())


class TestRendezvousPath:
    def test_large_send_uses_rendezvous(self):
        sim, world = make_world()
        r0, r1 = world.ranks
        size = 1 * MiB

        def sender():
            sreq = yield from r0.isend(dst=1, tag=5, size=size, payload="bulk")
            assert sreq.protocol == "rndv"
            assert not sreq.done  # no CTS yet
            yield from r0.wait(sreq)
            return sim.now

        def receiver():
            rreq = yield from r1.recv(src=0, tag=5, max_size=size)
            return (sim.now, rreq.payload)

        ps = sim.process(sender())
        out = sim.run_process(receiver())
        sim.run()
        assert out[1] == "bulk"
        assert ps.ok
        # Transfer time must be at least size/bandwidth (~84 µs at 100 Gb/s).
        assert out[0] > size / world.fabric.cfg.bandwidth

    def test_rendezvous_data_not_sent_before_recv_posted(self):
        sim, world = make_world()
        r0, r1 = world.ranks
        size = 1 * MiB
        post_delay = 5e-3

        def sender():
            sreq = yield from r0.isend(dst=1, tag=5, size=size, payload="bulk")
            yield from r0.wait(sreq)
            return sim.now

        def receiver():
            yield sim.timeout(post_delay)
            rreq = yield from r1.recv(src=0, tag=5, max_size=size)
            return rreq.payload

        ps = sim.process(sender())
        sim.run_process(receiver())
        sim.run()
        assert ps.value > post_delay  # sender completed only after CTS+data

    def test_threshold_boundary(self):
        costs = MpiCosts()
        sim, world = make_world(costs=costs)
        r0 = world.ranks[0]

        def sender():
            at = yield from r0.isend(dst=1, tag=1, size=costs.rendezvous_threshold)
            above = yield from r0.isend(dst=1, tag=2, size=costs.rendezvous_threshold + 1)
            return (at.protocol, above.protocol)

        assert sim.run_process(sender()) == ("eager", "rndv")


class TestPersistentRequests:
    def test_recv_init_start_cycle(self):
        sim, world = make_world()
        r0, r1 = world.ranks
        preq = r1.recv_init(ANY_SOURCE, 7, 4 * KiB)
        assert not preq.active

        def receiver():
            got = []
            yield from r1.start(preq)
            for i in range(3):
                while not preq.done:
                    yield from r1.progress()
                    if not preq.done:
                        yield r1.activity_event()
                got.append(preq.payload)
                if i < 2:
                    yield from r1.start(preq)
            return got

        def sender():
            for i in range(3):
                yield from r0.send(dst=1, tag=7, size=64, payload=f"m{i}")
                yield sim.timeout(1e-4)

        sim.process(sender())
        assert sim.run_process(receiver()) == ["m0", "m1", "m2"]

    def test_start_while_active_raises(self):
        sim, world = make_world()
        r1 = world.ranks[1]
        preq = r1.recv_init(ANY_SOURCE, 7, 1 * KiB)

        def proc():
            yield from r1.start(preq)
            yield from r1.start(preq)

        with pytest.raises(MpiError, match="already-active"):
            sim.run_process(proc())

    def test_inactive_persistent_ignored_by_testsome(self):
        sim, world = make_world()
        r0, r1 = world.ranks
        preq = r1.recv_init(ANY_SOURCE, 7, 1 * KiB)

        def sender():
            yield from r0.send(dst=1, tag=7, size=32, payload="x")

        def receiver():
            # Not started: the message stays unexpected, testsome sees nothing.
            yield sim.timeout(1e-3)
            done = yield from r1.testsome([preq])
            assert done == []
            yield from r1.start(preq)
            done = yield from r1.testsome([preq])
            return done

        sim.process(sender())
        assert sim.run_process(receiver()) == [0]


class TestTestsome:
    def test_reports_and_deactivates(self):
        sim, world = make_world()
        r0, r1 = world.ranks

        def sender():
            yield from r0.send(dst=1, tag=1, size=128, payload="a")

        def receiver():
            rreq = yield from r1.irecv(src=0, tag=1, max_size=1 * KiB)
            reqs = [rreq]
            done = []
            while not done:
                done = yield from r1.testsome(reqs)
                if not done:
                    yield r1.activity_event()
            again = yield from r1.testsome(reqs)
            return (done, again)

        sim.process(sender())
        done, again = sim.run_process(receiver())
        assert done == [0]
        assert again == []  # deactivated after first report

    def test_handles_none_entries(self):
        sim, world = make_world()
        r1 = world.ranks[1]

        def proc():
            return (yield from r1.testsome([None, None]))

        assert sim.run_process(proc()) == []


class TestConcurrency:
    def test_lock_serializes_threads(self):
        """Two simulated threads calling concurrently must serialize, so the
        elapsed time is at least the sum of the individual call costs."""
        costs = MpiCosts()
        sim, world = make_world(costs=costs)
        r0 = world.ranks[0]
        n_each = 20

        def thread():
            for i in range(n_each):
                yield from r0.isend(dst=1, tag=1, size=64)

        t1 = sim.process(thread())
        t2 = sim.process(thread())
        sim.run()
        assert t1.ok and t2.ok
        min_serial = 2 * n_each * costs.eager_send
        assert sim.now >= min_serial * 0.99

    def test_invalid_rank_rejected(self):
        sim, world = make_world()

        def proc():
            yield from world.ranks[0].isend(dst=5, tag=0, size=1)

        with pytest.raises(MpiError, match="invalid destination"):
            sim.run_process(proc())

    def test_negative_size_rejected(self):
        sim, world = make_world()

        def proc():
            yield from world.ranks[0].isend(dst=1, tag=0, size=-1)

        with pytest.raises(MpiError, match="negative"):
            sim.run_process(proc())


class TestOrdering:
    def test_non_overtaking_same_tag(self):
        """Messages with identical (src, tag) must match posted receives in
        send order."""
        sim, world = make_world()
        r0, r1 = world.ranks

        def sender():
            for i in range(5):
                yield from r0.send(dst=1, tag=1, size=64, payload=i)

        def receiver():
            out = []
            for _ in range(5):
                rreq = yield from r1.recv(src=0, tag=1, max_size=1 * KiB)
                out.append(rreq.payload)
            return out

        sim.process(sender())
        assert sim.run_process(receiver()) == [0, 1, 2, 3, 4]

    def test_allow_overtaking_flag_recorded(self):
        sim = Simulator()
        fabric = Fabric(sim, 2)
        world = MpiWorld(sim, fabric, allow_overtaking=True)
        assert world.allow_overtaking is True
