"""Tests for the epoch-batched kernel semantics (repro.sim.core).

Covers the contracts the epoch rewrite must preserve: same-timestamp
entries drain as one epoch in seq order, callbacks scheduled during an
epoch fire inside it, a :class:`SchedulePolicy` sees the complete
runnable set, Interrupt/AnyOf/AllOf behave at epoch boundaries, and the
``yield PARK`` / :meth:`Process.wake` typed path.
"""

import os

import pytest

from repro.errors import SimulationError
from repro.sim.core import PARK, Simulator
from repro.sim.core import K_CALL, K_RESUME, SchedulePolicy

#: The ready-entry *shape* differs between the cores (the legacy kernel
#: passes ``(seq, event, fn, args)``); shape-specific assertions only run
#: on the batched kernel.  Everything else here must pass on both.
_LEGACY = os.environ.get("REPRO_SIM_CORE") == "legacy"


# ----------------------------------------------------------------------
# epoch draining
# ----------------------------------------------------------------------

class TestEpochDraining:
    def test_same_timestamp_entries_fire_as_one_epoch(self):
        """All entries at one time drain before time advances."""
        sim = Simulator()
        trail = []

        def waiter(tag, delay):
            yield delay
            trail.append((tag, sim.now))

        for tag in "abc":
            sim.process(waiter(tag, 1.0))
        sim.process(waiter("d", 2.0))
        sim.run()
        assert trail == [("a", 1.0), ("b", 1.0), ("c", 1.0), ("d", 2.0)]

    def test_callback_scheduled_during_epoch_fires_in_same_epoch(self):
        """call_soon from inside an epoch appends to the running epoch."""
        sim = Simulator()
        trail = []

        def first():
            trail.append(("first", sim.now))
            sim.call_soon(lambda: trail.append(("nested", sim.now)))

        sim.call_later(1.0, first)
        sim.call_later(2.0, lambda: trail.append(("later", sim.now)))
        sim.run()
        assert trail == [("first", 1.0), ("nested", 1.0), ("later", 2.0)]

    def test_zero_delay_from_heap_epoch_joins_batch(self):
        """A zero-delay sleep scheduled while a heap epoch drains runs at
        the same time, after the epoch's pre-existing entries."""
        sim = Simulator()
        trail = []

        def sleeper():
            yield 1.0
            trail.append("sleep-wake")
            yield 0.0
            trail.append("zero-wake")

        def other():
            yield 1.0
            trail.append("other")

        sim.process(sleeper())
        sim.process(other())
        sim.run()
        assert trail == ["sleep-wake", "other", "zero-wake"]
        assert sim.now == 1.0

    def test_exception_mid_epoch_does_not_refire_entries(self):
        """Entries fired before a raising callback stay consumed."""
        sim = Simulator()
        fired = []

        def boom():
            raise RuntimeError("mid-epoch")

        sim.call_soon(lambda: fired.append("a"))
        sim.call_soon(boom)
        sim.call_soon(lambda: fired.append("b"))
        with pytest.raises(RuntimeError):
            sim.run()
        assert fired == ["a"]
        sim.run()
        assert fired == ["a", "b"]

    def test_float_underflow_delay_stays_in_current_epoch(self):
        """A positive delay that underflows (now + d == now) must not create
        a current-time heap entry mid-epoch."""
        sim = Simulator()
        trail = []

        def proc():
            yield 1e9  # big now: 1e9 + 1e-9 == 1e9 in float64
            yield 1e-9
            trail.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trail == [1e9]


# ----------------------------------------------------------------------
# schedule-policy contract
# ----------------------------------------------------------------------

class _Recording(SchedulePolicy):
    def __init__(self):
        self.sets = []

    def choose(self, sim, ready):
        self.sets.append(
            (sim.now, [(seq, kind) for seq, kind, _a, _b, _c in ready])
        )
        return 0


class _LIFO(SchedulePolicy):
    def choose(self, sim, ready):
        return len(ready) - 1


class TestPolicyContract:
    @pytest.mark.skipif(_LEGACY, reason="entry shape is batched-kernel specific")
    def test_policy_sees_full_runnable_set(self):
        """choose() receives every entry due now, as 5-tuples, FIFO order."""
        policy = _Recording()
        sim = Simulator(policy=policy)

        def waiter(tag):
            yield 1.0

        for tag in "abcd":
            sim.process(waiter(tag))
        sim.run()
        # At t=1.0 all four typed sleeps are due together at least once.
        at_one = max((s for t, s in policy.sets if t == 1.0), key=len)
        assert len(at_one) == 4
        assert all(kind == K_RESUME for _seq, kind in at_one)
        seqs = [seq for seq, _kind in at_one]
        assert seqs == sorted(seqs)
        # The t=0 epoch is the four process starts (plain callbacks).
        at_zero = max((s for t, s in policy.sets if t == 0.0), key=len)
        assert len(at_zero) == 4
        assert all(kind == K_CALL for _seq, kind in at_zero)

    def test_fifo_policy_matches_default_order(self):
        def run(policy):
            sim = Simulator(policy=policy)
            trail = []

            def waiter(tag):
                yield 1.0
                trail.append(tag)
                yield 1.5
                trail.append(tag.upper())

            for tag in "abc":
                sim.process(waiter(tag))
            sim.run()
            return trail

        assert run(None) == run(SchedulePolicy())

    def test_lifo_policy_is_a_legal_reordering(self):
        """A policy can only permute within a timestamp, never across."""
        sim = Simulator(policy=_LIFO())
        trail = []

        def waiter(tag, delay):
            yield delay
            trail.append((tag, sim.now))

        for tag in "ab":
            sim.process(waiter(tag, 1.0))
        sim.process(waiter("c", 2.0))
        sim.run()
        times = [t for _tag, t in trail]
        assert times == sorted(times)
        assert {tag for tag, t in trail if t == 1.0} == {"a", "b"}


# ----------------------------------------------------------------------
# waitables at epoch boundaries
# ----------------------------------------------------------------------

class TestEpochBoundaries:
    def test_interrupt_lands_in_current_epoch(self):
        sim = Simulator()
        trail = []

        def sleeper():
            try:
                yield 10.0
            except Exception as exc:
                trail.append((type(exc).__name__, sim.now))

        proc = sim.process(sleeper())
        sim.call_later(3.0, proc.interrupt, "enough")
        sim.run()
        assert trail == [("Interrupt", 3.0)]

    def test_interrupt_cancels_pending_typed_sleep(self):
        """The stale resume from the aborted sleep must not re-enter."""
        sim = Simulator()
        trail = []

        def sleeper():
            try:
                yield 1.0
            except Exception:
                trail.append(("interrupted", sim.now))
                yield 5.0
                trail.append(("slept", sim.now))

        proc = sim.process(sleeper())
        sim.call_later(0.5, proc.interrupt)  # before the sleep matures
        sim.run()
        # The t=1.0 entry from the aborted sleep fires as a stale no-op.
        assert trail == [("interrupted", 0.5), ("slept", 5.5)]

    def test_any_of_with_simultaneous_children(self):
        """AnyOf resolves to the first-triggered child of the epoch."""
        sim = Simulator()

        def proc():
            idx, value = yield sim.any_of(
                [sim.timeout(1.0, "t1"), sim.timeout(1.0, "t2")]
            )
            return idx, value

        assert sim.run_process(proc()) == (0, "t1")

    def test_all_of_across_epochs(self):
        sim = Simulator()

        def proc():
            values = yield sim.all_of(
                [sim.timeout(2.0, "late"), sim.timeout(1.0, "early")]
            )
            return (sim.now, values)

        assert sim.run_process(proc()) == (2.0, ["late", "early"])


# ----------------------------------------------------------------------
# PARK / wake
# ----------------------------------------------------------------------

class TestParkWake:
    def test_wake_resumes_with_value(self):
        sim = Simulator()

        def parker():
            got = yield PARK
            return (got, sim.now)

        proc = sim.process(parker())
        sim.call_later(2.0, proc.wake, "payload")
        sim.run()
        assert proc.triggered and proc.ok
        assert proc.value == ("payload", 2.0)

    def test_wake_is_idempotent_until_process_runs(self):
        sim = Simulator()
        wakes = []

        def parker():
            while True:
                got = yield PARK
                wakes.append((got, sim.now))
                if got == "stop":
                    return

        proc = sim.process(parker())

        def double_wake():
            proc.wake("first")
            proc.wake("second")  # no-op: already woken, not yet re-parked

        sim.call_later(1.0, double_wake)
        sim.call_later(2.0, proc.wake, "stop")
        sim.run()
        assert wakes == [("first", 1.0), ("stop", 2.0)]

    def test_wake_on_unparked_process_is_noop(self):
        sim = Simulator()
        trail = []

        def sleeper():
            yield 5.0
            trail.append(sim.now)

        proc = sim.process(sleeper())
        sim.call_later(1.0, proc.wake)  # not parked: spurious, ignored
        sim.run()
        assert trail == [5.0]

    def test_interrupt_while_parked(self):
        sim = Simulator()

        def parker():
            try:
                yield PARK
            except Exception as exc:
                return ("interrupted", exc.cause, sim.now)

        proc = sim.process(parker())
        sim.call_later(4.0, proc.interrupt, "shutdown")
        sim.run()
        assert proc.value == ("interrupted", "shutdown", 4.0)

    def test_stale_wake_after_interrupt_and_repark(self):
        """A wake scheduled before an interrupt throws must not fire the
        re-parked process: its captured wake token is stale."""
        sim = Simulator()
        trail = []

        def parker():
            try:
                yield PARK
            except Exception:
                trail.append(("interrupted", sim.now))
            got = yield PARK
            trail.append((got, sim.now))

        proc = sim.process(parker())

        def race():
            proc.interrupt()     # throw is queued first...
            proc.wake("stale")   # ...so this resume goes stale when it runs

        sim.call_later(1.0, race)
        sim.call_later(3.0, proc.wake, "fresh")
        sim.run()
        assert trail == [("interrupted", 1.0), ("fresh", 3.0)]

    def test_wake_from_event_callback(self):
        """The comm-thread idiom: a queue push wakes the parked poller."""
        sim = Simulator()
        served = []
        queue = []

        def poller():
            while True:
                while queue:
                    item = queue.pop(0)
                    if item is None:
                        return
                    served.append((item, sim.now))
                    yield 0.5  # per-item processing cost
                yield PARK

        proc = sim.process(poller())

        def push(item):
            queue.append(item)
            proc.wake()

        sim.call_later(1.0, push, "x")
        sim.call_later(1.0, push, "y")  # second wake same epoch: no-op
        sim.call_later(5.0, push, None)
        sim.run()
        assert served == [("x", 1.0), ("y", 1.5)]

    def test_parked_forever_process_stays_pending(self):
        sim = Simulator()

        def parker():
            yield PARK

        proc = sim.process(parker())
        sim.run(until=10.0)
        assert proc.is_alive
        assert not proc.triggered


# ----------------------------------------------------------------------
# typed sleeps
# ----------------------------------------------------------------------

class TestTypedSleep:
    def test_numeric_sleep_matches_timeout_schedule(self):
        """yield d and yield sim.timeout(d) interleave identically."""

        def run(use_timeout):
            sim = Simulator()
            trail = []

            def proc(tag, delay):
                for _ in range(3):
                    if use_timeout:
                        yield sim.timeout(delay)
                    else:
                        yield delay
                    trail.append((tag, sim.now))

            sim.process(proc("a", 1.0))
            sim.process(proc("b", 1.5))
            sim.process(proc("c", 1.0))
            sim.run()
            return trail

        assert run(False) == run(True)

    def test_bool_is_not_a_sleep(self):
        sim = Simulator()

        def proc():
            yield True

        with pytest.raises(SimulationError, match="non-event"):
            sim.run_process(proc())

    def test_int_sleep(self):
        sim = Simulator()

        def proc():
            got = yield 2
            return (got, sim.now)

        assert sim.run_process(proc()) == (2, 2.0)
