"""Tests for priority-driven GET DATA ordering (§4.1/§4.3).

"Upon receipt of the ACTIVATE message, the process will evaluate the
relative priority of successor tasks ... and use these priorities to
determine whether to request data immediately or defer it" — the comm
thread drains the deferred GET DATA queue highest-priority-first, so data
for critical-path tasks arrives sooner.
"""

import pytest

from repro.config import scaled_platform
from repro.runtime import ParsecContext, TaskGraph
from repro.units import KiB, MiB


def priority_graph(n_flows=6, size=2 * MiB):
    """One producer task with several output flows; consumers on node 1
    carry increasing priorities (flow i -> priority i)."""
    g = TaskGraph()
    producer = g.add_task(node=0, duration=1e-6, kind="producer")
    consumers = []
    for i in range(n_flows):
        f = g.add_flow(producer, size)
        c = g.add_task(
            node=1, duration=1e-6, priority=float(i), inputs=[f], kind=f"c{i}"
        )
        consumers.append(c)
    return g, consumers


@pytest.mark.parametrize("backend", ["mpi", "lci"])
class TestGetDataPriority:
    def test_high_priority_consumers_finish_first(self, backend):
        g, consumers = priority_graph()
        ctx = ParsecContext(
            scaled_platform(num_nodes=2, cores_per_node=8), backend=backend
        )
        finish_order = []
        inner = ctx.on_task_done

        def spy(task):
            if task.kind.startswith("c"):
                finish_order.append(task.priority)
            inner(task)

        ctx.on_task_done = spy
        ctx.run(g, until=10.0)
        # The deferral queue only orders requests that are pending together:
        # a flow whose ACTIVATE arrived in an earlier aggregation batch can
        # legitimately slip ahead.  Require a strongly priority-correlated
        # order rather than an exact sort: the top-priority consumer is
        # first, and the mean finishing position of the top half strictly
        # precedes the bottom half's.
        n = len(finish_order)
        assert finish_order[0] == max(finish_order)
        pos = {prio: i for i, prio in enumerate(finish_order)}
        top = sorted(pos, reverse=True)[: n // 2]
        bottom = sorted(pos)[: n // 2]
        mean_top = sum(pos[p] for p in top) / len(top)
        mean_bottom = sum(pos[p] for p in bottom) / len(bottom)
        assert mean_top < mean_bottom

    def test_priority_shifts_latency_distribution(self, backend):
        """The lowest-priority flow must wait behind all the others."""
        g, _ = priority_graph()
        ctx = ParsecContext(
            scaled_platform(num_nodes=2, cores_per_node=8),
            backend=backend,
            collect_traces=True,
        )
        stats = ctx.run(g, until=10.0)
        lats = sorted(stats.flow_latencies)
        # The slowest flow waited for ~all transfers; the fastest for one.
        assert lats[-1] > 3 * lats[0]
