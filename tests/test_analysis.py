"""Tests for the analysis utilities: methodology, summaries, rendering."""

import pytest

from repro.analysis import (
    MethodologyConfig,
    ascii_chart,
    ascii_table,
    methodology_mean,
    summarize,
)
from repro.errors import BenchmarkError


class TestMethodology:
    def test_paper_microbenchmark_config(self):
        cfg = MethodologyConfig.microbenchmark()
        assert (cfg.runs, cfg.discard) == (18, 3)

    def test_paper_hicma_config(self):
        cfg = MethodologyConfig.hicma()
        assert (cfg.runs, cfg.discard) == (5, 0)

    def test_discards_leading_runs(self):
        cfg = MethodologyConfig(runs=5, discard=2)
        samples = [100.0, 50.0, 1.0, 2.0, 3.0]
        mean = methodology_mean(lambda i: samples[i], cfg)
        assert mean == pytest.approx(2.0)

    def test_run_indices_passed_in_order(self):
        seen = []
        cfg = MethodologyConfig(runs=4, discard=1)
        methodology_mean(lambda i: seen.append(i) or float(i), cfg)
        assert seen == [0, 1, 2, 3]

    def test_invalid_config_rejected(self):
        with pytest.raises(BenchmarkError):
            MethodologyConfig(runs=3, discard=3)


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s["count"] == 0 and s["mean"] == 0.0

    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["count"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["median"] == pytest.approx(2.5)
        assert s["min"] == 1.0 and s["max"] == 4.0

    def test_p95(self):
        s = summarize(list(range(100)))
        assert 90 <= s["p95"] <= 99


class TestAsciiRendering:
    def test_chart_contains_series_marks_and_title(self):
        out = ascii_chart(
            {"a": [(1, 1.0), (2, 2.0)], "b": [(1, 2.0), (2, 1.0)]},
            title="demo chart",
        )
        assert "demo chart" in out
        assert "o=a" in out and "x=b" in out

    def test_chart_empty(self):
        assert "(no data)" in ascii_chart({"a": []}, title="t")

    def test_chart_log_axis(self):
        out = ascii_chart({"a": [(1, 0.0), (1024, 1.0)]}, logx=True)
        assert "(log x)" in out

    def test_chart_constant_series(self):
        out = ascii_chart({"a": [(1, 5.0), (2, 5.0)]})
        assert "o" in out

    def test_table_alignment_and_rows(self):
        out = ascii_table(["col", "value"], [("x", 1), ("longer", 22)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
