"""Execution-invariance matrix: communication options never change *what*
executes — only when.

"Since the PaRSEC runtime core is unchanged, the task management overhead
must be identical, so differences in performance must be due to
communication management" (§6.2).  The same must hold in the reproduction:
across every backend / option combination, the same tasks run and the same
remote dataflows are delivered.
"""

import itertools

import pytest

from repro.bench.workloads import random_layered_dag
from repro.config import scaled_platform
from repro.runtime import ParsecContext


CONFIGS = [
    {"backend": "mpi"},
    {"backend": "mpi", "multithreaded_activate": True},
    {"backend": "mpi", "mpi_put_mode": "rma"},
    {"backend": "mpi", "scheduler": "ws"},
    {"backend": "lci"},
    {"backend": "lci", "multithreaded_activate": True},
    {"backend": "lci", "native_put": True},
    {"backend": "lci", "num_comm_threads": 2, "num_progress_threads": 2},
    {"backend": "lci", "scheduler": "ws"},
]


@pytest.fixture(scope="module")
def runs():
    out = {}
    for i, kwargs in enumerate(CONFIGS):
        g = random_layered_dag([4, 6, 6, 4], num_nodes=3, seed=11)
        ctx = ParsecContext(
            scaled_platform(num_nodes=3, cores_per_node=3), **kwargs
        )
        out[i] = (kwargs, ctx.run(g, until=30.0), g)
    return out


def test_all_configurations_complete(runs):
    for _i, (kwargs, stats, g) in runs.items():
        assert stats.tasks_executed == g.num_tasks, kwargs


def test_same_flow_delivery_counts(runs):
    counts = {
        i: len(stats.flow_latencies) for i, (_k, stats, _g) in runs.items()
    }
    assert len(set(counts.values())) == 1, counts


def test_same_task_totals_across_configs(runs):
    totals = {i: stats.tasks_executed for i, (_k, stats, _g) in runs.items()}
    assert len(set(totals.values())) == 1


def test_timings_differ_between_backends(runs):
    """Sanity that the matrix isn't vacuous: timing DOES vary."""
    makespans = {i: stats.makespan for i, (_k, stats, _g) in runs.items()}
    assert len(set(round(m, 9) for m in makespans.values())) > 1
