"""Tests for the schedule-space explorer (repro.explore)."""

import json
from pathlib import Path

import pytest

from repro.bench.pingpong import PingPongConfig, run_pingpong_benchmark
from repro.errors import ExploreError
from repro.explore import (
    ExploreConfig,
    RandomWalkPolicy,
    ReplayPolicy,
    Scenario,
    default_scenario,
    load_schedule,
    replay_schedule,
    run_explore,
    run_scenario,
    write_schedule,
)

DATA = Path(__file__).parent / "data"

CFG = PingPongConfig(fragment_size=256 * 1024, total_bytes=1024 * 1024,
                     iterations=3)


class TestPolicyKernel:
    def test_fifo_policy_is_bit_identical(self):
        """An all-FIFO replay policy must not perturb the default schedule."""
        base = run_pingpong_benchmark("lci", CFG)
        replay = run_pingpong_benchmark(
            "lci", CFG, schedule_policy=ReplayPolicy([], budget=24)
        )
        assert replay.makespan == base.makespan
        assert replay.iteration_times == base.iteration_times
        assert replay.tasks == base.tasks

    def test_recording_policy_sees_choice_points(self):
        policy = ReplayPolicy([], budget=24)
        run_pingpong_benchmark("lci", CFG, schedule_policy=policy)
        assert len(policy.sites) > 0
        assert policy.total_sites >= len(policy.sites)
        assert all(site["n"] >= 2 for site in policy.sites)

    def test_random_walk_records_taken_decisions(self):
        policy = RandomWalkPolicy(seed=7, budget=24)
        run_pingpong_benchmark("lci", CFG, schedule_policy=policy)
        assert len(policy.taken) == len(policy.sites)
        # Replaying the taken decisions reproduces the walk exactly.
        replay = ReplayPolicy(list(policy.taken), budget=24)
        r1 = run_pingpong_benchmark("lci", CFG, schedule_policy=replay)
        r2 = run_pingpong_benchmark(
            "lci", CFG, schedule_policy=RandomWalkPolicy(seed=7, budget=24)
        )
        assert r1.makespan == r2.makespan


class TestScenario:
    def test_run_scenario_clean(self):
        record = run_scenario(default_scenario("pingpong"),
                              ReplayPolicy([], budget=24))
        assert record["violations"] == []
        assert record["digest"]["tasks"] > 0
        assert record["makespan"] > 0

    def test_scenario_validation(self):
        with pytest.raises(ExploreError):
            Scenario(workload="nope")
        with pytest.raises(ExploreError):
            Scenario(backend="tcp")
        with pytest.raises(ExploreError):
            Scenario(nodes=1)
        with pytest.raises(ExploreError):
            default_scenario("nope")

    def test_scenario_roundtrip(self):
        scenario = default_scenario("overlap", backend="mpi", seed=3)
        assert Scenario.from_dict(scenario.to_dict()) == scenario


class TestExplore:
    def test_dfs_clean_on_main(self):
        outcome = run_explore(
            default_scenario("pingpong"),
            ExploreConfig(max_schedules=10, budget=16),
        )
        assert outcome.ok
        assert outcome.schedules_run == 10
        assert outcome.total_sites > 0
        assert outcome.baseline_digest is not None
        assert "all invariants hold" in outcome.summary()

    def test_walk_clean_on_main(self):
        outcome = run_explore(
            default_scenario("pingpong"),
            ExploreConfig(max_schedules=5, budget=16, mode="walk"),
        )
        assert outcome.ok
        assert outcome.schedules_run == 5

    def test_dfs_prunes_commuting_swaps(self):
        outcome = run_explore(
            default_scenario("pingpong"),
            ExploreConfig(max_schedules=10, budget=16),
        )
        assert outcome.pruned > 0

    def test_explore_config_validation(self):
        with pytest.raises(ExploreError):
            ExploreConfig(mode="bfs")
        with pytest.raises(ExploreError):
            ExploreConfig(max_schedules=0)

    def test_explorer_catches_planted_bug(self, monkeypatch):
        """A quiescence bug (entries served twice) is caught and shrunk."""
        from repro.sim.primitives import PriorityStore

        original = PriorityStore.try_get
        replayed = set()

        def try_get_twice(self):
            ok, payload = original(self)
            if ok and isinstance(payload, tuple) and len(payload) == 2 \
                    and id(payload) not in replayed:
                replayed.add(id(payload))
                self.try_put((0.0, payload))
            return ok, payload

        monkeypatch.setattr(PriorityStore, "try_get", try_get_twice)
        outcome = run_explore(
            default_scenario("pingpong"),
            ExploreConfig(max_schedules=10, budget=16),
        )
        assert not outcome.ok
        kinds = {kind for kind, _ in outcome.findings[0].violations}
        assert "quiescence" in kinds
        assert outcome.shrunk is not None


class TestScheduleFiles:
    def test_roundtrip(self, tmp_path):
        scenario = default_scenario("pingpong", seed=5)
        path = tmp_path / "schedule.json"
        doc = write_schedule(path, scenario, [0, 2, 1], 16,
                             violations=[["quiescence", "leak"]])
        loaded_scenario, decisions, budget = load_schedule(path)
        assert loaded_scenario == scenario
        assert decisions == [0, 2, 1]
        assert budget == 16
        assert doc["violations"] == [["quiescence", "leak"]]

    def test_tamper_detected(self, tmp_path):
        path = tmp_path / "schedule.json"
        write_schedule(path, default_scenario("pingpong"), [1], 16)
        doc = json.loads(path.read_text())
        doc["decisions"] = [2]
        path.write_text(json.dumps(doc))
        with pytest.raises(ExploreError, match="content check"):
            load_schedule(path)

    def test_unreadable_rejected(self, tmp_path):
        path = tmp_path / "schedule.json"
        path.write_text("not json")
        with pytest.raises(ExploreError, match="cannot read"):
            load_schedule(path)
        with pytest.raises(ExploreError, match="cannot read"):
            load_schedule(tmp_path / "absent.json")

    def test_bundled_schedule_replays_clean(self):
        scenario, record = replay_schedule(DATA / "schedule_pingpong.json")
        assert scenario.workload == "pingpong"
        assert record["violations"] == []
        assert record["digest"] is not None


class TestExploreCli:
    def test_explore_smoke(self, capsys):
        from repro.cli import main

        assert main(["explore", "pingpong", "--max-schedules", "5"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out

    def test_explore_replay_bundled(self, capsys):
        from repro.cli import main

        assert main([
            "explore", "--replay", str(DATA / "schedule_pingpong.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
