"""Tests for the ``repro.obs`` observability bus, instruments, and sinks."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.obs import (
    NULL_BUS,
    ChromeTraceSink,
    CsvSink,
    MemorySink,
    NullBus,
    ObsBus,
    ObsEvent,
    memory_of,
)
from repro.obs.metrics import Counter, Histogram
from repro.sim.core import Simulator
from repro.sim.trace import TraceEvent, TraceRecorder


class TestBus:
    def test_emit_stores_and_indexes(self):
        bus = ObsBus()
        bus.emit("a", 0, key="x", time=1.0)
        bus.emit("b", 1, key="x", time=2.0)
        bus.emit("a", 0, key="y", time=3.0)
        mem = bus.memory
        assert [e.kind for e in mem.events] == ["a", "b", "a"]
        assert [e.time for e in mem.by_kind("a")] == [1.0, 3.0]
        assert [e.kind for e in mem.by_key("x")] == ["a", "b"]
        assert sorted(mem.kinds) == ["a", "b"]

    def test_clock_stamping(self):
        sim = Simulator()
        bus = ObsBus()
        bus.bind_clock(sim)

        def proc():
            yield sim.timeout(2.5)
            bus.emit("tick", 0)

        sim.process(proc())
        sim.run()
        (evt,) = bus.memory.by_kind("tick")
        assert evt.time == pytest.approx(2.5)

    def test_span_emits_begin_end(self):
        bus = ObsBus()
        span = bus.span("work", 3, key="k", time=1.0)
        span.end(info="done", time=4.0)
        b, e = bus.memory.by_kind("work")
        assert (b.phase, e.phase) == ("B", "E")
        assert (b.time, e.time) == (1.0, 4.0)
        assert span.start == 1.0
        assert e.info == "done"

    def test_counters_cached_and_totalled(self):
        bus = ObsBus()
        c0 = bus.counter("hits", 0)
        c1 = bus.counter("hits", 1)
        assert bus.counter("hits", 0) is c0
        c0.inc()
        c0.inc(2)
        c1.inc(5)
        assert bus.counter_totals() == {"hits": 8}
        assert bus.counters()["hits[0]"] == 3

    def test_histogram_bins_and_summary(self):
        bus = ObsBus()
        h = bus.histogram("sizes")
        for v in (1, 1, 3, 1024):
            h.observe(v)
        s = bus.histogram_summaries()["sizes"]
        assert s["count"] == 4
        assert s["mean"] == pytest.approx((1 + 1 + 3 + 1024) / 4)

    def test_export_replays_memory(self):
        bus = ObsBus()
        bus.emit("a", 0, time=1.0)
        bus.emit("b", 1, time=2.0)
        sink = MemorySink()
        bus.export(sink)
        assert [e.kind for e in sink.events] == ["a", "b"]

    def test_unhashable_key_falls_back(self):
        bus = ObsBus()
        bus.emit("a", 0, key=["un", "hashable"], time=1.0)
        bus.emit("a", 0, key="ok", time=2.0)
        assert len(bus.memory.by_kind("a")) == 2
        assert [e.time for e in bus.memory.by_key(["un", "hashable"])] == [1.0]


class TestNullBus:
    def test_is_disabled_and_inert(self):
        assert isinstance(NULL_BUS, NullBus)
        assert NULL_BUS.enabled is False
        assert NULL_BUS.memory is None
        assert NULL_BUS.emit("k", 0, key=1, info=2) == 0.0
        NULL_BUS.counter("c", 0).inc()
        NULL_BUS.histogram("h").observe(5)
        span = NULL_BUS.span("s", 0)
        span.end()
        assert NULL_BUS.counter_totals() == {}

    def test_null_instruments_are_shared_singletons(self):
        assert NULL_BUS.counter("a", 0) is NULL_BUS.counter("b", 7)
        assert NULL_BUS.histogram("a") is NULL_BUS.histogram("b")

    def test_export_rejected(self):
        with pytest.raises(ValueError):
            NULL_BUS.export(MemorySink())


class TestChromeTraceSink:
    def _bus_with_events(self):
        bus = ObsBus()
        bus.emit("task_exec", 0, key=(0, 2), info=("gemm", 1e-3), time=0.5)
        span = bus.span("work", 1, time=1.0)
        span.end(time=2.0)
        return bus

    def test_json_round_trip(self):
        bus = self._bus_with_events()
        sink = ChromeTraceSink()
        bus.export(sink)
        doc = json.loads(sink.render())
        evs = doc["traceEvents"]
        assert len(evs) == 3
        for rec in evs:
            assert rec["ph"] in ("i", "B", "E", "C")
            assert isinstance(rec["ts"], float)
            assert isinstance(rec["pid"], int)

    def test_fields(self):
        bus = self._bus_with_events()
        sink = ChromeTraceSink()
        bus.export(sink)
        instant, begin, end = sink.records
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert instant["ts"] == pytest.approx(0.5e6)  # microseconds
        assert instant["pid"] == 0
        assert instant["tid"] == 2  # second element of the (node, worker) key
        assert (begin["ph"], end["ph"]) == ("B", "E")
        assert begin["pid"] == end["pid"] == 1

    def test_write(self, tmp_path):
        bus = self._bus_with_events()
        sink = ChromeTraceSink()
        bus.export(sink)
        path = tmp_path / "trace.json"
        sink.write(str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestCsvSink:
    def test_matches_memory_row_for_row(self):
        bus = ObsBus()
        bus.emit("a", 0, key=(1, 2), info="x", time=1.0)
        bus.emit("b", 3, time=2.0, local_time=1.9)
        bus.emit("c", -1, time=3.0)
        sink = CsvSink()
        bus.export(sink)
        rows = list(csv.reader(io.StringIO(sink.render())))
        assert rows[0] == list(CsvSink.COLUMNS)
        assert len(rows) - 1 == len(bus.memory.events)
        for row, evt in zip(rows[1:], bus.memory.events):
            assert float(row[0]) == evt.time
            assert row[1] == evt.kind
            assert int(row[2]) == evt.node
            assert row[3] == ("" if evt.key is None else repr(evt.key))
            assert row[4] == ("" if evt.info is None else repr(evt.info))
            assert row[5] == evt.phase


class TestMemoryOf:
    def test_accepts_bus_sink_and_recorder(self):
        bus = ObsBus()
        bus.emit("a", 0, time=1.0)
        assert memory_of(bus) is bus.memory
        assert memory_of(bus.memory) is bus.memory
        tr = TraceRecorder(bus=bus)
        assert len(memory_of(tr).by_kind("a")) == 1

    def test_rejects_indexless(self):
        with pytest.raises(ValueError):
            memory_of(object())


class TestTraceRecorderFacade:
    def test_alias_and_positional_construction(self):
        assert TraceEvent is ObsEvent
        evt = TraceEvent(1.0, "k", 0, "key", "info", 0.9)
        assert (evt.time, evt.kind, evt.node) == (1.0, "k", 0)
        assert evt.local_time == 0.9 and evt.phase == "I"

    def test_shares_events_with_bus(self):
        bus = ObsBus()
        tr = TraceRecorder(bus=bus)
        tr.record(1.0, "a", 0, key="x")
        bus.emit("b", 1, time=2.0)
        assert [e.kind for e in tr.events] == ["a", "b"]
        assert len(tr.by_kind("a")) == 1
        assert len(tr.by_key("x")) == 1

    def test_disabled_recorder_is_inert(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "a", 0)
        assert tr.events == [] and len(tr) == 0


class TestFabricDeprecation:
    def test_enable_message_log_warns_and_forwards(self):
        from repro.config import scaled_platform
        from repro.network.fabric import Fabric
        from repro.network.message import MessageClass, WireMessage

        sim = Simulator()
        fabric = Fabric(sim, 2, scaled_platform(num_nodes=2).network)
        fabric.register_handler(1, "t", lambda msg: None)
        with pytest.warns(DeprecationWarning):
            log = fabric.enable_message_log()
        fabric.send(WireMessage(0, 1, 100, MessageClass.DATA, channel="t"))
        sim.run()
        assert len(log) == 1
        # Forwarded to the bus as wire_msg events too.
        assert len(fabric.obs.memory.by_kind("wire_msg")) == 1


class TestInstruments:
    def test_counter(self):
        c = Counter("c", 2)
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_histogram_mean_and_zero_bin(self):
        h = Histogram("h")
        h.observe(0)
        h.observe(4)
        s = h.summary()
        assert s["count"] == 2
        assert h.mean == pytest.approx(2.0)
