"""Tests for the repro.workloads plugin registry and scenario suite.

Covers the registration contract (duplicate/invalid names, schema
completeness), parameter validation through ``build_config``, builtin
bit-identity (the registry path must produce exactly what the historical
direct-driver path produced, on both simulation kernels), the new DAG
generators' structure and determinism, end-to-end execution of the
catalog scenarios on both backends, and a dummy third-party plugin driven
through the sweep engine and the schedule explorer.
"""

import dataclasses
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.codec import DictCodec
from repro.config import SweepConfig, scaled_platform
from repro.errors import ConfigError, ExploreError, SweepError
from repro.workloads import (
    WorkloadSpec,
    freeze_graph_result,
    get_workload,
    register,
    run_graph_benchmark,
    unregister,
    workload_names,
    workload_specs,
)
from repro.workloads.generators import (
    TASKBENCH_PATTERNS,
    fork_join,
    ring_shift,
    stencil2d,
    taskbench_graph,
    tree_collective,
)

ROOT = pathlib.Path(__file__).resolve().parent.parent

KiB = 1024
MiB = 1024 * 1024

#: Everything the catalog modules register out of the box.
EXPECTED_BUILTINS = {
    "pingpong", "overlap", "hicma",
    "chain", "fanout", "halo", "randomdag", "alltoall",
    "stencil", "tree", "ring", "forkjoin", "taskbench",
}


class TestRegistry:
    def test_bundled_workloads_registered(self):
        assert EXPECTED_BUILTINS <= set(workload_names())

    def test_specs_sorted_and_named(self):
        specs = workload_specs()
        assert [s.name for s in specs] == sorted(s.name for s in specs)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register(WorkloadSpec(name="pingpong", description="dup"))

    @pytest.mark.parametrize("name", ["", "bad name", "semi;colon", "a/b"])
    def test_invalid_name_rejected(self, name):
        with pytest.raises(ConfigError, match="invalid workload name"):
            register(WorkloadSpec(name=name, description="x"))

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigError, match="expected a WorkloadSpec"):
            register(object())

    def test_unknown_workload_lists_known(self):
        with pytest.raises(ConfigError, match="pingpong"):
            get_workload("no_such_workload")

    def test_every_spec_is_self_documenting(self):
        """The catalog contract: every spec carries complete metadata."""
        for spec in workload_specs():
            assert spec.description
            assert spec.example.startswith(f"python -m repro run {spec.name}")
            params = spec.params()  # raises on any undocumented field
            names = {p.name for p in params}
            assert {"num_nodes", "seed"} <= names
            assert all(p.doc for p in params)

    def test_undocumented_field_raises(self):
        @dataclasses.dataclass(frozen=True)
        class Cfg:
            knob: int = 1

        spec = WorkloadSpec(name="x", description="x", config=Cfg,
                            param_docs=())
        with pytest.raises(ConfigError, match="no param_docs entry"):
            spec.params()

    def test_param_docs_for_unknown_field_raises(self):
        @dataclasses.dataclass(frozen=True)
        class Cfg:
            knob: int = 1

        spec = WorkloadSpec(name="x", description="x", config=Cfg,
                            param_docs=(("knob", "k"), ("ghost", "g")))
        with pytest.raises(ConfigError, match="unknown field"):
            spec.params()

    def test_entry_point_discovery_isolates_broken_plugins(self, recwarn):
        from repro.workloads import registry as reg

        good = WorkloadSpec(name="ep_good", description="entry-point spec")

        class _EP:
            def __init__(self, name, obj=None, broken=False):
                self.name = name
                self._obj, self._broken = obj, broken

            def load(self):
                if self._broken:
                    raise RuntimeError("plugin import exploded")
                return self._obj

        import importlib.metadata as ilm

        orig = ilm.entry_points
        try:
            ilm.entry_points = lambda group=None: [
                _EP("good", good), _EP("bad", broken=True),
            ]
            reg._load_entry_points()
        finally:
            ilm.entry_points = orig
        try:
            assert get_workload("ep_good") is good
            assert any("bad" in str(w.message) for w in recwarn.list)
        finally:
            unregister("ep_good")


class TestParamValidation:
    def test_unknown_parameter_names_valid_set(self):
        with pytest.raises(ConfigError, match="does not accept"):
            get_workload("chain").build_config(width=9)

    def test_value_validation_is_configs_job(self):
        with pytest.raises(ConfigError, match="length"):
            get_workload("chain").build_config(length=0)

    def test_taskbench_pattern_validated(self):
        with pytest.raises(ConfigError, match="pattern"):
            get_workload("taskbench").build_config(pattern="butterfly")

    def test_tree_mode_validated(self):
        with pytest.raises(ConfigError, match="mode"):
            get_workload("tree").build_config(mode="scatter")

    def test_progress_rejected_without_support(self):
        spec = get_workload("ring")
        cfg = spec.build_config(steps=2, num_nodes=2)
        with pytest.raises(ConfigError, match="progress"):
            spec.run("lci", cfg, progress=lambda *_: None)

    def test_hicma_accepts_progress(self):
        assert get_workload("hicma").accepts_progress


class TestBuiltinBitIdentity:
    """The registry path must be indistinguishable from the historical
    direct-driver path, result for result."""

    def test_pingpong_registry_equals_experiment(self):
        spec = get_workload("pingpong")
        cfg = spec.build_config(fragment_size=256 * KiB,
                                total_bytes=1 * MiB, iterations=3)
        via_registry = spec.freeze(spec.run("lci", cfg), "lci")
        via_api = repro.Experiment(
            workload="pingpong", backend="lci", fragment_size=256 * KiB,
            total_bytes=1 * MiB, iterations=3,
        ).run()
        assert via_registry == via_api

    def test_overlap_registry_equals_direct_driver(self):
        from repro.bench.overlap import OverlapConfig, run_overlap_benchmark

        spec = get_workload("overlap")
        cfg = spec.build_config(fragment_size=1 * MiB, total_bytes=4 * MiB)
        assert isinstance(cfg, OverlapConfig)
        via_registry = spec.run("mpi", cfg)
        direct = run_overlap_benchmark("mpi", cfg)
        assert via_registry.flops_per_s == direct.flops_per_s
        assert via_registry.makespan == direct.makespan

    def test_same_seed_same_digest_both_kernels(self):
        """A registry workload must produce identical numbers on the
        epoch-batched kernel and the frozen legacy twin."""
        spec = get_workload("ring")
        cfg = spec.build_config(steps=4, num_nodes=3, seed=2)
        r = spec.freeze(spec.run("lci", cfg), "lci")
        digest = (r.makespan, r.tasks, r.wire_bytes, r.activates_sent)
        code = (
            "from repro.workloads import get_workload\n"
            "spec = get_workload('ring')\n"
            "cfg = spec.build_config(steps=4, num_nodes=3, seed=2)\n"
            "r = spec.freeze(spec.run('lci', cfg), 'lci')\n"
            "print(repr((r.makespan, r.tasks, r.wire_bytes,"
            " r.activates_sent)))\n"
        )
        env = dict(os.environ, REPRO_SIM_CORE="legacy",
                   PYTHONPATH=str(ROOT / "src"))
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == repr(digest)


class TestGenerators:
    def test_stencil_structure(self):
        g = stencil2d(grid=4, steps=3, num_nodes=2)
        g.validate(num_nodes=2)
        assert g.num_tasks == 4 * 4 * 3
        assert g.num_flows == g.num_tasks
        inputs = [len(t.inputs) for t in g.tasks.values()]
        # First step has no inputs; every later tile pulls self + 4 halos.
        assert inputs.count(0) == 16 and inputs.count(5) == 32

    def test_ring_structure(self):
        g = ring_shift(num_nodes=3, steps=4)
        g.validate(num_nodes=3)
        assert g.num_tasks == 12
        # After the first step every task consumes own + left neighbour.
        assert [len(t.inputs) for t in g.tasks.values()].count(2) == 9

    def test_fork_join_structure(self):
        g = fork_join(fanout=2, depth=2, num_nodes=2)
        g.validate(num_nodes=2)
        # 1 root + 2 + 4 forks, 2 + 1 joins, 1 sink.
        assert g.num_tasks == 11
        kinds = [t.kind for t in g.tasks.values()]
        assert kinds.count("fork2") == 4 and kinds.count("sink") == 1

    @pytest.mark.parametrize("mode,tasks", [
        ("reduce", 4 + 2 + 1 + 1),          # leaves, two reduce levels, sink
        ("broadcast", 1 + 2 + 4 + 1),       # root, two bcast levels, sink
        ("allreduce", 4 + 3 + 6 + 1),       # leaves, reduce, bcast, sink
    ])
    def test_tree_modes(self, mode, tasks):
        g = tree_collective(fanout=2, depth=2, num_nodes=2, mode=mode)
        g.validate(num_nodes=2)
        assert g.num_tasks == tasks

    @pytest.mark.parametrize("pattern", TASKBENCH_PATTERNS)
    def test_taskbench_patterns_valid(self, pattern):
        g = taskbench_graph(width=4, depth=3, pattern=pattern, num_nodes=2)
        g.validate(num_nodes=2)
        assert g.num_tasks == 12

    def test_taskbench_dependence_counts(self):
        def layer1_inputs(pattern):
            g = taskbench_graph(width=4, depth=2, pattern=pattern,
                                num_nodes=2)
            return [len(t.inputs) for t in g.tasks.values()
                    if t.kind == "tb1"]

        assert layer1_inputs("trivial") == [0, 0, 0, 0]
        assert layer1_inputs("serial") == [1, 1, 1, 1]
        assert layer1_inputs("stencil") == [2, 3, 3, 2]
        assert layer1_inputs("all_to_all") == [4, 4, 4, 4]

    def test_taskbench_random_deterministic_by_seed(self):
        def shape(seed):
            g = taskbench_graph(width=6, depth=4, pattern="random",
                                num_nodes=3, seed=seed)
            return [tuple(t.inputs) for t in g.tasks.values()]

        assert shape(7) == shape(7)
        assert shape(7) != shape(8)

    def test_bad_pattern_rejected(self):
        with pytest.raises(ConfigError, match="unknown taskbench pattern"):
            taskbench_graph(4, 4, "butterfly", 2)


class TestCatalogEndToEnd:
    @pytest.mark.parametrize("backend", ["mpi", "lci"])
    @pytest.mark.parametrize(
        "workload", ["stencil", "tree", "ring", "forkjoin", "taskbench"]
    )
    def test_new_scenarios_complete(self, workload, backend):
        spec = get_workload(workload)
        params = dict(spec.explore_params)
        result = repro.Experiment(
            workload=workload, backend=backend,
            nodes=params.pop("num_nodes", 2), **params,
        ).run()
        assert isinstance(result, repro.GraphResult)
        assert result.makespan > 0 and result.tasks > 0
        assert workload in result.summary()

    def test_experiment_matches_registry_graph(self):
        """Tasks executed equals the spec's own graph builder's count."""
        spec = get_workload("stencil")
        cfg = spec.build_config(grid=4, steps=2, num_nodes=2)
        graph = spec.build_graph(cfg, scaled_platform(num_nodes=2))
        result = spec.freeze(spec.run("lci", cfg), "lci")
        assert result.tasks == graph.num_tasks


# --- dummy third-party plugin -------------------------------------------

@dataclasses.dataclass(frozen=True)
class _PluginConfig(DictCodec):
    """Config of the in-test third-party workload."""

    length: int = 4
    num_nodes: int = 2
    seed: int = 0

    def __post_init__(self):
        if self.length < 1:
            raise ConfigError("plugin length must be positive")


def _plugin_graph(cfg, platform):
    from repro.bench.workloads import chain

    return chain(cfg.length, cfg.num_nodes)


def _plugin_driver(backend, cfg, platform=None, *, faults=None,
                   schedule_policy=None, ctx_observer=None):
    return run_graph_benchmark(
        "dummyplug", _plugin_graph, backend, cfg, platform,
        faults=faults, schedule_policy=schedule_policy,
        ctx_observer=ctx_observer,
    )


@pytest.fixture()
def dummy_plugin():
    spec = register(WorkloadSpec(
        name="dummyplug",
        description="In-test third-party plugin: a tiny chain.",
        example="python -m repro run dummyplug",
        config=_PluginConfig,
        driver=_plugin_driver,
        reducer=freeze_graph_result,
        graph=_plugin_graph,
        param_docs=(("length", "Chain length."),
                    ("num_nodes", "Cluster size."),
                    ("seed", "RNG seed.")),
        explore_params=(("length", 4),),
    ))
    yield spec
    unregister("dummyplug")


class TestThirdPartyPlugin:
    def test_runs_through_experiment(self, dummy_plugin):
        result = repro.Experiment(workload="dummyplug", backend="lci",
                                  nodes=2, length=6).run()
        assert isinstance(result, repro.GraphResult)
        assert result.tasks == 6

    def test_visible_everywhere(self, dummy_plugin):
        from repro.explore.scenarios import SCENARIO_KINDS, scenario_kinds

        assert "dummyplug" in workload_names()
        assert "dummyplug" in scenario_kinds()
        assert "dummyplug" in SCENARIO_KINDS

    def test_swept_serially(self, dummy_plugin):
        # jobs=1 keeps execution in-process: pool workers would import a
        # fresh tree without the in-test registration.
        from repro.sweep import SweepPoint, SweepSpec, run_sweep

        spec = SweepSpec(name="plugin", points=tuple(
            SweepPoint(kind="dummyplug", backend=b,
                       params={"length": 5, "num_nodes": 2, "seed": 0})
            for b in ("mpi", "lci")
        ))
        outcome = run_sweep(spec, SweepConfig(jobs=1, cache_enabled=False))
        assert outcome.failed == 0
        assert all(r["tasks"] == 5 for r in outcome.records)

    def test_unregistered_point_rejected(self):
        from repro.sweep import SweepPoint

        with pytest.raises(SweepError, match="unknown sweep point kind"):
            SweepPoint(kind="dummyplug", backend="lci", params={})

    def test_explored(self, dummy_plugin):
        from repro.explore import default_scenario
        from repro.explore.scenarios import run_scenario

        record = run_scenario(default_scenario("dummyplug"))
        assert record["violations"] == []
        assert record["makespan"] > 0

    def test_unknown_scenario_still_rejected(self):
        from repro.explore import default_scenario

        with pytest.raises(ExploreError, match="unknown scenario workload"):
            default_scenario("dummyplug")
