"""Tests for the scheduler policies (central vs. work stealing)."""

import pytest

from repro.config import scaled_platform
from repro.errors import RuntimeBackendError
from repro.runtime import ParsecContext, TaskGraph
from repro.runtime.scheduler import (
    CentralScheduler,
    WorkStealingScheduler,
    make_scheduler,
)
from repro.sim.core import Simulator
from repro.units import KiB


class TestFactory:
    def test_kinds(self):
        sim = Simulator()
        assert isinstance(make_scheduler("central", sim, 2), CentralScheduler)
        assert isinstance(make_scheduler("ws", sim, 2), WorkStealingScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(RuntimeBackendError):
            make_scheduler("fifo", Simulator(), 2)

    def test_ws_needs_workers(self):
        with pytest.raises(RuntimeBackendError):
            WorkStealingScheduler(Simulator(), 0)


class TestCentralScheduler:
    def test_priority_order(self):
        sim = Simulator()
        sched = CentralScheduler(sim, 1)
        sched.push(-5.0, "high")
        sched.push(-1.0, "low")

        def worker():
            a = yield from sched.pop(0)
            b = yield from sched.pop(0)
            return (a, b)

        assert sim.run_process(worker()) == ("high", "low")


class TestWorkStealingScheduler:
    def test_local_queue_preferred(self):
        sim = Simulator()
        sched = WorkStealingScheduler(sim, 2)
        sched.push(0.0, "mine", origin=1)
        sched.push(0.0, "other", origin=0)

        def worker():
            task = yield from sched.pop(1)
            return task

        assert sim.run_process(worker()) == "mine"
        assert sched.local_hits == 1
        assert sched.steals == 0

    def test_steals_when_local_empty(self):
        sim = Simulator()
        sched = WorkStealingScheduler(sim, 3)
        sched.push(0.0, "victim-task", origin=2)

        def worker():
            task = yield from sched.pop(0)
            return task

        assert sim.run_process(worker()) == "victim-task"
        assert sched.steals == 1

    def test_blocks_until_push(self):
        sim = Simulator()
        sched = WorkStealingScheduler(sim, 1)
        got = []

        def worker():
            task = yield from sched.pop(0)
            got.append((task, sim.now))

        def producer():
            yield sim.timeout(2.0)
            sched.push(0.0, "late")

        sim.process(worker())
        sim.process(producer())
        sim.run()
        assert got == [("late", 2.0)]

    def test_priority_within_local_queue(self):
        sim = Simulator()
        sched = WorkStealingScheduler(sim, 1)
        sched.push(-1.0, "low", origin=0)
        sched.push(-9.0, "high", origin=0)

        def worker():
            a = yield from sched.pop(0)
            b = yield from sched.pop(0)
            return (a, b)

        assert sim.run_process(worker()) == ("high", "low")

    def test_round_robin_for_external_pushes(self):
        sim = Simulator()
        sched = WorkStealingScheduler(sim, 4)
        for i in range(8):
            sched.push(0.0, i)  # no origin: round robin
        assert all(len(q) == 2 for q in sched.queues)

    def test_len(self):
        sim = Simulator()
        sched = WorkStealingScheduler(sim, 2)
        assert len(sched) == 0
        sched.push(0.0, "x")
        assert len(sched) == 1


class TestSchedulerIntegration:
    def graph(self):
        g = TaskGraph()
        for _ in range(40):
            t = g.add_task(node=0, duration=5e-6)
            f = g.add_flow(t, 8 * KiB)
            g.add_task(node=1, duration=5e-6, inputs=[f])
        return g

    @pytest.mark.parametrize("policy", ["central", "ws"])
    def test_policies_complete_workload(self, policy):
        ctx = ParsecContext(
            scaled_platform(num_nodes=2, cores_per_node=4),
            backend="lci",
            scheduler=policy,
        )
        g = self.graph()
        stats = ctx.run(g, until=10.0)
        assert stats.tasks_executed == g.num_tasks

    def test_ws_records_activity(self):
        ctx = ParsecContext(
            scaled_platform(num_nodes=2, cores_per_node=4),
            backend="lci",
            scheduler="ws",
        )
        ctx.run(self.graph(), until=10.0)
        sched = ctx.nodes[0].sched
        assert sched.local_hits + sched.steals > 0

    def test_policies_agree_on_results(self):
        """Scheduling policy may change timing but never the executed set."""
        counts = {}
        for policy in ("central", "ws"):
            ctx = ParsecContext(
                scaled_platform(num_nodes=2, cores_per_node=4),
                backend="mpi",
                scheduler=policy,
            )
            g = self.graph()
            counts[policy] = ctx.run(g, until=10.0).tasks_executed
        assert counts["central"] == counts["ws"]
