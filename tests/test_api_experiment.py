"""Tests for the Experiment API surface and its deprecation shims."""

import dataclasses

import pytest

import repro
from repro.errors import ConfigError

KiB = 1024
MiB = 1024 * 1024


class TestExperiment:
    def test_pingpong_run(self):
        result = repro.Experiment(
            workload="pingpong", backend="lci",
            fragment_size=256 * KiB, total_bytes=1 * MiB, iterations=3,
        ).run()
        assert isinstance(result, repro.PingPongResult)
        assert result.backend == "lci"
        assert result.bandwidth_gbit > 0
        assert "Gbit/s" in result.summary()

    def test_backend_enum_and_string_agree(self):
        kw = dict(workload="pingpong", fragment_size=256 * KiB,
                  total_bytes=1 * MiB, iterations=3)
        by_enum = repro.Experiment(backend=repro.BackendKind.MPI, **kw).run()
        by_str = repro.Experiment(backend="mpi", **kw).run()
        assert by_enum == by_str

    def test_results_are_frozen(self):
        result = repro.Experiment(
            workload="overlap", fragment_size=1 * MiB, total_bytes=4 * MiB,
        ).run()
        assert isinstance(result, repro.OverlapResult)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.flops_per_s = 0.0

    def test_hicma_nodes_and_seed(self):
        result = repro.Experiment(
            workload="hicma", nodes=2, seed=1,
            matrix_size=7200, tile_size=1200,
        ).run()
        assert isinstance(result, repro.HicmaResult)
        assert result.time_to_solution > 0
        assert result.tasks > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            repro.Experiment(workload="fft")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            repro.Experiment(workload="pingpong", backend="tcp")

    def test_unknown_param_rejected_eagerly(self):
        with pytest.raises(ConfigError, match="does not accept"):
            repro.Experiment(workload="pingpong", fragmnet_size=1024)

    def test_named_fault_plan_accepted(self):
        from repro.config import FaultConfig

        exp = repro.Experiment(workload="pingpong", faults="drop",
                               fragment_size=256 * KiB)
        assert isinstance(exp.faults, FaultConfig)


class TestDeprecatedShims:
    def test_run_pingpong_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="run_pingpong"):
            shim = repro.run_pingpong(256 * KiB, "lci",
                                      total_bytes=1 * MiB, iterations=3)
        direct = repro.Experiment(
            workload="pingpong", backend="lci", fragment_size=256 * KiB,
            total_bytes=1 * MiB, iterations=3, streams=1, sync=True,
        ).run()
        assert shim == direct

    def test_run_overlap_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="run_overlap"):
            shim = repro.run_overlap(1 * MiB, repro.BackendKind.LCI,
                                     total_bytes=4 * MiB)
        direct = repro.Experiment(
            workload="overlap", backend="lci", fragment_size=1 * MiB,
            total_bytes=4 * MiB,
        ).run()
        assert shim == direct
        assert shim.flops_per_s > 0

    def test_run_hicma_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="run_hicma"):
            shim = repro.run_hicma(7200, 1200, "lci", num_nodes=2)
        direct = repro.Experiment(
            workload="hicma", backend="lci", nodes=2,
            matrix_size=7200, tile_size=1200,
        ).run()
        assert shim == direct

    def test_quick_compare_warns(self):
        with pytest.warns(DeprecationWarning, match="quick_compare"):
            comp = repro.quick_compare(fragment_size=256 * KiB,
                                       total_bytes=1 * MiB)
        assert "winner: lci" in comp.summary()
