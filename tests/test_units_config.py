"""Tests for units helpers, configuration, and the dense-Cholesky substrate."""

import dataclasses
import os

import pytest

from repro.config import (
    ComputeConfig,
    FaultConfig,
    LciCosts,
    MpiCosts,
    NetworkConfig,
    PlatformConfig,
    RuntimeCosts,
    expanse_platform,
    paper_scale_enabled,
    scaled_platform,
)
from repro.errors import ConfigError
from repro.hicma.dag import build_dense_cholesky_graph, expected_task_count
from repro.units import (
    GiB,
    KiB,
    MiB,
    bytes_per_s_from_gbit,
    fmt_rate,
    fmt_size,
    fmt_time,
    gbit_per_s,
)


class TestUnits:
    def test_binary_sizes(self):
        assert KiB == 1024 and MiB == 1024**2 and GiB == 1024**3

    def test_gbit_conversion(self):
        assert gbit_per_s(12.5e9) == pytest.approx(100.0)
        assert bytes_per_s_from_gbit(100.0) == pytest.approx(12.5e9)

    @pytest.mark.parametrize(
        "nbytes,expect",
        [(512, "512 B"), (4 * KiB, "4 KiB"), (3 * MiB, "3 MiB"), (2 * GiB, "2 GiB")],
    )
    def test_fmt_size(self, nbytes, expect):
        assert fmt_size(nbytes) == expect

    @pytest.mark.parametrize(
        "t,needle", [(0.0, "0 s"), (5e-6, "us"), (3e-3, "ms"), (2.5, "s")]
    )
    def test_fmt_time(self, t, needle):
        assert needle in fmt_time(t)

    def test_fmt_rate(self):
        assert fmt_rate(12.5e9) == "100.0 Gbit/s"


class TestPlatformConfig:
    def test_expanse_matches_table1(self):
        p = expanse_platform()
        assert p.cores_per_node == 128
        assert gbit_per_s(p.network.bandwidth) == pytest.approx(100.0)

    def test_workers_reserved_for_comm_threads(self):
        p = expanse_platform()
        assert p.workers_for("mpi") == 127
        assert p.workers_for("lci") == 126
        assert p.workers_for("lci", multinode=False) == 128

    def test_scaled_platform_preserves_node_compute(self):
        full = expanse_platform()
        scaled = scaled_platform(cores_per_node=8)
        node_flops_full = full.cores_per_node * full.compute.flops_per_core
        node_flops_scaled = scaled.cores_per_node * scaled.compute.flops_per_core
        assert node_flops_scaled == pytest.approx(node_flops_full)

    def test_with_nodes(self):
        p = expanse_platform(2).with_nodes(16)
        assert p.num_nodes == 16
        assert p.cores_per_node == 128

    def test_network_latency_grows_with_hops(self):
        net = NetworkConfig()
        assert net.latency(4) > net.latency(2) > net.latency(0)

    def test_cost_dataclasses_frozen(self):
        for costs in (MpiCosts(), LciCosts(), RuntimeCosts(), ComputeConfig()):
            with pytest.raises(dataclasses.FrozenInstanceError):
                costs.__class__.__dict__  # touch
                object.__setattr__  # noqa
                setattr(costs, dataclasses.fields(costs)[0].name, 0)

    def test_calibration_documented_ratio(self):
        """The MPI:LCI per-operation cost ratios must keep the granularity
        ratio near the paper's 2.83x (guard against constant drift)."""
        mpi, lci = MpiCosts(), LciCosts()
        # Aggregate "control path" costs used per fragment (see config.py).
        mpi_path = (
            2 * mpi.eager_send + 2 * mpi.post_request + 3 * mpi.match
            + 2 * mpi.testsome_base + mpi.restart_persistent
        )
        lci_path = (
            2 * lci.buffered_send + lci.direct_post + 4 * lci.cq_pop
            + 4 * lci.completion_drain + 2 * lci.handler_dispatch
        )
        assert 2.0 <= mpi_path / lci_path <= 4.0

    def test_paper_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert paper_scale_enabled() is False
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert paper_scale_enabled() is True
        monkeypatch.setenv("REPRO_PAPER_SCALE", "0")
        assert paper_scale_enabled() is False


class TestConfigValidation:
    """__post_init__ must reject impossible calibration values with a
    ConfigError naming the offending field."""

    def test_network_negative_latency(self):
        with pytest.raises(ConfigError, match="NetworkConfig.hop_latency"):
            NetworkConfig(hop_latency=-1e-6)
        with pytest.raises(ConfigError, match="NetworkConfig.wire_latency"):
            NetworkConfig(wire_latency=-1.0)

    def test_network_zero_bandwidth(self):
        with pytest.raises(ConfigError, match="NetworkConfig.bandwidth"):
            NetworkConfig(bandwidth=0)

    def test_network_bad_mtu_and_topology(self):
        with pytest.raises(ConfigError, match="NetworkConfig.mtu"):
            NetworkConfig(mtu=0)
        with pytest.raises(ConfigError, match="NetworkConfig.fat_tree_levels"):
            NetworkConfig(fat_tree_levels=0)
        with pytest.raises(ConfigError, match="NetworkConfig.nodes_per_leaf"):
            NetworkConfig(nodes_per_leaf=0)

    def test_mpi_negative_cost(self):
        with pytest.raises(ConfigError, match="MpiCosts.eager_send"):
            MpiCosts(eager_send=-1e-9)

    def test_lci_negative_cost(self):
        with pytest.raises(ConfigError, match="LciCosts.buffered_send"):
            LciCosts(buffered_send=-1e-9)

    def test_lci_zero_packet_pool(self):
        with pytest.raises(ConfigError, match="LciCosts.packet_pool_size"):
            LciCosts(packet_pool_size=0)
        with pytest.raises(ConfigError, match="LciCosts.direct_slots"):
            LciCosts(direct_slots=0)

    def test_lci_buffered_below_immediate(self):
        with pytest.raises(ConfigError, match="buffered_max"):
            LciCosts(immediate_max=1024, buffered_max=512)

    def test_fault_rates_must_be_probabilities(self):
        with pytest.raises(ConfigError, match="FaultConfig.drop_rate"):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(ConfigError, match="FaultConfig.corrupt_rate"):
            FaultConfig(corrupt_rate=-0.1)

    def test_fault_misc_bounds(self):
        with pytest.raises(ConfigError, match="FaultConfig.rto"):
            FaultConfig(rto=0.0)
        with pytest.raises(ConfigError, match="rto_max"):
            FaultConfig(rto=1e-3, rto_max=1e-4)
        with pytest.raises(ConfigError, match="straggler_factor"):
            FaultConfig(straggler_factor=0.5)
        with pytest.raises(ConfigError, match="straggler_nodes"):
            FaultConfig(straggler_nodes=(-1,))

    def test_valid_configs_still_construct(self):
        # Constructions the test-suite and calibration actually use.
        NetworkConfig()
        MpiCosts()
        LciCosts(packet_pool_size=1)
        LciCosts(direct_slots=1)
        LciCosts(packet_pool_size=2, buffered_send=1e-9, copy_per_byte=0.0)
        FaultConfig()
        FaultConfig(enabled=False)


class TestDenseCholeskyGraph:
    def test_task_count(self):
        g = build_dense_cholesky_graph(6, 512, num_nodes=2)
        assert g.num_tasks == expected_task_count(6)

    def test_validates(self):
        g = build_dense_cholesky_graph(5, 512, num_nodes=4)
        g.validate(num_nodes=4)

    def test_flows_are_dense_sized(self):
        b = 512
        g = build_dense_cholesky_graph(4, b, num_nodes=2)
        for flow in g.flows.values():
            assert flow.size == b * b * 8

    def test_more_traffic_than_tlr(self):
        from repro.hicma import build_tlr_cholesky_graph

        dense = build_dense_cholesky_graph(8, 1200, num_nodes=4)
        tlr = build_tlr_cholesky_graph(8, 1200, num_nodes=4)
        assert dense.total_remote_bytes() > 5 * tlr.total_remote_bytes()

    def test_runs_on_runtime(self):
        from repro.config import scaled_platform
        from repro.runtime import ParsecContext

        g = build_dense_cholesky_graph(5, 1200, num_nodes=2)
        ctx = ParsecContext(scaled_platform(num_nodes=2, cores_per_node=4))
        stats = ctx.run(g, until=60.0)
        assert stats.tasks_executed == g.num_tasks
