"""Unit tests for stores, resources, semaphores, and latches."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.primitives import Store, PriorityStore, Resource, Semaphore, Latch


@pytest.fixture()
def sim():
    return Simulator()


class TestStore:
    def test_put_then_get_fifo(self, sim):
        store = Store(sim)

        def proc():
            yield store.put("a")
            yield store.put("b")
            first = yield store.get()
            second = yield store.get()
            return (first, second)

        assert sim.run_process(proc()) == ("a", "b")

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def producer():
            yield sim.timeout(2.0)
            yield store.put("item")

        def consumer():
            item = yield store.get()
            return (sim.now, item)

        sim.process(producer())
        assert sim.run_process(consumer()) == (pytest.approx(2.0), "item")

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            log.append(("put1", sim.now))
            yield store.put(2)
            log.append(("put2", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            item = yield store.get()
            log.append(("got", sim.now, item))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert log == [("put1", 0.0), ("got", 5.0, 1), ("put2", 5.0)]

    def test_try_put_try_get(self, sim):
        store = Store(sim, capacity=1)
        assert store.try_put("x") is True
        assert store.try_put("y") is False
        ok, item = store.try_get()
        assert (ok, item) == (True, "x")
        ok, item = store.try_get()
        assert ok is False

    def test_multiple_getters_fifo_order(self, sim):
        store = Store(sim)
        got = []

        def getter(tag):
            item = yield store.get()
            got.append((tag, item))

        for tag in "abc":
            sim.process(getter(tag))

        def producer():
            yield sim.timeout(1.0)
            for i in range(3):
                yield store.put(i)

        sim.process(producer())
        sim.run()
        assert got == [("a", 0), ("b", 1), ("c", 2)]

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_len_and_items(self, sim):
        store = Store(sim)
        store.try_put(1)
        store.try_put(2)
        assert len(store) == 2
        assert store.items == (1, 2)


class TestPriorityStore:
    def test_lowest_priority_first(self, sim):
        store = PriorityStore(sim)

        def proc():
            yield store.put((5, "low"))
            yield store.put((1, "high"))
            yield store.put((3, "mid"))
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        assert sim.run_process(proc()) == ["high", "mid", "low"]

    def test_ties_fifo(self, sim):
        store = PriorityStore(sim)
        for i in range(5):
            store.try_put((0, i))
        out = [store.try_get()[1] for _ in range(5)]
        assert out == list(range(5))

    def test_blocked_getter_receives_directly(self, sim):
        store = PriorityStore(sim)

        def consumer():
            item = yield store.get()
            return item

        def producer():
            yield sim.timeout(1.0)
            yield store.put((9, "direct"))

        sim.process(producer())
        assert sim.run_process(consumer()) == "direct"


class TestResource:
    def test_capacity_enforced(self, sim):
        res = Resource(sim, capacity=2)
        log = []

        def user(tag, hold):
            yield res.acquire()
            log.append(("acq", tag, sim.now))
            yield sim.timeout(hold)
            res.release()

        sim.process(user("a", 1.0))
        sim.process(user("b", 1.0))
        sim.process(user("c", 1.0))
        sim.run()
        times = {tag: t for _op, tag, t in log}
        assert times["a"] == 0.0 and times["b"] == 0.0
        assert times["c"] == pytest.approx(1.0)

    def test_try_acquire(self, sim):
        res = Resource(sim, capacity=1)
        assert res.try_acquire() is True
        assert res.try_acquire() is False
        res.release()
        assert res.try_acquire() is True

    def test_release_without_acquire_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_available_accounting(self, sim):
        res = Resource(sim, capacity=3)
        assert res.available == 3
        res.try_acquire()
        res.try_acquire()
        assert res.in_use == 2
        assert res.available == 1


class TestSemaphore:
    def test_initial_value(self, sim):
        sem = Semaphore(sim, value=2)

        def proc():
            yield sem.acquire()
            yield sem.acquire()
            return sim.now

        assert sim.run_process(proc()) == 0.0
        assert sem.value == 0

    def test_blocks_at_zero(self, sim):
        sem = Semaphore(sim)

        def waiter():
            yield sem.acquire()
            return sim.now

        def releaser():
            yield sim.timeout(3.0)
            sem.release()

        sim.process(releaser())
        assert sim.run_process(waiter()) == pytest.approx(3.0)

    def test_release_many(self, sim):
        sem = Semaphore(sim)
        sem.release(5)
        assert sem.value == 5

    def test_negative_initial_rejected(self, sim):
        with pytest.raises(SimulationError):
            Semaphore(sim, value=-1)


class TestLatch:
    def test_counts_down_to_release(self, sim):
        latch = Latch(sim, 3)

        def waiter():
            yield latch.wait()
            return sim.now

        def worker(delay):
            yield sim.timeout(delay)
            latch.count_down()

        for d in (1.0, 2.0, 3.0):
            sim.process(worker(d))
        assert sim.run_process(waiter()) == pytest.approx(3.0)

    def test_zero_latch_already_open(self, sim):
        latch = Latch(sim, 0)

        def waiter():
            yield latch.wait()
            return True

        assert sim.run_process(waiter()) is True

    def test_overshoot_raises(self, sim):
        latch = Latch(sim, 1)
        latch.count_down()
        with pytest.raises(SimulationError):
            latch.count_down()

    def test_negative_count_rejected(self, sim):
        with pytest.raises(SimulationError):
            Latch(sim, -1)
