"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hicma.lowrank import compress_dense, recompress
from repro.hicma.ranks import RankModel
from repro.hicma.dag import build_tlr_cholesky_graph, expected_task_count
from repro.mpi.matching import Envelope, MatchEngine
from repro.mpi.requests import RecvRequest
from repro.runtime.node import binomial_tree
from repro.sim.core import Simulator
from repro.sim.primitives import Store, PriorityStore
from repro.units import bytes_per_s_from_gbit, gbit_per_s


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=50))
    def test_timeouts_fire_in_sorted_order(self, delays):
        sim = Simulator()
        fired = []

        def waiter(d):
            yield sim.timeout(d)
            fired.append(d)

        for d in delays:
            sim.process(waiter(d))
        sim.run()
        assert fired == sorted(delays)
        assert sim.now == pytest.approx(max(delays))

    @given(st.lists(st.integers(), min_size=0, max_size=100))
    def test_store_is_fifo(self, items):
        sim = Simulator()
        store = Store(sim)
        for item in items:
            store.try_put(item)
        out = []
        while True:
            ok, item = store.try_get()
            if not ok:
                break
            out.append(item)
        assert out == items

    @given(
        st.lists(
            st.tuples(st.integers(-100, 100), st.integers()),
            min_size=0,
            max_size=100,
        )
    )
    def test_priority_store_orders_by_key_then_fifo(self, entries):
        sim = Simulator()
        store = PriorityStore(sim)
        for prio, payload in entries:
            store.try_put((prio, (prio, payload)))
        out = []
        while True:
            ok, item = store.try_get()
            if not ok:
                break
            out.append(item)
        keys = [k for k, _p in out]
        assert keys == sorted(keys)
        # Stability: among equal keys, insertion order is preserved.
        for key in set(keys):
            got = [e for e in out if e[0] == key]
            expect = [e for e in entries if e[0] == key]
            assert got == expect


class TestMatchingProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["post", "arrive"]),
                st.integers(0, 2),  # src
                st.integers(0, 2),  # tag
                st.booleans(),  # wildcard src (posts only)
            ),
            max_size=60,
        )
    )
    def test_conservation_and_compatibility(self, ops):
        """No message is lost or duplicated, and every match is compatible."""
        sim = Simulator()
        engine = MatchEngine()
        matches = []
        n_posts = 0
        n_arrivals = 0
        for op, src, tag, wild in ops:
            if op == "post":
                n_posts += 1
                recv = RecvRequest(sim, None if wild else src, tag, 1 << 20)
                env = engine.post_recv(recv)
                if env is not None:
                    matches.append((recv, env))
            else:
                n_arrivals += 1
                env = Envelope(src=src, tag=tag, size=1, kind="eager")
                recv = engine.arrive(env)
                if recv is not None:
                    matches.append((recv, env))
        assert len(matches) + engine.posted_count == n_posts
        assert len(matches) + engine.unexpected_count == n_arrivals
        for recv, env in matches:
            assert recv.src is None or recv.src == env.src
            assert recv.tag is None or recv.tag == env.tag
        # Nothing left unmatched that *could* match.
        for env in engine.unexpected:
            for recv in engine.posted:
                assert not (
                    (recv.src is None or recv.src == env.src)
                    and (recv.tag is None or recv.tag == env.tag)
                )

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=30))
    def test_fifo_per_source_tag(self, payloads):
        """Same-(src, tag) messages match posted receives in arrival order."""
        sim = Simulator()
        engine = MatchEngine()
        for i, _ in enumerate(payloads):
            engine.arrive(Envelope(src=0, tag=7, size=1, kind="eager", payload=i))
        got = []
        for _ in payloads:
            recv = RecvRequest(sim, 0, 7, 1 << 20)
            env = engine.post_recv(recv)
            assert env is not None
            got.append(env.payload)
        assert got == list(range(len(payloads)))


class TestLowRankProperties:
    @given(
        st.integers(4, 24),  # m
        st.integers(4, 24),  # n
        st.integers(1, 4),  # true rank
        st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_compression_error_bound(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k)) @ rng.standard_normal((k, n))
        tol = 1e-9
        lr = compress_dense(a, tol=tol)
        err = np.linalg.norm(lr.to_dense() - a)
        scale = np.linalg.norm(a) + 1.0
        assert err <= 1e-6 * scale
        assert lr.rank <= min(m, n, k + 1)

    @given(st.integers(2, 20), st.integers(1, 5), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_recompression_never_increases_rank_needed(self, n, k, seed):
        rng = np.random.default_rng(seed)
        u = rng.standard_normal((n, k))
        v = rng.standard_normal((n, k))
        # Duplicate the representation: rank 2k factors of a rank-k matrix.
        lr = recompress(np.hstack([u, u]), np.hstack([v, -0.5 * v]), tol=1e-12)
        assert lr.rank <= min(k, n)
        expect = 0.5 * u @ v.T
        assert np.allclose(lr.to_dense(), expect, atol=1e-8 * (1 + abs(expect).max()))


class TestTreeProperties:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=64, unique=True))
    def test_binomial_tree_covers_each_node_once(self, nodes):
        tree = binomial_tree(nodes)
        seen = []

        def walk(spec):
            seen.append(spec[0])
            for child in spec[1]:
                walk(child)

        walk(tree)
        assert sorted(seen) == sorted(nodes)
        assert seen[0] == nodes[0]

    @given(st.integers(1, 256))
    def test_binomial_tree_depth_logarithmic(self, n):
        tree = binomial_tree(list(range(n)))

        def depth(spec):
            return 1 + max((depth(c) for c in spec[1]), default=0)

        assert depth(tree) <= int(np.ceil(np.log2(n))) + 1


class TestRankModelProperties:
    @given(st.integers(2, 400), st.integers(100, 10_000), st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_rank_bounds_and_decay(self, nt, tile, maxrank):
        model = RankModel(nt, tile, maxrank)
        prev = None
        for d in range(1, min(nt, 20)):
            r = model.rank(0, d)
            assert 1 <= r <= maxrank
            if prev is not None:
                assert r <= prev
            prev = r

    @given(st.integers(2, 50), st.integers(100, 5000))
    @settings(max_examples=25, deadline=None)
    def test_symmetry(self, nt, tile):
        model = RankModel(nt, tile)
        for d in range(1, min(nt, 8)):
            assert model.rank(0, d) == model.rank(d, 0)


class TestDagProperties:
    @given(st.integers(1, 8), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_cholesky_graph_valid_for_any_shape(self, nt, num_nodes):
        g = build_tlr_cholesky_graph(nt, 256, num_nodes=num_nodes)
        g.validate(num_nodes=num_nodes)
        assert g.num_tasks == expected_task_count(nt)

    @given(st.integers(2, 7))
    @settings(max_examples=10, deadline=None)
    def test_two_flow_conserves_volume(self, nt):
        g1 = build_tlr_cholesky_graph(nt, 512, num_nodes=4, two_flow=False)
        g2 = build_tlr_cholesky_graph(nt, 512, num_nodes=4, two_flow=True)
        assert g2.total_remote_bytes() == g1.total_remote_bytes()


class TestUnitsProperties:
    @given(st.floats(min_value=1e-3, max_value=1e6))
    def test_gbit_round_trip(self, gbit):
        assert gbit_per_s(bytes_per_s_from_gbit(gbit)) == pytest.approx(gbit)


class TestRuntimeExecutionProperties:
    """Random layered DAGs must complete on both backends with identical
    task counts — communication management must never change *what* runs."""

    @staticmethod
    def _random_graph(draw_spec):
        from repro.runtime import TaskGraph

        layer_sizes, placements, fan = draw_spec
        g = TaskGraph()
        prev_flows = []
        pi = 0
        for li, size in enumerate(layer_sizes):
            new_flows = []
            for i in range(size):
                inputs = []
                if prev_flows:
                    take = min(fan, len(prev_flows))
                    inputs = [prev_flows[(i + j) % len(prev_flows)] for j in range(take)]
                node = placements[pi % len(placements)]
                pi += 1
                t = g.add_task(node=node, duration=2e-6, inputs=set(inputs), kind=f"l{li}")
                new_flows.append(g.add_flow(t, 16 * 1024))
            prev_flows = new_flows
        return g

    @given(
        st.tuples(
            st.lists(st.integers(1, 4), min_size=1, max_size=4),  # layers
            st.lists(st.integers(0, 2), min_size=1, max_size=8),  # placements
            st.integers(1, 2),  # fan-in
        )
    )
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_dags_complete_on_both_backends(self, spec):
        from repro.config import scaled_platform
        from repro.runtime import ParsecContext

        counts = {}
        for backend in ("mpi", "lci"):
            g = self._random_graph(spec)
            ctx = ParsecContext(
                scaled_platform(num_nodes=3, cores_per_node=2), backend=backend
            )
            stats = ctx.run(g, until=10.0)
            counts[backend] = (stats.tasks_executed, g.num_tasks)
            assert stats.tasks_executed == g.num_tasks
        assert counts["mpi"] == counts["lci"]
