"""Tests for the HiCMA simulation models: ranks, timing, DAG, execution."""

import numpy as np
import pytest

from repro.config import scaled_platform
from repro.errors import HicmaError
from repro.hicma import (
    KernelTimeModel,
    RankModel,
    SqExpProblem,
    TLRMatrix,
    build_tlr_cholesky_graph,
    block_cyclic_node,
)
from repro.hicma.dag import expected_task_count, process_grid
from repro.runtime import ParsecContext


class TestRankModel:
    def test_paper_calibration_point(self):
        """N=360,000, tile 1200 (§6.4.2): mean rank ≈ 10.44, max 29."""
        model = RankModel(nt=300, tile_size=1200, maxrank=150)
        assert model.mean_rank() == pytest.approx(10.44, rel=0.15)
        assert model.max_rank() == pytest.approx(29, abs=2)

    def test_paper_tile_bytes(self):
        """Mean packed tile ≈ 196 KiB; largest ≈ 544 KiB (paper §6.4.2)."""
        model = RankModel(nt=300, tile_size=1200, maxrank=150)
        mean_bytes = 2 * 1200 * model.mean_rank() * 8
        assert mean_bytes == pytest.approx(196 * 1024, rel=0.15)
        assert model.tile_bytes(0, 1) == pytest.approx(544 * 1024, rel=0.15)

    def test_rank_decays_with_distance(self):
        model = RankModel(nt=64, tile_size=2400)
        ranks = [model.rank(0, d) for d in range(1, 64)]
        assert all(a >= b for a, b in zip(ranks, ranks[1:]))
        assert ranks[-1] >= 1

    def test_rank_grows_with_tile_size(self):
        small = RankModel(nt=32, tile_size=1200).rank(0, 1)
        big = RankModel(nt=32, tile_size=4800).rank(0, 1)
        assert big > small

    def test_maxrank_cap(self):
        model = RankModel(nt=16, tile_size=100000, maxrank=150)
        assert model.rank(0, 1) <= 150

    def test_diagonal_rejected(self):
        with pytest.raises(HicmaError):
            RankModel(nt=4, tile_size=100).rank(2, 2)

    def test_model_shape_matches_real_compression(self):
        """The model's decay shape must match actually-measured ranks."""
        prob = SqExpProblem(1024, beta=0.15, seed=20)
        tlr = TLRMatrix.from_problem(prob, tile_size=128, tol=1e-8, maxrank=100)
        real = tlr.ranks()
        nt = tlr.nt
        real_near = np.mean([real[i + 1, i] for i in range(nt - 1)])
        real_far = real[nt - 1, 0]
        assert real_near > real_far  # same qualitative decay as the model


class TestKernelTimeModel:
    def setup_method(self):
        self.tm = KernelTimeModel()

    def test_potrf_cubic_scaling(self):
        assert self.tm.potrf(2400) == pytest.approx(8 * self.tm.potrf(1200))

    def test_trsm_scales_with_rank(self):
        assert self.tm.trsm(1200, 20) == pytest.approx(2 * self.tm.trsm(1200, 10))

    def test_gemm_flops_dominated_by_recompression(self):
        """LR GEMM ≈ 6·b·(2r)²: far below a dense GEMM's 2·b³."""
        b, r = 1200, 10
        assert self.tm.gemm_flops(b, r) < 2 * b**3 / 100

    def test_durations_positive_and_ordered(self):
        b, r = 2400, 12
        assert 0 < self.tm.gemm(b, r) < self.tm.potrf(b)

    def test_diag_cores_speedup(self):
        serial = KernelTimeModel(diag_cores=1)
        parallel = KernelTimeModel(diag_cores=4)
        assert parallel.potrf(2400) == pytest.approx(serial.potrf(2400) / 4)

    def test_invalid_diag_cores(self):
        with pytest.raises(HicmaError):
            KernelTimeModel(diag_cores=0)

    def test_total_flops_grows_superlinearly_in_nt(self):
        t = self.tm
        # The GEMM term is cubic in NT but POTRF/TRSM terms are not, so the
        # doubling ratio sits between quadratic (4×) and cubic (8×).
        ratio = t.total_flops(64, 1200, 10) / t.total_flops(32, 1200, 10)
        assert 3.0 < ratio < 8.0


class TestProcessGrid:
    def test_square_counts(self):
        assert process_grid(16) == (4, 4)
        assert process_grid(4) == (2, 2)

    def test_non_square_counts(self):
        assert process_grid(8) == (2, 4)
        assert process_grid(2) == (1, 2)
        assert process_grid(1) == (1, 1)

    def test_block_cyclic_covers_all_nodes(self):
        p, q = process_grid(8)
        owners = {
            block_cyclic_node(i, j, p, q) for i in range(8) for j in range(8)
        }
        assert owners == set(range(8))


class TestDagConstruction:
    def test_task_count_formula(self):
        for nt in (2, 3, 5, 8):
            g = build_tlr_cholesky_graph(nt, 256, num_nodes=2)
            assert g.num_tasks == expected_task_count(nt)

    def test_kind_counts(self):
        nt = 6
        g = build_tlr_cholesky_graph(nt, 256, num_nodes=2)
        kinds = {}
        for t in g.tasks.values():
            kinds[t.kind] = kinds.get(t.kind, 0) + 1
        assert kinds["potrf"] == nt
        assert kinds["trsm"] == nt * (nt - 1) // 2
        assert kinds["syrk"] == nt * (nt - 1) // 2
        assert kinds["gemm"] == nt * (nt - 1) * (nt - 2) // 6

    def test_graph_is_valid_dag(self):
        g = build_tlr_cholesky_graph(8, 512, num_nodes=4)
        g.validate(num_nodes=4)

    def test_two_flow_doubles_trsm_flows(self):
        g1 = build_tlr_cholesky_graph(5, 256, num_nodes=2, two_flow=False)
        g2 = build_tlr_cholesky_graph(5, 256, num_nodes=2, two_flow=True)
        assert g2.num_flows > g1.num_flows

    def test_two_flow_halves_message_size_not_volume(self):
        g1 = build_tlr_cholesky_graph(6, 256, num_nodes=4, two_flow=False)
        g2 = build_tlr_cholesky_graph(6, 256, num_nodes=4, two_flow=True)
        assert g2.total_remote_bytes() == pytest.approx(
            g1.total_remote_bytes(), rel=0.05
        )

    def test_potrf_has_highest_priority(self):
        g = build_tlr_cholesky_graph(4, 256, num_nodes=1)
        by_kind = {}
        for t in g.tasks.values():
            by_kind.setdefault(t.kind, []).append(t.priority)
        assert min(by_kind["potrf"]) > max(by_kind["trsm"])
        assert min(by_kind["trsm"]) > max(by_kind["syrk"])
        assert min(by_kind["syrk"]) > max(by_kind["gemm"])

    def test_early_steps_prioritized(self):
        g = build_tlr_cholesky_graph(6, 256, num_nodes=1)
        potrfs = sorted(
            (t for t in g.tasks.values() if t.kind == "potrf"),
            key=lambda t: t.task_id,
        )
        prios = [t.priority for t in potrfs]
        assert prios == sorted(prios, reverse=True)

    def test_invalid_nt_rejected(self):
        with pytest.raises(HicmaError):
            build_tlr_cholesky_graph(0, 256, num_nodes=1)


class TestDagExecution:
    @pytest.mark.parametrize("backend", ["mpi", "lci"])
    def test_small_cholesky_runs_on_runtime(self, backend):
        g = build_tlr_cholesky_graph(8, 1200, num_nodes=4)
        ctx = ParsecContext(
            scaled_platform(num_nodes=4, cores_per_node=4), backend=backend
        )
        stats = ctx.run(g, until=60.0)
        assert stats.tasks_executed == expected_task_count(8)
        assert stats.flow_latencies  # remote dataflows happened

    def test_lci_latency_below_mpi_on_cholesky(self):
        results = {}
        for backend in ("mpi", "lci"):
            g = build_tlr_cholesky_graph(10, 1200, num_nodes=4)
            ctx = ParsecContext(
                scaled_platform(num_nodes=4, cores_per_node=4), backend=backend
            )
            results[backend] = ctx.run(g, until=120.0)
        assert (
            results["lci"].mean_flow_latency < results["mpi"].mean_flow_latency
        )

    def test_single_node_faster_per_task_than_multi(self):
        """Sanity: distributing a tiny graph adds communication time."""
        g1 = build_tlr_cholesky_graph(6, 1200, num_nodes=1)
        gn = build_tlr_cholesky_graph(6, 1200, num_nodes=4)
        t1 = ParsecContext(
            scaled_platform(num_nodes=1, cores_per_node=16), backend="lci"
        ).run(g1, until=60.0)
        tn = ParsecContext(
            scaled_platform(num_nodes=4, cores_per_node=4), backend="lci"
        ).run(gn, until=60.0)
        assert t1.wire_bytes == 0
        assert tn.wire_bytes > 0
