"""Tests that REPRO_PAPER_SCALE switches every harness to the paper's
dimensions (without actually running the huge configurations)."""

import pytest

from repro.bench.hicma_bench import default_matrix_size, default_tile_sizes
from repro.bench.pingpong import PingPongConfig, default_granularities
from repro.config import paper_scale_enabled
from repro.errors import ConfigError
from repro.units import KiB, MiB


class TestPaperScaleFlagParsing:
    """Env-value matrix for the REPRO_PAPER_SCALE switch."""

    @pytest.mark.parametrize(
        "value", ["1", "true", "TRUE", "True", "yes", "YES", "on", " 1 ", "\ttrue\n"]
    )
    def test_truthy_spellings_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PAPER_SCALE", value)
        assert paper_scale_enabled() is True

    @pytest.mark.parametrize(
        "value",
        ["", "0", "false", "False", "FALSE", "no", "NO", "off", "OFF", " 0 ", " no\n"],
    )
    def test_falsy_spellings_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PAPER_SCALE", value)
        assert paper_scale_enabled() is False

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert paper_scale_enabled() is False

    @pytest.mark.parametrize("value", ["2", "enable", "paper", "y", "t", "-1"])
    def test_unrecognized_values_raise(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PAPER_SCALE", value)
        with pytest.raises(ConfigError, match="REPRO_PAPER_SCALE"):
            paper_scale_enabled()


class TestDefaultScale:
    def test_granularities_ci_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        sizes = default_granularities()
        assert sizes[0] >= 8 * KiB
        assert len(sizes) <= 6

    def test_pingpong_total_ci_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert PingPongConfig(fragment_size=64 * KiB).resolved_total() == 32 * MiB

    def test_hicma_ci_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert default_matrix_size() == 36_000
        for tile in default_tile_sizes():
            assert default_matrix_size() % tile == 0


class TestPaperScale:
    def test_granularities_full_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        sizes = default_granularities()
        assert sizes[0] == 8 * KiB
        assert sizes[-1] == 8 * MiB
        assert len(sizes) == 11  # every octave

    def test_pingpong_total_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        cfg = PingPongConfig(fragment_size=8 * KiB)
        assert cfg.resolved_total() == 256 * MiB
        assert cfg.window == 32768  # the paper's largest window

    def test_hicma_paper_dimensions(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert default_matrix_size() == 360_000
        tiles = default_tile_sizes()
        assert tiles[0] == 1200 and tiles[-1] == 6000
        for tile in tiles:
            assert 360_000 % tile == 0

    def test_bench_conftest_dimensions(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        import benchmarks.conftest as bc

        matrix, tiles, _mt = bc._fig4_dimensions()
        assert matrix == 360_000 and 1200 in tiles
        matrix5, node_tiles = bc._fig5_dimensions()
        assert matrix5 == 360_000
        assert sorted(node_tiles) == [1, 2, 4, 8, 16, 32]
