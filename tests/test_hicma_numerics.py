"""Numerical tests: st-2d-sqexp generation, low-rank algebra, TLR Cholesky."""

import numpy as np
import pytest

from repro.errors import HicmaError
from repro.hicma import (
    LowRankTile,
    SqExpProblem,
    TLRMatrix,
    compress_dense,
    dense_tiled_cholesky,
    recompress,
    tlr_cholesky,
)
from repro.hicma.kernels import gemm_lr, potrf, syrk_lr, trsm_lr
from repro.hicma.starsh import morton_order


class TestSqExpProblem:
    def test_matrix_is_symmetric_positive_definite(self):
        prob = SqExpProblem(144, seed=1)
        a = prob.dense()
        assert np.allclose(a, a.T)
        w = np.linalg.eigvalsh(a)
        assert w.min() > 0

    def test_diagonal_includes_nugget(self):
        prob = SqExpProblem(64, nugget=1e-3, seed=2)
        a = prob.dense()
        assert np.all(np.diag(a) >= 1.0)  # exp(0)=1 plus nugget

    def test_tile_extraction_matches_dense(self):
        prob = SqExpProblem(128, seed=3)
        a = prob.dense()
        t = prob.tile(1, 0, 32)
        assert np.allclose(t, a[32:64, 0:32])

    def test_offdiagonal_tiles_are_low_rank(self):
        """Morton ordering must give rapidly decaying singular values."""
        prob = SqExpProblem(1024, beta=0.15, seed=4)
        tile = prob.tile(3, 0, 256)
        s = np.linalg.svd(tile, compute_uv=False)
        assert s[50] < 1e-8 * s[0]  # numerically low rank (≤ 50 of 256)

    def test_morton_order_locality(self):
        rng = np.random.default_rng(0)
        pts = rng.random((512, 2))
        perm = morton_order(pts)
        ordered = pts[perm]
        # Mean distance between Morton neighbours must beat random order.
        d_m = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        d_r = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        assert d_m < d_r / 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(HicmaError):
            SqExpProblem(0)
        with pytest.raises(HicmaError):
            SqExpProblem(10, beta=-1)

    def test_dense_refuses_huge(self):
        prob = SqExpProblem(5000)
        with pytest.raises(HicmaError):
            prob.dense()


class TestLowRank:
    def test_compress_reconstruct_accuracy(self):
        rng = np.random.default_rng(5)
        a = (rng.random((60, 8)) @ rng.random((8, 60))) + 1e-10 * rng.random((60, 60))
        lr = compress_dense(a, tol=1e-9)
        assert lr.rank <= 10
        assert np.linalg.norm(lr.to_dense() - a) <= 1e-6 * np.linalg.norm(a)

    def test_compress_respects_maxrank(self):
        rng = np.random.default_rng(6)
        a = rng.random((40, 40))  # full rank
        lr = compress_dense(a, tol=1e-15, maxrank=7)
        assert lr.rank == 7

    def test_recompress_reduces_rank(self):
        rng = np.random.default_rng(7)
        u = rng.random((50, 4))
        v = rng.random((50, 4))
        # Stack the same tile twice: rank 8 representation of a rank-4 tile.
        lr = recompress(np.hstack([u, u]), np.hstack([v, v]), tol=1e-12)
        assert lr.rank <= 4
        assert np.allclose(lr.to_dense(), 2 * u @ v.T, atol=1e-9)

    def test_zero_tile_rank_one(self):
        lr = compress_dense(np.zeros((16, 16)), tol=1e-8)
        assert lr.rank == 1
        assert np.allclose(lr.to_dense(), 0)

    def test_nbytes_packed_format(self):
        lr = LowRankTile(np.zeros((100, 5)), np.zeros((100, 5)))
        assert lr.nbytes == 2 * 100 * 5 * 8

    def test_shape_mismatch_rejected(self):
        with pytest.raises(HicmaError):
            LowRankTile(np.zeros((4, 2)), np.zeros((4, 3)))

    def test_bad_tol_rejected(self):
        with pytest.raises(HicmaError):
            compress_dense(np.eye(4), tol=0.0)


class TestKernels:
    def setup_method(self):
        rng = np.random.default_rng(8)
        self.b = 32
        m = rng.random((self.b, self.b))
        self.spd = m @ m.T + self.b * np.eye(self.b)
        self.lkk = potrf(self.spd)

    def test_potrf_correct(self):
        assert np.allclose(self.lkk @ self.lkk.T, self.spd)
        assert np.allclose(self.lkk, np.tril(self.lkk))

    def test_potrf_rejects_indefinite(self):
        with pytest.raises(HicmaError):
            potrf(-np.eye(4))

    def test_trsm_lr_matches_dense(self):
        rng = np.random.default_rng(9)
        lr = LowRankTile(rng.random((self.b, 3)), rng.random((self.b, 3)))
        dense_result = lr.to_dense() @ np.linalg.inv(self.lkk).T
        assert np.allclose(trsm_lr(self.lkk, lr).to_dense(), dense_result)

    def test_syrk_lr_matches_dense(self):
        rng = np.random.default_rng(10)
        lr = LowRankTile(rng.random((self.b, 3)), rng.random((self.b, 3)))
        c = rng.random((self.b, self.b))
        expect = c - lr.to_dense() @ lr.to_dense().T
        assert np.allclose(syrk_lr(c, lr), expect)

    def test_gemm_lr_matches_dense(self):
        rng = np.random.default_rng(11)
        cij = LowRankTile(rng.random((self.b, 4)), rng.random((self.b, 4)))
        aik = LowRankTile(rng.random((self.b, 3)), rng.random((self.b, 3)))
        ajk = LowRankTile(rng.random((self.b, 2)), rng.random((self.b, 2)))
        expect = cij.to_dense() - aik.to_dense() @ ajk.to_dense().T
        got = gemm_lr(cij, aik, ajk, tol=1e-13)
        assert np.allclose(got.to_dense(), expect, atol=1e-8)
        assert got.rank <= 6  # at most r_c + min(r1, r2)


class TestTLRMatrix:
    def test_build_and_reconstruct(self):
        prob = SqExpProblem(256, seed=12)
        tlr = TLRMatrix.from_problem(prob, tile_size=64, tol=1e-9)
        a = prob.dense()
        err = np.linalg.norm(tlr.to_dense() - a) / np.linalg.norm(a)
        assert err < 1e-7

    def test_band_tiles_dense_offband_lr(self):
        prob = SqExpProblem(256, seed=13)
        tlr = TLRMatrix.from_problem(prob, tile_size=64, tol=1e-8)
        assert isinstance(tlr.tile(0, 0), np.ndarray)
        assert isinstance(tlr.tile(3, 0), LowRankTile)

    def test_rank_statistics(self):
        prob = SqExpProblem(1024, beta=0.15, seed=14)
        tlr = TLRMatrix.from_problem(prob, tile_size=128, tol=1e-8, maxrank=60)
        ranks = tlr.ranks()
        # Nearest off-diagonal tiles have higher rank than farthest.
        near = np.mean([ranks[i + 1, i] for i in range(tlr.nt - 1)])
        far = ranks[tlr.nt - 1, 0]
        assert near > far
        assert tlr.max_offband_rank() <= 60

    def test_compression_saves_memory(self):
        prob = SqExpProblem(1024, beta=0.15, seed=15)
        tlr = TLRMatrix.from_problem(prob, tile_size=128, tol=1e-8)
        assert tlr.compression_bytes() < 1024 * 1024 * 8 * 0.8

    def test_invalid_config_rejected(self):
        with pytest.raises(HicmaError):
            TLRMatrix(100, 33)  # not divisible
        with pytest.raises(HicmaError):
            TLRMatrix(0, 1)
        with pytest.raises(HicmaError):
            TLRMatrix(64, 8, band=0)

    def test_upper_triangle_rejected(self):
        tlr = TLRMatrix(64, 32)
        with pytest.raises(HicmaError):
            tlr.tile(0, 1)


class TestCholesky:
    def _factor_error(self, n, tile, tol):
        prob = SqExpProblem(n, beta=0.12, seed=16)
        a = prob.dense()
        tlr = TLRMatrix.from_problem(prob, tile_size=tile, tol=tol)
        stats = tlr_cholesky(tlr, tol=tol)
        l = tlr.lower_dense()
        err = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        return err, stats

    def test_tlr_cholesky_accuracy(self):
        err, stats = self._factor_error(n=512, tile=64, tol=1e-9)
        assert err < 1e-6
        assert stats.potrf == 8

    def test_tlr_cholesky_task_counts(self):
        _err, stats = self._factor_error(n=256, tile=64, tol=1e-9)
        nt = 4
        assert stats.potrf == nt
        assert stats.trsm == nt * (nt - 1) // 2
        assert stats.syrk == nt * (nt - 1) // 2
        assert stats.gemm == nt * (nt - 1) * (nt - 2) // 6

    def test_tighter_tolerance_improves_accuracy(self):
        # tol must stay well below the nugget (1e-4) or the compressed
        # matrix loses positive definiteness — itself a meaningful property,
        # but not the one under test here.
        loose, _ = self._factor_error(n=256, tile=64, tol=1e-6)
        tight, _ = self._factor_error(n=256, tile=64, tol=1e-10)
        assert tight < loose

    def test_dense_tiled_cholesky_matches_lapack(self):
        prob = SqExpProblem(256, seed=17)
        a = prob.dense()
        l, stats = dense_tiled_cholesky(a, tile_size=64)
        assert np.allclose(l, np.linalg.cholesky(a), atol=1e-10)
        assert stats.total_tasks == 4 + 6 + 6 + 4

    def test_tlr_matches_dense_factorization(self):
        prob = SqExpProblem(256, beta=0.12, seed=18)
        a = prob.dense()
        tlr = TLRMatrix.from_problem(prob, tile_size=64, tol=1e-11)
        tlr_cholesky(tlr, tol=1e-11)
        l_dense, _ = dense_tiled_cholesky(a, tile_size=64)
        assert np.allclose(tlr.lower_dense(), l_dense, atol=1e-5)

    def test_wider_band_factorizes_correctly(self):
        """Band 2: the first off-diagonals stay dense; the mixed kernels
        must still produce an accurate factor."""
        prob = SqExpProblem(512, beta=0.12, seed=19)
        a = prob.dense()
        tlr = TLRMatrix.from_problem(prob, tile_size=64, tol=1e-10, band=2)
        stats = tlr_cholesky(tlr, tol=1e-10)
        l = tlr.lower_dense()
        err = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert err < 1e-7
        assert stats.total_tasks > 0

    def test_band_accuracy_ordering(self):
        """A wider dense band can only improve (or match) accuracy."""
        prob = SqExpProblem(256, beta=0.12, seed=19)
        a = prob.dense()
        errs = {}
        for band in (1, 2):
            tlr = TLRMatrix.from_problem(prob, tile_size=64, tol=1e-7, band=band)
            tlr_cholesky(tlr, tol=1e-7)
            l = tlr.lower_dense()
            errs[band] = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert errs[2] <= errs[1] * 1.5  # at least comparable
