"""Tests for MPI collectives (barrier / bcast / allreduce)."""

import pytest

from repro.mpi import MpiWorld
from repro.mpi.collectives import allreduce, barrier, bcast
from repro.network import Fabric
from repro.sim.core import Simulator


def make_world(n):
    sim = Simulator()
    fabric = Fabric(sim, n)
    return sim, MpiWorld(sim, fabric)


class TestBarrier:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_no_rank_leaves_before_all_enter(self, n):
        sim, world = make_world(n)
        enter, leave = {}, {}

        def participant(r, delay):
            yield sim.timeout(delay)
            enter[r] = sim.now
            yield from barrier(world.ranks[r])
            leave[r] = sim.now

        for r in range(n):
            sim.process(participant(r, delay=r * 1e-3))
        sim.run()
        assert len(leave) == n
        assert min(leave.values()) >= max(enter.values())

    def test_single_rank_trivial(self):
        sim, world = make_world(1)

        def p():
            yield from barrier(world.ranks[0])
            return sim.now

        # Zero rounds: completes immediately.
        assert sim.run_process(p()) == 0.0


class TestBcast:
    @pytest.mark.parametrize("n,root", [(2, 0), (4, 0), (4, 2), (8, 5), (6, 1)])
    def test_all_ranks_receive_payload(self, n, root):
        sim, world = make_world(n)
        got = {}

        def participant(r):
            value = yield from bcast(
                world.ranks[r], root, 4096,
                payload="the-data" if r == root else None,
            )
            got[r] = value

        for r in range(n):
            sim.process(participant(r))
        sim.run()
        assert got == {r: "the-data" for r in range(n)}

    def test_logarithmic_depth(self):
        """Broadcast over 8 ranks must take ~3 rounds, not 7."""
        times = {}
        for n in (2, 8):
            sim, world = make_world(n)

            def participant(r, sim=sim, world=world, n=n):
                yield from bcast(world.ranks[r], 0, 1024,
                                 payload="x" if r == 0 else None)
                times[(n, r)] = sim.now

            for r in range(n):
                sim.process(participant(r))
            sim.run()
        t2 = max(t for (n, _r), t in times.items() if n == 2)
        t8 = max(t for (n, _r), t in times.items() if n == 8)
        # 3 tree rounds (plus per-hop software costs) — clearly below the
        # 7 sequential sends a linear broadcast would take.
        assert t8 < 5 * t2

    def test_invalid_root(self):
        sim, world = make_world(2)

        def p():
            yield from bcast(world.ranks[0], 5, 10)

        from repro.errors import MpiError

        with pytest.raises(MpiError):
            sim.run_process(p())


class TestAllreduce:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_sum_power_of_two(self, n):
        sim, world = make_world(n)
        got = {}

        def participant(r):
            result = yield from allreduce(world.ranks[r], r + 1, lambda a, b: a + b)
            got[r] = result

        for r in range(n):
            sim.process(participant(r))
        sim.run()
        expect = n * (n + 1) // 2
        assert got == {r: expect for r in range(n)}

    @pytest.mark.parametrize("n", [3, 5, 6])
    def test_sum_non_power_of_two(self, n):
        sim, world = make_world(n)
        got = {}

        def participant(r):
            result = yield from allreduce(world.ranks[r], r + 1, lambda a, b: a + b)
            got[r] = result

        for r in range(n):
            sim.process(participant(r))
        sim.run()
        expect = n * (n + 1) // 2
        assert got == {r: expect for r in range(n)}

    def test_max_op(self):
        sim, world = make_world(4)
        got = {}

        def participant(r):
            got[r] = yield from allreduce(world.ranks[r], r * 10, max)

        for r in range(4):
            sim.process(participant(r))
        sim.run()
        assert got == {r: 30 for r in range(4)}
