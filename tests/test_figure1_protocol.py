"""Protocol walkthrough of the paper's Figure 1.

Figure 1: task A runs on node W with descendant tasks B on node X and C on
node Y; four dataflows propagate as part of the broadcast.  We reconstruct
that exact scenario (3 nodes, A on node 0 producing one flow consumed by B
on node 1 and C on node 2) and verify the wire-level message sequence of
the ACTIVATE / GET DATA / put protocol on both backends, plus the Fig. 1
"cleanup if all done" bookkeeping.
"""

import pytest

from repro.config import scaled_platform
from repro.runtime import ParsecContext, TaskGraph
from repro.units import KiB, MiB


def figure1_graph(flow_bytes=1 * MiB):
    g = TaskGraph()
    a = g.add_task(node=0, duration=5e-6, kind="A")
    flow = g.add_flow(a, flow_bytes)
    g.add_task(node=1, duration=5e-6, inputs=[flow], kind="B")
    g.add_task(node=2, duration=5e-6, inputs=[flow], kind="C")
    return g


def run_logged(backend, flow_bytes=1 * MiB, **kwargs):
    ctx = ParsecContext(
        scaled_platform(num_nodes=3, cores_per_node=2), backend=backend, **kwargs
    )
    log = ctx.fabric.enable_message_log()
    stats = ctx.run(figure1_graph(flow_bytes), until=10.0)
    return ctx, stats, log


def mpi_kinds(log):
    """(src, dst, payload-kind[, tag]) for MPI wire messages, in inject order."""
    out = []
    for m in log:
        p = m.payload
        if p["kind"] == "eager" and "am" in (p.get("data") or {}):
            out.append((m.src, m.dst, "am", p["tag"]))
        else:
            out.append((m.src, m.dst, p["kind"], p.get("tag")))
    return out


@pytest.mark.parametrize("backend", ["mpi", "lci"])
class TestFigure1Scenario:
    def test_all_descendants_execute(self, backend):
        _ctx, stats, _log = run_logged(backend)
        assert stats.tasks_executed == 3
        assert len(stats.flow_latencies) == 2  # X and Y both received data

    def test_producer_cleanup_happens(self, backend):
        """Fig. 1: 'Cleanup if all done' once every consumer is served."""
        ctx, _stats, _log = run_logged(backend)
        assert ctx.nodes[0].serves_remaining == {}
        total_cleanups = sum(n.cleanups_done for n in ctx.nodes)
        assert total_cleanups >= 1

    def test_binomial_tree_forwarding(self, backend):
        """With W as root and descendants on X and Y, the binomial tree is
        W→{X, Y}: both ACTIVATEs originate at W (no relaying needed)."""
        _ctx, _stats, log = run_logged(backend)
        sources = {m.src for m in log}
        assert 0 in sources  # W sent
        # X never forwards to Y or vice versa in a 3-node tree.
        x_to_y = [m for m in log if {m.src, m.dst} == {1, 2}]
        assert x_to_y == []


class TestMpiWireSequence:
    def test_per_destination_message_order(self):
        """For each destination, the paper's sequence must appear:
        ACTIVATE(W→X), GET DATA(X→W), handshake AM(W→X), then the
        rendezvous RTS/CTS/data for the bulk transfer."""
        from repro.runtime.comm_engine import TAG_ACTIVATE, TAG_GETDATA

        _ctx, _stats, log = run_logged("mpi")
        kinds = mpi_kinds(log)
        for dst in (1, 2):
            w_to_dst = [k for k in kinds if k[0] == 0 and k[1] == dst]
            dst_to_w = [k for k in kinds if k[0] == dst and k[1] == 0]
            # W → dst: ACTIVATE first, then the put handshake (tag 0), then
            # the rendezvous RTS for the 1 MiB data.
            tags = [k[3] for k in w_to_dst if k[2] == "am"]
            assert tags[0] == TAG_ACTIVATE
            assert 0 in tags  # _TAG_PUT_HS
            assert any(k[2] == "rts" for k in w_to_dst)
            assert any(k[2] == "rdata" for k in w_to_dst)
            # dst → W: the GET DATA request and the rendezvous CTS.
            assert any(k[2] == "am" and k[3] == TAG_GETDATA for k in dst_to_w)
            assert any(k[2] == "cts" for k in dst_to_w)
            # Ordering: ACTIVATE injected before the data message.
            activate_i = kinds.index(("0", dst, "am", TAG_ACTIVATE)) if False else next(
                i for i, k in enumerate(kinds)
                if k == (0, dst, "am", TAG_ACTIVATE)
            )
            data_i = next(
                i for i, k in enumerate(kinds) if k[:3] == (0, dst, "rdata")
            )
            assert activate_i < data_i

    def test_small_flow_uses_eager_data(self):
        """A flow below the rendezvous threshold travels as an eager
        message — no RTS/CTS."""
        _ctx, _stats, log = run_logged("mpi", flow_bytes=4 * KiB)
        kinds = mpi_kinds(log)
        assert not any(k[2] == "rts" for k in kinds)
        assert not any(k[2] == "cts" for k in kinds)


class TestLciWireSequence:
    def test_handshake_carries_eager_payload_for_small_flows(self):
        """§5.3.3: small put data rides inside the handshake — the only LCI
        messages are AMs (ACTIVATE, GET DATA, handshake); no RTS/RTR/RDMA."""
        _ctx, _stats, log = run_logged("lci", flow_bytes=4 * KiB)
        wire_kinds = {m.payload["kind"] for m in log}
        assert wire_kinds == {"am"}

    def test_large_flow_uses_direct_protocol(self):
        _ctx, _stats, log = run_logged("lci", flow_bytes=1 * MiB)
        wire_kinds = [m.payload["kind"] for m in log]
        assert "rts" in wire_kinds
        assert "rtr" in wire_kinds
        assert "rdma" in wire_kinds

    def test_native_put_removes_rendezvous(self):
        """With the §7 one-sided put there is no RTS/RTR exchange and no
        separate handshake data tag matching — just AMs + the RDMA write."""
        _ctx, _stats, log = run_logged("lci", flow_bytes=1 * MiB, native_put=True)
        wire_kinds = [m.payload["kind"] for m in log]
        assert "rts" not in wire_kinds
        assert "rtr" not in wire_kinds
        assert "rdma" in wire_kinds

    def test_message_counts_per_destination(self):
        """Exactly one ACTIVATE, one GET DATA, one handshake and one data
        transfer per destination for the single flow."""
        _ctx, _stats, log = run_logged("lci", flow_bytes=1 * MiB)
        for dst in (1, 2):
            rdma = [m for m in log if m.src == 0 and m.dst == dst
                    and m.payload["kind"] == "rdma"]
            assert len(rdma) == 1
