"""Edge-case and failure-injection tests across subsystems."""

import pytest

from repro import errors
from repro.config import NetworkConfig, scaled_platform
from repro.network import Fabric, MessageClass, WireMessage
from repro.runtime import ParsecContext, TaskGraph
from repro.runtime.context import RunStats
from repro.sim.core import Simulator
from repro.units import KiB, MiB, US


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "SimulationError",
            "NetworkError",
            "MpiError",
            "LciError",
            "RuntimeBackendError",
            "HicmaError",
            "BenchmarkError",
        ):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError)
            assert issubclass(exc_type, Exception)


class TestSimFailurePropagation:
    def test_all_of_fails_when_child_fails(self):
        sim = Simulator()
        bad = sim.event()

        def failer():
            yield sim.timeout(0.5)
            bad.fail(RuntimeError("child died"))

        def waiter():
            yield sim.all_of([sim.timeout(1.0), bad])

        sim.process(failer())
        with pytest.raises(RuntimeError, match="child died"):
            sim.run_process(waiter())

    def test_any_of_fails_when_child_fails_first(self):
        sim = Simulator()
        bad = sim.event()

        def failer():
            yield sim.timeout(0.1)
            bad.fail(ValueError("early failure"))

        def waiter():
            yield sim.any_of([sim.timeout(10.0), bad])

        sim.process(failer())
        with pytest.raises(ValueError):
            sim.run_process(waiter())

    def test_exception_in_callback_surfaces(self):
        sim = Simulator()
        evt = sim.event()
        evt.add_callback(lambda e: (_ for _ in ()).throw(KeyError("cb")))
        evt.succeed()
        with pytest.raises(KeyError):
            sim.run()


class TestNicPriorityUnderLoad:
    def test_control_latency_flat_behind_bulk_data(self):
        """Control messages must not queue behind a large data backlog."""
        sim = Simulator()
        fabric = Fabric(sim, 2, NetworkConfig())
        ctrl_arrivals = []
        fabric.register_handler(
            1,
            "t",
            lambda m: ctrl_arrivals.append(sim.now)
            if m.msg_class == MessageClass.CONTROL
            else None,
        )
        # 16 MiB of bulk data queued first.
        for _ in range(4):
            fabric.send(
                WireMessage(src=0, dst=1, size=4 * MiB, msg_class=MessageClass.DATA, channel="t")
            )
        fabric.send(
            WireMessage(src=0, dst=1, size=128, msg_class=MessageClass.CONTROL, channel="t")
        )
        sim.run()
        assert len(ctrl_arrivals) == 1
        # Bulk alone would take ~1.3 ms; control must arrive in microseconds.
        assert ctrl_arrivals[0] < 20 * US


class TestRunStats:
    def test_summary_mentions_key_figures(self):
        stats = RunStats(
            backend="lci",
            num_nodes=4,
            workers_per_node=6,
            makespan=0.5,
            tasks_executed=100,
            flow_latencies=[1e-3, 2e-3],
            busy_time_total=6.0,
        )
        text = stats.summary()
        assert "lci" in text and "100 tasks" in text
        assert "end-to-end latency" in text

    def test_empty_latency_stats(self):
        stats = RunStats(backend="mpi", num_nodes=1, workers_per_node=2)
        assert stats.mean_flow_latency == 0.0
        assert stats.worker_utilization == 0.0

    def test_utilization_formula(self):
        stats = RunStats(
            backend="mpi",
            num_nodes=2,
            workers_per_node=2,
            makespan=1.0,
            busy_time_total=2.0,
        )
        assert stats.worker_utilization == pytest.approx(0.5)


class TestRuntimeEdges:
    def test_zero_size_flow_crosses_network(self):
        g = TaskGraph()
        t = g.add_task(node=0, duration=1e-6)
        f = g.add_flow(t, 0)
        g.add_task(node=1, duration=1e-6, inputs=[f])
        for backend in ("mpi", "lci"):
            ctx = ParsecContext(
                scaled_platform(num_nodes=2, cores_per_node=2), backend=backend
            )
            stats = ctx.run(g, until=5.0)
            assert stats.tasks_executed == 2

    def test_zero_duration_tasks(self):
        g = TaskGraph()
        prev = None
        for i in range(5):
            inputs = [prev] if prev is not None else []
            t = g.add_task(node=i % 2, duration=0.0, inputs=inputs)
            prev = g.add_flow(t, 4 * KiB)
        ctx = ParsecContext(scaled_platform(num_nodes=2, cores_per_node=2))
        stats = ctx.run(g, until=5.0)
        assert stats.tasks_executed == 5

    def test_flow_with_no_consumers(self):
        g = TaskGraph()
        t = g.add_task(node=0, duration=1e-6)
        g.add_flow(t, 1 * MiB)  # dead-end output
        g.add_task(node=0, duration=1e-6)
        ctx = ParsecContext(scaled_platform(num_nodes=1, cores_per_node=2))
        stats = ctx.run(g, until=5.0)
        assert stats.tasks_executed == 2
        assert stats.wire_bytes == 0

    def test_wide_multicast(self):
        """One flow consumed on 7 remote nodes exercises a deep tree."""
        g = TaskGraph()
        t = g.add_task(node=0, duration=1e-6)
        f = g.add_flow(t, 64 * KiB)
        for node in range(1, 8):
            g.add_task(node=node, duration=1e-6, inputs=[f])
        for backend in ("mpi", "lci"):
            ctx = ParsecContext(
                scaled_platform(num_nodes=8, cores_per_node=2), backend=backend
            )
            stats = ctx.run(g, until=5.0)
            assert stats.tasks_executed == 8
            assert len(stats.flow_latencies) == 7

    def test_self_loop_free_diamond(self):
        """Diamond dependency (two paths reconverging) on two nodes."""
        g = TaskGraph()
        a = g.add_task(node=0, duration=1e-6)
        f1 = g.add_flow(a, 8 * KiB)
        f2 = g.add_flow(a, 8 * KiB)
        b = g.add_task(node=1, duration=1e-6, inputs=[f1])
        c = g.add_task(node=1, duration=1e-6, inputs=[f2])
        fb = g.add_flow(b, 8 * KiB)
        fc = g.add_flow(c, 8 * KiB)
        g.add_task(node=0, duration=1e-6, inputs=[fb, fc])
        ctx = ParsecContext(scaled_platform(num_nodes=2, cores_per_node=2))
        stats = ctx.run(g, until=5.0)
        assert stats.tasks_executed == 4

    def test_run_reuse_rejected_semantics(self):
        """A context is one-shot: a second run on the same context must not
        silently misbehave (executed counter carries over)."""
        g = TaskGraph()
        g.add_task(node=0, duration=1e-6)
        ctx = ParsecContext(scaled_platform(num_nodes=1, cores_per_node=2))
        ctx.run(g, until=1.0)
        assert ctx.stopped is True


class TestNetpipeConfig:
    def test_custom_bandwidth_respected(self):
        from repro.network.netpipe import netpipe_bandwidth_curve
        from repro.units import gbit_per_s

        slow = NetworkConfig(bandwidth=12.5e8)  # 10 Gbit/s
        ((_, bw),) = netpipe_bandwidth_curve([8 * MiB], slow)
        assert gbit_per_s(bw) < 10.5
