"""Tests for band sizes > 1 across the DAG builder and mixed kernels."""

import numpy as np
import pytest

from repro.config import scaled_platform
from repro.errors import HicmaError
from repro.hicma import build_tlr_cholesky_graph, LowRankTile
from repro.hicma.dag import expected_task_count
from repro.hicma.kernels import gemm_mixed, syrk_mixed, trsm_mixed, potrf
from repro.runtime import ParsecContext


class TestMixedKernels:
    def setup_method(self):
        rng = np.random.default_rng(30)
        self.b = 32
        m = rng.standard_normal((self.b, self.b))
        self.spd = m @ m.T + self.b * np.eye(self.b)
        self.lkk = potrf(self.spd)
        self.dense = rng.standard_normal((self.b, self.b))
        self.lr = LowRankTile(
            rng.standard_normal((self.b, 3)), rng.standard_normal((self.b, 3))
        )
        self.lr2 = LowRankTile(
            rng.standard_normal((self.b, 2)), rng.standard_normal((self.b, 2))
        )

    def test_trsm_mixed_dispatch(self):
        out_d = trsm_mixed(self.lkk, self.dense)
        assert isinstance(out_d, np.ndarray)
        out_lr = trsm_mixed(self.lkk, self.lr)
        assert isinstance(out_lr, LowRankTile)

    def test_syrk_mixed_dispatch(self):
        c = self.spd.copy()
        out_d = syrk_mixed(c, self.dense)
        expect = c - self.dense @ self.dense.T
        assert np.allclose(out_d, expect)
        out_lr = syrk_mixed(c, self.lr)
        assert np.allclose(out_lr, c - self.lr.to_dense() @ self.lr.to_dense().T)

    @pytest.mark.parametrize("c_kind", ["dense", "lr"])
    @pytest.mark.parametrize("a_kind", ["dense", "lr"])
    @pytest.mark.parametrize("b_kind", ["dense", "lr"])
    def test_gemm_mixed_all_combinations(self, c_kind, a_kind, b_kind):
        rng = np.random.default_rng(31)
        def make(kind):
            if kind == "dense":
                return rng.standard_normal((self.b, self.b))
            return LowRankTile(
                rng.standard_normal((self.b, 3)), rng.standard_normal((self.b, 3))
            )

        c, a, bb = make(c_kind), make(a_kind), make(b_kind)
        c_dense = c if isinstance(c, np.ndarray) else c.to_dense()
        a_dense = a if isinstance(a, np.ndarray) else a.to_dense()
        b_dense = bb if isinstance(bb, np.ndarray) else bb.to_dense()
        expect = c_dense - a_dense @ b_dense.T
        out = gemm_mixed(c, a, bb, tol=1e-12, maxrank=self.b)
        out_dense = out if isinstance(out, np.ndarray) else out.to_dense()
        scale = 1 + np.abs(expect).max()
        assert np.allclose(out_dense, expect, atol=1e-7 * scale)
        # Result class follows the target tile's class.
        assert isinstance(out, np.ndarray) == (c_kind == "dense")


class TestBandDag:
    def test_band_preserves_task_count(self):
        for band in (1, 2, 3):
            g = build_tlr_cholesky_graph(8, 512, num_nodes=2, band=band)
            assert g.num_tasks == expected_task_count(8)
            g.validate(num_nodes=2)

    def test_wider_band_moves_more_bytes(self):
        g1 = build_tlr_cholesky_graph(10, 960, num_nodes=4, band=1)
        g3 = build_tlr_cholesky_graph(10, 960, num_nodes=4, band=3)
        assert g3.total_remote_bytes() > g1.total_remote_bytes()

    def test_invalid_band_rejected(self):
        with pytest.raises(HicmaError, match="band"):
            build_tlr_cholesky_graph(4, 512, num_nodes=1, band=0)

    @pytest.mark.parametrize("backend", ["mpi", "lci"])
    def test_band_graph_executes(self, backend):
        g = build_tlr_cholesky_graph(8, 960, num_nodes=4, band=2)
        ctx = ParsecContext(
            scaled_platform(num_nodes=4, cores_per_node=4), backend=backend
        )
        stats = ctx.run(g, until=120.0)
        assert stats.tasks_executed == g.num_tasks
