"""Tests for clocks/synchronisation, RNG streams, and tracing."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import ClockEnsemble, NodeClock, RngStreams, TraceRecorder, hunold_synchronize


class TestNodeClock:
    def test_identity_clock(self):
        clk = NodeClock()
        assert clk.local(10.0) == 10.0

    def test_offset_and_drift(self):
        clk = NodeClock(offset=0.5, drift=1e-3)
        assert clk.local(100.0) == pytest.approx(100.0 * 1.001 + 0.5)

    def test_roundtrip(self):
        clk = NodeClock(offset=-0.2, drift=5e-6)
        t = 123.456
        assert clk.to_global(clk.local(t)) == pytest.approx(t)


class TestClockEnsemble:
    def test_node0_is_reference(self):
        ens = ClockEnsemble(4, rng=np.random.default_rng(1))
        assert ens.clocks[0].offset == 0.0
        assert ens.clocks[0].drift == 0.0

    def test_offsets_within_spread(self):
        ens = ClockEnsemble(16, rng=np.random.default_rng(2), offset_spread=1e-3)
        for clk in ens.clocks[1:]:
            assert abs(clk.offset) <= 1e-3

    def test_needs_positive_size(self):
        with pytest.raises(SimulationError):
            ClockEnsemble(0)

    def test_synchronize_reduces_offset_error(self):
        ens = ClockEnsemble(8, rng=np.random.default_rng(3), offset_spread=5e-3)
        rtt = 3e-6
        ens.synchronize(global_time=0.0, rtt=rtt, rng=np.random.default_rng(4))
        # After sync, corrected timestamps should agree across nodes to within
        # a few RTTs (the estimator error), vs. milliseconds before.
        t = 1.0
        corrected = [ens.corrected(i, ens.local(i, t)) for i in range(8)]
        spread = max(corrected) - min(corrected)
        assert spread < 20 * rtt
        raw_spread = max(ens.local(i, t) for i in range(8)) - min(
            ens.local(i, t) for i in range(8)
        )
        assert spread < raw_spread / 50


class TestHunoldSynchronize:
    def test_perfect_clocks_yield_near_zero_offsets(self):
        # The estimator has inherent path-asymmetry noise of order rtt/2, so
        # "perfect" clocks still show sub-RTT residuals.
        rtt = 2e-6
        clocks = [NodeClock() for _ in range(6)]
        est = hunold_synchronize(clocks, 0.0, rtt=rtt, rng=np.random.default_rng(0))
        assert est == pytest.approx([0.0] * 6, abs=rtt / 2)

    def test_recovers_known_offsets(self):
        true_offsets = [0.0, 1e-3, -2e-3, 3e-3, 0.5e-3]
        clocks = [NodeClock(offset=o) for o in true_offsets]
        est = hunold_synchronize(clocks, 0.0, rtt=2e-6, rng=np.random.default_rng(5))
        for e, o in zip(est, true_offsets):
            assert e == pytest.approx(o, abs=1e-6)

    def test_rejects_bad_rtt(self):
        with pytest.raises(SimulationError):
            hunold_synchronize([NodeClock()], 0.0, rtt=0.0)

    def test_group_structure_covers_all_nodes(self):
        clocks = [NodeClock(offset=i * 1e-4) for i in range(10)]
        est = hunold_synchronize(
            clocks, 0.0, rtt=2e-6, group_size=3, rng=np.random.default_rng(6)
        )
        assert len(est) == 10
        for i, e in enumerate(est):
            assert e == pytest.approx(i * 1e-4, abs=1e-6)


class TestRngStreams:
    def test_same_name_same_stream_state(self):
        a = RngStreams(seed=7).get("net")
        b = RngStreams(seed=7).get("net")
        assert np.allclose(a.random(10), b.random(10))

    def test_different_names_independent(self):
        streams = RngStreams(seed=7)
        x = streams.get("net").random(10)
        y = streams.get("kernel").random(10)
        assert not np.allclose(x, y)

    def test_different_seeds_differ(self):
        x = RngStreams(seed=1).get("net").random(10)
        y = RngStreams(seed=2).get("net").random(10)
        assert not np.allclose(x, y)

    def test_get_is_cached(self):
        streams = RngStreams(seed=3)
        assert streams.get("a") is streams.get("a")

    def test_spawn_independent(self):
        parent = RngStreams(seed=9)
        child = parent.spawn("worker0")
        assert not np.allclose(parent.get("x").random(5), child.get("x").random(5))


class TestTraceRecorder:
    def test_records_and_filters(self):
        tr = TraceRecorder()
        tr.record(1.0, "send", node=0, key="m1")
        tr.record(2.0, "recv", node=1, key="m1")
        tr.record(3.0, "send", node=0, key="m2")
        assert len(tr) == 3
        assert [e.time for e in tr.by_kind("send")] == [1.0, 3.0]
        assert [e.kind for e in tr.by_key("m1")] == ["send", "recv"]

    def test_disabled_recorder_is_noop(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "send", node=0)
        assert len(tr) == 0

    def test_clear(self):
        tr = TraceRecorder()
        tr.record(1.0, "x", node=0)
        tr.clear()
        assert len(tr) == 0

    def test_local_time_field(self):
        tr = TraceRecorder()
        tr.record(1.0, "send", node=2, local_time=1.005)
        assert tr.events[0].local_time == 1.005
