"""Overhead guard: the disabled observability path must be free.

The tentpole requirement is that instrumenting every layer costs nothing
when observability is off — :data:`repro.obs.NULL_BUS` must not allocate
per event, runs must default to it, and results must be bit-identical with
the bus on or off.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.obs import NULL_BUS, ObsBus
from repro.runtime import ParsecContext, TaskGraph
from repro.config import scaled_platform
from repro.units import KiB

BACKENDS = ["mpi", "lci"]


def small_graph(num_nodes=2):
    g = TaskGraph()
    a = g.add_task(node=0, duration=10e-6, kind="A")
    f1 = g.add_flow(a, 64 * KiB)
    b = g.add_task(node=1, duration=10e-6, inputs=[f1], kind="B")
    f2 = g.add_flow(b, 64 * KiB)
    g.add_task(node=0, duration=10e-6, inputs=[f2], kind="C")
    return g


class TestNullPathAllocation:
    def test_no_per_event_allocation(self):
        """50k no-op emits/incs/observes must not allocate per call.

        A small constant slack absorbs interpreter noise (code objects,
        tracemalloc's own bookkeeping); anything per-event would show up as
        hundreds of KiB here.
        """
        bus = NULL_BUS
        counter = bus.counter("c", 0)
        histogram = bus.histogram("h", 0)
        # Warm up any lazy interpreter state outside the measured window.
        bus.emit("warm", 0, key=(0, 1), info="x")
        counter.inc()
        histogram.observe(1)
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for i in range(50_000):
                bus.emit("k", 0)
                counter.inc()
                histogram.observe(i)
                bus.span("s", 0).end()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 16 * 1024, (
            f"disabled obs path allocated {after - before} bytes over 200k calls"
        )

    def test_null_emit_avoids_arg_construction(self):
        """Hot call sites guard with ``bus.enabled`` so the disabled path
        never even builds key/info tuples; the flag must be a plain False."""
        assert NULL_BUS.enabled is False
        assert ObsBus().enabled is True


@pytest.mark.parametrize("backend", BACKENDS)
class TestDisabledByDefault:
    def test_context_defaults_to_null_bus(self, backend):
        ctx = ParsecContext(scaled_platform(num_nodes=2), backend=backend)
        assert ctx.obs is NULL_BUS
        assert ctx.trace is None
        assert ctx.sim.obs is NULL_BUS
        assert ctx.fabric.obs is NULL_BUS
        for engine in ctx.engines:
            assert engine.obs is NULL_BUS

    def test_disabled_run_records_nothing(self, backend):
        ctx = ParsecContext(scaled_platform(num_nodes=2), backend=backend)
        stats = ctx.run(small_graph(), until=1.0)
        assert stats.tasks_executed == 3
        assert stats.obs_counters == {}


@pytest.mark.parametrize("backend", BACKENDS)
class TestObservabilityInvariance:
    def test_results_identical_on_and_off(self, backend):
        """The bus observes; it must not perturb the simulation."""
        runs = {}
        for obs_on in (False, True):
            ctx = ParsecContext(
                scaled_platform(num_nodes=2), backend=backend, observability=obs_on
            )
            stats = ctx.run(small_graph(), until=1.0)
            runs[obs_on] = stats
        assert runs[True].makespan == runs[False].makespan
        assert runs[True].tasks_executed == runs[False].tasks_executed
        assert runs[True].events_processed == runs[False].events_processed
        assert runs[True].flow_latencies == runs[False].flow_latencies
        assert runs[True].wire_bytes == runs[False].wire_bytes
        # And the observed run actually observed something.
        assert runs[True].obs_counters["net.wire_msgs"] > 0
        assert runs[True].obs_counters["parsec.am_sent"] > 0
