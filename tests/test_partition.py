"""Partitioned PDES engine: horizon algorithm, supervision, and the
unified ``partitions=`` API surface.

The full bit-identity matrix (every catalog workload, both backends,
partitions ∈ {1, 2, 4}) lives in ``tools/check_fault_determinism.py`` and
``tools/bench_ab.py``; here we cover the horizon algorithm's edge cases
(zero-latency self-channels, route invalidation across a partition
boundary), worker-death salvage, guard-abort parity, the
``build_simulator`` deprecation shim, the deterministic ``(inject, src,
seq)`` NIC tie-break, the NIC-collision workloads, and the batched
sync-window protocol (``PartitionConfig.window_batch``).
"""

import dataclasses
import warnings

import pytest

from repro.api import Experiment
from repro.config import PartitionConfig, as_partition_config
from repro.errors import ConfigError, NetworkError, RunBudgetExceeded
from repro.network.fabric import Fabric, PartitionFabric, partition_owner
from repro.sim import build_simulator
from repro.sim.core import Simulator
from repro.sim.partition import PartitionSimulator, lookahead_bound


class _StubFabric:
    """Minimal fabric: per-pair latencies, zero-latency self-channels."""

    def __init__(self, num_nodes, cross_latency):
        self.num_nodes = num_nodes
        self._cross = cross_latency

    def base_latency(self, src, dst):
        if src == dst:
            return 0.0
        return self._cross


class TestLookahead:
    def test_zero_latency_self_channels_do_not_collapse_lookahead(self):
        # Loopback is a zero-latency self-channel; the bound must come
        # from the cross-node pairs only, or every window would be empty.
        assert lookahead_bound(_StubFabric(4, 2e-6)) == 2e-6

    def test_single_node_fabric_has_infinite_lookahead(self):
        assert lookahead_bound(_StubFabric(1, 0.0)) == float("inf")

    def test_zero_cross_latency_is_rejected(self):
        # A zero-latency *wire* link would mean zero lookahead: the
        # conservative horizon could never advance.
        with pytest.raises(NetworkError):
            lookahead_bound(_StubFabric(2, 0.0))

    def test_real_fabric_bound_is_positive(self):
        fab = Fabric(Simulator(), 4)
        bound = lookahead_bound(fab)
        assert 0.0 < bound < float("inf")


class TestRouteInvalidation:
    def test_invalidate_route_across_partition_boundary(self):
        # owner = [0, 0, 1, 1]: route 1 -> 2 crosses the boundary.  The
        # fault engine's invalidate_route hook must recompute the same
        # latency (no fault plan installed), leaving the lookahead bound
        # the horizon algorithm derived intact.
        owner = partition_owner(4, 2)
        fab = PartitionFabric(
            Simulator(), 4, owner=owner, local_partition=0
        )
        assert fab.owner_of(1) != fab.owner_of(2)
        before = fab.base_latency(1, 2)
        bound = lookahead_bound(fab)
        fab.invalidate_route(1, 2)
        assert fab.base_latency(1, 2) == before
        assert lookahead_bound(fab) == bound

    def test_fault_engine_is_rejected_by_partition_fabric(self):
        # The layered ban: fault RNG draws follow global send order no
        # worker observes, so an enabled fault plan cannot ride a
        # partitioned fabric.
        from repro.faults.engine import FaultEngine
        from repro.faults.plans import fault_plan
        from repro.sim.rng import RngStreams

        sim = Simulator()
        engine = FaultEngine(fault_plan("chaos"), sim=sim,
                             rng=RngStreams(seed=0))
        with pytest.raises(NetworkError):
            PartitionFabric(
                sim, 4, faults=engine,
                owner=partition_owner(4, 2), local_partition=0,
            )

    def test_faulted_partitioned_run_is_rejected_eagerly(self):
        exp = Experiment(
            workload="ring", backend="lci", nodes=4,
            faults="chaos", partitions=2,
        )
        with pytest.raises(ConfigError):
            exp.run()


class TestSupervision:
    def test_sigkill_mid_run_is_salvaged(self, monkeypatch):
        # Worker 0 SIGKILLs itself at window 1 of the first attempt; the
        # supervised retry must complete with results identical to an
        # undisturbed partitioned run.
        kwargs = dict(workload="ring", backend="lci", nodes=4, steps=8)
        clean = Experiment(partitions=2, **kwargs).run()
        monkeypatch.setenv("REPRO_PARTITION_CHAOS", "kill:0:1")
        salvaged = Experiment(partitions=2, **kwargs).run()
        assert salvaged == clean

    def test_guard_abort_parity_serial_vs_partitioned(self):
        # Both engines must abort a guarded run structurally: a
        # RunBudgetExceeded carrying a diagnostic snapshot and salvaged
        # partial stats (budgets are per worker in the partitioned run).
        from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark
        from repro.supervise import RunGuards

        cfg = HicmaConfig(matrix_size=2048, tile_size=256, num_nodes=4)

        def aborted(partitions):
            with pytest.raises(RunBudgetExceeded) as info:
                run_hicma_benchmark(
                    "lci", cfg,
                    guards=RunGuards(max_events=1000, check_every=256),
                    partitions=partitions,
                )
            return info.value
        serial = aborted(None)
        partitioned = aborted(2)
        for exc in (serial, partitioned):
            assert exc.snapshot and "reason" in exc.snapshot
            assert exc.partial is not None
            assert exc.partial.tasks_executed >= 0


class TestBuildSimulatorShim:
    def test_direct_construction_warns_and_delegates(self):
        import repro.sim as sim_mod

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = sim_mod.Simulator()
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert isinstance(shim, Simulator)

    def test_shim_schedules_identically_to_factory(self):
        import repro.sim as sim_mod

        def drive(sim):
            def proc():
                for _ in range(5):
                    yield 1e-6
            sim.process(proc())
            sim.run()
            return sim.now, sim.events_processed

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert drive(sim_mod.Simulator()) == drive(build_simulator())

    def test_factory_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sim = build_simulator()
        assert isinstance(sim, Simulator)
        assert not isinstance(sim, PartitionSimulator)

    def test_factory_builds_partition_kernel(self):
        sim = build_simulator(PartitionConfig(partitions=2))
        assert isinstance(sim, PartitionSimulator)
        assert sim.windows_run == 0

    def test_factory_rejects_garbage(self):
        with pytest.raises(ConfigError):
            build_simulator("four")


class TestPartitionsApiSurface:
    def test_experiment_validates_partitions_eagerly(self):
        with pytest.raises(ConfigError):
            Experiment(workload="ring", partitions=0)
        with pytest.raises(ConfigError):
            Experiment(workload="ring", partitions="two")

    def test_as_partition_config_forms(self):
        assert as_partition_config(None) is None
        pcfg = as_partition_config(3)
        assert isinstance(pcfg, PartitionConfig) and pcfg.partitions == 3
        assert as_partition_config(pcfg) is pcfg
        with pytest.raises(ConfigError):
            as_partition_config(True)

    def test_partition_config_codec_roundtrip(self):
        pcfg = PartitionConfig(partitions=4, heartbeat_timeout=5.0)
        assert PartitionConfig.from_dict(pcfg.to_dict()) == pcfg

    def test_unsupported_workload_rejects_partitions(self):
        exp = Experiment(
            workload="pingpong", fragment_size=256 * 1024, partitions=2
        )
        with pytest.raises(ConfigError, match="does not support partitioned"):
            exp.run()

    def test_partitioned_matches_serial(self):
        kwargs = dict(workload="stencil", backend="mpi", nodes=4,
                      grid=4, steps=4)
        serial = dataclasses.asdict(Experiment(**kwargs).run())
        part = dataclasses.asdict(Experiment(partitions=2, **kwargs).run())
        # Full-record equality, events_processed included: both engines
        # schedule the identical kernel event set now that wire ejection
        # is deferred to end of epoch and replayed in (inject, src, seq)
        # order in either engine.
        assert part == serial

    @pytest.mark.parametrize("workload,partitions", [
        ("alltoall", 4),
        ("taskbench", 2),
        ("taskbench", 4),
    ])
    def test_collision_workloads_bit_identical_on_lci(
        self, workload, partitions
    ):
        # alltoall/taskbench pile many same-timestamp cross-partition
        # sends onto single destination NICs — the exact tie the
        # (inject, src, seq) ejection order exists to break.
        kwargs = dict(workload=workload, backend="lci", nodes=4, seed=3)
        serial = dataclasses.asdict(Experiment(**kwargs).run())
        part = dataclasses.asdict(
            Experiment(partitions=partitions, **kwargs).run()
        )
        assert part == serial


class TestWindowBatch:
    def test_window_batch_validation(self):
        for bad in (0, -1, True, 1.5, "8"):
            with pytest.raises(ConfigError):
                PartitionConfig(partitions=2, window_batch=bad)

    def test_codec_roundtrip_carries_window_batch(self):
        pcfg = PartitionConfig(partitions=4, window_batch=7)
        assert PartitionConfig.from_dict(pcfg.to_dict()) == pcfg
        assert pcfg.to_dict()["window_batch"] == 7

    def test_batched_matches_classic_with_fewer_roundtrips(self):
        # The batched sync protocol must change only the transport
        # (pairwise worker pipes instead of coordinator round-trips),
        # never the simulation: full-record bit-identity, with
        # coordinator contact cut by roughly 2x the batch length.
        kwargs = dict(workload="stencil", backend="lci", nodes=4,
                      grid=4, steps=4)
        classic = Experiment(
            partitions=PartitionConfig(partitions=2, window_batch=1),
            **kwargs,
        ).run()
        batched = Experiment(
            partitions=PartitionConfig(partitions=2, window_batch=64),
            **kwargs,
        ).run()
        assert dataclasses.asdict(batched) == dataclasses.asdict(classic)
        c_sync, b_sync = classic.partition_sync, batched.partition_sync
        assert c_sync["sync_windows"] == b_sync["sync_windows"]
        assert c_sync["coordinator_roundtrips"] >= 2 * c_sync["sync_windows"]
        assert (
            b_sync["coordinator_roundtrips"]
            <= c_sync["coordinator_roundtrips"] / 10
        )

    def test_env_override_applies_per_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITION_WINDOW_BATCH", "3")
        result = Experiment(
            workload="ring", backend="lci", nodes=4, steps=8, partitions=2,
        ).run()
        assert result.partition_sync["window_batch"] == 3

    def test_env_override_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITION_WINDOW_BATCH", "lots")
        with pytest.raises(ConfigError):
            Experiment(
                workload="ring", backend="lci", nodes=4, partitions=2,
            ).run()

    def test_serial_result_has_no_sync_telemetry(self):
        result = Experiment(
            workload="ring", backend="lci", nodes=4, steps=8,
        ).run()
        assert not hasattr(result, "partition_sync")
        # And the telemetry never leaks into the comparable fingerprint.
        part = Experiment(
            workload="ring", backend="lci", nodes=4, steps=8, partitions=2,
        ).run()
        assert "partition_sync" not in dataclasses.asdict(part)


class TestNicTieBreak:
    def _deliveries(self, send_order):
        """Send two same-timestamp wire messages into one NIC from two
        source ranks (in ``send_order``), then eject in canonical order;
        return the per-source delivery times."""
        from repro.network.fabric import WIRE_MERGE_KEY
        from repro.network.message import MessageClass, WireMessage

        owner = partition_owner(4, 2)
        send_fab = PartitionFabric(
            Simulator(), 4, owner=owner, local_partition=0
        )
        recv_fab = PartitionFabric(
            Simulator(), 4, owner=owner, local_partition=1
        )
        for node in range(4):
            send_fab.register_handler(node, "t", lambda msg: None)
            recv_fab.register_handler(node, "t", lambda msg: None)
        for src in send_order:
            send_fab.send(WireMessage(
                src=src, dst=2, size=4096,
                msg_class=MessageClass.CONTROL, channel="t",
            ))
        records = sorted(send_fab.take_outbox(), key=WIRE_MERGE_KEY)
        assert [r.src for r in records] == sorted(send_order)
        assert len({r.inject for r in records}) == 1  # a genuine tie
        out = {}
        for rec in records:
            _msg, deliver, when, _handler = recv_fab.eject_delivery(rec)
            out[rec.src] = (deliver, when)
        return out

    def test_equal_timestamp_ejection_order_is_canonical(self):
        # Destination-NIC ejection is order-sensitive (receiver
        # contention); the canonical (inject, src, seq) order must make
        # the outcome independent of which source's send() ran first.
        assert self._deliveries([0, 1]) == self._deliveries([1, 0])
