"""Partitioned PDES engine: horizon algorithm, supervision, and the
unified ``partitions=`` API surface.

The bit-identity matrix itself (every catalog workload, both backends,
partitions ∈ {1, 2, 4}) lives in ``tools/check_fault_determinism.py`` and
``tools/bench_ab.py``; here we cover the horizon algorithm's edge cases
(zero-latency self-channels, route invalidation across a partition
boundary), worker-death salvage, guard-abort parity, and the
``build_simulator`` deprecation shim.
"""

import dataclasses
import warnings

import pytest

from repro.api import Experiment
from repro.config import PartitionConfig, as_partition_config
from repro.errors import ConfigError, NetworkError, RunBudgetExceeded
from repro.network.fabric import Fabric, PartitionFabric, partition_owner
from repro.sim import build_simulator
from repro.sim.core import Simulator
from repro.sim.partition import PartitionSimulator, lookahead_bound


class _StubFabric:
    """Minimal fabric: per-pair latencies, zero-latency self-channels."""

    def __init__(self, num_nodes, cross_latency):
        self.num_nodes = num_nodes
        self._cross = cross_latency

    def base_latency(self, src, dst):
        if src == dst:
            return 0.0
        return self._cross


class TestLookahead:
    def test_zero_latency_self_channels_do_not_collapse_lookahead(self):
        # Loopback is a zero-latency self-channel; the bound must come
        # from the cross-node pairs only, or every window would be empty.
        assert lookahead_bound(_StubFabric(4, 2e-6)) == 2e-6

    def test_single_node_fabric_has_infinite_lookahead(self):
        assert lookahead_bound(_StubFabric(1, 0.0)) == float("inf")

    def test_zero_cross_latency_is_rejected(self):
        # A zero-latency *wire* link would mean zero lookahead: the
        # conservative horizon could never advance.
        with pytest.raises(NetworkError):
            lookahead_bound(_StubFabric(2, 0.0))

    def test_real_fabric_bound_is_positive(self):
        fab = Fabric(Simulator(), 4)
        bound = lookahead_bound(fab)
        assert 0.0 < bound < float("inf")


class TestRouteInvalidation:
    def test_invalidate_route_across_partition_boundary(self):
        # owner = [0, 0, 1, 1]: route 1 -> 2 crosses the boundary.  The
        # fault engine's invalidate_route hook must recompute the same
        # latency (no fault plan installed), leaving the lookahead bound
        # the horizon algorithm derived intact.
        owner = partition_owner(4, 2)
        fab = PartitionFabric(
            Simulator(), 4, owner=owner, local_partition=0
        )
        assert fab.owner_of(1) != fab.owner_of(2)
        before = fab.base_latency(1, 2)
        bound = lookahead_bound(fab)
        fab.invalidate_route(1, 2)
        assert fab.base_latency(1, 2) == before
        assert lookahead_bound(fab) == bound

    def test_fault_engine_is_rejected_by_partition_fabric(self):
        # The layered ban: fault RNG draws follow global send order no
        # worker observes, so an enabled fault plan cannot ride a
        # partitioned fabric.
        from repro.faults.engine import FaultEngine
        from repro.faults.plans import fault_plan
        from repro.sim.rng import RngStreams

        sim = Simulator()
        engine = FaultEngine(fault_plan("chaos"), sim=sim,
                             rng=RngStreams(seed=0))
        with pytest.raises(NetworkError):
            PartitionFabric(
                sim, 4, faults=engine,
                owner=partition_owner(4, 2), local_partition=0,
            )

    def test_faulted_partitioned_run_is_rejected_eagerly(self):
        exp = Experiment(
            workload="ring", backend="lci", nodes=4,
            faults="chaos", partitions=2,
        )
        with pytest.raises(ConfigError):
            exp.run()


class TestSupervision:
    def test_sigkill_mid_run_is_salvaged(self, monkeypatch):
        # Worker 0 SIGKILLs itself at window 1 of the first attempt; the
        # supervised retry must complete with results identical to an
        # undisturbed partitioned run.
        kwargs = dict(workload="ring", backend="lci", nodes=4, steps=8)
        clean = Experiment(partitions=2, **kwargs).run()
        monkeypatch.setenv("REPRO_PARTITION_CHAOS", "kill:0:1")
        salvaged = Experiment(partitions=2, **kwargs).run()
        assert salvaged == clean

    def test_guard_abort_parity_serial_vs_partitioned(self):
        # Both engines must abort a guarded run structurally: a
        # RunBudgetExceeded carrying a diagnostic snapshot and salvaged
        # partial stats (budgets are per worker in the partitioned run).
        from repro.bench.hicma_bench import HicmaConfig, run_hicma_benchmark
        from repro.supervise import RunGuards

        cfg = HicmaConfig(matrix_size=2048, tile_size=256, num_nodes=4)

        def aborted(partitions):
            with pytest.raises(RunBudgetExceeded) as info:
                run_hicma_benchmark(
                    "lci", cfg,
                    guards=RunGuards(max_events=1000, check_every=256),
                    partitions=partitions,
                )
            return info.value
        serial = aborted(None)
        partitioned = aborted(2)
        for exc in (serial, partitioned):
            assert exc.snapshot and "reason" in exc.snapshot
            assert exc.partial is not None
            assert exc.partial.tasks_executed >= 0


class TestBuildSimulatorShim:
    def test_direct_construction_warns_and_delegates(self):
        import repro.sim as sim_mod

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = sim_mod.Simulator()
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert isinstance(shim, Simulator)

    def test_shim_schedules_identically_to_factory(self):
        import repro.sim as sim_mod

        def drive(sim):
            def proc():
                for _ in range(5):
                    yield 1e-6
            sim.process(proc())
            sim.run()
            return sim.now, sim.events_processed

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert drive(sim_mod.Simulator()) == drive(build_simulator())

    def test_factory_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sim = build_simulator()
        assert isinstance(sim, Simulator)
        assert not isinstance(sim, PartitionSimulator)

    def test_factory_builds_partition_kernel(self):
        sim = build_simulator(PartitionConfig(partitions=2))
        assert isinstance(sim, PartitionSimulator)
        assert sim.windows_run == 0

    def test_factory_rejects_garbage(self):
        with pytest.raises(ConfigError):
            build_simulator("four")


class TestPartitionsApiSurface:
    def test_experiment_validates_partitions_eagerly(self):
        with pytest.raises(ConfigError):
            Experiment(workload="ring", partitions=0)
        with pytest.raises(ConfigError):
            Experiment(workload="ring", partitions="two")

    def test_as_partition_config_forms(self):
        assert as_partition_config(None) is None
        pcfg = as_partition_config(3)
        assert isinstance(pcfg, PartitionConfig) and pcfg.partitions == 3
        assert as_partition_config(pcfg) is pcfg
        with pytest.raises(ConfigError):
            as_partition_config(True)

    def test_partition_config_codec_roundtrip(self):
        pcfg = PartitionConfig(partitions=4, heartbeat_timeout=5.0)
        assert PartitionConfig.from_dict(pcfg.to_dict()) == pcfg

    def test_unsupported_workload_rejects_partitions(self):
        exp = Experiment(
            workload="pingpong", fragment_size=256 * 1024, partitions=2
        )
        with pytest.raises(ConfigError, match="does not support partitioned"):
            exp.run()

    def test_partitioned_matches_serial(self):
        kwargs = dict(workload="stencil", backend="mpi", nodes=4,
                      grid=4, steps=4)
        serial = dataclasses.asdict(Experiment(**kwargs).run())
        part = dataclasses.asdict(Experiment(partitions=2, **kwargs).run())
        # Kernel event counts differ by construction (delivery-driven
        # completions); every simulated outcome must not.
        serial.pop("events_processed")
        part.pop("events_processed")
        assert part == serial
