"""Tests for the worker-occupancy timeline (Gantt) analysis."""

import pytest

from repro.analysis.gantt import Interval, occupancy, render_gantt, worker_intervals
from repro.bench.workloads import chain, fan_out
from repro.config import scaled_platform
from repro.runtime import ParsecContext
from repro.sim.trace import TraceRecorder


class TestIntervalExtraction:
    def test_manual_trace(self):
        tr = TraceRecorder()
        tr.record(0.0, "task_exec", 0, key=(0, 0), info=("potrf", 1.0))
        tr.record(2.0, "task_exec", 0, key=(0, 0), info=("gemm", 0.5))
        tr.record(0.5, "task_exec", 0, key=(0, 1), info=("trsm", 1.0))
        ivs = worker_intervals(tr)
        assert set(ivs) == {(0, 0), (0, 1)}
        assert [iv.kind for iv in ivs[(0, 0)]] == ["potrf", "gemm"]
        assert ivs[(0, 0)][1].end == 2.5

    def test_occupancy_fractions(self):
        ivs = {
            (0, 0): [Interval(0.0, 1.0, "a"), Interval(3.0, 1.0, "b")],
            (0, 1): [Interval(0.0, 4.0, "c")],
        }
        occ = occupancy(ivs, t_end=4.0)
        assert occ[(0, 0)] == pytest.approx(0.5)
        assert occ[(0, 1)] == pytest.approx(1.0)

    def test_empty_trace_message(self):
        assert "collect_traces" in render_gantt(TraceRecorder())


class TestRenderFromRuns:
    def _run(self, graph, nodes=2):
        ctx = ParsecContext(
            scaled_platform(num_nodes=nodes, cores_per_node=2),
            backend="lci",
            collect_traces=True,
        )
        ctx.run(graph, until=10.0)
        return ctx

    def test_chart_contains_all_workers(self):
        ctx = self._run(fan_out(consumers_per_node=4, num_nodes=2, duration=20e-6))
        out = render_gantt(ctx.trace)
        assert "n0" in out and "n1" in out
        assert "#" in out or "." in out
        assert "%" in out

    def test_chain_shows_alternating_idle(self):
        """A strict chain across two nodes keeps each node idle half the
        time — occupancy must reflect that."""
        ctx = self._run(chain(20, num_nodes=2, duration=50e-6))
        occ = occupancy(worker_intervals(ctx.trace))
        # One worker per node did all the work, alternating: < 75% busy.
        assert all(v < 0.75 for v in occ.values())

    def test_max_workers_truncation(self):
        ctx = self._run(fan_out(consumers_per_node=4, num_nodes=2, duration=20e-6))
        out = render_gantt(ctx.trace, max_workers=1)
        assert "more workers" in out
