"""Tests for the task-graph model."""

import pytest

from repro.errors import RuntimeBackendError
from repro.runtime import TaskGraph
from repro.runtime.node import binomial_tree
from repro.units import KiB


class TestTaskGraphConstruction:
    def test_add_task_and_flow(self):
        g = TaskGraph()
        a = g.add_task(node=0, duration=1e-6)
        f = g.add_flow(a, 4 * KiB)
        b = g.add_task(node=1, duration=1e-6, inputs=[f])
        assert g.num_tasks == 2
        assert g.num_flows == 1
        assert g.flows[f].consumers == (b,)
        assert g.tasks[a].outputs == (f,)
        assert g.tasks[b].inputs == (f,)

    def test_unknown_input_flow_rejected(self):
        g = TaskGraph()
        with pytest.raises(RuntimeBackendError, match="unknown input flow"):
            g.add_task(node=0, duration=0, inputs=[99])

    def test_unknown_producer_rejected(self):
        g = TaskGraph()
        with pytest.raises(RuntimeBackendError, match="unknown"):
            g.add_flow(5, 100)

    def test_negative_duration_rejected(self):
        g = TaskGraph()
        with pytest.raises(RuntimeBackendError, match="negative duration"):
            g.add_task(node=0, duration=-1.0)

    def test_negative_flow_size_rejected(self):
        g = TaskGraph()
        a = g.add_task(node=0, duration=0)
        with pytest.raises(RuntimeBackendError, match="negative size"):
            g.add_flow(a, -5)

    def test_source_tasks(self):
        g = TaskGraph()
        a = g.add_task(node=0, duration=0)
        f = g.add_flow(a, 1)
        g.add_task(node=0, duration=0, inputs=[f])
        assert g.source_tasks() == [a]

    def test_consumer_nodes(self):
        g = TaskGraph()
        a = g.add_task(node=0, duration=0)
        f = g.add_flow(a, 1)
        g.add_task(node=1, duration=0, inputs=[f])
        g.add_task(node=2, duration=0, inputs=[f])
        g.add_task(node=1, duration=0, inputs=[f])
        assert g.consumer_nodes(g.flows[f]) == {1, 2}

    def test_total_remote_bytes(self):
        g = TaskGraph()
        a = g.add_task(node=0, duration=0)
        f = g.add_flow(a, 1000)
        g.add_task(node=0, duration=0, inputs=[f])  # local: free
        g.add_task(node=1, duration=0, inputs=[f])
        g.add_task(node=2, duration=0, inputs=[f])
        assert g.total_remote_bytes() == 2000


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(RuntimeBackendError, match="empty"):
            TaskGraph().validate()

    def test_bad_node_placement_rejected(self):
        g = TaskGraph()
        g.add_task(node=5, duration=0)
        with pytest.raises(RuntimeBackendError, match="outside"):
            g.validate(num_nodes=2)

    def test_valid_dag_passes(self):
        g = TaskGraph()
        a = g.add_task(node=0, duration=0)
        f = g.add_flow(a, 1)
        g.add_task(node=0, duration=0, inputs=[f])
        g.validate(num_nodes=1)

    def test_cycle_detected(self):
        g = TaskGraph()
        a = g.add_task(node=0, duration=0)
        fa = g.add_flow(a, 1)
        b = g.add_task(node=0, duration=0, inputs=[fa])
        fb = g.add_flow(b, 1)
        # Manually wire a back-edge a <- b to create a cycle.
        g.tasks[a].inputs = (fb,)
        g.flows[fb].consumers = (a,)
        with pytest.raises(RuntimeBackendError, match="no source|cycle"):
            g.validate()

    def test_cycle_diagnostics_name_remaining_tasks(self):
        g = TaskGraph()
        src = g.add_task(node=0, duration=0)
        fs = g.add_flow(src, 1)
        a = g.add_task(node=0, duration=0, inputs=[fs], kind="potrf")
        fa = g.add_flow(a, 1)
        b = g.add_task(node=1, duration=0, inputs=[fa], kind="trsm")
        fb = g.add_flow(b, 1)
        # Back-edge b -> a: a and b form a cycle, src stays a source.
        g.tasks[a].inputs = (fs, fb)
        g.flows[fb].consumers = (a,)
        with pytest.raises(RuntimeBackendError) as exc:
            g.validate()
        msg = str(exc.value)
        assert "2 tasks unreachable" in msg
        assert f"task {a} (potrf@n0" in msg
        assert f"task {b} (trsm@n1" in msg

    def test_validate_memo_cleared_by_structural_edits(self):
        g = TaskGraph()
        a = g.add_task(node=0, duration=0)
        g.validate(num_nodes=1)
        g.validate(num_nodes=1)  # memo hit: no-op
        g.add_task(node=5, duration=0)
        with pytest.raises(RuntimeBackendError, match="outside"):
            g.validate(num_nodes=1)


class TestBinomialTree:
    def test_single_node(self):
        assert binomial_tree([7]) == (7, ())

    def test_two_nodes(self):
        assert binomial_tree([0, 1]) == (0, ((1, ()),))

    def test_four_nodes_structure(self):
        root, children = binomial_tree([0, 1, 2, 3])
        assert root == 0
        assert [c[0] for c in children] == [1, 2]
        # Node 2's subtree contains 3.
        assert children[1] == (2, ((3, ()),))

    def test_all_members_covered_once(self):
        nodes = list(range(13))
        tree = binomial_tree(nodes)
        seen = []

        def walk(spec):
            seen.append(spec[0])
            for child in spec[1]:
                walk(child)

        walk(tree)
        assert sorted(seen) == nodes

    def test_depth_is_logarithmic(self):
        tree = binomial_tree(list(range(32)))

        def depth(spec):
            return 1 + max((depth(c) for c in spec[1]), default=0)

        assert depth(tree) == 6  # ceil(log2(32)) + 1 levels of nodes

    def test_empty_rejected(self):
        with pytest.raises(RuntimeBackendError):
            binomial_tree([])
