"""Tests for per-flow latency-breakdown tracing and analysis."""

import pytest

from repro.analysis.latency import FlowBreakdown, breakdown, phase_summary
from repro.config import scaled_platform
from repro.runtime import ParsecContext, TaskGraph
from repro.sim.trace import TraceRecorder
from repro.units import KiB, MiB


def run_traced(backend="lci", size=256 * KiB, n_flows=10, **ctx_kwargs):
    g = TaskGraph()
    for _ in range(n_flows):
        t = g.add_task(node=0, duration=2e-6)
        f = g.add_flow(t, size)
        g.add_task(node=1, duration=2e-6, inputs=[f])
    ctx = ParsecContext(
        scaled_platform(num_nodes=2, cores_per_node=4),
        backend=backend,
        collect_traces=True,
        **ctx_kwargs,
    )
    stats = ctx.run(g, until=10.0)
    return ctx, stats


class TestBreakdownJoin:
    def test_manual_trace_join(self):
        tr = TraceRecorder()
        tr.record(0.0, "activate_handoff", 0, key=(1, 1))
        tr.record(1.0, "activate_cb", 1, key=(1, 1))
        tr.record(3.0, "getdata_cb", 0, key=(1, 1))
        tr.record(7.0, "data_arrival", 1, key=(1, 1))
        flows = breakdown(tr)
        assert len(flows) == 1
        f = flows[0]
        assert (f.activate, f.getdata, f.transfer) == (1.0, 2.0, 4.0)
        assert f.total == 7.0

    def test_incomplete_flows_skipped(self):
        tr = TraceRecorder()
        tr.record(0.0, "activate_handoff", 0, key=(1, 1))
        tr.record(1.0, "activate_cb", 1, key=(1, 1))
        assert breakdown(tr) == []

    def test_unrelated_kinds_ignored(self):
        tr = TraceRecorder()
        tr.record(0.0, "something_else", 0, key=(1, 1))
        assert breakdown(tr) == []


class TestPhaseSummary:
    def test_empty(self):
        assert phase_summary([]) == {}

    def test_shares_sum_to_one(self):
        flows = [
            FlowBreakdown(1, 1, 1.0, 2.0, 3.0),
            FlowBreakdown(2, 1, 2.0, 2.0, 2.0),
        ]
        s = phase_summary(flows)
        total_share = s["activate"]["share"] + s["getdata"]["share"] + s["transfer"]["share"]
        assert total_share == pytest.approx(1.0)
        assert s["total"]["mean"] == pytest.approx(6.0)


class TestRuntimeTracing:
    def test_traced_run_produces_complete_breakdowns(self):
        ctx, stats = run_traced()
        flows = breakdown(ctx.trace)
        assert len(flows) == 10
        for f in flows:
            assert f.activate > 0
            assert f.getdata > 0
            assert f.transfer > 0

    def test_breakdown_total_matches_e2e_latency(self):
        ctx, stats = run_traced()
        flows = breakdown(ctx.trace)
        mean_total = sum(f.total for f in flows) / len(flows)
        assert mean_total == pytest.approx(stats.mean_flow_latency, rel=0.05)

    def test_transfer_phase_dominates_for_large_flows(self):
        ctx, _ = run_traced(size=4 * MiB, n_flows=4)
        s = phase_summary(breakdown(ctx.trace))
        assert s["transfer"]["share"] > 0.5

    def test_tracing_disabled_by_default(self):
        g = TaskGraph()
        g.add_task(node=0, duration=1e-6)
        ctx = ParsecContext(scaled_platform(num_nodes=1, cores_per_node=2))
        ctx.run(g, until=1.0)
        assert ctx.trace is None

    def test_mpi_vs_lci_phase_comparison(self):
        """The LCI backend's advantage shows up in the protocol phases that
        run on the comm/progress threads."""
        sums = {}
        for backend in ("mpi", "lci"):
            ctx, _ = run_traced(backend=backend, n_flows=30)
            sums[backend] = phase_summary(breakdown(ctx.trace))
        assert sums["lci"]["total"]["mean"] < sums["mpi"]["total"]["mean"]
