"""Direct unit tests of the communication-engine backends (no full runtime).

These drive MpiBackend / LciBackend through the Listing-1 API with a
hand-rolled progress loop, checking the §4.2 / §5.3 mechanisms in isolation:
persistent-receive re-arming, the 30-transfer cap with FIFO promotion,
eager-put handshakes, FIFO fairness batching, and retry delegation.
"""

import pytest

from repro.config import LciCosts, MpiCosts, RuntimeCosts
from repro.errors import RuntimeBackendError
from repro.lci.device import LciWorld
from repro.mpi.world import MpiWorld
from repro.network import Fabric
from repro.runtime.comm_engine import TAG_PUT_COMPLETE
from repro.runtime.lci_backend import LciBackend
from repro.runtime.mpi_backend import MpiBackend
from repro.sim.core import Simulator
from repro.units import KiB, MiB

TAG_TEST = 7


def make_mpi_pair(rt_costs=None, mpi_costs=None):
    sim = Simulator()
    fabric = Fabric(sim, 2)
    world = MpiWorld(sim, fabric, mpi_costs, allow_overtaking=True)
    engines = [
        MpiBackend(sim, world.ranks[i], rt_costs or RuntimeCosts()) for i in range(2)
    ]
    return sim, engines


def make_lci_pair(rt_costs=None, lci_costs=None):
    sim = Simulator()
    fabric = Fabric(sim, 2)
    world = LciWorld(sim, fabric, lci_costs)
    engines = [
        LciBackend(sim, world.devices[i], rt_costs or RuntimeCosts()) for i in range(2)
    ]
    return sim, engines


def register_recorder(engine, tag=TAG_TEST):
    """Register an AM callback that records (msg, size, src)."""
    got = []

    def cb(eng, t, msg, size, src, cb_data):
        got.append((msg, size, src))
        return
        yield  # generator shape

    engine.tag_reg(tag, cb, max_len=8 * KiB)
    return got


def register_put_recorder(engine):
    got = []

    def cb(eng, t, msg, size, src, cb_data):
        got.append((msg["r_cb_data"], msg["data"], size, src))
        return
        yield

    engine.tag_reg(TAG_PUT_COMPLETE, cb, max_len=4 * KiB)
    return got


def drive(sim, engines, body, lci_progress=True, until=5.0):
    """Run `body` as a process while progress loops service both engines."""
    stop = {"v": False}

    def progress_loop(engine):
        while not stop["v"]:
            n = yield from engine.progress()
            if n == 0:
                idx = yield sim.any_of([engine.activity_event(), sim.timeout(1e-4)])
                del idx

    def device_loop(engine):
        while not stop["v"]:
            n = yield from engine.device.progress()
            if n == 0:
                idx = yield sim.any_of(
                    [engine.device.activity_event(), sim.timeout(1e-4)]
                )
                del idx

    def main():
        yield from engines[0].start()
        yield from engines[1].start()
        for e in engines:
            sim.process(progress_loop(e))
            if lci_progress and hasattr(e, "device"):
                sim.process(device_loop(e))
        result = yield from body()
        # Allow in-flight traffic to land.
        yield sim.timeout(1e-3)
        stop["v"] = True
        return result

    result = sim.run_process(main(), until=until)
    sim.run(until=until + 1.0)
    return result


class TestMpiBackendUnit:
    def test_send_am_invokes_remote_callback(self):
        sim, engines = make_mpi_pair()
        got = register_recorder(engines[1])
        register_recorder(engines[0])

        def body():
            yield from engines[0].send_am(TAG_TEST, 1, {"hello": 1}, 256)

        drive(sim, engines, body, lci_progress=False)
        assert got == [({"hello": 1}, 256, 0)]

    def test_persistent_receives_rearm(self):
        """More AMs than persistent receives (5/tag) must all be delivered."""
        sim, engines = make_mpi_pair()
        got = register_recorder(engines[1])
        register_recorder(engines[0])
        n = 23

        def body():
            for i in range(n):
                yield from engines[0].send_am(TAG_TEST, 1, i, 128)

        drive(sim, engines, body, lci_progress=False)
        # All messages delivered exactly once.  Callback order follows the
        # Testsome array index, not arrival order, once the 5 persistent
        # receives wrap — exactly the real backend's behaviour (PaRSEC's AM
        # callbacks are order-independent by design, §2.1).
        assert sorted(m for m, _s, _src in got) == list(range(n))

    def test_put_delivers_data_and_callback(self):
        sim, engines = make_mpi_pair()
        register_recorder(engines[0])
        register_recorder(engines[1])
        puts = register_put_recorder(engines[1])
        register_put_recorder(engines[0])
        local = []

        def l_cb(eng, data):
            local.append(data)
            return
            yield

        def body():
            yield from engines[0].put(
                data="payload", size=1 * MiB, remote=1, l_cb=l_cb,
                r_cb_data={"flow": 9}, l_cb_data="done",
            )

        drive(sim, engines, body, lci_progress=False)
        assert puts == [({"flow": 9}, "payload", 1 * MiB, 0)]
        assert local == ["done"]

    def test_transfer_cap_defers_and_promotes_fifo(self):
        rt = RuntimeCosts(mpi_max_transfers=2)
        sim, engines = make_mpi_pair(rt_costs=rt)
        register_recorder(engines[0])
        register_recorder(engines[1])
        puts = register_put_recorder(engines[1])
        register_put_recorder(engines[0])

        def body():
            for i in range(6):
                yield from engines[0].put(
                    data=i, size=256 * KiB, remote=1, l_cb=None, r_cb_data=i
                )
            # More puts than slots: some must be deferred at this instant.
            assert len(engines[0]._deferred) > 0

        drive(sim, engines, body, lci_progress=False)
        assert [p[0] for p in puts] == list(range(6))  # FIFO completion
        assert engines[0]._deferred == type(engines[0]._deferred)()

    def test_duplicate_tag_registration_rejected(self):
        _sim, engines = make_mpi_pair()
        register_recorder(engines[0])
        with pytest.raises(RuntimeBackendError, match="registered twice"):
            register_recorder(engines[0])

    def test_unregistered_tag_send_rejected(self):
        sim, engines = make_mpi_pair()

        def body():
            yield from engines[0].send_am(977, 1, None, 16)

        with pytest.raises(RuntimeBackendError, match="unregistered"):
            drive(sim, engines, body, lci_progress=False)

    def test_stats_counters(self):
        sim, engines = make_mpi_pair()
        register_recorder(engines[0])
        register_recorder(engines[1])
        register_put_recorder(engines[0])
        register_put_recorder(engines[1])

        def body():
            yield from engines[0].send_am(TAG_TEST, 1, None, 64)
            yield from engines[0].put(data=1, size=64 * KiB, remote=1,
                                      l_cb=None, r_cb_data=None)

        drive(sim, engines, body, lci_progress=False)
        assert engines[0].stats["am_sent"] >= 2  # user AM + handshake
        assert engines[0].stats["puts_started"] == 1
        assert engines[1].stats["puts_completed"] == 1
        assert engines[0].stats["bytes_put"] == 64 * KiB


class TestLciBackendUnit:
    def test_send_am_small_uses_immediate(self):
        sim, engines = make_lci_pair()
        got = register_recorder(engines[1])
        register_recorder(engines[0])

        def body():
            yield from engines[0].send_am(TAG_TEST, 1, "tiny", 32)

        drive(sim, engines, body)
        assert got == [("tiny", 32, 0)]

    def test_send_am_medium_uses_buffered(self):
        sim, engines = make_lci_pair()
        got = register_recorder(engines[1])
        register_recorder(engines[0])

        def body():
            yield from engines[0].send_am(TAG_TEST, 1, "medium", 4 * KiB)

        drive(sim, engines, body)
        assert got == [("medium", 4 * KiB, 0)]

    def test_am_larger_than_eager_limit_rejected_at_registration(self):
        _sim, engines = make_lci_pair()
        with pytest.raises(RuntimeBackendError, match="eager limit"):
            engines[0].tag_reg(TAG_TEST, lambda *a: None, max_len=1 * MiB)

    def test_eager_put_skips_direct_transfer(self):
        """Small puts ride inside the handshake: no RDMA slots consumed."""
        sim, engines = make_lci_pair()
        register_recorder(engines[0])
        register_recorder(engines[1])
        puts = register_put_recorder(engines[1])
        register_put_recorder(engines[0])
        local = []

        def l_cb(eng, data):
            local.append(data)
            return
            yield

        slots_before = engines[0].device.send_slots_free

        def body():
            yield from engines[0].put(
                data="small", size=2 * KiB, remote=1, l_cb=l_cb,
                r_cb_data="ctx", l_cb_data="lc",
            )
            # Local completion is immediate for eager puts (§5.3.3).
            assert local == ["lc"]
            assert engines[0].device.send_slots_free == slots_before

        drive(sim, engines, body)
        assert puts == [("ctx", "small", 2 * KiB, 0)]

    def test_large_put_uses_direct_transfer(self):
        sim, engines = make_lci_pair()
        register_recorder(engines[0])
        register_recorder(engines[1])
        puts = register_put_recorder(engines[1])
        register_put_recorder(engines[0])

        def body():
            yield from engines[0].put(
                data="bulk", size=4 * MiB, remote=1, l_cb=None, r_cb_data="big"
            )

        drive(sim, engines, body)
        assert puts == [("big", "bulk", 4 * MiB, 0)]
        # Slots recycled after completion.
        assert engines[0].device.send_slots_free == engines[0].device.costs.direct_slots
        assert engines[1].device.recv_slots_free == engines[1].device.costs.direct_slots

    def test_am_fairness_batch_limit(self):
        """progress() must alternate: ≤5 AMs per round before data handles
        (§5.3.4)."""
        rt = RuntimeCosts(lci_am_batch=5)
        sim, engines = make_lci_pair(rt_costs=rt)
        order = []

        def am_cb(eng, t, msg, size, src, cb_data):
            order.append(("am", msg))
            return
            yield

        engines[1].tag_reg(TAG_TEST, am_cb, max_len=8 * KiB)
        register_recorder(engines[0])
        puts_cb = []

        def put_cb(eng, t, msg, size, src, cb_data):
            puts_cb.append(("data", msg["r_cb_data"]))
            order.append(("data", msg["r_cb_data"]))
            return
            yield

        engines[1].tag_reg(TAG_PUT_COMPLETE, put_cb, max_len=4 * KiB)
        register_put_recorder(engines[0])

        # Pre-load the FIFOs directly: 12 AM handles, 2 data handles.
        for i in range(12):
            engines[1].am_fifo.push((TAG_TEST, i, 16, 0, i))
        engines[1].data_fifo.push(("r_data", "d0", None, 8, 0))
        engines[1].data_fifo.push(("r_data", "d1", None, 8, 0))

        def body():
            # No background progress loops here: this test drives the one
            # progress() call itself so the batching is observable.
            n = yield from engines[1].progress()
            return n

        n = sim.run_process(body())
        assert n == 14
        kinds = [k for k, _v in order]
        # First round: 5 AMs then the data handles, then remaining AMs.
        assert kinds[:7] == ["am"] * 5 + ["data"] * 2
        assert kinds[7:] == ["am"] * 7

    def test_retry_delegation_path(self):
        """When the progress thread cannot post the Direct receive
        (LCI_ERR_RETRY), the handle is delegated to the comm thread."""
        lci = LciCosts(direct_slots=1)
        sim, engines = make_lci_pair(lci_costs=lci)
        register_recorder(engines[0])
        register_recorder(engines[1])
        puts = register_put_recorder(engines[1])
        register_put_recorder(engines[0])

        def body():
            # Two big puts: the second recvd at node 1 must hit RETRY first.
            yield from engines[0].put(data="a", size=1 * MiB, remote=1,
                                      l_cb=None, r_cb_data="a")
            yield from engines[0].put(data="b", size=1 * MiB, remote=1,
                                      l_cb=None, r_cb_data="b")
            yield sim.timeout(5e-3)

        drive(sim, engines, body, until=10.0)
        assert sorted(p[0] for p in puts) == ["a", "b"]

    def test_stats_counters(self):
        sim, engines = make_lci_pair()
        register_recorder(engines[0])
        register_recorder(engines[1])
        register_put_recorder(engines[0])
        register_put_recorder(engines[1])

        def body():
            yield from engines[0].send_am(TAG_TEST, 1, None, 64)
            yield from engines[0].put(data=1, size=2 * KiB, remote=1,
                                      l_cb=None, r_cb_data=None)

        drive(sim, engines, body)
        assert engines[0].stats["am_sent"] == 1
        assert engines[0].stats["puts_started"] == 1
        assert engines[1].stats["puts_completed"] == 1
