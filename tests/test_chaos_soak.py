"""End-to-end chaos soak: both backends survive a mixed fault plan with
correct numerics and zero leaked protocol state at shutdown."""

import dataclasses

import pytest

from repro.bench.chaos import ChaosConfig, _arrivals, _one_run, run_chaos
from repro.faults import fault_plan

# The soak matrix is small, so crank the loss rates well above the stock
# "chaos" plan to guarantee every injector actually fires.
PLAN = dataclasses.replace(fault_plan("chaos"), drop_rate=0.08,
                           dup_rate=0.05, corrupt_rate=0.05)
CFG = ChaosConfig(plan_name="chaos", plan=PLAN,
                  matrix_size=4800, tile_size=1200, num_nodes=2, seed=1)


def assert_no_leaks(ctx, backend):
    rel = ctx.fabric._rel
    assert rel is not None and rel.inflight_count == 0
    if backend == "lci":
        for dev in ctx.lci_world.devices:
            assert dev.tx_packets_free == dev.costs.packet_pool_size
            assert dev.rx_packets_free == dev.costs.packet_pool_size
            assert dev.send_slots_free == dev.costs.direct_slots
            assert dev.recv_slots_free == dev.costs.direct_slots
            assert not dev._send_ops and not dev._recv_ops
            assert not dev._rx_am and not dev._rx_proto
    else:
        for rank in ctx.mpi_world.ranks:
            assert not rank._sends and not rank._rndv_recvs


@pytest.mark.parametrize("backend", ["mpi", "lci"])
class TestChaosSoak:
    def test_mixed_plan_completes_with_correct_numerics(self, backend):
        ref_ctx, ref_stats = _one_run(CFG, backend, None)
        ctx, stats = _one_run(CFG, backend, CFG.plan)
        assert stats.tasks_executed == ref_stats.tasks_executed
        # Every flow that arrived in the clean run also arrived under chaos.
        assert _arrivals(ref_ctx) <= _arrivals(ctx)
        assert_no_leaks(ctx, backend)
        # Faults were actually exercised, and faults cost time, never help.
        totals = ctx.obs.counter_totals()
        injected = sum(v for k, v in totals.items()
                       if k.startswith("fault.injected."))
        assert injected > 0
        assert stats.makespan >= ref_stats.makespan

    def test_run_chaos_reports_recovery(self, backend):
        res = run_chaos(backend, CFG)
        assert res.numerics_ok
        assert res.total_injected > 0
        assert res.recovered.get("drop", 0) > 0
        assert "injected" in res.summary()
