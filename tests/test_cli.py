"""Tests for the command-line interface."""

import pytest

from repro.cli import _size, build_parser, main


class TestSizeParsing:
    @pytest.mark.parametrize(
        "text,expect",
        [
            ("1024", 1024),
            ("64K", 64 * 1024),
            ("64KiB", 64 * 1024),
            ("8M", 8 * 1024 * 1024),
            ("1.5M", int(1.5 * 1024 * 1024)),
        ],
    )
    def test_valid(self, text, expect):
        assert _size(text) == expect

    def test_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _size("lots")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_pingpong_defaults(self):
        args = build_parser().parse_args(["pingpong"])
        assert args.backend == "lci"
        assert args.fragment == 128 * 1024

    def test_hicma_flags(self):
        args = build_parser().parse_args(
            ["hicma", "--backend", "mpi", "--tile", "900", "--mt-activate"]
        )
        assert args.backend == "mpi"
        assert args.tile == 900
        assert args.mt_activate is True


class TestCommands:
    def test_netpipe(self, capsys):
        assert main(["netpipe", "64K", "1M"]) == 0
        out = capsys.readouterr().out
        assert "Gbit/s" in out
        assert "64 KiB" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "[network]" in out and "bandwidth" in out

    def test_pingpong(self, capsys):
        assert main(
            ["pingpong", "--fragment", "256K", "--total", "1M", "--iterations", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "Gbit/s" in out

    def test_compare(self, capsys):
        assert main(["compare", "--fragment", "256K", "--total", "1M"]) == 0
        out = capsys.readouterr().out
        assert "winner: lci" in out

    def test_hicma(self, capsys):
        assert main(
            ["hicma", "--matrix", "7200", "--tile", "1200", "--nodes", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "TTS=" in out

    def test_hicma_native_put(self, capsys):
        assert main(
            ["hicma", "--matrix", "7200", "--tile", "1200", "--nodes", "2",
             "--native-put"]
        ) == 0
        out = capsys.readouterr().out
        assert "native put" in out

    def test_overlap(self, capsys):
        assert main(["overlap", "--fragment", "1M", "--total", "4M"]) == 0
        out = capsys.readouterr().out
        assert "TFLOP/s" in out and "roofline" in out


class TestNewCommands:
    def test_sweep_pingpong_grid(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # keep the default cache out of the repo
        argv = ["sweep", "pingpong", "--fragments", "256K", "--total", "1M"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "MPI Gbit/s" in out and "LCI Gbit/s" in out
        assert "2 simulated, 0 cached" in out
        # Warm rerun: every point served from the on-disk cache.
        assert main(argv) == 0
        assert "0 simulated, 2 cached" in capsys.readouterr().out

    def test_sweep_cache_stats_and_clear(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(["sweep", "pingpong", "--fragments", "64K",
                     "--total", "256K", *cache]) == 0
        capsys.readouterr()
        assert main(["sweep", "pingpong", "--cache-stats", *cache]) == 0
        assert "2 entries" in capsys.readouterr().out
        assert main(["sweep", "pingpong", "--cache-clear", *cache]) == 0
        assert "cleared 2" in capsys.readouterr().out

    def test_sweep_unknown_grid_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["sweep", "not-a-grid"])

    def test_validate(self, capsys):
        assert main(["validate", "--size", "256K"]) == 0
        out = capsys.readouterr().out
        assert out.count("[OK ]") == 3

    def test_chaos(self, capsys):
        assert main([
            "chaos", "--plan", "drop", "--backend", "lci",
            "--matrix", "4800", "--tile", "1200", "--nodes", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "numerics OK" in out
        assert "injected" in out and "recovered" in out

    def test_chaos_unknown_plan_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["chaos", "--plan", "definitely-not-a-plan"])

    @pytest.mark.parametrize("fmt,loader", [("chrome", "json"), ("csv", "csv")])
    def test_trace_export(self, capsys, tmp_path, fmt, loader):
        out_path = tmp_path / f"trace.{fmt}"
        assert main([
            "trace-export", "--matrix", "4800", "--nodes", "2",
            "--format", fmt, "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "events" in out and str(out_path) in out
        if loader == "json":
            import json

            doc = json.loads(out_path.read_text())
            assert doc["traceEvents"]
            assert {"ph", "ts", "pid"} <= set(doc["traceEvents"][0])
        else:
            header = out_path.read_text().splitlines()[0]
            assert header == "time,kind,node,key,info,phase,local_time"


class TestRunVerb:
    def test_run_catalog_workload(self, capsys):
        assert main(["run", "chain", "--length", "6", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "chain[lci]" in out and "6 tasks" in out

    def test_run_taskbench_flags(self, capsys):
        assert main([
            "run", "taskbench", "--pattern", "fft", "--width", "4",
            "--depth", "3", "--nodes", "2", "--backend", "mpi",
        ]) == 0
        assert "taskbench[mpi]" in capsys.readouterr().out

    def test_run_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not_a_workload"])

    def test_run_wrong_param_exits_2(self, capsys):
        # --width exists (it is taskbench's) but chain does not accept it;
        # the registry's schema error must surface, not a silent drop.
        assert main(["run", "chain", "--width", "9"]) == 2
        err = capsys.readouterr().err
        assert "does not accept" in err and "width" in err

    def test_run_under_fault_plan(self, capsys):
        assert main(["run", "ring", "--steps", "4", "--nodes", "3",
                     "--faults", "drop"]) == 0
        assert "ring[lci]" in capsys.readouterr().out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("pingpong", "hicma", "stencil", "taskbench"):
            assert name in out

    def test_workloads_params_listing(self, capsys):
        assert main(["workloads", "--params"]) == 0
        out = capsys.readouterr().out
        assert "--fragment-size" in out and "[required]" in out
        assert "--pattern" in out

    def test_sweep_taskbench_grid_exists(self):
        args = build_parser().parse_args(["sweep", "taskbench", "--jobs", "2"])
        assert args.grid == "taskbench" and args.jobs == 2
