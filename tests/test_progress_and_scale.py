"""Paper-scale tractability: build scaling, flow release, run progress.

Covers the three observable guarantees behind ``REPRO_PAPER_SCALE=1``:

- task-graph construction stays (near-)linear in the number of tasks, so
  NT=150 (~575k tasks) builds in seconds, not minutes;
- consumed flow payloads are reference-counted and released, so runtime
  protocol state is bounded by in-flight flows and drains to zero;
- the simulator tick + :class:`~repro.obs.progress.ProgressReporter` emit
  ``run_progress`` heartbeats without perturbing results.
"""

import io
import time

import pytest

from repro.config import scaled_platform
from repro.hicma.dag import build_tlr_cholesky_graph, expected_task_count
from repro.obs import ProgressReporter, memory_of, peak_rss_bytes
from repro.runtime.context import ParsecContext
from repro.sim.core import Simulator
from repro.errors import SimulationError


def _build_seconds(nt: int) -> tuple[float, int]:
    t0 = time.perf_counter()
    g = build_tlr_cholesky_graph(nt, 2400, num_nodes=16)
    g.freeze()
    return time.perf_counter() - t0, g.num_tasks


class TestConstructionScaling:
    def test_build_time_scales_with_task_count(self):
        """Doubling NT grows tasks ~8x; build time must not grow worse.

        The old tuple-reconcatenation builder was quadratic in the consumer
        count, which showed up as far-superlinear growth in exactly this
        comparison.  The factor-3 headroom absorbs allocator and timer
        noise, not algorithmic regressions (quadratic behaviour overshoots
        it by an order of magnitude at these sizes).
        """
        _build_seconds(8)  # warm caches/imports outside the timed pair
        t32, n32 = _build_seconds(32)
        t64, n64 = _build_seconds(64)
        growth = n64 / n32
        assert n32 == expected_task_count(32)
        assert n64 == expected_task_count(64)
        assert t64 < max(t32, 1e-3) * growth * 3, (
            f"build grew {t64 / max(t32, 1e-9):.1f}x for {growth:.1f}x tasks"
        )


class TestFlowRelease:
    @pytest.mark.parametrize("backend", ["lci", "mpi"])
    def test_protocol_state_drains_to_zero(self, backend):
        """After a drained run every ref-counted flow map must be empty.

        The run shape (node-local sink chains after the last remote serve)
        guarantees full drainage here; ``flows_retired`` doubles as proof
        that the release path actually ran.
        """
        platform = scaled_platform(num_nodes=4, cores_per_node=4)
        graph = build_tlr_cholesky_graph(12, 1200, num_nodes=4)
        ctx = ParsecContext(platform, backend=backend)
        stats = ctx.run(graph, until=36_000.0)
        assert stats.tasks_executed == graph.num_tasks
        retired = 0
        for node in ctx.nodes:
            report = node.quiescence_report()
            for key in ("flow_available", "flow_refs", "flow_states",
                        "serves_remaining", "getdata_q"):
                assert report[key] == 0, (
                    f"{backend} node {node.rank}: {report[key]} {key} "
                    f"entries leaked"
                )
            retired += report["flows_retired"]
        # Every flow is retired on its producer node, and again on every
        # intermediate multicast-tree node that re-released it locally.
        assert retired >= graph.num_flows


class TestSimulatorTick:
    def test_tick_fires_and_clears(self):
        sim = Simulator()
        seen = []
        sim.set_tick(seen.append, every=10)
        for i in range(100):
            sim.call_later(i * 1e-6, lambda: None)
        sim.run()
        assert seen, "tick never fired"
        assert all(b >= 10 for b in seen)
        sim2 = Simulator()
        sim2.set_tick(seen.append, every=10)
        sim2.set_tick(None)
        sim2.call_soon(lambda: None)
        before = len(seen)
        sim2.run()
        assert len(seen) == before

    def test_bad_interval_rejected(self):
        with pytest.raises(SimulationError, match="tick interval"):
            Simulator().set_tick(lambda c: None, every=0)


def _run(backend="lci", progress=None, observability=False):
    platform = scaled_platform(num_nodes=2, cores_per_node=4)
    graph = build_tlr_cholesky_graph(6, 1200, num_nodes=2)
    ctx = ParsecContext(platform, backend=backend, observability=observability)
    stats = ctx.run(graph, until=36_000.0, progress=progress)
    return ctx, stats


class TestRunProgress:
    def test_heartbeats_on_bus(self):
        reporter = ProgressReporter(interval=0.0, every=64)
        ctx, stats = _run(progress=reporter, observability=True)
        beats = memory_of(ctx.obs).by_kind("run_progress")
        assert len(beats) == reporter.beats >= 2
        final = beats[-1].info
        assert final["tasks_done"] == final["tasks_total"] == stats.tasks_executed
        assert final["sim_now"] == pytest.approx(stats.makespan)
        assert final["events_processed"] > 0
        assert final["rss_bytes"] == peak_rss_bytes() > 0
        assert final["eta_seconds"] == 0.0
        # Keys are the beat ordinals, monotonically increasing.
        assert [e.key for e in beats] == list(range(1, len(beats) + 1))

    def test_fast_run_still_emits_final_beat(self):
        reporter = ProgressReporter(interval=3600.0)
        ctx, _ = _run(progress=reporter, observability=True)
        assert len(memory_of(ctx.obs).by_kind("run_progress")) == 1

    def test_stream_lines(self):
        buf = io.StringIO()
        reporter = ProgressReporter(interval=0.0, every=64, stream=buf)
        _run(progress=reporter)
        lines = buf.getvalue().splitlines()
        assert lines and all(ln.startswith("[progress]") for ln in lines)
        assert "100.0%" in lines[-1]

    def test_progress_true_uses_default_reporter(self):
        ctx, _ = _run(progress=True, observability=True)
        assert len(memory_of(ctx.obs).by_kind("run_progress")) >= 1

    def test_progress_series_accessor(self):
        from repro.analysis import progress_series

        ctx, stats = _run(progress=True, observability=True)
        series = progress_series(ctx.obs)
        assert series and series[-1]["tasks_done"] == stats.tasks_executed
        assert [s["beat"] for s in series] == list(range(1, len(series) + 1))

    def test_progress_does_not_perturb_results(self):
        _, base = _run(progress=None)
        _, watched = _run(progress=ProgressReporter(interval=0.0, every=32))
        assert watched.makespan == base.makespan
        assert watched.events_processed == base.events_processed
        assert watched.flow_latencies == base.flow_latencies
