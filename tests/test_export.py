"""Tests for JSON export of benchmark results."""

import io
import json

import pytest

from repro.analysis.export import dump_results, load_results, to_jsonable
from repro.analysis.latency import FlowBreakdown
from repro.runtime.context import RunStats


class TestToJsonable:
    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "s"):
            assert to_jsonable(v) == v

    def test_dataclass(self):
        stats = RunStats(backend="lci", num_nodes=2, workers_per_node=4)
        d = to_jsonable(stats)
        assert d["backend"] == "lci"
        assert d["num_nodes"] == 2

    def test_nested_containers(self):
        fb = FlowBreakdown(1, 2, 0.1, 0.2, 0.3)
        out = to_jsonable({"flows": [fb, fb]})
        assert out["flows"][0]["activate"] == 0.1

    def test_numpy_values(self):
        import numpy as np

        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_tuple_keys_coerced(self):
        out = to_jsonable({(1, 2): "x"})
        assert out == {"(1, 2)": "x"}


class TestDumpLoad:
    def test_round_trip_stream(self):
        stats = RunStats(
            backend="mpi", num_nodes=4, workers_per_node=7, makespan=1.25
        )
        buf = io.StringIO()
        dump_results({"run": stats}, buf, title="demo")
        buf.seek(0)
        doc = load_results(buf)
        assert doc["title"] == "demo"
        assert doc["results"]["run"]["makespan"] == 1.25
        assert "repro_version" in doc
        assert doc["platform"]["cores_per_node"] == 128

    def test_round_trip_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        dump_results([1, 2, 3], path, include_platform=False)
        doc = load_results(path)
        assert doc["results"] == [1, 2, 3]
        assert "platform" not in doc

    def test_document_is_valid_json(self, tmp_path):
        path = str(tmp_path / "out.json")
        dump_results({"a": RunStats(backend="lci", num_nodes=1, workers_per_node=1)}, path)
        with open(path) as fh:
            json.load(fh)  # must not raise
