"""Tests for the paper's §7 future-work features, implemented as options:

- LCI one-sided put with remote completion (``native_put``), directly
  implementing the PaRSEC put interface without the handshake emulation;
- multiple communication / progress threads per node.
"""

import pytest

from repro.config import scaled_platform
from repro.errors import RuntimeBackendError
from repro.lci import LciWorld, CompletionQueue, LCI_OK, LCI_ERR_RETRY
from repro.config import LciCosts
from repro.network import Fabric
from repro.runtime import ParsecContext, TaskGraph
from repro.sim.core import Simulator
from repro.units import KiB, MiB


def comm_graph(n_flows=30, size=256 * KiB):
    g = TaskGraph()
    for _ in range(n_flows):
        t = g.add_task(node=0, duration=2e-6)
        f = g.add_flow(t, size)
        g.add_task(node=1, duration=2e-6, inputs=[f])
    return g


class TestDevicePutd:
    def make(self, costs=None):
        sim = Simulator()
        fabric = Fabric(sim, 2)
        world = LciWorld(sim, fabric, costs)
        return sim, world

    def test_putd_delivers_to_put_handler(self):
        sim, world = self.make()
        d0, d1 = world.devices
        got = []
        d1.put_handler = lambda rec: got.append((rec.user_ctx, rec.payload, rec.size))
        cq = CompletionQueue(sim)

        def main():
            status = yield from d0.putd(
                dst=1, tag=5, size=1 * MiB, data="bulk", comp=cq, remote_meta="meta"
            )
            assert status == LCI_OK
            # Drive both progress engines until completions land.
            while len(cq) == 0 or not got:
                yield from d0.progress()
                yield from d1.progress()
                if len(cq) == 0 or not got:
                    yield sim.timeout(1e-5)
            rec = yield from cq.pop()
            return rec

        rec = sim.run_process(main(), until=1.0)
        assert got == [("meta", "bulk", 1 * MiB)]
        assert rec.op == "sendd"  # origin-side completion record
        assert d0.send_slots_free == d0.costs.direct_slots

    def test_putd_needs_no_recv_slot_at_target(self):
        sim, world = self.make(LciCosts(direct_slots=1))
        d0, d1 = world.devices
        d1.put_handler = lambda rec: None

        def main():
            s1 = yield from d0.putd(dst=1, tag=1, size=1 * MiB, remote_meta=None)
            # Origin slot pool exhausted -> retry; target pool untouched.
            s2 = yield from d0.putd(dst=1, tag=2, size=1 * MiB, remote_meta=None)
            return (s1, s2, d1.recv_slots_free)

        s1, s2, free = sim.run_process(main(), until=1.0)
        sim.run()
        assert (s1, s2) == (LCI_OK, LCI_ERR_RETRY)
        assert free == 1

    def test_putd_without_handler_raises(self):
        sim, world = self.make()
        d0, d1 = world.devices

        def main():
            yield from d0.putd(dst=1, tag=1, size=64 * KiB, remote_meta=None)
            yield sim.timeout(1e-3)
            yield from d1.progress()

        from repro.errors import LciError

        with pytest.raises(LciError, match="no put_handler"):
            sim.run_process(main())


class TestNativePutBackend:
    def test_native_put_completes_workload(self):
        ctx = ParsecContext(
            scaled_platform(num_nodes=2, cores_per_node=4),
            backend="lci",
            native_put=True,
        )
        g = comm_graph()
        stats = ctx.run(g, until=10.0)
        assert stats.tasks_executed == g.num_tasks

    def test_native_put_reduces_latency(self):
        """Skipping the handshake round removes a control-message exchange
        from every transfer."""
        lat = {}
        for native in (False, True):
            ctx = ParsecContext(
                scaled_platform(num_nodes=2, cores_per_node=4),
                backend="lci",
                native_put=native,
            )
            lat[native] = ctx.run(comm_graph(), until=10.0).mean_flow_latency
        assert lat[True] < lat[False]

    def test_native_put_requires_lci(self):
        with pytest.raises(RuntimeBackendError, match="requires the LCI"):
            ParsecContext(scaled_platform(), backend="mpi", native_put=True)


class TestMultipleThreads:
    def test_two_progress_threads_complete_workload(self):
        ctx = ParsecContext(
            scaled_platform(num_nodes=2, cores_per_node=4),
            backend="lci",
            num_progress_threads=2,
        )
        g = comm_graph()
        stats = ctx.run(g, until=10.0)
        assert stats.tasks_executed == g.num_tasks

    def test_two_comm_threads_complete_workload_both_backends(self):
        for backend in ("mpi", "lci"):
            ctx = ParsecContext(
                scaled_platform(num_nodes=2, cores_per_node=4),
                backend=backend,
                num_comm_threads=2,
            )
            g = comm_graph()
            stats = ctx.run(g, until=10.0)
            assert stats.tasks_executed == g.num_tasks

    def test_extra_threads_help_lci_under_load(self):
        """Under a heavy small-flow load the comm thread is the LCI
        bottleneck; a second one raises throughput."""
        times = {}
        for n_comm in (1, 2):
            ctx = ParsecContext(
                scaled_platform(num_nodes=2, cores_per_node=6),
                backend="lci",
                num_comm_threads=n_comm,
            )
            g = comm_graph(n_flows=300, size=16 * KiB)
            times[n_comm] = ctx.run(g, until=30.0).makespan
        assert times[2] <= times[1] * 1.02

    def test_invalid_thread_counts_rejected(self):
        with pytest.raises(RuntimeBackendError):
            ParsecContext(scaled_platform(), num_progress_threads=0)
        with pytest.raises(RuntimeBackendError):
            ParsecContext(scaled_platform(), num_comm_threads=0)
