"""Soak tests: larger randomized workloads through the full stack."""

import pytest

from repro.bench.pingpong import PingPongConfig, run_pingpong_benchmark
from repro.bench.workloads import random_layered_dag
from repro.config import scaled_platform
from repro.runtime import ParsecContext
from repro.units import KiB, MiB


class TestSoakRandomDag:
    @pytest.mark.parametrize("backend", ["mpi", "lci"])
    def test_two_thousand_task_dag(self, backend):
        g = random_layered_dag(
            layers=[50] * 40, num_nodes=4, fan_in=2, flow_bytes=24 * KiB, seed=99
        )
        assert g.num_tasks == 2000
        ctx = ParsecContext(
            scaled_platform(num_nodes=4, cores_per_node=4), backend=backend
        )
        stats = ctx.run(g, until=120.0)
        assert stats.tasks_executed == 2000
        assert stats.flow_latencies  # cross-node flows occurred
        assert 0 < stats.worker_utilization <= 1.0

    def test_all_features_combined_soak(self):
        """Native put + work stealing + 2 comm threads + MT activate +
        tracing, all at once, on a random DAG."""
        g = random_layered_dag(
            layers=[30] * 20, num_nodes=3, fan_in=2, flow_bytes=64 * KiB, seed=41
        )
        ctx = ParsecContext(
            scaled_platform(num_nodes=3, cores_per_node=4),
            backend="lci",
            native_put=True,
            scheduler="ws",
            num_comm_threads=2,
            multithreaded_activate=True,
            collect_traces=True,
        )
        stats = ctx.run(g, until=120.0)
        assert stats.tasks_executed == g.num_tasks
        from repro.analysis.gantt import worker_intervals

        assert worker_intervals(ctx.trace)  # tracing captured executions


class TestMultiNodeStreams:
    def test_ring_streams_use_every_node(self):
        """§6.2: with P streams on P nodes, every node sends and receives
        concurrently each iteration."""
        nodes = 4
        r = run_pingpong_benchmark(
            "lci",
            PingPongConfig(
                fragment_size=256 * KiB,
                streams=nodes,
                num_nodes=nodes,
                total_bytes=2 * MiB,
                iterations=4,
                sync=False,
            ),
        )
        assert r.tasks > 0
        # Aggregate bandwidth beyond a single link's unidirectional rate:
        # 4 rings drive all 4 NICs simultaneously.
        assert r.bandwidth_gbit > 150.0

    def test_multi_node_pingpong_deterministic(self):
        cfg = PingPongConfig(
            fragment_size=128 * KiB, streams=3, num_nodes=3,
            total_bytes=1 * MiB, iterations=3,
        )
        a = run_pingpong_benchmark("mpi", cfg)
        b = run_pingpong_benchmark("mpi", cfg)
        assert a.bandwidth == b.bandwidth
