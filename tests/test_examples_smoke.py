"""Smoke tests: the fast example scripts must run end to end.

The slower sweeps (strong_scaling, latency_study) are exercised indirectly
through the benchmark suite; here we run the quick ones as real
subprocesses so import errors, API drift, or output regressions in
`examples/` fail CI.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in present
    assert len(present) >= 3  # the deliverable minimum


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "time-to-solution" in out
    assert "LCI vs MPI" in out


def test_latency_breakdown_runs():
    out = run_example("latency_breakdown.py")
    assert "activate" in out and "transfer" in out
    assert "mpi" in out and "lci" in out


def test_tlr_cholesky_numerics_runs():
    out = run_example("tlr_cholesky_numerics.py")
    assert "OK" in out
    assert "rank" in out
