"""Tests for RSVD compression and TLR triangular solves."""

import numpy as np
import pytest

from repro.errors import HicmaError
from repro.hicma import (
    SqExpProblem,
    TLRMatrix,
    compress_dense,
    tlr_backward_solve,
    tlr_cholesky,
    tlr_forward_solve,
    tlr_solve,
)


class TestRsvdCompression:
    def _tile(self, n=96, rank=6, seed=0):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n, rank)) @ rng.standard_normal((rank, n))

    def test_rsvd_matches_svd_accuracy(self):
        a = self._tile()
        svd = compress_dense(a, tol=1e-10, maxrank=40)
        rsvd = compress_dense(a, tol=1e-10, maxrank=40, method="rsvd")
        norm = np.linalg.norm(a)
        assert np.linalg.norm(svd.to_dense() - a) < 1e-7 * norm
        assert np.linalg.norm(rsvd.to_dense() - a) < 1e-6 * norm

    def test_rsvd_finds_true_rank(self):
        a = self._tile(rank=5)
        lr = compress_dense(a, tol=1e-9, maxrank=30, method="rsvd")
        assert lr.rank == 5

    def test_rsvd_on_kernel_tile(self):
        prob = SqExpProblem(512, beta=0.15, seed=9)
        tile = prob.tile(3, 0, 128)
        svd = compress_dense(tile, tol=1e-8, maxrank=64)
        rsvd = compress_dense(tile, tol=1e-8, maxrank=64, method="rsvd")
        norm = np.linalg.norm(tile)
        assert np.linalg.norm(rsvd.to_dense() - tile) < 5e-7 * norm
        # Within a few ranks of the deterministic answer.
        assert abs(rsvd.rank - svd.rank) <= 5

    def test_rsvd_requires_maxrank(self):
        with pytest.raises(HicmaError, match="maxrank"):
            compress_dense(np.eye(8), tol=1e-8, method="rsvd")

    def test_unknown_method_rejected(self):
        with pytest.raises(HicmaError, match="method"):
            compress_dense(np.eye(8), tol=1e-8, method="cur")

    def test_rsvd_deterministic_with_rng(self):
        a = self._tile()
        r1 = compress_dense(a, tol=1e-8, maxrank=20, method="rsvd",
                            rng=np.random.default_rng(5))
        r2 = compress_dense(a, tol=1e-8, maxrank=20, method="rsvd",
                            rng=np.random.default_rng(5))
        assert np.allclose(r1.to_dense(), r2.to_dense())


class TestTlrSolve:
    @pytest.fixture(scope="class")
    def factored(self):
        prob = SqExpProblem(512, beta=0.12, seed=21)
        dense = prob.dense()
        tlr = TLRMatrix.from_problem(prob, tile_size=64, tol=1e-10)
        tlr_cholesky(tlr, tol=1e-10)
        return prob, dense, tlr

    def test_forward_backward_residuals(self, factored):
        """Elementwise comparison against the dense reference is ill-
        conditioned (the solve amplifies the 1e-10 factor perturbation by
        κ ≈ 1e5), so verify via residuals against the TLR factor itself."""
        _prob, dense, tlr = factored
        rng = np.random.default_rng(3)
        b = rng.standard_normal(dense.shape[0])
        l_tlr = tlr.lower_dense()
        y = tlr_forward_solve(tlr, b)
        assert np.linalg.norm(l_tlr @ y - b) < 1e-8 * np.linalg.norm(b)
        x = tlr_backward_solve(tlr, y)
        assert np.linalg.norm(l_tlr.T @ x - y) < 1e-8 * (np.linalg.norm(y) + 1)

    def test_full_solve_residual(self, factored):
        _prob, dense, tlr = factored
        rng = np.random.default_rng(4)
        b = rng.standard_normal(dense.shape[0])
        x = tlr_solve(tlr, b)
        resid = np.linalg.norm(dense @ x - b) / np.linalg.norm(b)
        assert resid < 1e-5

    def test_rhs_size_mismatch(self, factored):
        _prob, _dense, tlr = factored
        with pytest.raises(HicmaError, match="rhs length"):
            tlr_solve(tlr, np.zeros(7))

    def test_solve_with_wider_band(self):
        prob = SqExpProblem(256, beta=0.12, seed=22)
        dense = prob.dense()
        tlr = TLRMatrix.from_problem(prob, tile_size=64, tol=1e-10, band=2)
        tlr_cholesky(tlr, tol=1e-10)
        rng = np.random.default_rng(5)
        b = rng.standard_normal(256)
        x = tlr_solve(tlr, b)
        resid = np.linalg.norm(dense @ x - b) / np.linalg.norm(b)
        assert resid < 1e-5
