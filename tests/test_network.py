"""Unit tests for the network substrate (topology, NIC, fabric, NetPIPE)."""

import pytest

from repro.config import NetworkConfig
from repro.errors import NetworkError
from repro.network import Fabric, FatTreeTopology, MessageClass, NicState, WireMessage
from repro.network.netpipe import netpipe_bandwidth_curve, netpipe_rtt
from repro.sim.core import Simulator
from repro.units import KiB, MiB, US, gbit_per_s


class TestTopology:
    def test_loopback_zero_hops(self):
        topo = FatTreeTopology(32)
        assert topo.hops(3, 3) == 0

    def test_same_leaf_two_hops(self):
        topo = FatTreeTopology(32, nodes_per_leaf=16)
        assert topo.hops(0, 15) == 2

    def test_cross_leaf_four_hops(self):
        topo = FatTreeTopology(32, nodes_per_leaf=16, levels=2)
        assert topo.hops(0, 16) == 4

    def test_deeper_tree_adds_hops(self):
        topo = FatTreeTopology(64, nodes_per_leaf=16, levels=3)
        assert topo.hops(0, 63) == 6

    def test_symmetry(self):
        topo = FatTreeTopology(64, nodes_per_leaf=8)
        for a, b in [(0, 7), (0, 8), (5, 60)]:
            assert topo.hops(a, b) == topo.hops(b, a)

    def test_out_of_range_rejected(self):
        topo = FatTreeTopology(4)
        with pytest.raises(NetworkError):
            topo.hops(0, 4)

    def test_invalid_config_rejected(self):
        with pytest.raises(NetworkError):
            FatTreeTopology(0)
        with pytest.raises(NetworkError):
            FatTreeTopology(4, nodes_per_leaf=0)
        with pytest.raises(NetworkError):
            FatTreeTopology(4, levels=0)


class TestNicState:
    def setup_method(self):
        self.cfg = NetworkConfig()
        self.nic = NicState(self.cfg)

    def test_serialization_is_size_over_bandwidth(self):
        size = 1 * MiB
        assert self.nic.serialization(size) == pytest.approx(size / self.cfg.bandwidth)

    def test_tiny_message_pays_gap(self):
        assert self.nic.serialization(8) == pytest.approx(self.cfg.message_gap)

    def test_data_messages_serialize_fifo(self):
        size = 1 * MiB
        ser = self.nic.serialization(size)
        d1 = self.nic.inject(0.0, size, MessageClass.DATA)
        d2 = self.nic.inject(0.0, size, MessageClass.DATA)
        assert d1 == pytest.approx(ser)
        assert d2 == pytest.approx(2 * ser)

    def test_control_bypasses_inflight_data(self):
        big = 8 * MiB
        self.nic.inject(0.0, big, MessageClass.DATA)
        ctrl_depart = self.nic.inject(0.0, 256, MessageClass.CONTROL)
        # Control leaves after its own serialization, not after the data.
        assert ctrl_depart < 2 * US
        # ...and the data channel got pushed back by the stolen bandwidth.
        assert self.nic.tx_data_busy > self.nic.serialization(big)

    def test_rx_single_stream_not_delayed(self):
        size = 1 * MiB
        ser = self.nic.serialization(size)
        arrival = 5 * ser
        deliver = self.nic.eject(0.0, arrival, size, MessageClass.DATA)
        assert deliver == pytest.approx(arrival)

    def test_rx_incast_queues(self):
        size = 1 * MiB
        ser = self.nic.serialization(size)
        arrival = 2 * ser
        d1 = self.nic.eject(0.0, arrival, size, MessageClass.DATA)
        d2 = self.nic.eject(0.0, arrival, size, MessageClass.DATA)
        assert d1 == pytest.approx(arrival)
        assert d2 == pytest.approx(arrival + ser)

    def test_counters(self):
        self.nic.inject(0.0, 100, MessageClass.DATA)
        self.nic.eject(0.0, 1.0, 200, MessageClass.DATA)
        assert (self.nic.tx_bytes, self.nic.rx_bytes) == (100, 200)
        assert (self.nic.tx_msgs, self.nic.rx_msgs) == (1, 1)


class TestFabric:
    def test_delivery_invokes_handler_with_latency(self):
        sim = Simulator()
        fabric = Fabric(sim, 2)
        seen = []
        fabric.register_handler(1, "t", lambda m: seen.append((sim.now, m.msg_id)))
        msg = WireMessage(src=0, dst=1, size=64, msg_class=MessageClass.CONTROL, channel="t")
        fabric.send(msg)
        sim.run()
        assert len(seen) == 1
        t, _ = seen[0]
        # At least base latency, well under a millisecond.
        assert fabric.base_latency(0, 1) <= t < 1e-3

    def test_loopback_skips_wire(self):
        sim = Simulator()
        fabric = Fabric(sim, 2)
        seen = []
        fabric.register_handler(0, "t", lambda m: seen.append(sim.now))
        fabric.send(WireMessage(src=0, dst=0, size=1 * MiB, msg_class=MessageClass.DATA, channel="t"))
        sim.run()
        assert seen == [pytest.approx(Fabric.LOOPBACK_LATENCY)]
        assert fabric.nics[0].tx_bytes == 0

    def test_unregistered_handler_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim, 2)
        msg = WireMessage(src=0, dst=1, size=1, msg_class=MessageClass.CONTROL, channel="x")
        with pytest.raises(NetworkError):
            fabric.send(msg)

    def test_duplicate_handler_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim, 2)
        fabric.register_handler(0, "t", lambda m: None)
        with pytest.raises(NetworkError):
            fabric.register_handler(0, "t", lambda m: None)

    def test_large_transfer_time_close_to_line_rate(self):
        sim = Simulator()
        cfg = NetworkConfig()
        fabric = Fabric(sim, 2, cfg)
        done = []
        fabric.register_handler(1, "t", lambda m: done.append(sim.now))
        size = 8 * MiB
        fabric.send(WireMessage(src=0, dst=1, size=size, msg_class=MessageClass.DATA, channel="t"))
        sim.run()
        expect = size / cfg.bandwidth + fabric.base_latency(0, 1)
        assert done[0] == pytest.approx(expect, rel=1e-6)

    def test_in_order_delivery_same_pair_same_class(self):
        sim = Simulator()
        fabric = Fabric(sim, 2)
        order = []
        fabric.register_handler(1, "t", lambda m: order.append(m.payload))
        for i in range(10):
            fabric.send(
                WireMessage(src=0, dst=1, size=4 * KiB, msg_class=MessageClass.DATA, channel="t", payload=i)
            )
        sim.run()
        assert order == list(range(10))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WireMessage(src=0, dst=1, size=-1, msg_class=MessageClass.DATA)

    def test_enable_message_log_warns_at_caller(self):
        """The deprecation shim must blame the *caller's* line (stacklevel=2),
        not fabric.py, or every report points at the shim itself."""
        import warnings

        sim = Simulator()
        fabric = Fabric(sim, 2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            log = fabric.enable_message_log()
        assert log == []
        deps = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deps) == 1
        assert deps[0].filename == __file__

    def test_total_bytes(self):
        sim = Simulator()
        fabric = Fabric(sim, 3)
        fabric.register_handler(1, "t", lambda m: None)
        fabric.send(WireMessage(src=0, dst=1, size=100, msg_class=MessageClass.DATA, channel="t"))
        fabric.send(WireMessage(src=2, dst=1, size=50, msg_class=MessageClass.DATA, channel="t"))
        sim.run()
        assert fabric.total_bytes() == 150


class TestNetpipe:
    def test_rtt_small_message_is_microseconds(self):
        rtt = netpipe_rtt(8)
        assert 1 * US < rtt < 10 * US

    def test_bandwidth_monotone_in_size(self):
        curve = netpipe_bandwidth_curve([4 * KiB, 64 * KiB, 1 * MiB, 8 * MiB])
        bws = [bw for _s, bw in curve]
        assert bws == sorted(bws)

    def test_large_messages_near_line_rate(self):
        cfg = NetworkConfig()
        ((_, bw),) = netpipe_bandwidth_curve([8 * MiB], cfg)
        assert gbit_per_s(bw) > 0.9 * gbit_per_s(cfg.bandwidth)

    def test_small_messages_latency_bound(self):
        ((_, bw),) = netpipe_bandwidth_curve([64])
        # 64 B over ~1.5 µs one-way ≈ tens of MB/s, far from line rate.
        assert gbit_per_s(bw) < 1.0
