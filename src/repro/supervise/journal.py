"""The write-ahead sweep journal: crash-safe, checksummed, resumable.

Format
------
One canonical-JSON object per line (``\\n``-terminated).  Every entry
carries a ``check`` field — the :func:`repro.codec.stable_hash` of the
entry *without* ``check`` — so a torn or bit-rotted line is detected
positively rather than half-parsed.  Entry kinds:

``sweep_begin``
    Written once when the sweep opens the journal: the spec name, point
    count, a hash over the ordered point keys (so a journal can never be
    replayed against a different grid), and the sweep config.
``attempt``
    Written *before* a point is dispatched (the write-ahead part): point
    index and attempt number.  A crash between ``attempt`` and ``outcome``
    means the point's fate is unknown and it re-runs on resume.
``outcome``
    The point's fate: ``status`` ``"ok"`` (with the canonical result
    record) or ``"failed"`` (with the error repr).
``interrupted``
    Appended by the SIGINT/SIGTERM flush path before the driver exits.
``sweep_end``
    Terminal entry of a completed sweep.

Reading is **corrupt-tail tolerant**: :func:`read_journal` returns every
leading entry whose checksum verifies and stops at the first damaged line
(a killed writer can only tear the tail — appends are single ``write``
calls flushed per entry).  Damaged or missing outcomes simply re-run; they
can never be half-trusted.  The ``journal_truncate`` harness-chaos kind
(see :func:`repro.faults.plans.parse_harness_chaos`) tears the tail on
purpose to keep this path honest.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Any, Optional

from repro.codec import canonical_json, stable_hash
from repro.errors import SweepError

__all__ = ["SweepJournal", "JournalState", "read_journal"]

_FORMAT_VERSION = 1


def _sealed(entry: dict) -> str:
    """The entry's canonical line, ``check`` field included."""
    entry = dict(entry)
    entry.pop("check", None)
    entry["check"] = stable_hash(entry)
    return canonical_json(entry)


def _verify(entry: Any) -> bool:
    """True when ``entry`` is a dict whose ``check`` field matches."""
    if not isinstance(entry, dict) or "check" not in entry:
        return False
    body = {k: v for k, v in entry.items() if k != "check"}
    return stable_hash(body) == entry["check"]


class JournalState:
    """Everything a resume needs, replayed from the verified entries."""

    def __init__(self) -> None:
        #: The verified ``sweep_begin`` entry, or ``None``.
        self.begin: Optional[dict] = None
        #: Point index → canonical result record (``"ok"`` outcomes only).
        self.completed: dict[int, dict] = {}
        #: Point index → last recorded error repr (``"failed"`` outcomes).
        self.failed: dict[int, str] = {}
        #: Point index → attempts already journaled.
        self.attempts: dict[int, int] = {}
        #: Verified entries read before the (possibly corrupt) tail.
        self.entries: int = 0
        #: True when a damaged line stopped the read early.
        self.corrupt_tail: bool = False
        #: True when a terminal ``sweep_end`` entry was read.
        self.finished: bool = False
        #: True when an ``interrupted`` flush entry was read.
        self.interrupted: bool = False

    def summary(self) -> str:
        """One-line resume report."""
        tail = ", corrupt tail dropped" if self.corrupt_tail else ""
        return (
            f"journal: {self.entries} entries, {len(self.completed)} points "
            f"complete, {len(self.failed)} failed"
            f"{' (interrupted)' if self.interrupted else ''}{tail}"
        )


def read_journal(path: "Path | str") -> JournalState:
    """Replay ``path`` into a :class:`JournalState`, tolerating a torn tail.

    A missing file yields an empty state.  Lines after the first damaged
    one are ignored — with per-entry flushes only the tail can be torn, and
    anything beyond a tear cannot be ordered against the missing data.
    """
    state = JournalState()
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return state
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            state.corrupt_tail = True
            break
        if not _verify(entry):
            state.corrupt_tail = True
            break
        state.entries += 1
        kind = entry.get("kind")
        if kind == "sweep_begin":
            state.begin = entry
        elif kind == "attempt":
            idx = entry["idx"]
            state.attempts[idx] = max(state.attempts.get(idx, 0), entry["attempt"])
        elif kind == "outcome":
            idx = entry["idx"]
            if entry["status"] == "ok":
                state.completed[idx] = entry["record"]
                state.failed.pop(idx, None)
            else:
                state.failed[idx] = entry.get("error", "")
        elif kind == "interrupted":
            state.interrupted = True
        elif kind == "sweep_end":
            state.finished = True
    return state


class SweepJournal:
    """Append-only writer over the journal file.

    Each append is one ``write`` of a full line followed by ``flush`` +
    ``fsync``, so a crash at any instant leaves at most one torn line at
    the tail — exactly what :func:`read_journal` tolerates.
    """

    def __init__(self, path: "Path | str"):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fp: Optional[io.TextIOBase] = None
        #: Set by harness chaos (``journal_truncate``): tear the tail of
        #: the next ``outcome`` append for this point index, then stop
        #: writing — simulating the writer dying mid-append.
        self._truncate_at: Optional[int] = None

    # -- lifecycle --------------------------------------------------------

    def open(self, truncate: bool = False) -> "SweepJournal":
        """Open the file for appending (created empty if absent).

        ``truncate=True`` discards any existing content — used by fresh
        (non-resume) sweeps so a stale journal from an earlier grid can
        never leak entries into this one.
        """
        if self._fp is None:
            self._fp = open(self.path, "w" if truncate else "a",
                            encoding="utf-8")
        return self

    def close(self) -> None:
        """Flush and close; further appends raise."""
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    @staticmethod
    def begin_entry(name: str, keys: list, config_doc: dict) -> dict:
        """The identity payload a journal is bound to (see :meth:`begin`)."""
        return {
            "kind": "sweep_begin",
            "v": _FORMAT_VERSION,
            "name": name,
            "n_points": len(keys),
            "keys_hash": stable_hash(list(keys)),
            "config": config_doc,
        }

    # -- appends ----------------------------------------------------------

    def _append(self, entry: dict) -> None:
        if self._fp is None:
            return  # journal dead (chaos tear or closed) — writes are lost,
            # which is precisely the failure mode resume must absorb.
        line = _sealed(entry) + "\n"
        if self._truncate_at is not None and (
            entry.get("kind") == "outcome" and entry.get("idx") == self._truncate_at
        ):
            # Chaos: die mid-append — half the line, no newline, no more
            # writes.  read_journal must drop this tail and re-run the point.
            self._fp.write(line[: max(1, len(line) // 2)])
            self._fp.flush()
            os.fsync(self._fp.fileno())
            self.close()
            return
        self._fp.write(line)
        self._fp.flush()
        os.fsync(self._fp.fileno())

    def begin(self, name: str, keys: list, config_doc: dict) -> None:
        """Journal the sweep identity (spec name, ordered keys, config)."""
        self._append(self.begin_entry(name, keys, config_doc))

    def attempt(self, idx: int, attempt: int) -> None:
        """Write-ahead: point ``idx`` is about to run (``attempt``-th try)."""
        self._append({"kind": "attempt", "idx": idx, "attempt": attempt})

    def outcome_ok(self, idx: int, record: dict) -> None:
        """Point ``idx`` completed with ``record``."""
        self._append({"kind": "outcome", "idx": idx, "status": "ok",
                      "record": record})

    def outcome_failed(self, idx: int, error: str) -> None:
        """Point ``idx`` exhausted its retries with ``error``."""
        self._append({"kind": "outcome", "idx": idx, "status": "failed",
                      "error": error})

    def interrupted(self, reason: str) -> None:
        """Flush entry written by the SIGINT/SIGTERM handler path."""
        self._append({"kind": "interrupted", "reason": reason})

    def end(self, executed: int, cached: int, failed: int) -> None:
        """Terminal entry of a completed sweep."""
        self._append({"kind": "sweep_end", "executed": executed,
                      "cached": cached, "failed": failed})

    # -- resume -----------------------------------------------------------

    def load_for_resume(self, begin_entry: dict) -> JournalState:
        """Read the existing journal and check it matches this sweep.

        ``begin_entry`` is :meth:`begin_entry` for the sweep about to run;
        a journal recorded for a different grid (name, point count, or key
        order) raises :class:`~repro.errors.SweepError` rather than
        silently mixing records.
        """
        state = read_journal(self.path)
        if state.begin is not None:
            for field in ("name", "n_points", "keys_hash"):
                if state.begin.get(field) != begin_entry[field]:
                    raise SweepError(
                        f"journal {self.path} records a different sweep "
                        f"({field}: {state.begin.get(field)!r} != "
                        f"{begin_entry[field]!r}); refusing to resume"
                    )
        return state
