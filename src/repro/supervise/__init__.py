"""``repro.supervise`` — supervised execution for runs and sweeps.

The paper's results come from long multi-run campaigns (the 15-of-18-run
methodology, 1–32 nodes); this package makes the *execution harness* as
fault-tolerant as PR 2 made the simulated system:

- **run guards** (:mod:`repro.supervise.guards`) — wall-clock deadline,
  kernel event budget, memory ceiling, and live-lock detection enforced
  from the simulator's existing run-loop tick; violations raise structured
  :class:`~repro.errors.RunBudgetExceeded` / :class:`~repro.errors.
  NoProgressError` carrying a diagnostic snapshot and salvaged partial
  results instead of dying opaquely;
- **worker supervision** (:mod:`repro.supervise.pool`) — the sweep
  engine's parallel path runs under a supervisor that respawns workers
  killed by SIGKILL/OOM, terminates hung points via a heartbeat timeout,
  and classifies failures as transient (retry) vs deterministic (fail
  fast);
- **crash-safe resumption** (:mod:`repro.supervise.journal`) — a
  write-ahead, checksummed, corrupt-tail-tolerant sweep journal that
  ``python -m repro sweep ... --resume`` replays to skip completed
  points, making an interrupted campaign lose at most the in-flight
  points.

Harness-level chaos (``worker_kill`` / ``worker_hang`` /
``journal_truncate``, :func:`repro.faults.plans.parse_harness_chaos`)
verifies the supervisor itself under injected crashes; see
``docs/robustness.md`` for the runbook and
``tools/check_interrupt_resume.py`` for the end-to-end gate.
"""

from repro.errors import (
    NoProgressError,
    RunBudgetExceeded,
    SupervisionError,
    SweepInterrupted,
)
from repro.supervise.guards import RunGuards, diagnostic_snapshot
from repro.supervise.journal import JournalState, SweepJournal, read_journal
from repro.supervise.pool import (
    WorkerSupervisor,
    classify_failure,
    is_deterministic_failure,
)

__all__ = [
    "SupervisionError",
    "RunBudgetExceeded",
    "NoProgressError",
    "SweepInterrupted",
    "RunGuards",
    "diagnostic_snapshot",
    "SweepJournal",
    "JournalState",
    "read_journal",
    "WorkerSupervisor",
    "classify_failure",
    "is_deterministic_failure",
]
