"""Run guards: hard budgets enforced from the simulator's run-loop tick.

A :class:`RunGuards` instance attaches to a :class:`~repro.runtime.context.
ParsecContext` through the same coarse tick hook the progress reporter
uses (:meth:`repro.sim.core.Simulator.set_tick`), chaining any tick
already installed so guards and heartbeats coexist.  Every check is
*observational* until a budget is crossed — a guarded run that finishes
inside its budgets is bit-identical to an unguarded one (asserted by
``tools/check_fault_determinism.py``, which runs guard-free, and by the
guard-parity test in ``tests/test_supervise.py``).

On a violation the guard raises a structured exception out of
:meth:`Simulator.run` — :class:`~repro.errors.RunBudgetExceeded` for the
wall-clock deadline, kernel event budget, and memory ceiling;
:class:`~repro.errors.NoProgressError` when simulated time keeps advancing
but no task completes over the configured window (a live-lock, e.g. pollers
spinning on a protocol state that can never resolve).  Both kernels (the
epoch-batched core and the frozen legacy core) guarantee a tick callback
may raise: the run loop stays consistent, so the context can still be
inspected.  :class:`~repro.runtime.context.ParsecContext.run` catches the
guard exception, attaches :func:`diagnostic_snapshot` output plus salvaged
partial :class:`~repro.runtime.context.RunStats`, and re-raises — an
aborted paper-scale run reports *where* it stood, not just that it died.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError, NoProgressError, RunBudgetExceeded
from repro.obs.progress import peak_rss_bytes

__all__ = ["RunGuards", "diagnostic_snapshot"]

#: How many trailing observability events a snapshot captures.
SNAPSHOT_EVENTS = 25


def diagnostic_snapshot(ctx, events: int = SNAPSHOT_EVENTS) -> dict:
    """Capture the context's state for a structured abort report.

    Returns a plain dict (JSON-able apart from event ``info`` payloads)
    with progress counters, simulated/wall clocks, observability counter
    totals, each backend engine's quiescence report, and the last
    ``events`` observability events when an in-memory sink is attached.
    Never raises: a snapshot taken from a half-wedged run degrades to
    whatever state is still reachable.
    """
    snap: dict = {}
    try:
        snap["tasks_done"] = ctx._executed
        snap["tasks_total"] = ctx._total_tasks
        snap["sim_now"] = ctx.sim.now
        snap["events_processed"] = ctx.sim.events_processed
        snap["rss_bytes"] = peak_rss_bytes()
    except Exception:  # pragma: no cover - snapshot must not mask the abort
        pass
    try:
        snap["counters"] = dict(sorted(ctx.obs.counter_totals().items()))
    except Exception:  # pragma: no cover
        snap["counters"] = {}
    quiescence = []
    try:
        for rank, engine in enumerate(ctx.engines):
            report = engine.quiescence_report()
            if any(report.values()):
                quiescence.append({"rank": rank, **report})
    except Exception:  # pragma: no cover
        pass
    snap["quiescence"] = quiescence
    try:
        memory = getattr(ctx.obs, "memory", None)
        if memory is not None:
            snap["last_events"] = [
                {"time": e.time, "kind": e.kind, "node": e.node,
                 "key": e.key, "info": e.info}
                for e in memory.events[-events:]
            ]
    except Exception:  # pragma: no cover
        pass
    return snap


@dataclass
class RunGuards:
    """Budget configuration for one supervised run.

    ``None`` disables a guard; all-``None`` guards are a validated no-op.
    ``deadline`` and the heartbeat are *wall-clock* seconds;
    ``no_progress_window`` is *simulated* seconds (the live-lock signature
    is simulated time advancing without task completions, independent of
    host speed, so the detection itself stays deterministic for a given
    tick cadence).
    """

    #: Wall-clock seconds the run may take before aborting.
    deadline: Optional[float] = None
    #: Kernel events the run may process before aborting.
    max_events: Optional[int] = None
    #: Peak RSS ceiling in bytes.
    max_rss_bytes: Optional[int] = None
    #: Simulated seconds that may elapse with zero task completions.
    no_progress_window: Optional[float] = None
    #: Kernel events between guard checks (tick cadence).
    check_every: int = 4096

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigError(f"RunGuards.deadline must be > 0 (got {self.deadline!r})")
        if self.max_events is not None and self.max_events <= 0:
            raise ConfigError(
                f"RunGuards.max_events must be > 0 (got {self.max_events!r})"
            )
        if self.max_rss_bytes is not None and self.max_rss_bytes <= 0:
            raise ConfigError(
                f"RunGuards.max_rss_bytes must be > 0 (got {self.max_rss_bytes!r})"
            )
        if self.no_progress_window is not None and self.no_progress_window <= 0:
            raise ConfigError(
                "RunGuards.no_progress_window must be > 0 "
                f"(got {self.no_progress_window!r})"
            )
        if self.check_every < 1:
            raise ConfigError(
                f"RunGuards.check_every must be >= 1 (got {self.check_every!r})"
            )
        self._ctx = None
        self._chained = None
        self._t0 = 0.0
        self._base_events = 0
        self._last_event_count = 0
        self._window_start_sim = 0.0
        self._window_executed = -1

    @property
    def enabled(self) -> bool:
        """True when at least one budget is set."""
        return any(
            limit is not None
            for limit in (self.deadline, self.max_events,
                          self.max_rss_bytes, self.no_progress_window)
        )

    # -- wiring -----------------------------------------------------------

    def install(self, ctx) -> None:
        """Attach to ``ctx``, chaining any tick already installed (e.g. a
        :class:`~repro.obs.progress.ProgressReporter`'s)."""
        if not self.enabled:
            return
        self._ctx = ctx
        self._chained = ctx.sim._tick_fn
        self._chained_every = ctx.sim._tick_every
        self._t0 = time.perf_counter()
        self._base_events = ctx.sim.events_processed
        self._window_start_sim = ctx.sim.now
        self._window_executed = ctx._executed
        every = self.check_every
        if self._chained is not None:
            every = min(every, ctx.sim._tick_every)
        ctx.sim.set_tick(self._tick, every=every)

    def finish(self) -> None:
        """Detach, restoring any chained tick."""
        ctx, self._ctx = self._ctx, None
        if ctx is None:
            return
        if self._chained is not None:
            ctx.sim.set_tick(self._chained, every=self._chained_every)
        else:
            ctx.sim.set_tick(None)
        self._chained = None

    # -- checks -----------------------------------------------------------

    def _abort(self, exc_type, reason: str):
        ctx = self._ctx
        snap = diagnostic_snapshot(ctx)
        # Mid-run the kernel keeps its event count in a run-loop local
        # (written back only on exit), so the tick argument is the live one.
        snap["events_processed"] = max(
            snap.get("events_processed", 0), self._last_event_count
        )
        snap["reason"] = reason
        snap["wall_elapsed"] = time.perf_counter() - self._t0
        if ctx.obs.enabled:
            ctx.obs.emit("watchdog_abort", -1, key=exc_type.__name__,
                         info=reason, time=ctx.sim.now)
        raise exc_type(reason, snapshot=snap)

    def _tick(self, event_count: int) -> None:
        if self._chained is not None:
            self._chained(event_count)
        ctx = self._ctx
        self._last_event_count = event_count
        if self.max_events is not None:
            spent = event_count - self._base_events
            if spent > self.max_events:
                self._abort(
                    RunBudgetExceeded,
                    f"event budget exceeded: {spent:,} kernel events "
                    f"(> {self.max_events:,})",
                )
        if self.deadline is not None:
            elapsed = time.perf_counter() - self._t0
            if elapsed > self.deadline:
                self._abort(
                    RunBudgetExceeded,
                    f"wall-clock deadline exceeded: {elapsed:.1f}s "
                    f"(> {self.deadline:.1f}s)",
                )
        if self.max_rss_bytes is not None:
            rss = peak_rss_bytes()
            if rss > self.max_rss_bytes:
                self._abort(
                    RunBudgetExceeded,
                    f"memory ceiling exceeded: {rss / 2**30:.2f} GiB RSS "
                    f"(> {self.max_rss_bytes / 2**30:.2f} GiB)",
                )
        if self.no_progress_window is not None:
            if ctx._executed != self._window_executed:
                # Progress: restart the window at the current clock.
                self._window_executed = ctx._executed
                self._window_start_sim = ctx.sim.now
            elif ctx.sim.now - self._window_start_sim > self.no_progress_window:
                self._abort(
                    NoProgressError,
                    "no progress: simulated time advanced "
                    f"{ctx.sim.now - self._window_start_sim:.6g}s "
                    f"(> {self.no_progress_window:.6g}s window) with "
                    f"{ctx._executed}/{ctx._total_tasks} tasks complete",
                )
