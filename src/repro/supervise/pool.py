"""The supervised worker pool behind ``run_sweep``'s parallel path.

Why not ``ProcessPoolExecutor``
-------------------------------
A bare executor turns one SIGKILLed worker (OOM killer, operator, chaos)
into a ``BrokenProcessPool`` that aborts the whole sweep, and a hung point
blocks its future forever.  :class:`WorkerSupervisor` owns its workers
directly, one duplex pipe pair each, so failure containment is per-worker:

- **death** — a worker that disappears (its result pipe hits EOF) is
  respawned and its in-flight point retried through the shared
  :class:`~repro.runtime.comm_engine.BackoffPolicy` budget;
- **hang** — every worker message (``begin``, periodic ``hb`` heartbeats
  from the run-progress tick, ``ok``/``err``) refreshes a liveness stamp;
  a busy worker silent for ``heartbeat_timeout`` wall seconds is
  SIGKILLed, respawned, and its point retried;
- **failure classification** — exceptions are classified by
  :func:`classify_failure`: *deterministic* failures (``ConfigError``,
  ``TypeError``, ... — re-running cannot change the outcome) fail the
  point immediately instead of burning retries × backoff wall-clock;
  everything else is *transient* and retried.

Messages are tagged with a monotonically increasing worker id; a stale
message from a worker that was already declared dead or hung is dropped,
so a kill racing a result can never double-count a point.

The supervisor emits ``watchdog_*`` observability events and
``supervise.*`` counters (respawns, hangs, transient retries, fail-fasts)
and honours the harness-chaos environment
(:func:`repro.faults.plans.harness_chaos_from_env`): ``worker_kill`` and
``worker_hang`` fire *inside the worker* when it picks up the targeted
point, which is how ``tools/check_interrupt_resume.py`` proves the
supervision paths work end to end.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Optional

from repro.errors import (
    BenchmarkError,
    ConfigError,
    HicmaError,
    SimulationError,
    SweepError,
)
from repro.obs.bus import NULL_BUS
from repro.runtime.comm_engine import BackoffPolicy

__all__ = ["WorkerSupervisor", "classify_failure", "is_deterministic_failure"]

#: Exception families for which a retry cannot change the outcome: the
#: point's configuration or the code itself is wrong.  Everything else —
#: OS trouble, resource exhaustion, a killed worker — is transient.
_DETERMINISTIC = (
    ConfigError,
    SweepError,
    BenchmarkError,
    HicmaError,
    SimulationError,
    TypeError,
    ValueError,
    KeyError,
    AttributeError,
    AssertionError,
    ZeroDivisionError,
)


def classify_failure(exc: BaseException) -> str:
    """``"deterministic"`` (fail fast) or ``"transient"`` (retry).

    Shared by the serial retry loop in :func:`repro.sweep.engine.run_sweep`
    and the supervisor; the default for unknown exception types is
    ``"transient"`` — when in doubt, one more attempt is cheaper than a
    lost campaign point.
    """
    return "deterministic" if isinstance(exc, _DETERMINISTIC) else "transient"


def is_deterministic_failure(exc: BaseException) -> bool:
    """True when retrying ``exc``'s point cannot change the outcome."""
    return classify_failure(exc) == "deterministic"


class _PipeBeat:
    """Heartbeat emitter for one in-flight point, duck-typing the
    :class:`~repro.obs.progress.ProgressReporter` install/finish contract
    so :func:`repro.sweep.engine.execute_point` can hand it to workloads
    that take a ``progress`` reporter (the run-progress tick then becomes
    the liveness signal)."""

    def __init__(self, conn, idx: int, interval: float):
        self._conn = conn
        self._idx = idx
        self._interval = interval
        self._ctx = None
        self._last = time.monotonic()

    def install(self, ctx) -> None:
        """Attach to the context's run-loop tick (ProgressReporter duck)."""
        self._ctx = ctx
        ctx.sim.set_tick(self._tick, every=4096)

    def finish(self) -> None:
        """Detach from the tick."""
        if self._ctx is not None:
            self._ctx.sim.set_tick(None)
            self._ctx = None

    def _tick(self, _event_count: int) -> None:
        now = time.monotonic()
        if now - self._last >= self._interval:
            self._last = now
            self._conn.send(("hb", self._idx))


def _fire_worker_chaos(idx: int) -> None:
    """Fire any armed ``worker_kill``/``worker_hang`` targeting ``idx``."""
    from repro.faults.plans import harness_chaos_from_env

    for fault in harness_chaos_from_env():
        if fault.kind == "worker_kill" and fault.should_fire(idx):
            fault.mark_fired()
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.kind == "worker_hang" and fault.should_fire(idx):
            fault.mark_fired()
            while True:  # pragma: no cover - killed by the supervisor
                time.sleep(3600.0)


def _worker_main(task_conn, result_conn) -> None:
    """Worker-process entry: execute points until the task pipe closes.

    Results cross the pipe as canonical JSON (``sort_keys`` round-trip),
    preserving the engine's bit-identical serial == parallel == cached
    contract.  Exceptions are reported by name/repr plus their
    classification — exception *types* are classified here, where they are
    live objects, not re-guessed from text in the driver.
    """
    from repro.sweep.engine import execute_point
    from repro.sweep.spec import SweepPoint

    while True:
        try:
            item = task_conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        idx, doc, hb_interval = item
        result_conn.send(("begin", idx))
        _fire_worker_chaos(idx)
        try:
            beat = _PipeBeat(result_conn, idx, hb_interval)
            record = execute_point(SweepPoint.from_dict(doc), progress=beat)
            record = json.loads(json.dumps(record, sort_keys=True))
            result_conn.send(("ok", idx, record))
        except BaseException as exc:  # noqa: BLE001 - classified and reported
            result_conn.send(
                ("err", idx, type(exc).__name__, repr(exc),
                 is_deterministic_failure(exc))
            )


class _Worker:
    """One supervised worker process and its pipe pair."""

    __slots__ = ("wid", "proc", "task_conn", "result_conn", "idx", "last_beat")

    def __init__(self, wid: int, mp_ctx):
        self.wid = wid
        parent_task, child_task = mp_ctx.Pipe(duplex=False)
        parent_result, child_result = mp_ctx.Pipe(duplex=False)
        self.proc = mp_ctx.Process(
            target=_worker_main,
            args=(parent_task, child_result),
            name=f"sweep-worker-{wid}",
            daemon=True,
        )
        self.proc.start()
        parent_task.close()
        child_result.close()
        self.task_conn = child_task      # driver writes tasks here
        self.result_conn = parent_result  # driver reads results here
        #: Sweep point index in flight, or ``None`` when idle.
        self.idx: Optional[int] = None
        #: Wall-clock stamp of the last message (liveness signal).
        self.last_beat = time.monotonic()

    def kill(self) -> None:
        """SIGKILL + reap; close both pipe ends."""
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5.0)
        self.proc.close()
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass


class WorkerSupervisor:
    """Fan sweep points over supervised worker processes.

    Use as a context manager; :meth:`run` dispatches ``tasks`` (a list of
    ``(idx, point_doc)`` pairs) and drives every point to a terminal
    ``on_ok(idx, record)`` or ``on_failed(idx, error_repr)`` callback.
    ``on_attempt(idx, attempt)`` fires *before* each dispatch (the sweep
    journal's write-ahead hook); ``on_retry(idx, attempt, reason)`` after
    each transient failure.  Exceptions raised by callbacks (``fail_fast``)
    propagate after the workers are torn down.
    """

    def __init__(
        self,
        jobs: int,
        *,
        retries: int = 1,
        backoff: Optional[BackoffPolicy] = None,
        heartbeat_timeout: float = 30.0,
        poll_interval: float = 0.05,
        obs: Any = NULL_BUS,
    ):
        if jobs < 1:
            raise ConfigError(f"WorkerSupervisor needs jobs >= 1 (got {jobs!r})")
        if heartbeat_timeout <= 0:
            raise ConfigError(
                f"heartbeat_timeout must be > 0 (got {heartbeat_timeout!r})"
            )
        self.jobs = jobs
        self.retries = retries
        self.backoff = backoff or BackoffPolicy(base=0.05, factor=2.0, max_delay=2.0)
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.obs = obs
        #: Wall-clock cadence of worker heartbeats (4 per timeout window).
        self.beat_interval = max(0.05, heartbeat_timeout / 4.0)
        self.respawned = 0
        self.hung = 0
        self._mp = multiprocessing.get_context()
        self._next_wid = 0
        self._workers: dict[int, _Worker] = {}
        self._c_respawn = obs.counter("supervise.respawned")
        self._c_hung = obs.counter("supervise.hung")

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "WorkerSupervisor":
        for _ in range(self.jobs):
            self._spawn()
        return self

    def __exit__(self, *exc_info) -> None:
        for worker in list(self._workers.values()):
            try:
                worker.task_conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers.values():
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in self._workers.values():
            worker.kill()
        self._workers.clear()

    def _spawn(self) -> "_Worker":
        self._next_wid += 1
        worker = _Worker(self._next_wid, self._mp)
        self._workers[worker.wid] = worker
        if self.obs.enabled:
            self.obs.emit("watchdog_worker", -1, key=worker.wid,
                          info="spawned", time=0.0)
        return worker

    def _replace(self, worker: "_Worker", reason: str) -> None:
        """Tear down ``worker`` and spawn a successor."""
        del self._workers[worker.wid]
        worker.kill()
        self.respawned += 1
        self._c_respawn.inc()
        if self.obs.enabled:
            self.obs.emit("watchdog_worker", -1, key=worker.wid,
                          info=reason, time=0.0)
        self._spawn()

    # -- dispatch ---------------------------------------------------------

    def run(
        self,
        tasks: list,
        on_ok: Callable[[int, dict], None],
        on_failed: Callable[[int, str], None],
        on_attempt: Optional[Callable[[int, int], None]] = None,
        on_retry: Optional[Callable[[int, int, str], None]] = None,
    ) -> None:
        """Drive every ``(idx, doc)`` task to a terminal callback."""
        pending = list(tasks)
        attempts = {idx: 0 for idx, _ in tasks}
        outstanding = len(pending)
        docs = {idx: doc for idx, doc in tasks}

        def dispatch(idx: int) -> None:
            worker = next(
                (w for w in self._workers.values() if w.idx is None), None
            )
            if worker is None:  # pragma: no cover - dispatch only when free
                pending.append((idx, docs[idx]))
                return
            attempts[idx] += 1
            if on_attempt is not None:
                on_attempt(idx, attempts[idx])
            worker.idx = idx
            worker.last_beat = time.monotonic()
            worker.task_conn.send((idx, docs[idx], self.beat_interval))

        def retry_or_fail(idx: int, reason: str, deterministic: bool) -> bool:
            """Handle a failed attempt; returns True when terminal."""
            nonlocal outstanding
            if deterministic or attempts[idx] > self.retries:
                outstanding -= 1
                on_failed(idx, reason)
                return True
            if on_retry is not None:
                on_retry(idx, attempts[idx], reason)
            time.sleep(self.backoff.delay(attempts[idx]))
            pending.append((idx, docs[idx]))
            return False

        while outstanding > 0:
            while pending and any(w.idx is None for w in self._workers.values()):
                idx, _doc = pending.pop(0)
                dispatch(idx)
            ready = _conn_wait(
                [w.result_conn for w in self._workers.values()],
                timeout=self.poll_interval,
            )
            now = time.monotonic()
            conn_owner = {w.result_conn: w for w in self._workers.values()}
            for conn in ready:
                worker = conn_owner.get(conn)
                if worker is None:  # pragma: no cover - stale fd after replace
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # The worker died (SIGKILL/OOM): respawn, retry its point.
                    idx = worker.idx
                    self._replace(worker, "died")
                    if idx is not None:
                        retry_or_fail(idx, "worker died (killed or OOM)", False)
                    continue
                worker.last_beat = now
                kind = msg[0]
                if kind in ("begin", "hb"):
                    continue
                idx = msg[1]
                worker.idx = None
                if kind == "ok":
                    outstanding -= 1
                    on_ok(idx, msg[2])
                else:  # "err"
                    _kind, _idx, name, text, deterministic = msg
                    retry_or_fail(idx, f"{name}: {text}", deterministic)
            # Hang detection: busy workers silent past the timeout.
            for worker in list(self._workers.values()):
                if worker.idx is None:
                    if not worker.proc.is_alive():
                        self._replace(worker, "died idle")
                    continue
                if now - worker.last_beat > self.heartbeat_timeout:
                    idx = worker.idx
                    self.hung += 1
                    self._c_hung.inc()
                    if self.obs.enabled:
                        self.obs.emit("watchdog_worker", -1, key=worker.wid,
                                      info=f"hung on point {idx}", time=0.0)
                    self._replace(worker, "hung")
                    retry_or_fail(
                        idx,
                        f"no heartbeat for {self.heartbeat_timeout:.1f}s",
                        False,
                    )
