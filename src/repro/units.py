"""Unit helpers.

All simulation time is in **seconds** (float), all sizes in **bytes** (int),
all rates in **bytes per second** unless a name says otherwise.  These helpers
keep benchmark code readable and make the paper's axis labels (KiB, Gbit/s)
trivially convertible.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

US = 1e-6
MS = 1e-3
NS = 1e-9


def gbit_per_s(rate_bytes_per_s: float) -> float:
    """Convert bytes/second to Gbit/second (decimal giga, as network vendors
    and the paper's figures use)."""
    return rate_bytes_per_s * 8.0 / 1e9


def bytes_per_s_from_gbit(gbit: float) -> float:
    """Convert a Gbit/s line rate to bytes/second."""
    return gbit * 1e9 / 8.0


def fmt_size(nbytes: float) -> str:
    """Human-readable size, binary units, matching the paper's axis style."""
    if nbytes >= GiB:
        return f"{nbytes / GiB:g} GiB"
    if nbytes >= MiB:
        return f"{nbytes / MiB:g} MiB"
    if nbytes >= KiB:
        return f"{nbytes / KiB:g} KiB"
    return f"{nbytes:g} B"


def fmt_time(seconds: float) -> str:
    """Human-readable time with µs/ms/s auto-scaling."""
    if seconds == 0:
        return "0 s"
    a = abs(seconds)
    if a < 1e-3:
        return f"{seconds / US:.3g} us"
    if a < 1.0:
        return f"{seconds / MS:.3g} ms"
    return f"{seconds:.4g} s"


def fmt_rate(bytes_per_s: float) -> str:
    """Human-readable bandwidth in Gbit/s (paper convention)."""
    return f"{gbit_per_s(bytes_per_s):.1f} Gbit/s"
