"""The deterministic fault-injection engine (and its NULL twin).

A :class:`FaultEngine` is constructed by :class:`~repro.runtime.context.
ParsecContext` from a :class:`~repro.config.FaultConfig` plan and the run's
:class:`~repro.sim.rng.RngStreams`, then bound to the fabric.  It makes every
injection decision — :meth:`judge` is consulted once per wire transmission —
from named RNG streams, so the same ``(seed, plan)`` pair replays
bit-identically (``tools/check_fault_determinism.py`` enforces this).

Route health is modelled per directed (src, dst) pair: a per-route stream
lazily generates flap windows; a transmission inside a window is lost and
marks the route *degraded* (latency × ``degraded_latency_factor``).  After
``breaker_threshold`` flap losses the circuit breaker trips and the fabric
re-routes the pair over an alternate fat-tree path
(:meth:`~repro.network.topology.FatTreeTopology.alternate_hops`), after which
the route no longer flaps — graceful degradation instead of a lost node.

Everything the engine does is visible on the obs bus: ``fault.injected.*`` /
``fault.recovered.*`` counters, ``fault.*`` events, and the transport's
``rel.*`` instruments.  With faults disabled, code holds the shared
:data:`NULL_FAULTS` singleton whose ``enabled`` flag short-circuits every
hook — the same zero-cost NULL-object pattern as ``NULL_BUS``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.config import FaultConfig
from repro.obs.bus import NULL_BUS

if TYPE_CHECKING:  # pragma: no cover
    from repro.lci.device import LciDevice, LciWorld
    from repro.network.fabric import Fabric
    from repro.sim.core import Simulator
    from repro.sim.rng import RngStreams

__all__ = ["FaultEngine", "NullFaultEngine", "NULL_FAULTS"]

#: Wire-fault kinds :meth:`FaultEngine.judge` can inject.
WIRE_FAULT_KINDS = ("drop", "dup", "corrupt", "delay", "flap")


class NullFaultEngine:
    """Disabled fault engine: every hook is a no-op (cf. ``NULL_BUS``)."""

    __slots__ = ()

    enabled = False

    def bind(self, fabric) -> None:
        return None

    def bind_stop(self, stop_check) -> None:
        return None

    def compute_scale(self, node: int) -> float:
        return 1.0

    def route_latency(self, src: int, dst: int, base: float) -> float:
        return base

    def schedule_pool_spikes(self, world) -> None:
        return None

    def quiesce(self) -> None:
        return None


#: Shared singleton used whenever fault injection is off.
NULL_FAULTS = NullFaultEngine()


class _RouteState:
    """Flap/breaker state of one directed (src, dst) route."""

    __slots__ = ("stream", "win_start", "win_end", "flap_losses", "degraded", "rerouted")

    def __init__(self, stream, flap_rate: float, flap_duration: float):
        self.stream = stream
        gap = float(stream.exponential(1.0 / flap_rate))
        self.win_start = gap
        self.win_end = gap + flap_duration
        self.flap_losses = 0
        self.degraded = False
        self.rerouted = False


class FaultEngine:
    """Seeded fault injectors + the knobs the recovery machinery consults."""

    enabled = True

    def __init__(
        self,
        cfg: FaultConfig,
        sim: "Simulator",
        rng: "RngStreams",
        obs=None,
    ):
        self.cfg = cfg
        self.sim = sim
        self.rng = rng
        self.obs = obs if obs is not None else NULL_BUS
        self._wire = rng.get("faults.wire")
        self._rto = rng.get("faults.rto")
        self._fabric: Optional["Fabric"] = None
        self._routes: dict[tuple[int, int], _RouteState] = {}
        self._stragglers = frozenset(cfg.straggler_nodes)
        self._halted = False
        self._stop_check: Optional[Callable[[], bool]] = None
        obs = self.obs
        self._c_injected = {
            k: obs.counter(f"fault.injected.{k}") for k in WIRE_FAULT_KINDS
        }
        self._c_recovered = {
            k: obs.counter(f"fault.recovered.{k}") for k in WIRE_FAULT_KINDS
        }
        self._c_reroutes = obs.counter("fault.reroutes")
        self._c_pool_spikes = obs.counter("fault.injected.pool_spike")
        self._c_stragglers = obs.counter("fault.injected.straggler")
        for node in sorted(self._stragglers):
            self._c_stragglers.inc()
            if obs.enabled:
                obs.emit(
                    "fault.straggler", node, key=node,
                    info=cfg.straggler_factor, time=0.0,
                )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def bind(self, fabric: "Fabric") -> None:
        """Attach to the fabric whose traffic this engine judges."""
        self._fabric = fabric

    def bind_stop(self, stop_check: Callable[[], bool]) -> None:
        """Install a "run is over" predicate that stops injector chains."""
        self._stop_check = stop_check

    def quiesce(self) -> None:
        """Stop scheduling new injections (outstanding restores still run)."""
        self._halted = True

    # ------------------------------------------------------------------
    # wire-level verdicts
    # ------------------------------------------------------------------

    def judge(self, msg, now: float) -> tuple[bool, bool, bool, float, list]:
        """Fault verdict for one transmission attempt of ``msg``.

        Returns ``(drop, duplicate, corrupt, extra_delay, kinds)``.  Draws a
        fixed number of variates per call so the stream stays aligned no
        matter which branches fire.
        """
        cfg = self.cfg
        u = self._wire.random(4)
        kinds: list[str] = []
        drop = False
        if cfg.flap_rate > 0 and self._route_down(msg.src, msg.dst, now):
            drop = True
            kinds.append("flap")
            self._count_injected("flap", msg)
        elif u[0] < cfg.drop_rate:
            drop = True
            kinds.append("drop")
            self._count_injected("drop", msg)
        dup = u[1] < cfg.dup_rate
        if dup:
            kinds.append("dup")
            self._count_injected("dup", msg)
        corrupt = (not drop) and u[2] < cfg.corrupt_rate
        if corrupt:
            kinds.append("corrupt")
            self._count_injected("corrupt", msg)
        extra_delay = 0.0
        if cfg.reorder_rate > 0 and u[3] < cfg.reorder_rate and not drop:
            extra_delay = cfg.reorder_delay * float(u[3]) / cfg.reorder_rate
            kinds.append("delay")
            self._count_injected("delay", msg)
        return drop, dup, corrupt, extra_delay, kinds

    def _count_injected(self, kind: str, msg) -> None:
        self._c_injected[kind].inc()
        if self.obs.enabled:
            self.obs.emit(
                f"fault.{kind}", msg.src, key=(msg.src, msg.dst), info=msg.msg_id
            )

    def count_recovered(self, kind: str) -> None:
        """Credit a recovery to the fault kind that necessitated it."""
        self._c_recovered[kind].inc()

    # ------------------------------------------------------------------
    # link flaps, degradation, circuit breaker
    # ------------------------------------------------------------------

    def _route_state(self, src: int, dst: int) -> _RouteState:
        st = self._routes.get((src, dst))
        if st is None:
            # Per-route stream: window schedules are independent of the
            # order in which routes first carry traffic.
            stream = self.rng.get(f"faults.flap.{src}.{dst}")
            st = _RouteState(stream, self.cfg.flap_rate, self.cfg.flap_duration)
            self._routes[(src, dst)] = st
        return st

    def _route_down(self, src: int, dst: int, now: float) -> bool:
        st = self._route_state(src, dst)
        if st.rerouted:
            return False  # traffic avoids the flapping link entirely
        while now >= st.win_end:
            gap = float(st.stream.exponential(1.0 / self.cfg.flap_rate))
            st.win_start = st.win_end + gap
            st.win_end = st.win_start + self.cfg.flap_duration
        if not (st.win_start <= now < st.win_end):
            return False
        st.flap_losses += 1
        if not st.degraded:
            st.degraded = True
            self._invalidate_route(src, dst)
            if self.obs.enabled:
                self.obs.emit(
                    "fault.link_degraded", src, key=(src, dst),
                    info=self.cfg.degraded_latency_factor,
                )
        if st.flap_losses >= self.cfg.breaker_threshold:
            st.rerouted = True
            self._invalidate_route(src, dst)
            self._c_reroutes.inc()
            if self.obs.enabled:
                self.obs.emit("fault.reroute", src, key=(src, dst), info=st.flap_losses)
        return True

    def _invalidate_route(self, src: int, dst: int) -> None:
        if self._fabric is not None:
            self._fabric.invalidate_route(src, dst)

    def route_latency(self, src: int, dst: int, base: float) -> float:
        """Base latency adjusted for this route's health (fabric cache-miss
        hook; the engine invalidates the cache on state transitions)."""
        st = self._routes.get((src, dst))
        if st is None:
            return base
        if st.rerouted:
            fabric = self._fabric
            return fabric.cfg.latency(fabric.topology.alternate_hops(src, dst))
        if st.degraded:
            return base * self.cfg.degraded_latency_factor
        return base

    # ------------------------------------------------------------------
    # stragglers
    # ------------------------------------------------------------------

    def compute_scale(self, node: int) -> float:
        """Task-duration multiplier for ``node`` (1.0 for healthy nodes)."""
        return self.cfg.straggler_factor if node in self._stragglers else 1.0

    # ------------------------------------------------------------------
    # RTO schedule (for the reliable transport)
    # ------------------------------------------------------------------

    def rto_delay(self, attempt: int) -> float:
        """Retransmission timeout before attempt ``attempt + 1``:
        exponential backoff, capped, plus deterministic jitter."""
        cfg = self.cfg
        d = min(cfg.rto * cfg.rto_backoff ** (attempt - 1), cfg.rto_max)
        return d * (1.0 + cfg.rto_jitter * float(self._rto.random()))

    # ------------------------------------------------------------------
    # LCI packet-pool exhaustion spikes
    # ------------------------------------------------------------------

    def schedule_pool_spikes(self, world: "LciWorld") -> None:
        """Arm self-perpetuating pool-confiscation chains on every device."""
        if self.cfg.pool_spike_rate <= 0:
            return
        for dev in world.devices:
            stream = self.rng.get(f"faults.pool.{dev.node}")
            self._arm_spike(dev, stream)

    def _arm_spike(self, dev: "LciDevice", stream) -> None:
        gap = float(stream.exponential(1.0 / self.cfg.pool_spike_rate))
        self.sim.call_later(gap, self._spike, dev, stream)

    def _spike(self, dev: "LciDevice", stream) -> None:
        if self._halted or (self._stop_check is not None and self._stop_check()):
            return  # run is over: let the chain die so the event heap drains
        want = int(dev.costs.packet_pool_size * self.cfg.pool_spike_fraction)
        steal_rx = min(want, dev.rx_packets_free)
        steal_tx = min(want, dev.tx_packets_free)
        if steal_rx or steal_tx:
            dev.rx_packets_free -= steal_rx
            dev.tx_packets_free -= steal_tx
            self._c_pool_spikes.inc()
            if self.obs.enabled:
                self.obs.emit(
                    "fault.pool_spike", dev.node, key=dev.node,
                    info=(steal_rx, steal_tx),
                )
            self.sim.call_later(
                self.cfg.pool_spike_duration, self._unspike, dev, steal_rx, steal_tx
            )
        self._arm_spike(dev, stream)

    def _unspike(self, dev: "LciDevice", steal_rx: int, steal_tx: int) -> None:
        dev.rx_packets_free += steal_rx
        dev.tx_packets_free += steal_tx
        dev._notify()
