"""Fabric-level reliable transport: the recovery half of fault injection.

When a :class:`~repro.faults.engine.FaultEngine` is active, every non-loopback
:class:`~repro.network.message.WireMessage` goes through one
:class:`ReliableTransport` owned by the fabric instead of the perfect-delivery
path:

- the sender stamps a per-(src, dst, channel) **sequence number** and a
  **checksum** over the wire header;
- the receiver verifies the checksum (corruption ⇒ NACK back to the sender,
  which retransmits immediately), dedups via a cumulative-ack
  :class:`SeqTracker` (duplicates are re-ACKed but never delivered twice),
  and ACKs accepted messages;
- the sender keeps each message in an in-flight table guarded by a
  retransmission timer — timeout ⇒ retransmit with exponentially backed-off,
  jittered RTO (:meth:`repro.faults.engine.FaultEngine.rto_delay`) until the
  ACK arrives or the ``max_retransmits`` budget is exhausted
  (:class:`~repro.errors.FaultError`).

Every transmission (including retransmits) charges the NICs like a first-class
message, and ACK/NACK control messages ride the wire themselves — subject to
the same injectors, so lost ACKs exercise the timeout path.  All randomness
comes from the engine's named streams, so recovery schedules replay
bit-identically for a given seed and plan.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import TYPE_CHECKING, Callable

from repro.errors import FaultError
from repro.network.message import MessageClass, WireMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.engine import FaultEngine
    from repro.network.fabric import Fabric

__all__ = ["ReliableTransport", "SeqTracker", "wire_checksum"]

#: Size of an ACK/NACK control message on the wire (bytes).
_ACK_SIZE = 32


def wire_checksum(msg: WireMessage) -> int:
    """CRC over the wire header fields the transport protects."""
    return zlib.crc32(
        f"{msg.src}|{msg.dst}|{msg.channel}|{msg.seq}|{msg.size}".encode()
    )


class SeqTracker:
    """Receiver-side dedup: cumulative counter plus an out-of-order set."""

    __slots__ = ("cum", "seen")

    def __init__(self):
        #: Highest sequence number below which everything was accepted.
        self.cum = -1
        #: Accepted sequence numbers above ``cum`` (gaps pending).
        self.seen: set[int] = set()

    def accept(self, seq: int) -> bool:
        """True iff ``seq`` is new; records it either way."""
        if seq <= self.cum or seq in self.seen:
            return False
        if seq == self.cum + 1:
            self.cum += 1
            while self.cum + 1 in self.seen:
                self.seen.discard(self.cum + 1)
                self.cum += 1
        else:
            self.seen.add(seq)
        return True


class _Pending:
    """Sender-side state of one unacknowledged message."""

    __slots__ = ("msg", "handler", "attempts", "serial", "first_tx", "fault_kinds")

    def __init__(self, msg: WireMessage, handler: Callable, now: float):
        self.msg = msg
        self.handler = handler
        self.attempts = 0
        #: Incremented per (re)transmission; stale timers compare against it.
        self.serial = 0
        self.first_tx = now
        #: Fault kinds observed on this message's transmissions, for
        #: per-kind recovery attribution.
        self.fault_kinds: set[str] = set()


class ReliableTransport:
    """Per-fabric reliable delivery state machine (active in fault mode only)."""

    def __init__(self, fabric: "Fabric", engine: "FaultEngine"):
        self.fabric = fabric
        self.engine = engine
        self.sim = fabric.sim
        self.obs = engine.obs
        self._next_seq: dict[tuple[int, int, str], int] = {}
        #: (src, dst, channel, seq) -> _Pending, until ACKed.
        self.inflight: dict[tuple, _Pending] = {}
        self._rx: dict[tuple[int, int, str], SeqTracker] = {}
        obs = self.obs
        self._c_retransmits = obs.counter("rel.retransmits")
        self._c_acks = obs.counter("rel.acks")
        self._c_nacks = obs.counter("rel.nacks")
        self._c_dup_dropped = obs.counter("rel.dup_dropped")
        self._c_recovered = obs.counter("rel.recovered")
        self._h_recovery_us = obs.histogram("rel.recovery_latency_us")

    @property
    def inflight_count(self) -> int:
        """Unacknowledged messages (0 after a fully drained run)."""
        return len(self.inflight)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------

    def send(self, msg: WireMessage, handler: Callable) -> float:
        """Stamp, track, and transmit ``msg``; returns the *estimated*
        delivery time of the first attempt (faults may make it later)."""
        now = self.sim.now
        route = (msg.src, msg.dst, msg.channel)
        seq = self._next_seq.get(route, 0)
        self._next_seq[route] = seq + 1
        msg.seq = seq
        msg.checksum = wire_checksum(msg)
        key = route + (seq,)
        pend = _Pending(msg, handler, now)
        self.inflight[key] = pend
        est = self._transmit(key, pend)
        self._arm_timer(key, pend)
        return est

    def _transmit(self, key: tuple, pend: _Pending) -> float:
        fabric = self.fabric
        msg = pend.msg
        now = self.sim.now
        pend.attempts += 1
        pend.serial += 1
        drop, dup, corrupt, extra_delay, kinds = self.engine.judge(msg, now)
        for k in kinds:
            if k in ("drop", "corrupt", "flap"):
                pend.fault_kinds.add(k)
        depart = fabric.nics[msg.src].inject(now, msg.size, msg.msg_class)
        if pend.attempts == 1:
            msg.depart_time = depart
        arrival = depart + fabric.base_latency(msg.src, msg.dst)
        if drop:
            # Left the NIC, died in the network: the RTO timer recovers.
            return arrival
        deliver = fabric.nics[msg.dst].eject(
            now, arrival + extra_delay, msg.size, msg.msg_class
        )
        msg.deliver_time = deliver
        fabric._emit_wire(msg, depart, deliver, now)
        wire = msg
        if corrupt:
            # Deliver a copy with a garbled checksum; the original stays
            # intact in the in-flight table for retransmission.
            wire = dataclasses.replace(msg, checksum=msg.checksum ^ 0x5A5A5A5A)
        self.sim.call_later(deliver - now, self._on_deliver, key, pend.handler, wire)
        if dup:
            # The network minted an extra copy; deliver it a bit later.
            dup_arrival = arrival + fabric.base_latency(msg.src, msg.dst)
            dup_deliver = fabric.nics[msg.dst].eject(
                now, dup_arrival, msg.size, msg.msg_class
            )
            self.sim.call_later(
                dup_deliver - now, self._on_deliver, key, pend.handler, wire
            )
        return deliver

    def _arm_timer(self, key: tuple, pend: _Pending) -> None:
        serial = pend.serial
        self.sim.call_later(
            self.engine.rto_delay(pend.attempts), self._on_timeout, key, serial
        )

    def _on_timeout(self, key: tuple, serial: int) -> None:
        pend = self.inflight.get(key)
        if pend is None or pend.serial != serial:
            return  # ACKed, or a NACK already triggered a retransmission
        if pend.attempts > self.engine.cfg.max_retransmits:
            raise FaultError(
                f"message {key} undeliverable after {pend.attempts} attempts"
            )
        self._c_retransmits.inc()
        if self.obs.enabled:
            self.obs.emit(
                "rel.retransmit", key[0], key=(key[0], key[1]),
                info=(key[3], pend.attempts),
            )
        self._transmit(key, pend)
        self._arm_timer(key, pend)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------

    def _on_deliver(self, key: tuple, handler: Callable, wire: WireMessage) -> None:
        if wire.checksum != wire_checksum(wire):
            self._c_nacks.inc()
            if self.obs.enabled:
                self.obs.emit(
                    "fault.corrupt_detected", wire.dst, key=(wire.src, wire.dst),
                    info=wire.seq,
                )
            self._send_ctrl(wire.dst, wire.src, wire.channel, ("nack", key))
            return
        route = key[:3]
        tracker = self._rx.get(route)
        if tracker is None:
            tracker = self._rx[route] = SeqTracker()
        if not tracker.accept(key[3]):
            # Duplicate (network dup, or retransmit racing a lost ACK):
            # suppress delivery but re-ACK so the sender stops resending.
            self._c_dup_dropped.inc()
            self._send_ctrl(wire.dst, wire.src, wire.channel, ("ack", key))
            return
        self._send_ctrl(wire.dst, wire.src, wire.channel, ("ack", key))
        handler(wire)

    def _send_ctrl(self, src: int, dst: int, channel: str, ctrl: tuple) -> None:
        """Transmit an ACK/NACK — itself subject to the fault injectors."""
        now = self.sim.now
        fabric = self.fabric
        probe = WireMessage(
            src=src, dst=dst, size=_ACK_SIZE,
            msg_class=MessageClass.CONTROL, channel=channel,
        )
        drop, _dup, corrupt, extra_delay, _kinds = self.engine.judge(probe, now)
        depart = fabric.nics[src].inject(now, _ACK_SIZE, MessageClass.CONTROL)
        if drop or corrupt:
            return  # lost/garbled control message; the sender's RTO recovers
        arrival = depart + fabric.base_latency(src, dst) + extra_delay
        deliver = fabric.nics[dst].eject(now, arrival, _ACK_SIZE, MessageClass.CONTROL)
        self.sim.call_later(deliver - now, self._on_ctrl, ctrl)

    def _on_ctrl(self, ctrl: tuple) -> None:
        op, key = ctrl
        pend = self.inflight.get(key)
        if pend is None:
            return  # stale (duplicate ACK, or NACK after a later ACK)
        if op == "ack":
            del self.inflight[key]
            self._c_acks.inc()
            if pend.attempts > 1 or pend.fault_kinds:
                self._c_recovered.inc()
                self._h_recovery_us.observe((self.sim.now - pend.first_tx) * 1e6)
                for kind in pend.fault_kinds:
                    self.engine.count_recovered(kind)
        else:  # nack: the delivered copy was corrupt — retransmit now
            self._c_retransmits.inc()
            self._transmit(key, pend)
            self._arm_timer(key, pend)
