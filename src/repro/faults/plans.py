"""Named fault plans for the ``chaos`` CLI verb and the soak tests.

Each plan is a frozen :class:`~repro.config.FaultConfig` tuned so that a
small (millisecond-scale simulated time) TLR Cholesky run sees a meaningful
number of injections without drowning in retransmissions.  Event rates
(``flap_rate``, ``pool_spike_rate``) are per simulated second, so values in
the hundreds-to-thousands fire a handful of times per millisecond of run.

Beyond the *simulated* faults, this module also defines the **harness
chaos** vocabulary — process-level faults injected into the execution
harness itself (the supervised sweep of :mod:`repro.supervise`), not into
the simulation:

``worker_kill``
    The worker SIGKILLs itself when it picks up the targeted point —
    the supervisor must respawn it and retry the point.
``worker_hang``
    The worker sleeps forever on the targeted point — the supervisor's
    heartbeat timeout must terminate and retry it.
``journal_truncate``
    The sweep journal tears its tail mid-append at the targeted point's
    outcome — resume must drop the torn line and re-run the point.

Specs live in ``REPRO_HARNESS_CHAOS`` (comma-separated
``kind@point_index:marker_dir``) so forked sweep workers inherit them; the
``marker_dir`` holds one-shot marker files so each injection fires exactly
once per campaign (a retried point must *succeed* on the respawned worker,
not die again forever).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.config import FaultConfig
from repro.errors import ConfigError

__all__ = [
    "FAULT_PLANS",
    "fault_plan",
    "HARNESS_CHAOS_KINDS",
    "HARNESS_CHAOS_ENV",
    "HarnessChaos",
    "parse_harness_chaos",
    "harness_chaos_from_env",
]

FAULT_PLANS: dict[str, FaultConfig] = {
    # Single-fault plans: isolate one injector each.
    "drop": FaultConfig(drop_rate=0.02),
    "duplicate": FaultConfig(dup_rate=0.02),
    "corrupt": FaultConfig(corrupt_rate=0.02),
    "reorder": FaultConfig(reorder_rate=0.05),
    "flaky-links": FaultConfig(flap_rate=1500.0, flap_duration=60e-6),
    "straggler": FaultConfig(straggler_nodes=(1,), straggler_factor=3.0),
    "pool-pressure": FaultConfig(pool_spike_rate=1500.0),
    # Duplicates only, at a rate high enough that a short schedule-explorer
    # scenario sees several — exercises the AM dedup path the explorer's
    # mutation smoke test disables (tools/check_explorer_finds_bugs.py).
    "explore-dup": FaultConfig(dup_rate=0.25),
    # Everything at once, at rates a resilient run should shrug off.
    "chaos": FaultConfig(
        drop_rate=0.01,
        dup_rate=0.005,
        corrupt_rate=0.01,
        reorder_rate=0.02,
        flap_rate=600.0,
        straggler_nodes=(1,),
        straggler_factor=1.5,
        pool_spike_rate=400.0,
    ),
}


def fault_plan(name: str) -> FaultConfig:
    """Look up a named plan, with a helpful error on typos."""
    try:
        return FAULT_PLANS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PLANS))
        raise ConfigError(f"unknown fault plan {name!r} (known: {known})") from None


# -- harness chaos (process-level, see module docstring) -------------------

HARNESS_CHAOS_KINDS = ("worker_kill", "worker_hang", "journal_truncate")

#: Environment variable carrying the active harness-chaos specs; read in
#: every sweep worker process (they inherit the driver's environment).
HARNESS_CHAOS_ENV = "REPRO_HARNESS_CHAOS"


@dataclass(frozen=True)
class HarnessChaos:
    """One armed process-level fault: ``kind`` fires when the harness
    reaches sweep point ``point_index``, at most once (tracked by a marker
    file under ``marker_dir``)."""

    kind: str
    point_index: int
    marker_dir: str

    def __post_init__(self) -> None:
        if self.kind not in HARNESS_CHAOS_KINDS:
            raise ConfigError(
                f"unknown harness chaos kind {self.kind!r} "
                f"(known: {', '.join(HARNESS_CHAOS_KINDS)})"
            )
        if self.point_index < 0:
            raise ConfigError(
                f"harness chaos point index must be >= 0 (got {self.point_index!r})"
            )

    def spec(self) -> str:
        """The ``kind@index:marker_dir`` text form (inverse of parsing)."""
        return f"{self.kind}@{self.point_index}:{self.marker_dir}"

    def _marker(self) -> Path:
        return Path(self.marker_dir) / f"{self.kind}-{self.point_index}.fired"

    def should_fire(self, point_index: int) -> bool:
        """True when this fault targets ``point_index`` and has not fired."""
        return point_index == self.point_index and not self._marker().exists()

    def mark_fired(self) -> None:
        """Persist the one-shot marker (atomic create; races collapse to
        one firing per marker dir, which is all the tests need)."""
        marker = self._marker()
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.touch()


def parse_harness_chaos(text: str) -> tuple:
    """Parse a comma-separated ``kind@index:marker_dir`` spec list."""
    chaos = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            kind, rest = part.split("@", 1)
            index_text, marker_dir = rest.split(":", 1)
            chaos.append(HarnessChaos(kind, int(index_text), marker_dir))
        except (ValueError, TypeError):
            raise ConfigError(
                f"bad harness chaos spec {part!r} "
                "(expected kind@point_index:marker_dir)"
            ) from None
    return tuple(chaos)


def harness_chaos_from_env() -> tuple:
    """The armed harness faults from ``$REPRO_HARNESS_CHAOS`` (or ())."""
    text = os.environ.get(HARNESS_CHAOS_ENV, "")
    return parse_harness_chaos(text) if text else ()
