"""Named fault plans for the ``chaos`` CLI verb and the soak tests.

Each plan is a frozen :class:`~repro.config.FaultConfig` tuned so that a
small (millisecond-scale simulated time) TLR Cholesky run sees a meaningful
number of injections without drowning in retransmissions.  Event rates
(``flap_rate``, ``pool_spike_rate``) are per simulated second, so values in
the hundreds-to-thousands fire a handful of times per millisecond of run.
"""

from __future__ import annotations

from repro.config import FaultConfig
from repro.errors import ConfigError

__all__ = ["FAULT_PLANS", "fault_plan"]

FAULT_PLANS: dict[str, FaultConfig] = {
    # Single-fault plans: isolate one injector each.
    "drop": FaultConfig(drop_rate=0.02),
    "duplicate": FaultConfig(dup_rate=0.02),
    "corrupt": FaultConfig(corrupt_rate=0.02),
    "reorder": FaultConfig(reorder_rate=0.05),
    "flaky-links": FaultConfig(flap_rate=1500.0, flap_duration=60e-6),
    "straggler": FaultConfig(straggler_nodes=(1,), straggler_factor=3.0),
    "pool-pressure": FaultConfig(pool_spike_rate=1500.0),
    # Duplicates only, at a rate high enough that a short schedule-explorer
    # scenario sees several — exercises the AM dedup path the explorer's
    # mutation smoke test disables (tools/check_explorer_finds_bugs.py).
    "explore-dup": FaultConfig(dup_rate=0.25),
    # Everything at once, at rates a resilient run should shrug off.
    "chaos": FaultConfig(
        drop_rate=0.01,
        dup_rate=0.005,
        corrupt_rate=0.01,
        reorder_rate=0.02,
        flap_rate=600.0,
        straggler_nodes=(1,),
        straggler_factor=1.5,
        pool_spike_rate=400.0,
    ),
}


def fault_plan(name: str) -> FaultConfig:
    """Look up a named plan, with a helpful error on typos."""
    try:
        return FAULT_PLANS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PLANS))
        raise ConfigError(f"unknown fault plan {name!r} (known: {known})") from None
