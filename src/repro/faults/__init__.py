"""Deterministic fault injection and end-to-end resilience.

The engine (:class:`~repro.faults.engine.FaultEngine`) schedules seeded
injectors against the fabric/NIC layer — message drop, duplication,
reordering, payload corruption, link flaps with latency degradation and
circuit-breaker re-routing, straggler nodes, and LCI packet-pool exhaustion
spikes — while :class:`~repro.faults.transport.ReliableTransport` supplies
the recovery half: per-route sequence numbers, receiver-side dedup,
checksums with NACK-triggered retransmission, and an RTO state machine with
exponential backoff and deterministic jitter.

With faults disabled (the default) every hook resolves to the
:data:`~repro.faults.engine.NULL_FAULTS` singleton — the same NULL-object
pattern as :data:`repro.obs.bus.NULL_BUS` — so baseline runs are
bit-identical to a faultless build.  See ``docs/faults.md``.
"""

from repro.config import FaultConfig
from repro.faults.engine import FaultEngine, NullFaultEngine, NULL_FAULTS
from repro.faults.plans import FAULT_PLANS, fault_plan
from repro.faults.transport import ReliableTransport, SeqTracker, wire_checksum

__all__ = [
    "FaultConfig",
    "FaultEngine",
    "NullFaultEngine",
    "NULL_FAULTS",
    "FAULT_PLANS",
    "fault_plan",
    "ReliableTransport",
    "SeqTracker",
    "wire_checksum",
]
