"""Fat-tree topology: node→node hop counts.

Expanse uses a hybrid fat-tree (Table 1).  For latency purposes only the hop
count matters in our model: two nodes under the same leaf switch are 2 hops
apart (node→leaf→node); nodes under different leaves cross the spine level
(node→leaf→spine→leaf→node = 4 hops).  Deeper trees add 2 hops per extra
level crossed.
"""

from __future__ import annotations

from repro.errors import NetworkError

__all__ = ["FatTreeTopology"]


class FatTreeTopology:
    """Hop-count model of a fat tree with a fixed arity per level."""

    def __init__(self, num_nodes: int, nodes_per_leaf: int = 16, levels: int = 2):
        if num_nodes <= 0:
            raise NetworkError("topology needs at least one node")
        if nodes_per_leaf <= 0:
            raise NetworkError("nodes_per_leaf must be positive")
        if levels < 1:
            raise NetworkError("fat tree needs at least one level")
        self.num_nodes = num_nodes
        self.nodes_per_leaf = nodes_per_leaf
        self.levels = levels

    def leaf_of(self, node: int) -> int:
        """Leaf-switch index of a node."""
        self._check(node)
        return node // self.nodes_per_leaf

    def hops(self, src: int, dst: int) -> int:
        """Switch hops on the src→dst path (0 for loopback)."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        if self.leaf_of(src) == self.leaf_of(dst):
            return 2
        # Crossing the spine: 2 (up+down at leaf level) + 2 per spine level.
        return 2 + 2 * (self.levels - 1)

    def alternate_hops(self, src: int, dst: int) -> int:
        """Hop count of a disjoint backup path between two nodes.

        A fat tree always offers alternate routes through a different
        switch at the next level up; re-routing around a failing link
        costs one extra up/down pair.  Loopback has no alternate path.
        """
        h = self.hops(src, dst)
        return h + 2 if h else 0

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NetworkError(f"node {node} out of range [0, {self.num_nodes})")
