"""Fabric model: LogGP-style NICs on a fat-tree InfiniBand network.

The physical layer of the simulation.  Communication libraries
(:mod:`repro.mpi`, :mod:`repro.lci`) inject :class:`WireMessage`s through a
:class:`Fabric`; the fabric models NIC serialization (with a control/data
virtual-channel split), per-hop latency, and receiver-side ejection
contention, then hands the message to the destination's registered handler.
"""

from repro.network.message import WireMessage, MessageClass
from repro.network.topology import FatTreeTopology
from repro.network.nic import NicState
from repro.network.fabric import Fabric
from repro.network.netpipe import netpipe_bandwidth_curve, netpipe_rtt

__all__ = [
    "WireMessage",
    "MessageClass",
    "FatTreeTopology",
    "NicState",
    "Fabric",
    "netpipe_bandwidth_curve",
    "netpipe_rtt",
]
