"""The fabric: ties NICs and topology together and delivers messages.

Communication libraries register one handler per (node, channel); the
fabric calls ``handler(msg)`` at the simulated delivery time.  Loopback
(src == dst) skips the wire entirely and is delivered after a small
constant memory-copy latency.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import NetworkConfig
from repro.errors import NetworkError
from repro.network.message import MessageClass, WireMessage
from repro.network.nic import NicState
from repro.network.topology import FatTreeTopology
from repro.sim.core import Simulator
from repro.units import US

__all__ = ["Fabric"]

Handler = Callable[[WireMessage], None]


class Fabric:
    """A cluster interconnect connecting ``num_nodes`` nodes."""

    #: Delivery latency of a loopback (shared-memory) message.
    LOOPBACK_LATENCY = 0.4 * US

    def __init__(self, sim: Simulator, num_nodes: int, cfg: Optional[NetworkConfig] = None):
        if num_nodes <= 0:
            raise NetworkError("fabric needs at least one node")
        self.sim = sim
        self.cfg = cfg or NetworkConfig()
        self.num_nodes = num_nodes
        self.topology = FatTreeTopology(
            num_nodes,
            nodes_per_leaf=self.cfg.nodes_per_leaf,
            levels=self.cfg.fat_tree_levels,
        )
        self.nics = [NicState(self.cfg) for _ in range(num_nodes)]
        self._handlers: dict[tuple[int, str], Handler] = {}
        # Cache per (src,dst) base latency.
        self._lat_cache: dict[tuple[int, int], float] = {}
        #: When set, every injected message is appended here (diagnostics /
        #: protocol-walkthrough tests).  Off by default: it retains every
        #: WireMessage for the run's lifetime.
        self.message_log: Optional[list[WireMessage]] = None

    def enable_message_log(self) -> list[WireMessage]:
        """Start recording every injected message; returns the log list."""
        if self.message_log is None:
            self.message_log = []
        return self.message_log

    def register_handler(self, node: int, channel: str, handler: Handler) -> None:
        """Install the delivery handler for (node, channel)."""
        self._check_node(node)
        key = (node, channel)
        if key in self._handlers:
            raise NetworkError(f"handler already registered for {key}")
        self._handlers[key] = handler

    def base_latency(self, src: int, dst: int) -> float:
        """Zero-load wire latency between two nodes."""
        key = (src, dst)
        lat = self._lat_cache.get(key)
        if lat is None:
            lat = self.cfg.latency(self.topology.hops(src, dst))
            self._lat_cache[key] = lat
        return lat

    def send(self, msg: WireMessage) -> float:
        """Inject ``msg``; returns the scheduled delivery time.

        The send itself is instantaneous for the caller — CPU injection
        overheads are charged by the *library* models, not the fabric.
        """
        self._check_node(msg.src)
        self._check_node(msg.dst)
        handler = self._handlers.get((msg.dst, msg.channel))
        if handler is None:
            raise NetworkError(
                f"no handler for channel {msg.channel!r} at node {msg.dst}"
            )
        now = self.sim.now
        msg.inject_time = now
        if self.message_log is not None:
            self.message_log.append(msg)
        if msg.src == msg.dst:
            depart = now
            deliver = now + self.LOOPBACK_LATENCY
        else:
            depart = self.nics[msg.src].inject(now, msg.size, msg.msg_class)
            arrival = depart + self.base_latency(msg.src, msg.dst)
            deliver = self.nics[msg.dst].eject(now, arrival, msg.size, msg.msg_class)
        msg.depart_time = depart
        msg.deliver_time = deliver
        self.sim.call_later(deliver - now, self._deliver, handler, msg)
        return deliver

    def _deliver(self, handler: Handler, msg: WireMessage) -> None:
        handler(msg)

    def total_bytes(self) -> int:
        """Total bytes injected into the fabric (diagnostic)."""
        return sum(nic.tx_bytes for nic in self.nics)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NetworkError(f"node {node} out of range [0, {self.num_nodes})")
