"""The fabric: ties NICs and topology together and delivers messages.

Communication libraries register one handler per (node, channel); the
fabric calls ``handler(msg)`` at the simulated delivery time.  Loopback
(src == dst) skips the wire entirely and is delivered after a small
constant memory-copy latency.
"""

from __future__ import annotations

import math
import warnings
from typing import Callable, Optional

from repro.config import NetworkConfig
from repro.errors import NetworkError
from repro.faults.engine import NULL_FAULTS
from repro.network.message import MessageClass, WireMessage
from repro.network.nic import NicState
from repro.network.topology import FatTreeTopology
from repro.obs.bus import NULL_BUS, ObsBus
from repro.sim.core import Simulator
from repro.units import US

__all__ = ["Fabric"]

Handler = Callable[[WireMessage], None]


class Fabric:
    """A cluster interconnect connecting ``num_nodes`` nodes.

    With an enabled observability bus every injected message is emitted as a
    ``wire_msg`` event and per-class byte/backlog histograms are maintained;
    with the (default) null bus the instrumentation costs one attribute read
    per send.
    """

    #: Delivery latency of a loopback (shared-memory) message.
    LOOPBACK_LATENCY = 0.4 * US

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        cfg: Optional[NetworkConfig] = None,
        obs: Optional[ObsBus] = None,
        faults=None,
    ):
        if num_nodes <= 0:
            raise NetworkError("fabric needs at least one node")
        self.sim = sim
        self.cfg = cfg or NetworkConfig()
        self.num_nodes = num_nodes
        self.topology = FatTreeTopology(
            num_nodes,
            nodes_per_leaf=self.cfg.nodes_per_leaf,
            levels=self.cfg.fat_tree_levels,
        )
        self.nics = [NicState(self.cfg) for _ in range(num_nodes)]
        self._handlers: dict[tuple[int, str], Handler] = {}
        #: Per-channel handler *columns*: channel -> flat list indexed by
        #: node rank.  The send hot path does one dict probe on the
        #: (interned) channel string plus a list index instead of building
        #: and hashing a ``(dst, channel)`` tuple per message.
        self._hcols: dict[str, list[Optional[Handler]]] = {}
        #: Flat per-route base-latency table indexed ``src * N + dst``
        #: (``nan`` = not computed yet) — the columnar replacement for the
        #: old ``(src, dst)``-keyed dict cache.
        self._lat_flat: list[float] = [math.nan] * (num_nodes * num_nodes)
        self._set_obs(obs if obs is not None else sim.obs)
        self.faults = faults if faults is not None else NULL_FAULTS
        if self.faults.enabled:
            # Imported lazily: repro.faults.transport itself imports the
            # network layer, and this module loads first on most paths.
            from repro.faults.transport import ReliableTransport

            self._rel: Optional[ReliableTransport] = ReliableTransport(self, self.faults)
            self.faults.bind(self)
        else:
            self._rel = None
        #: Deprecated raw-WireMessage log — see :meth:`enable_message_log`.
        self.message_log: Optional[list[WireMessage]] = None  # obs-allow-adhoc

    def _set_obs(self, obs) -> None:
        """Bind the bus and (re)cache the fabric's instruments."""
        self.obs = obs
        self._c_msgs = obs.counter("net.wire_msgs")
        self._h_bytes = obs.histogram("net.msg_bytes")
        self._h_tx_backlog = obs.histogram("net.tx_backlog_s")

    def enable_message_log(self) -> list[WireMessage]:
        """Deprecated: start recording every injected WireMessage.

        New code should attach a :mod:`repro.obs` sink (or query the bus's
        memory index for ``wire_msg`` events) instead.  The shim upgrades a
        null bus to a private enabled one so ``wire_msg`` events flow, and
        still returns the raw-object list for legacy callers.
        """
        warnings.warn(
            "Fabric.enable_message_log is deprecated; use the repro.obs bus "
            "(wire_msg events / net.* instruments) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not self.obs.enabled:
            bus = ObsBus()
            bus.bind_clock(self.sim)
            self._set_obs(bus)
        if self.message_log is None:  # obs-allow-adhoc
            self.message_log = []  # obs-allow-adhoc
        return self.message_log  # obs-allow-adhoc

    def register_handler(self, node: int, channel: str, handler: Handler) -> None:
        """Install the delivery handler for (node, channel)."""
        self._check_node(node)
        key = (node, channel)
        if key in self._handlers:
            raise NetworkError(f"handler already registered for {key}")
        self._handlers[key] = handler
        col = self._hcols.get(channel)
        if col is None:
            col = self._hcols[channel] = [None] * self.num_nodes
        col[node] = handler

    def invalidate_route(self, src: int, dst: int) -> None:
        """Forget the cached base latency for one route (fault-engine hook:
        degraded/re-routed links change it)."""
        self._lat_flat[src * self.num_nodes + dst] = math.nan

    def base_latency(self, src: int, dst: int) -> float:
        """Zero-load wire latency between two nodes."""
        lat = self._lat_flat[src * self.num_nodes + dst]
        if lat != lat:  # nan: not computed yet (or invalidated)
            lat = self.cfg.latency(self.topology.hops(src, dst))
            if self.faults.enabled:
                # Degraded/re-routed routes see a different latency; the
                # fault engine invalidates this cache on state changes.
                lat = self.faults.route_latency(src, dst, lat)
            self._lat_flat[src * self.num_nodes + dst] = lat
        return lat

    def send(self, msg: WireMessage) -> float:
        """Inject ``msg``; returns the scheduled delivery time.

        The send itself is instantaneous for the caller — CPU injection
        overheads are charged by the *library* models, not the fabric.
        """
        self._check_node(msg.src)
        self._check_node(msg.dst)
        col = self._hcols.get(msg.channel)
        handler = col[msg.dst] if col is not None else None
        if handler is None:
            raise NetworkError(
                f"no handler for channel {msg.channel!r} at node {msg.dst}"
            )
        now = self.sim.now
        msg.inject_time = now
        if self.message_log is not None:  # obs-allow-adhoc
            self.message_log.append(msg)  # obs-allow-adhoc
        if self._rel is not None and msg.src != msg.dst:
            # Fault-injection mode: the reliable transport owns stamping,
            # delivery scheduling, and retransmission for wire traffic.
            # Loopback never touches the wire and stays on the fast path.
            return self._rel.send(msg, handler)
        if msg.src == msg.dst:
            depart = now
            deliver = now + self.LOOPBACK_LATENCY
        else:
            depart = self.nics[msg.src].inject(now, msg.size, msg.msg_class)
            arrival = depart + self.base_latency(msg.src, msg.dst)
            deliver = self.nics[msg.dst].eject(now, arrival, msg.size, msg.msg_class)
        msg.depart_time = depart
        msg.deliver_time = deliver
        self._emit_wire(msg, depart, deliver, now)
        # Schedule the handler itself — no trampoline frame per delivery.
        self.sim.call_later(deliver - now, handler, msg)
        return deliver

    def _emit_wire(self, msg: WireMessage, depart: float, deliver: float, now: float) -> None:
        """Emit the ``wire_msg`` event + fabric instruments for one send."""
        if self.obs.enabled:
            self.obs.emit(
                "wire_msg",
                msg.src,
                key=(msg.src, msg.dst),
                info=(msg.channel, msg.msg_class.name, msg.size, deliver - now),
                time=now,
            )
            self._c_msgs.inc()
            self._h_bytes.observe(msg.size)
            self._h_tx_backlog.observe(depart - now)

    def total_bytes(self) -> int:
        """Total bytes injected into the fabric (diagnostic)."""
        return sum(nic.tx_bytes for nic in self.nics)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NetworkError(f"node {node} out of range [0, {self.num_nodes})")
