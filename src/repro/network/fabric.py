"""The fabric: ties NICs and topology together and delivers messages.

Communication libraries register one handler per (node, channel); the
fabric calls ``handler(msg)`` at the simulated delivery time.  Loopback
(src == dst) skips the wire entirely and is delivered after a small
constant memory-copy latency.
"""

from __future__ import annotations

import math
import operator
import warnings
from typing import Callable, NamedTuple, Optional

from repro.config import NetworkConfig
from repro.errors import NetworkError
from repro.faults.engine import NULL_FAULTS
from repro.network.message import MessageClass, WireMessage
from repro.network.nic import NicState
from repro.network.topology import FatTreeTopology
from repro.obs.bus import NULL_BUS, ObsBus
from repro.sim.core import Simulator
from repro.units import US

__all__ = ["Fabric", "PartitionFabric", "WireRecord", "partition_owner"]

Handler = Callable[[WireMessage], None]

#: Sort key for the epoch flush buffer: ``(src, seq)``.  Seqs are unique
#: per source, so tuple comparison never reaches the message object.
_WIRE_KEY = operator.itemgetter(0, 1)

#: Sort key for the coordinator's global outbox merge: the canonical
#: ``(inject, src, seq)`` total order every engine replays.
WIRE_MERGE_KEY = operator.attrgetter("inject", "src", "seq")


def partition_owner(num_nodes: int, partitions: int) -> list[int]:
    """Block ownership map: ``owner[node]`` = partition index.

    Nodes are distributed in contiguous blocks (partition ``p`` owns ranks
    ``[p*N/P, (p+1)*N/P)``), which keeps the paper's 2D block-cyclic HiCMA
    neighbours mostly partition-local.  Every partition owns at least one
    node; asking for more partitions than nodes is a configuration error.
    """
    if partitions < 1:
        raise NetworkError(f"partitions must be >= 1 (got {partitions})")
    if partitions > num_nodes:
        raise NetworkError(
            f"cannot split {num_nodes} node(s) across {partitions} "
            f"partitions; each partition needs at least one node"
        )
    return [node * partitions // num_nodes for node in range(num_nodes)]


class Fabric:
    """A cluster interconnect connecting ``num_nodes`` nodes.

    With an enabled observability bus every injected message is emitted as a
    ``wire_msg`` event and per-class byte/backlog histograms are maintained;
    with the (default) null bus the instrumentation costs one attribute read
    per send.
    """

    #: Delivery latency of a loopback (shared-memory) message.
    LOOPBACK_LATENCY = 0.4 * US

    #: True on :class:`PartitionFabric`: wire sends are deferred to the
    #: synchronization barrier and completions are delivery-driven.  The
    #: communication libraries branch on this instead of isinstance checks.
    partitioned = False

    #: True when wire sends do not resolve a delivery time at the
    #: ``send()`` call: destination-NIC ejection is deferred — to the end
    #: of the injecting epoch on the serial fabric, to the barrier merge
    #: on :class:`PartitionFabric` — and happens in canonical ``(inject,
    #: src, seq)`` order, so equal-timestamp arrivals at one NIC resolve
    #: identically in both engines.  ``send()`` returns ``nan`` for wire
    #: messages and source-side completions are delivery-driven (the
    #: ``_fin`` payload hint).  False only when the reliable transport
    #: owns delivery scheduling (fault-injection mode).  Set per instance.
    defers_wire = True

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        cfg: Optional[NetworkConfig] = None,
        obs: Optional[ObsBus] = None,
        faults=None,
    ):
        if num_nodes <= 0:
            raise NetworkError("fabric needs at least one node")
        self.sim = sim
        self.cfg = cfg or NetworkConfig()
        self.num_nodes = num_nodes
        self.topology = FatTreeTopology(
            num_nodes,
            nodes_per_leaf=self.cfg.nodes_per_leaf,
            levels=self.cfg.fat_tree_levels,
        )
        self.nics = [NicState(self.cfg) for _ in range(num_nodes)]
        self._handlers: dict[tuple[int, str], Handler] = {}
        #: Per-channel handler *columns*: channel -> flat list indexed by
        #: node rank.  The send hot path does one dict probe on the
        #: (interned) channel string plus a list index instead of building
        #: and hashing a ``(dst, channel)`` tuple per message.
        self._hcols: dict[str, list[Optional[Handler]]] = {}
        #: Flat per-route base-latency table indexed ``src * N + dst``
        #: (``nan`` = not computed yet) — the columnar replacement for the
        #: old ``(src, dst)``-keyed dict cache.
        self._lat_flat: list[float] = [math.nan] * (num_nodes * num_nodes)
        self._set_obs(obs if obs is not None else sim.obs)
        self.faults = faults if faults is not None else NULL_FAULTS
        if self.faults.enabled:
            # Imported lazily: repro.faults.transport itself imports the
            # network layer, and this module loads first on most paths.
            from repro.faults.transport import ReliableTransport

            self._rel: Optional[ReliableTransport] = ReliableTransport(self, self.faults)
            self.faults.bind(self)
            self.defers_wire = False
        else:
            self._rel = None
        #: Per-source-node wire-send sequence numbers: the third component
        #: of the canonical ``(inject, src, seq)`` tie-break key stamped on
        #: every deferred wire send.
        self._src_seq = [0] * num_nodes
        #: Wire sends of the current epoch awaiting destination-NIC
        #: ejection: ``(src, seq, msg, arrival, handler)``, flushed in
        #: ``(src, seq)`` order at epoch end (all share one inject time).
        self._pending_wire: list = []
        #: Per-channel source-side completion appliers (``fn(node, ref)``),
        #: the serial twin of the partition driver's ``_fin_call``.
        self._fin_appliers: dict[str, Callable[[int, int], None]] = {}
        #: Deprecated raw-WireMessage log — see :meth:`enable_message_log`.
        self.message_log: Optional[list[WireMessage]] = None  # obs-allow-adhoc

    def _set_obs(self, obs) -> None:
        """Bind the bus and (re)cache the fabric's instruments."""
        self.obs = obs
        self._c_msgs = obs.counter("net.wire_msgs")
        self._h_bytes = obs.histogram("net.msg_bytes")
        self._h_tx_backlog = obs.histogram("net.tx_backlog_s")

    def enable_message_log(self) -> list[WireMessage]:
        """Deprecated: start recording every injected WireMessage.

        New code should attach a :mod:`repro.obs` sink (or query the bus's
        memory index for ``wire_msg`` events) instead.  The shim upgrades a
        null bus to a private enabled one so ``wire_msg`` events flow, and
        still returns the raw-object list for legacy callers.
        """
        warnings.warn(
            "Fabric.enable_message_log is deprecated; use the repro.obs bus "
            "(wire_msg events / net.* instruments) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not self.obs.enabled:
            bus = ObsBus()
            bus.bind_clock(self.sim)
            self._set_obs(bus)
        if self.message_log is None:  # obs-allow-adhoc
            self.message_log = []  # obs-allow-adhoc
        return self.message_log  # obs-allow-adhoc

    def register_handler(self, node: int, channel: str, handler: Handler) -> None:
        """Install the delivery handler for (node, channel)."""
        self._check_node(node)
        key = (node, channel)
        if key in self._handlers:
            raise NetworkError(f"handler already registered for {key}")
        self._handlers[key] = handler
        col = self._hcols.get(channel)
        if col is None:
            col = self._hcols[channel] = [None] * self.num_nodes
        col[node] = handler

    def register_fin_applier(
        self, channel: str, fn: Callable[[int, int], None]
    ) -> None:
        """Install ``fn(node, ref)`` applying a source-side completion.

        Deferred wire sends carry their source-side completion as a
        ``_fin = (ref, extra)`` payload hint; once the destination NIC
        resolves the delivery time the fabric schedules ``fn(src, ref)``
        at ``inject + ((deliver - inject) + extra)`` — the same float
        arithmetic, and the same applier, the partition driver uses for
        barrier FIN notices (``repro.sim.partition._fin_call``).
        """
        self._fin_appliers[channel] = fn

    def invalidate_route(self, src: int, dst: int) -> None:
        """Forget the cached base latency for one route (fault-engine hook:
        degraded/re-routed links change it)."""
        self._lat_flat[src * self.num_nodes + dst] = math.nan

    def base_latency(self, src: int, dst: int) -> float:
        """Zero-load wire latency between two nodes."""
        lat = self._lat_flat[src * self.num_nodes + dst]
        if lat != lat:  # nan: not computed yet (or invalidated)
            lat = self.cfg.latency(self.topology.hops(src, dst))
            if self.faults.enabled:
                # Degraded/re-routed routes see a different latency; the
                # fault engine invalidates this cache on state changes.
                lat = self.faults.route_latency(src, dst, lat)
            self._lat_flat[src * self.num_nodes + dst] = lat
        return lat

    def send(self, msg: WireMessage) -> float:
        """Inject ``msg``; returns the scheduled delivery time.

        The send itself is instantaneous for the caller — CPU injection
        overheads are charged by the *library* models, not the fabric.

        Wire sends (``src != dst``, faults disabled) return ``nan``: the
        source NIC is charged immediately, but destination-NIC ejection is
        deferred to the end of the injecting epoch and performed in
        canonical ``(inject, src, seq)`` order (see :meth:`_flush_epoch`),
        so the delivery time is not knowable at the call.  Callers use the
        delivery-driven ``_fin`` payload hint for source-side completions
        instead of the return value — exactly as in partitioned mode.
        """
        self._check_node(msg.src)
        self._check_node(msg.dst)
        col = self._hcols.get(msg.channel)
        handler = col[msg.dst] if col is not None else None
        if handler is None:
            raise NetworkError(
                f"no handler for channel {msg.channel!r} at node {msg.dst}"
            )
        now = self.sim.now
        msg.inject_time = now
        if self.message_log is not None:  # obs-allow-adhoc
            self.message_log.append(msg)  # obs-allow-adhoc
        if self._rel is not None and msg.src != msg.dst:
            # Fault-injection mode: the reliable transport owns stamping,
            # delivery scheduling, and retransmission for wire traffic.
            # Loopback never touches the wire and stays on the fast path.
            return self._rel.send(msg, handler)
        if msg.src == msg.dst:
            deliver = now + self.LOOPBACK_LATENCY
            msg.depart_time = now
            msg.deliver_time = deliver
            self._emit_wire(msg, now, deliver, now)
            # Schedule the handler itself — no trampoline per delivery.
            self.sim.call_later(deliver - now, handler, msg)
            return deliver
        depart = self.nics[msg.src].inject(now, msg.size, msg.msg_class)
        arrival = depart + self.base_latency(msg.src, msg.dst)
        msg.depart_time = depart
        msg.deliver_time = math.nan
        seq = self._src_seq[msg.src]
        self._src_seq[msg.src] = seq + 1
        if not self._pending_wire:
            self.sim.at_epoch_end(self._flush_epoch)
        self._pending_wire.append((msg.src, seq, msg, arrival, handler))
        return math.nan

    def _flush_epoch(self) -> None:
        """Eject the epoch's wire sends at their destination NICs.

        Runs at the end of the injecting epoch (``Simulator.at_epoch_end``)
        with the clock still at the shared injection time.  Records are
        ejected in ``(src, seq)`` order — with one inject time this *is*
        the canonical ``(inject, src, seq)`` total order — so receiver-
        contention bookkeeping (``NicState.eject`` is call-order-sensitive)
        resolves equal-timestamp arrivals identically to the partitioned
        engine's barrier merge.  For each record the delivery handler is
        scheduled at ``inject + (deliver - inject)`` and any ``_fin``
        payload hint becomes a source-side completion at ``inject +
        ((deliver - inject) + extra)`` — both the exact float expressions
        of the partition driver — in record order, delivery before fin, so
        equal-fire-time heap ties also replay identically.
        """
        buf = self._pending_wire
        self._pending_wire = []
        buf.sort(key=_WIRE_KEY)
        sim = self.sim
        nics = self.nics
        now = sim.now
        for src, seq, msg, arrival, handler in buf:
            deliver = nics[msg.dst].eject(
                now, arrival, msg.size, msg.msg_class
            )
            msg.deliver_time = deliver
            self._emit_wire(msg, msg.depart_time, deliver, now)
            sim.call_at(now + (deliver - now), handler, msg)
            payload = msg.payload
            if type(payload) is dict:
                fin = payload.get("_fin")
                if fin is not None:
                    ref, extra = fin
                    sim.call_at(
                        now + ((deliver - now) + extra),
                        self._fin_appliers[msg.channel], src, ref,
                    )

    def _emit_wire(self, msg: WireMessage, depart: float, deliver: float, now: float) -> None:
        """Emit the ``wire_msg`` event + fabric instruments for one send."""
        if self.obs.enabled:
            self.obs.emit(
                "wire_msg",
                msg.src,
                key=(msg.src, msg.dst),
                info=(msg.channel, msg.msg_class.name, msg.size, deliver - now),
                time=now,
            )
            self._c_msgs.inc()
            self._h_bytes.observe(msg.size)
            self._h_tx_backlog.observe(depart - now)

    def total_bytes(self) -> int:
        """Total bytes injected into the fabric (diagnostic)."""
        return sum(nic.tx_bytes for nic in self.nics)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NetworkError(f"node {node} out of range [0, {self.num_nodes})")


class WireRecord(NamedTuple):
    """One deferred wire transmission, as exchanged between partitions.

    The pickled unit of the PDES barrier protocol: everything a receiving
    partition needs to eject the message at the destination NIC and
    schedule its delivery handler bit-identically to the serial kernel.
    The canonical global merge order is the ``(inject, src, seq)`` total
    order (:data:`WIRE_MERGE_KEY`): the same key the serial fabric's
    epoch flush replays, which is what makes equal-timestamp arrivals at
    one destination NIC resolve identically in every engine regardless of
    which partition observed which send.
    """

    #: Fabric injection time (``sim.now`` at the ``send()`` call).
    inject: float
    #: Source node rank.
    src: int
    #: Per-source-node send sequence number (canonical tie-break).
    seq: int
    #: Destination node rank.
    dst: int
    #: Wire arrival time at the destination NIC (tail departure + route
    #: latency); receiver contention is charged by the destination
    #: partition's ``eject`` in canonical order.
    arrival: float
    #: NIC tail-departure time at the source.
    depart: float
    #: Wire size in bytes.
    size: int
    #: ``MessageClass`` value (int, pickle-stable).
    msg_class: int
    #: Library channel (``"mpi"`` / ``"lci"``).
    channel: str
    #: Opaque library payload (must be picklable in partitioned mode).
    payload: object


class PartitionFabric(Fabric):
    """Fabric for one partition worker of a conservative-sync PDES run.

    The worker owns a contiguous block of node ranks (``owner`` maps every
    rank to its partition).  Loopback messages never touch NICs or the
    wire and stay on the serial fast path; **every** wire send — including
    one whose destination happens to live in this partition — is charged
    at the source NIC immediately but *deferred* as a :class:`WireRecord`
    into :attr:`outbox` instead of being delivery-scheduled.  The barrier
    exchange merges all partitions' records in canonical ``(inject, src,
    seq)`` order and hands each destination partition its slice through
    :meth:`apply_delivery`, which ejects at the destination NIC and
    schedules the handler at exactly the serial kernel's event time
    (``inject + (deliver - inject)`` — the same float arithmetic as the
    serial ``call_later(deliver - now)`` path).

    Fault injection is not supported: the fault engine consumes its RNG
    streams in global send order, which no partitioning can reproduce.
    """

    partitioned = True

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        cfg: Optional[NetworkConfig] = None,
        obs: Optional[ObsBus] = None,
        faults=None,
        *,
        owner: Optional[list[int]] = None,
        local_partition: int = 0,
    ):
        super().__init__(sim, num_nodes, cfg, obs, faults)
        if self._rel is not None:
            raise NetworkError(
                "fault injection is incompatible with partitioned execution "
                "(fault RNG streams are consumed in global send order)"
            )
        self.owner = list(owner) if owner is not None else [0] * num_nodes
        if len(self.owner) != num_nodes:
            raise NetworkError(
                f"ownership map covers {len(self.owner)} nodes, "
                f"fabric has {num_nodes}"
            )
        self.local_partition = local_partition
        #: Deferred wire sends since the last barrier, in send order
        #: (``_src_seq`` lives on the base class).
        self.outbox: list[WireRecord] = []

    def owner_of(self, node: int) -> int:
        """The partition index owning ``node``."""
        self._check_node(node)
        return self.owner[node]

    def send(self, msg: WireMessage) -> float:
        """Inject ``msg``; wire sends are deferred to the barrier.

        Loopback returns the real delivery time (serial fast path); a wire
        send returns ``nan`` — its delivery time is not knowable until the
        destination partition ejects it in canonical order.  Partitioned-
        aware callers never use the return value for wire messages.
        """
        self._check_node(msg.src)
        self._check_node(msg.dst)
        col = self._hcols.get(msg.channel)
        handler = col[msg.dst] if col is not None else None
        if handler is None:
            raise NetworkError(
                f"no handler for channel {msg.channel!r} at node {msg.dst}"
            )
        now = self.sim.now
        msg.inject_time = now
        if self.message_log is not None:  # obs-allow-adhoc
            self.message_log.append(msg)  # obs-allow-adhoc
        if msg.src == msg.dst:
            # Loopback (zero-latency self-channel): partition-local by
            # construction — it never reaches a NIC, so it neither enters
            # the lookahead bound nor the barrier exchange.
            deliver = now + self.LOOPBACK_LATENCY
            msg.depart_time = now
            msg.deliver_time = deliver
            self._emit_wire(msg, now, deliver, now)
            self.sim.call_later(deliver - now, handler, msg)
            return deliver
        depart = self.nics[msg.src].inject(now, msg.size, msg.msg_class)
        arrival = depart + self.base_latency(msg.src, msg.dst)
        msg.depart_time = depart
        msg.deliver_time = math.nan
        seq = self._src_seq[msg.src]
        self._src_seq[msg.src] = seq + 1
        self.outbox.append(WireRecord(
            inject=now, src=msg.src, seq=seq, dst=msg.dst, arrival=arrival,
            depart=depart, size=msg.size, msg_class=int(msg.msg_class),
            channel=msg.channel, payload=msg.payload,
        ))
        self._emit_wire(msg, depart, math.nan, now)
        return math.nan

    def take_outbox(self) -> list[WireRecord]:
        """Drain and return the deferred sends since the last barrier."""
        out, self.outbox = self.outbox, []
        return out

    def eject_delivery(
        self, rec: WireRecord
    ) -> tuple[WireMessage, float, float, Handler]:
        """Eject one merged record at its destination NIC.

        Must be called in canonical (coordinator-merged) order across
        *all* records destined to this partition — receiver-contention
        state (``NicState.eject``) is order-sensitive, and the merge
        order replays the serial kernel's send-call order.  Returns
        ``(msg, deliver, when, handler)``: the reconstructed message, its
        NIC delivery time, the exact event time to schedule the handler
        at, and the handler itself.  Scheduling is the *caller's* job —
        the partition driver defers all insertions so that equal-time
        events enter the heap in the serial kernel's scheduling order.
        """
        msg = WireMessage(
            src=rec.src, dst=rec.dst, size=rec.size,
            msg_class=MessageClass(rec.msg_class), payload=rec.payload,
            channel=rec.channel,
        )
        msg.inject_time = rec.inject
        msg.depart_time = rec.depart
        deliver = self.nics[rec.dst].eject(
            rec.inject, rec.arrival, rec.size, msg.msg_class
        )
        msg.deliver_time = deliver
        handler = self._hcols[rec.channel][rec.dst]
        # Replicate the serial float arithmetic exactly: the serial kernel
        # schedules via call_later(deliver - now), so the realised event
        # time is inject + (deliver - inject), not the raw ``deliver``.
        return msg, deliver, rec.inject + (deliver - rec.inject), handler

    def apply_delivery(self, rec: WireRecord) -> tuple[WireMessage, float]:
        """Eject one merged record and schedule its delivery handler
        immediately (see :meth:`eject_delivery` for the ordering
        contract and the deferred-scheduling variant)."""
        msg, deliver, when, handler = self.eject_delivery(rec)
        self.sim.call_at(when, handler, msg)
        return msg, deliver
