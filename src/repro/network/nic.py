"""Per-node NIC serialization model.

Bookkeeping-only (no processes): each direction of the NIC keeps a
``busy_until`` clock per virtual channel.  A message charges its
serialization time ``max(size/bandwidth, gap)`` on its channel.

Control/data interaction approximates InfiniBand packet-level QP
arbitration without per-packet events:

- a DATA message queues FIFO behind other data: it departs at
  ``max(now, data_busy) + ser``;
- a CONTROL message does *not* wait for in-flight data — it departs at
  ``max(now, ctrl_busy) + ser`` and *steals* its serialization time from the
  data channel by pushing ``data_busy`` back by ``ser`` (bandwidth is
  conserved, control latency stays flat).

The receive side mirrors this to model ejection contention (incast): a
message from a single sender never waits (the sender already paced it), but
simultaneous arrivals from several senders drain at line rate.
"""

from __future__ import annotations

from repro.config import NetworkConfig
from repro.network.message import MessageClass

__all__ = ["NicState"]


class NicState:
    """Injection/ejection bookkeeping for one node's NIC."""

    __slots__ = (
        "cfg",
        "tx_data_busy",
        "tx_ctrl_busy",
        "rx_data_busy",
        "rx_ctrl_busy",
        "tx_bytes",
        "rx_bytes",
        "tx_msgs",
        "rx_msgs",
    )

    def __init__(self, cfg: NetworkConfig):
        self.cfg = cfg
        self.tx_data_busy = 0.0
        self.tx_ctrl_busy = 0.0
        self.rx_data_busy = 0.0
        self.rx_ctrl_busy = 0.0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_msgs = 0
        self.rx_msgs = 0

    def serialization(self, size: int) -> float:
        """Time the wire is occupied by a message of ``size`` bytes."""
        return max(size / self.cfg.bandwidth, self.cfg.message_gap)

    def backlog(self, now: float) -> dict[str, float]:
        """Outstanding busy time (seconds) per direction/class at ``now``.

        The channel-occupancy signal the observability layer samples: how
        far ahead of real time each virtual channel is committed.
        """
        return {
            "tx_data": max(0.0, self.tx_data_busy - now),
            "tx_ctrl": max(0.0, self.tx_ctrl_busy - now),
            "rx_data": max(0.0, self.rx_data_busy - now),
            "rx_ctrl": max(0.0, self.rx_ctrl_busy - now),
        }

    def inject(self, now: float, size: int, msg_class: MessageClass) -> float:
        """Charge a transmit; returns the time the tail leaves the NIC."""
        ser = self.serialization(size)
        if msg_class == MessageClass.CONTROL:
            depart = max(now, self.tx_ctrl_busy) + ser
            self.tx_ctrl_busy = depart
            # Steal the bandwidth from the data channel.
            self.tx_data_busy = max(self.tx_data_busy, now) + ser
        else:
            depart = max(now, self.tx_data_busy, self.tx_ctrl_busy - ser) + ser
            self.tx_data_busy = depart
        self.tx_bytes += size
        self.tx_msgs += 1
        return depart

    def eject(self, now: float, arrival: float, size: int, msg_class: MessageClass) -> float:
        """Charge a receive; returns the delivery time at the destination.

        ``arrival`` is when the message tail would reach the NIC with no
        receiver contention; delivery can only be later.
        """
        ser = self.serialization(size)
        if msg_class == MessageClass.CONTROL:
            deliver = max(arrival, self.rx_ctrl_busy + ser)
            self.rx_ctrl_busy = deliver
            self.rx_data_busy = max(self.rx_data_busy, arrival - ser) + ser
        else:
            deliver = max(arrival, self.rx_data_busy + ser)
            self.rx_data_busy = deliver
        self.rx_bytes += size
        self.rx_msgs += 1
        return deliver
