"""Wire-level message representation."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MessageClass", "WireMessage"]

_msg_ids = itertools.count()


class MessageClass(enum.IntEnum):
    """NIC virtual channel.  Control messages are small and latency-critical
    (ACTIVATE, GET DATA, handshakes, RTS/CTS); data messages are bulk
    transfers.  The NIC model lets control traffic steal bandwidth from
    in-flight data instead of queueing behind it, approximating InfiniBand's
    packet-granularity QP arbitration."""

    CONTROL = 0
    DATA = 1


@dataclass
class WireMessage:
    """One message on the wire.

    ``payload`` is opaque to the network layer — the communication libraries
    put their protocol headers/bodies there.  ``size`` is what the wire
    charges (headers included), independent of the Python payload object.
    """

    src: int
    dst: int
    size: int
    msg_class: MessageClass
    payload: Any = None
    #: Library-level channel discriminator (e.g. "mpi", "lci").
    channel: str = ""
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    #: Stamped by the fabric: injection time, NIC tail-departure time, and
    #: delivery time at the destination.
    inject_time: float = -1.0
    depart_time: float = -1.0
    deliver_time: float = -1.0
    #: Set only by the reliable transport (fault-injection mode): per-route
    #: sequence number and header checksum.
    seq: int = -1
    checksum: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size}")
        if self.src == self.dst:
            # Self-sends are legal (loopback) but never touch the wire;
            # the fabric special-cases them.
            pass
