"""NetPIPE-style raw ping-pong baseline (Fig. 2a's reference curve).

NetPIPE measures ping-pong bandwidth directly over the network stack with no
runtime on top.  We reproduce it by running an actual ping-pong of single
messages over the :class:`~repro.network.fabric.Fabric` with a minimal fixed
software overhead per message (the cost of a bare verbs post + poll).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import NetworkConfig
from repro.network.fabric import Fabric
from repro.network.message import MessageClass, WireMessage
from repro.sim.core import Simulator
from repro.units import US

__all__ = ["netpipe_rtt", "netpipe_bandwidth_curve", "NETPIPE_SW_OVERHEAD"]

#: Per-message software overhead of the bare benchmark loop (post + poll).
NETPIPE_SW_OVERHEAD = 0.35 * US


def netpipe_rtt(
    size: int,
    cfg: Optional[NetworkConfig] = None,
    repeats: int = 8,
) -> float:
    """Measured mean round-trip time for one ping-pong of ``size`` bytes.

    Runs a real simulated ping-pong (two nodes, alternating sends) rather
    than evaluating a formula, so NIC bookkeeping is exercised the same way
    the full stack exercises it.
    """
    sim = Simulator()
    fabric = Fabric(sim, 2, cfg)
    rtts: list[float] = []

    state = {"t0": 0.0, "bounces": 0}

    def bounce(msg: WireMessage) -> None:
        # Software overhead before the reflected send.
        sim.call_later(NETPIPE_SW_OVERHEAD, _reflect, msg.dst, msg.src)

    def _reflect(me: int, peer: int) -> None:
        state["bounces"] += 1
        if me == 0:
            rtts.append(sim.now - state["t0"])
            if state["bounces"] >= 2 * repeats:
                return
            state["t0"] = sim.now
        fabric.send(
            WireMessage(src=me, dst=peer, size=size, msg_class=MessageClass.DATA, channel="np")
        )

    fabric.register_handler(0, "np", bounce)
    fabric.register_handler(1, "np", bounce)
    state["t0"] = 0.0
    fabric.send(WireMessage(src=0, dst=1, size=size, msg_class=MessageClass.DATA, channel="np"))
    sim.run()
    return sum(rtts) / len(rtts)


def netpipe_bandwidth_curve(
    sizes: Sequence[int],
    cfg: Optional[NetworkConfig] = None,
) -> list[tuple[int, float]]:
    """(size, bandwidth bytes/s) for each size, NetPIPE convention
    (bandwidth = size / one-way time, one-way = RTT/2)."""
    out = []
    for size in sizes:
        rtt = netpipe_rtt(size, cfg)
        out.append((size, size / (rtt / 2.0)))
    return out
