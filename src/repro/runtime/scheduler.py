"""Task scheduler policies.

PaRSEC's scheduler is hierarchical: each compute thread owns a local queue
(tasks it made ready stay local, preserving cache affinity) and steals from
its siblings when idle.  We provide both that policy and a simple central
priority queue:

- :class:`CentralScheduler` — one shared priority queue per node (the
  default; priority = the DAG's critical-path annotation);
- :class:`WorkStealingScheduler` — per-worker priority queues with
  release-to-own-queue placement and round-robin stealing.

Both expose the same interface: ``push(priority_key, task, origin)`` from
whatever thread makes a task ready, and the generator ``pop(worker_id)``
that a worker yields from until a task is available.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Optional

from repro.errors import RuntimeBackendError
from repro.sim.core import Simulator
from repro.sim.primitives import PriorityStore, Semaphore

__all__ = ["CentralScheduler", "WorkStealingScheduler", "make_scheduler"]


class CentralScheduler:
    """One shared priority queue; lowest key pops first."""

    kind = "central"

    def __init__(self, sim: Simulator, num_workers: int):
        self.store = PriorityStore(sim)

    def push(self, key: float, task: Any, origin: Optional[int] = None) -> None:
        """Make a task ready (``origin`` is ignored for the central queue)."""
        self.store.try_put((key, task))

    def pop(self, worker_id: int) -> Generator[Any, Any, Any]:
        """Yield until a task is available; returns the best-priority task."""
        task = yield self.store.get()
        return task

    def __len__(self) -> int:
        return len(self.store)


class WorkStealingScheduler:
    """Per-worker priority queues with stealing (PaRSEC-style locality).

    A task released by worker *w* lands in *w*'s queue; tasks released by
    non-worker threads (the comm thread delivering remote data) are
    distributed round-robin.  An idle worker drains its own queue first,
    then steals the best task from the nearest non-empty sibling queue.
    """

    kind = "ws"

    def __init__(self, sim: Simulator, num_workers: int):
        if num_workers < 1:
            raise RuntimeBackendError("need at least one worker")
        self.sim = sim
        self.num_workers = num_workers
        self.queues: list[list] = [[] for _ in range(num_workers)]
        self._available = Semaphore(sim)
        self._seq = 0
        self._rr = 0
        #: Number of pops satisfied by stealing (diagnostic).
        self.steals = 0
        #: Number of pops satisfied locally.
        self.local_hits = 0

    def push(self, key: float, task: Any, origin: Optional[int] = None) -> None:
        """Make a task ready on ``origin``'s queue (round-robin if none)."""
        if origin is None or not 0 <= origin < self.num_workers:
            origin = self._rr
            self._rr = (self._rr + 1) % self.num_workers
        self._seq += 1
        heappush(self.queues[origin], (key, self._seq, task))
        self._available.release()

    def pop(self, worker_id: int) -> Generator[Any, Any, Any]:
        """Take from the local queue, stealing from siblings when empty."""
        yield self._available.acquire()
        # The semaphore guarantees one task exists somewhere; the scan below
        # runs atomically (no yields), so it always finds it.
        own = self.queues[worker_id]
        if own:
            self.local_hits += 1
            return heappop(own)[2]
        for i in range(1, self.num_workers):
            q = self.queues[(worker_id + i) % self.num_workers]
            if q:
                self.steals += 1
                return heappop(q)[2]
        raise RuntimeBackendError("scheduler semaphore out of sync")

    def __len__(self) -> int:
        return sum(len(q) for q in self.queues)


def make_scheduler(kind: str, sim: Simulator, num_workers: int):
    """Factory: ``central`` (default) or ``ws`` (work stealing)."""
    if kind == "central":
        return CentralScheduler(sim, num_workers)
    if kind == "ws":
        return WorkStealingScheduler(sim, num_workers)
    raise RuntimeBackendError(f"unknown scheduler {kind!r}")
