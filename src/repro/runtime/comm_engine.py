"""The PaRSEC communication-engine API (paper Listing 1).

The runtime talks to its communication backend exclusively through this
interface; the MPI and LCI backends implement it with completely different
mechanisms (§4.2 vs. §5.3) while the runtime core stays unchanged — which
is exactly the property the paper's evaluation relies on ("Since the PaRSEC
runtime core is unchanged, the task management overhead must be identical,
so differences in performance must be due to communication management").

Active-message callbacks are **generator functions**::

    def cb(engine, tag, msg, size, src, cb_data):
        yield engine.sim.timeout(...)   # CPU work
        ...

invoked (``yield from``) by the backend on whichever simulated thread runs
its progress path.  One-sided completion callbacks have the same shape.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Optional

from repro.errors import RuntimeBackendError
from repro.faults.transport import SeqTracker
from repro.obs.bus import NULL_BUS
from repro.sim.core import Event, Process, Simulator

__all__ = [
    "BackoffPolicy",
    "CommEngine",
    "AmCallback",
    "OnesidedCallback",
    "TAG_ACTIVATE",
    "TAG_GETDATA",
    "TAG_PUT_COMPLETE",
]

#: The two active messages PaRSEC registers at startup (§4.1) plus the tag
#: used to dispatch remote put-completion callbacks.
TAG_ACTIVATE = 1
TAG_GETDATA = 2
TAG_PUT_COMPLETE = 3

AmCallback = Callable[..., Generator]
OnesidedCallback = Callable[..., Generator]

_put_tags = itertools.count(1000)


def next_data_tag() -> int:
    """A fresh wire tag for one put's data transfer.  Unique per origin while
    in flight (the (origin, tag) tuple disambiguates at the target, §5.3.3)."""
    return next(_put_tags)


class BackoffPolicy:
    """Retry-delay schedule for backend back-pressure (LCI_ERR_RETRY etc.).

    The default (``factor=1``) reproduces the historical fixed 0.5 µs
    backoff exactly; fault-injection runs use an exponential schedule with
    a cap and deterministic jitter so retry storms de-synchronise.
    """

    def __init__(
        self,
        base: float = 0.5e-6,
        factor: float = 1.0,
        max_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
    ):
        self.base = base
        self.factor = factor
        self.max_delay = max_delay if max_delay is not None else 64 * base
        self.jitter = jitter
        self.rng = rng

    def delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        d = min(self.base * self.factor ** (attempt - 1), self.max_delay)
        if self.jitter and self.rng is not None:
            d *= 1.0 + self.jitter * float(self.rng.random())
        return d


class CommEngine:
    """Abstract communication engine (Listing 1)."""

    def __init__(self, sim: Simulator, node: int, obs=None, backoff: Optional[BackoffPolicy] = None):
        self.sim = sim
        self.node = node
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        #: Observability bus (defaults to the simulator's, usually NULL_BUS).
        self.obs = obs if obs is not None else getattr(sim, "obs", NULL_BUS)
        self._am_tags: dict[int, tuple[AmCallback, Any]] = {}
        #: Counters exposed for benchmarks/tests.
        self.stats = {
            "am_sent": 0,
            "am_recv": 0,
            "puts_started": 0,
            "puts_completed": 0,
            "bytes_put": 0,
        }
        self._c_am_sent = self.obs.counter("parsec.am_sent", node)
        self._c_am_recv = self.obs.counter("parsec.am_recv", node)
        self._c_puts = self.obs.counter("parsec.puts_started", node)
        self._h_put_bytes = self.obs.histogram("parsec.put_bytes", node)
        # End-to-end AM dedup for fault-injection runs: the fabric-level
        # transport already dedups the wire, but backend-level retries after
        # LCI_ERR_RETRY-style back-pressure can resend an AM whose first copy
        # actually made it out.  Sequence numbers make redelivery harmless.
        self._am_next_seq: dict[int, int] = {}
        self._am_rx: dict[int, SeqTracker] = {}
        self._c_am_dup = self.obs.counter("parsec.am_dup_dropped", node)

    # -- registration (tag_reg / mem_reg of Listing 1) --------------------

    def tag_reg(self, tag: int, cb: AmCallback, cb_data: Any = None, max_len: int = 1 << 20) -> None:
        """Register an active-message callback for ``tag``."""
        if tag in self._am_tags:
            raise RuntimeBackendError(f"AM tag {tag} registered twice")
        self._am_tags[tag] = (cb, cb_data)
        self._tag_reg_backend(tag, max_len)

    def mem_reg(self, size: int) -> int:
        """Register a memory region; returns an opaque handle.

        Registration cost is folded into the backends' per-transfer costs
        (both real backends cache registrations), so this is bookkeeping.
        """
        return size

    # -- backend interface -------------------------------------------------

    def _tag_reg_backend(self, tag: int, max_len: int) -> None:
        raise NotImplementedError

    def start(self) -> Generator:
        """One-time initialisation run on the communication thread."""
        raise NotImplementedError

    def send_am(self, tag: int, remote: int, data: Any, size: int) -> Generator:
        """Send an active message (blocking-ish: returns when injected)."""
        raise NotImplementedError

    def put(
        self,
        data: Any,
        size: int,
        remote: int,
        l_cb: Optional[OnesidedCallback],
        r_cb_data: Any,
        l_cb_data: Any = None,
    ) -> Generator:
        """Start (or defer) a one-sided put of ``size`` bytes to ``remote``.

        The remote side's TAG_PUT_COMPLETE callback runs with ``r_cb_data``
        and the payload when the data has arrived; ``l_cb`` runs locally
        when the source buffer is reusable.
        """
        raise NotImplementedError

    def progress(self) -> Generator[Any, Any, int]:
        """Poll for completed communications, running their callbacks;
        returns the number processed (0 ⇒ nothing to do)."""
        raise NotImplementedError

    def activity_event(self) -> Event:
        """Event that fires when the engine (may) have work to progress."""
        raise NotImplementedError

    def park(self, proc: Process) -> bool:
        """Register ``proc`` (parked on ``yield PARK``) to be woken when the
        engine may have work; returns ``False`` — without registering — when
        work is already pending.  The allocation-free replacement for
        waiting on :meth:`activity_event`."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    def _am_entry(self, tag: int) -> tuple[AmCallback, Any]:
        entry = self._am_tags.get(tag)
        if entry is None:
            raise RuntimeBackendError(f"node {self.node}: unregistered AM tag {tag}")
        return entry

    def am_seq(self, remote: int) -> int:
        """Next AM sequence number toward ``remote`` (per destination)."""
        seq = self._am_next_seq.get(remote, 0)
        self._am_next_seq[remote] = seq + 1
        return seq

    def _run_am_callback(
        self, tag: int, msg: Any, size: int, src: int, seq: Optional[int] = None
    ) -> Generator:
        if seq is not None:
            tracker = self._am_rx.get(src)
            if tracker is None:
                tracker = self._am_rx[src] = SeqTracker()
            if not tracker.accept(seq):
                self._c_am_dup.inc()
                return
        cb, cb_data = self._am_entry(tag)
        self.stats["am_recv"] += 1
        self._c_am_recv.inc()
        yield from cb(self, tag, msg, size, src, cb_data)
