"""The PaRSEC-like asynchronous many-task runtime.

This package reproduces the runtime architecture the paper describes:

- :mod:`repro.runtime.taskpool` — distributed task graphs with dataflows;
- :mod:`repro.runtime.comm_engine` — the communication-engine API of
  Listing 1 (``tag_reg`` / ``send_am`` / ``put`` / ``progress``);
- :mod:`repro.runtime.mpi_backend` — the MPI backend of §4.2 (persistent
  receives, the 30-transfer global request array, ``MPI_Testsome`` polling,
  deferred sends and dynamically allocated receives);
- :mod:`repro.runtime.lci_backend` — the LCI backend of §5.3 (dedicated
  progress thread, tag hash table, eager-data-in-handshake puts, dual
  completion FIFOs drained with 5-AM fairness);
- :mod:`repro.runtime.node` — per-node runtime: worker threads, priority
  scheduler, the communication thread of §4.3 with ACTIVATE aggregation and
  deferred GET DATA queues, binomial-tree dataflow multicast (Fig. 1);
- :mod:`repro.runtime.context` — :class:`ParsecContext`, which wires a
  platform + backend together and executes a task graph, returning
  :class:`RunStats` (time-to-solution, per-flow end-to-end latencies, ...).
"""

from repro.runtime.taskpool import FlowSpec, TaskSpec, TaskGraph
from repro.runtime.comm_engine import CommEngine, TAG_ACTIVATE, TAG_GETDATA, TAG_PUT_COMPLETE
from repro.runtime.context import ParsecContext, RunStats
from repro.runtime.scheduler import CentralScheduler, WorkStealingScheduler
from repro.runtime.node import NodeRuntime, binomial_tree

__all__ = [
    "FlowSpec",
    "TaskSpec",
    "TaskGraph",
    "CommEngine",
    "TAG_ACTIVATE",
    "TAG_GETDATA",
    "TAG_PUT_COMPLETE",
    "ParsecContext",
    "RunStats",
    "CentralScheduler",
    "WorkStealingScheduler",
    "NodeRuntime",
    "binomial_tree",
]
