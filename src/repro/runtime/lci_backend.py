"""The LCI backend for the PaRSEC communication engine (paper §5.3).

Division of labour (the paper's key design):

- a dedicated **progress thread** (started by :class:`ParsecContext`) drives
  ``LCI_progress``: it drains hardware completions, matches rendezvous
  messages, and runs the lightweight handlers below, which do nothing but
  allocate a callback handle and push it onto a FIFO;
- the **communication thread** consumes the two FIFO queues — up to
  ``lci_am_batch`` (5) active-message handles, then all bulk-data handles,
  looping until both are dry (§5.3.4) — and runs the actual runtime
  callbacks there.  Long ACTIVATE callbacks therefore never block matching.

Other §5.3 behaviours reproduced here:

- active-message tags resolve through a hash table (``CommEngine._am_tags``);
- ``send_am`` uses Immediate or Buffered depending on length — always eager,
  received into dynamically allocated buffers (§5.3.2);
- puts use a *specialized* handshake path that bypasses the AM hash table;
  the handshake's tag encodes the data-transfer tag; sufficiently small data
  rides inside the handshake ("eager put") and the origin's local callback
  runs immediately (§5.3.3);
- a Direct receive that fails with ``LCI_ERR_RETRY`` on the progress thread
  is delegated to the communication thread for retry (§5.3.3).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.config import RuntimeCosts
from repro.errors import RuntimeBackendError
from repro.lci.completion import CompletionRecord
from repro.lci.constants import LCI_ERR_RETRY, LCI_OK
from repro.lci.device import LciDevice
from repro.runtime.comm_engine import (
    BackoffPolicy,
    CommEngine,
    OnesidedCallback,
    TAG_PUT_COMPLETE,
    next_data_tag,
)
from repro.sim.core import Event, Process, Simulator
from repro.sim.primitives import NotifyQueue

__all__ = ["LciBackend"]


class LciBackend(CommEngine):
    """Listing-1 engine implemented over the simulated LCI library."""

    def __init__(
        self,
        sim: Simulator,
        device: LciDevice,
        rt_costs: Optional[RuntimeCosts] = None,
        native_put: bool = False,
        backoff: Optional[BackoffPolicy] = None,
    ):
        super().__init__(sim, device.node, backoff=backoff)
        self.device = device
        self.rt = rt_costs or RuntimeCosts()
        #: Use LCI's one-sided put with remote completion instead of the
        #: emulated handshake + two-sided transfer — the §7 future-work
        #: feature ("directly implement the PaRSEC put interface").
        self.native_put = native_put
        #: Callback handles for active messages (consumed by comm thread).
        self.am_fifo = NotifyQueue(sim)
        #: Callback handles for bulk-data completions (ditto).
        self.data_fifo = NotifyQueue(sim)
        device.am_handler = self._progress_thread_handler
        device.put_handler = self._native_put_handler
        self._started = False
        #: §5.3.3 back-pressure: comm-thread retries after LCI_ERR_RETRY and
        #: Direct receives delegated from the progress thread.
        self._c_send_retry = self.obs.counter("parsec.lci.send_retries", device.node)
        self._c_recv_delegated = self.obs.counter(
            "parsec.lci.recv_retry_delegated", device.node
        )

    # -- engine interface --------------------------------------------------

    def am_payload_max(self) -> int:
        """AMs are sent eagerly, so the Buffered limit bounds them (§5.3.2:
        "about 12 KiB in the current implementation")."""
        return self.device.costs.buffered_max

    def quiescence_report(self) -> dict:
        """Leftover device/engine state after a drained run (diagnostic).

        Reports the device resource pools against their configured sizes
        (a mismatch means a leaked or double-freed packet/slot — pools must
        return to full and never go negative), plus the depths of the
        progress-to-comm FIFOs and the unexpected-RTS queue, all of which a
        clean termination leaves empty.  Read by the schedule explorer's
        quiescence invariant.
        """
        dev = self.device
        return {
            "tx_packets_free": dev.tx_packets_free,
            "rx_packets_free": dev.rx_packets_free,
            "send_slots_free": dev.send_slots_free,
            "recv_slots_free": dev.recv_slots_free,
            "packet_pool_size": dev.costs.packet_pool_size,
            "direct_slots": dev.costs.direct_slots,
            "am_fifo": len(self.am_fifo),
            "data_fifo": len(self.data_fifo),
            "unexpected_rts": len(dev._unexpected_rts),
        }

    def _tag_reg_backend(self, tag: int, max_len: int) -> None:
        # Registration "simply inserts the relevant entry into the table"
        # (§5.3.2) — the table is CommEngine._am_tags.
        if max_len > self.am_payload_max():
            raise RuntimeBackendError(
                f"AM tag {tag}: max_len {max_len} exceeds the eager limit "
                f"{self.am_payload_max()}"
            )

    def start(self) -> Generator:
        """One-time initialisation (nothing to pre-post for LCI)."""
        if self._started:
            raise RuntimeBackendError("engine started twice")
        self._started = True
        return
        yield  # pragma: no cover - makes this a generator

    def send_am(self, tag: int, remote: int, data: Any, size: int) -> Generator:
        """Immediate or Buffered depending on length; always eager (§5.3.2).

        Retries on back-pressure (legal here: this runs on the comm thread
        or a worker thread, never on the progress thread).
        """
        self._am_entry(tag)
        self.stats["am_sent"] += 1
        self._c_am_sent.inc()
        payload = {
            "kind": "user_am",
            "tag": tag,
            "data": data,
            "seq": self.am_seq(remote),
        }
        if size <= self.device.costs.immediate_max:
            yield from self.device.sendi(remote, tag, size, payload)
        else:
            attempt = 0
            while True:
                status = yield from self.device.sendb(remote, tag, size, payload)
                if status == LCI_OK:
                    break
                attempt += 1
                self._c_send_retry.inc()
                yield self.backoff.delay(attempt)

    def put(
        self,
        data: Any,
        size: int,
        remote: int,
        l_cb: Optional[OnesidedCallback],
        r_cb_data: Any,
        l_cb_data: Any = None,
    ) -> Generator:
        """Specialized handshake (+ eager payload for small data) and a
        Direct transfer otherwise (§5.3.3)."""
        data_tag = next_data_tag()
        self.stats["puts_started"] += 1
        self.stats["bytes_put"] += size
        self._c_puts.inc()
        self._h_put_bytes.observe(size)
        if self.native_put:
            # One-sided: no handshake, no posted receive, no matching.
            attempt = 0
            while True:
                status = yield from self.device.putd(
                    remote,
                    data_tag,
                    size,
                    data,
                    comp=self._direct_completion,
                    user_ctx=("send_done", l_cb, l_cb_data),
                    remote_meta=r_cb_data,
                )
                if status == LCI_OK:
                    return
                attempt += 1
                self._c_send_retry.inc()
                yield self.backoff.delay(attempt)
        eager = size <= self.rt.lci_eager_put_max
        hs_payload = {
            "kind": "put_hs",
            "data_tag": data_tag,
            "size": size,
            "r_cb_data": r_cb_data,
            "eager": data if eager else None,
        }
        hs_size = self.rt.handshake_bytes + (size if eager else 0)
        attempt = 0
        while True:
            status = yield from self.device.sendb(remote, data_tag, hs_size, hs_payload)
            if status == LCI_OK:
                break
            attempt += 1
            self._c_send_retry.inc()
            yield self.backoff.delay(attempt)
        if eager:
            # No separate data communication; local completion is immediate.
            if l_cb is not None:
                yield from l_cb(self, l_cb_data)
        else:
            attempt = 0
            while True:
                status = yield from self.device.sendd(
                    remote,
                    data_tag,
                    size,
                    data,
                    comp=self._direct_completion,
                    user_ctx=("send_done", l_cb, l_cb_data),
                )
                if status == LCI_OK:
                    break
                attempt += 1
                self._c_send_retry.inc()
                yield self.backoff.delay(attempt)

    def progress(self) -> Generator[Any, Any, int]:
        """Comm-thread side: drain the completion FIFOs with the fairness
        policy of §5.3.4 (≤5 AM handles, then all data handles, loop)."""
        total = 0
        cq_pop = self.device.costs.cq_pop
        while True:
            n = 0
            for _ in range(self.rt.lci_am_batch):
                ok, handle = self.am_fifo.try_pop()
                if not ok:
                    break
                yield cq_pop + self.rt.callback_exec
                tag, data, size, src, seq = handle
                yield from self._run_am_callback(tag, data, size, src, seq)
                n += 1
            stalled_retry = False
            while True:
                ok, item = self.data_fifo.try_pop()
                if not ok:
                    break
                yield cq_pop + self.rt.callback_exec
                kind = item[0]
                if kind == "r_data":
                    yield from self._deliver_put(item[1], item[2], item[3], item[4])
                elif kind == "l_comp":
                    _, l_cb, l_cb_data = item
                    if l_cb is not None:
                        yield from l_cb(self, l_cb_data)
                elif kind == "post_recv_retry":
                    _, src, data_tag, size, r_cb_data = item
                    status = yield from self.device.recvd(
                        src, data_tag, size,
                        comp=self._direct_completion,
                        user_ctx=("recv_done", r_cb_data),
                    )
                    if status == LCI_ERR_RETRY:
                        # Still no slot: requeue and stop hammering; a future
                        # completion will free slots and wake us.
                        self.data_fifo.push(item)
                        stalled_retry = True
                        break
                else:  # pragma: no cover - defensive
                    raise RuntimeBackendError(f"unknown data handle {kind!r}")
                n += 1
            if n == 0 or stalled_retry:
                total += n
                break
            total += n
        return total

    def activity_event(self) -> Event:
        """Fires when either FIFO has handles for the comm thread."""
        evt = Event(self.sim)
        if len(self.am_fifo) or len(self.data_fifo):
            evt.succeed()
            return evt
        # Piggyback on both queues' notification lists.
        self.am_fifo._waiters.append(evt)
        self.data_fifo._waiters.append(evt)
        return evt

    def park(self, proc: Process) -> bool:
        """Park on both FIFOs; ``False`` when either already has handles.

        A push to either FIFO wakes the process (``wake`` is idempotent, so
        double registration is safe), and :meth:`NotifyQueue.park`'s dedup
        keeps each waiter list at one slot per parked thread.
        """
        if len(self.am_fifo) or len(self.data_fifo):
            return False
        self.am_fifo.park(proc)
        self.data_fifo.park(proc)
        return True

    # -- progress-thread side (lightweight handlers) -------------------------

    def _progress_thread_handler(self, record: CompletionRecord) -> Generator:
        """Runs inside LCI_progress on the progress thread: allocate a
        callback handle and push it to the right FIFO (§5.3.2/5.3.3)."""
        p = record.payload
        if p["kind"] == "user_am":
            self.am_fifo.push(
                (p["tag"], p["data"], record.size, record.peer, p.get("seq"))
            )
            self.device.free_rx_packet()
            return
        if p["kind"] != "put_hs":  # pragma: no cover - defensive
            raise RuntimeBackendError(f"unexpected AM payload {p['kind']!r}")
        # Specialized put-handshake path (bypasses the AM hash table).
        if p["eager"] is not None:
            self.data_fifo.push(("r_data", p["r_cb_data"], p["eager"], p["size"], record.peer))
            self.device.free_rx_packet()
            return
        self.device.free_rx_packet()
        return self._start_direct_recv(record.peer, p["data_tag"], p["size"], p["r_cb_data"])

    def _start_direct_recv(self, src: int, data_tag: int, size: int, r_cb_data) -> Generator:
        status = yield from self.device.recvd(
            src, data_tag, size,
            comp=self._direct_completion,
            user_ctx=("recv_done", r_cb_data),
        )
        if status == LCI_ERR_RETRY:
            # Cannot retry or progress recursively on the progress thread —
            # delegate to the communication thread (§5.3.3).
            self._c_recv_delegated.inc()
            self.data_fifo.push(("post_recv_retry", src, data_tag, size, r_cb_data))

    def _native_put_handler(self, record: CompletionRecord) -> None:
        """Remote side of a one-sided put: hand the completion (with the
        r_cb_data that rode in the notification) to the comm thread."""
        self.data_fifo.push(
            ("r_data", record.user_ctx, record.payload, record.size, record.peer)
        )

    def _direct_completion(self, record: CompletionRecord) -> None:
        """Completion handler for Direct ops, invoked by LCI progress."""
        ctx = record.user_ctx
        if ctx[0] == "send_done":
            self.data_fifo.push(("l_comp", ctx[1], ctx[2]))
        else:  # recv_done
            self.data_fifo.push(("r_data", ctx[1], record.payload, record.size, record.peer))

    # -- shared ----------------------------------------------------------------

    def _deliver_put(self, r_cb_data: Any, data: Any, size: int, src: int) -> Generator:
        self.stats["puts_completed"] += 1
        cb, cb_data = self._am_entry(TAG_PUT_COMPLETE)
        yield from cb(
            self,
            TAG_PUT_COMPLETE,
            {"r_cb_data": r_cb_data, "data": data},
            size,
            src,
            cb_data,
        )
