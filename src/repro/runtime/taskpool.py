"""Distributed task graphs: tasks, dataflows, and validation.

A :class:`TaskGraph` is the static description of a computation the runtime
executes (PaRSEC would generate it from a parameterized task graph; our
workload generators build it explicitly):

- a :class:`TaskSpec` runs on a fixed node for ``duration`` simulated
  seconds once every input flow's data is available on that node;
- a :class:`FlowSpec` is one output datum of a task, consumed by zero or
  more other tasks; consumers on other nodes receive it through the
  ACTIVATE / GET DATA / put protocol of the paper's Fig. 1.

Storage layout
--------------
Paper-scale graphs (NT = 150 → ~574k tasks, ~585k flows, ~1.5M dependence
edges) made an object-per-task design the memory and build-time bottleneck,
so the graph is **columnar**: one flat ``array`` per field (placement,
duration, priority, kind id, flow size, flow producer) plus CSR adjacency
for task inputs, built incrementally by :meth:`TaskGraph.add_task`.  The
derived adjacency — task → output flows and flow → consumer tasks — is
computed once by :meth:`TaskGraph.freeze` with two stable counting sorts
(NumPy), preserving exactly the id-ordered tuples the old per-object
append produced.  :class:`TaskSpec`/:class:`FlowSpec` remain available as
lightweight *views* over the columns (``graph.tasks[i].duration`` etc.),
so existing call sites and tests keep working; hot runtime paths read the
columns directly.

Tests may still overwrite ``task.inputs``/``task.outputs``/
``flow.consumers`` wholesale (e.g. to wire a deliberate cycle); such
assignments land in small override maps consulted by every accessor and do
*not* re-derive the other direction — matching the old independent-field
semantics.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Optional

from repro.errors import RuntimeBackendError

__all__ = ["FlowSpec", "TaskSpec", "TaskGraph"]


class TaskSpec:
    """View of one task: node placement, compute duration, priority, flows.

    A thin proxy over the graph's columnar storage — constructing one is
    O(1) and carries no data of its own.
    """

    __slots__ = ("_g", "task_id")

    def __init__(self, graph: "TaskGraph", task_id: int):
        self._g = graph
        self.task_id = task_id

    @property
    def node(self) -> int:
        """Node the task is placed on."""
        return self._g._t_node[self.task_id]

    @property
    def duration(self) -> float:
        """Compute time in simulated seconds."""
        return self._g._t_dur[self.task_id]

    @property
    def priority(self) -> float:
        """Scheduling priority (higher runs earlier)."""
        return self._g._t_prio[self.task_id]

    @property
    def kind(self) -> str:
        """Task kind label (e.g. ``potrf``/``trsm``/``gemm``)."""
        return self._g._kind_names[self._g._t_kind[self.task_id]]

    @property
    def inputs(self) -> tuple[int, ...]:
        """Flow ids this task consumes."""
        return self._g.task_inputs(self.task_id)

    @inputs.setter
    def inputs(self, value: Iterable[int]) -> None:
        self._g._in_override[self.task_id] = tuple(value)
        self._g._validated = None

    @property
    def outputs(self) -> tuple[int, ...]:
        """Flow ids this task produces, in creation order."""
        return self._g.task_outputs(self.task_id)

    @outputs.setter
    def outputs(self, value: Iterable[int]) -> None:
        self._g._out_override[self.task_id] = tuple(value)
        self._g._validated = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.task_id} {self.kind}@{self.node})"


class FlowSpec:
    """View of one dataflow: ``size`` bytes produced by ``producer``,
    consumed by the tasks in ``consumers``.  A thin proxy over the graph's
    columnar storage."""

    __slots__ = ("_g", "flow_id")

    def __init__(self, graph: "TaskGraph", flow_id: int):
        self._g = graph
        self.flow_id = flow_id

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return self._g._f_size[self.flow_id]

    @property
    def producer(self) -> int:
        """Task id that produces this flow."""
        return self._g._f_prod[self.flow_id]

    @property
    def consumers(self) -> tuple[int, ...]:
        """Consumer task ids, in registration order."""
        return self._g.flow_consumers(self.flow_id)

    @consumers.setter
    def consumers(self, value: Iterable[int]) -> None:
        self._g._cons_override[self.flow_id] = tuple(value)
        self._g._validated = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Flow({self.flow_id}, {self.size}B, {self.producer}->{list(self.consumers)})"


class _SpecMap:
    """Read-only id → view mapping over a graph column (dict-compatible)."""

    __slots__ = ("_g",)

    def __init__(self, graph: "TaskGraph"):
        self._g = graph

    def _count(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _view(self, key: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, key: int):
        if not 0 <= key < self._count():
            raise KeyError(key)
        return self._view(key)

    def __len__(self) -> int:
        return self._count()

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._count()))

    def __contains__(self, key) -> bool:
        return isinstance(key, int) and 0 <= key < self._count()

    def keys(self):
        """Ids, ascending."""
        return range(self._count())

    def values(self):
        """Views, in id order."""
        return (self._view(i) for i in range(self._count()))

    def items(self):
        """``(id, view)`` pairs, in id order."""
        return ((i, self._view(i)) for i in range(self._count()))

    def get(self, key: int, default=None):
        """Dict-style get."""
        if key in self:
            return self._view(key)
        return default


class _TaskMap(_SpecMap):
    __slots__ = ()

    def _count(self) -> int:
        return len(self._g._t_node)

    def _view(self, key: int) -> TaskSpec:
        return TaskSpec(self._g, key)


class _FlowMap(_SpecMap):
    __slots__ = ()

    def _count(self) -> int:
        return len(self._g._f_size)

    def _view(self, key: int) -> FlowSpec:
        return FlowSpec(self._g, key)


class TaskGraph:
    """A complete task graph in columnar storage.

    Build with :meth:`add_task` / :meth:`add_flow` (ids are assigned
    automatically), then :meth:`validate` before execution.  The derived
    adjacency (task outputs, flow consumers) is computed lazily by
    :meth:`freeze` on first use and invalidated by further construction.
    """

    __slots__ = (
        "tasks", "flows",
        "_t_node", "_t_dur", "_t_prio", "_t_kind",
        "_kind_names", "_kind_ids",
        "_in_ptr", "_in_flat",
        "_f_size", "_f_prod",
        "_out_ptr", "_out_flat", "_cons_ptr", "_cons_flat",
        "_in_override", "_out_override", "_cons_override",
        "_frozen", "_validated",
    )

    def __init__(self) -> None:
        #: Dict-like view: task id → :class:`TaskSpec`.
        self.tasks = _TaskMap(self)
        #: Dict-like view: flow id → :class:`FlowSpec`.
        self.flows = _FlowMap(self)
        # Task columns.
        self._t_node = array("q")
        self._t_dur = array("d")
        self._t_prio = array("d")
        self._t_kind = array("i")
        self._kind_names: list[str] = []
        self._kind_ids: dict[str, int] = {}
        # Task-input CSR, appended as tasks arrive (inputs are known then).
        self._in_ptr = array("q", [0])
        self._in_flat = array("q")
        # Flow columns.
        self._f_size = array("q")
        self._f_prod = array("q")
        # Derived CSR (built by freeze()).
        self._out_ptr: Optional[array] = None
        self._out_flat: Optional[array] = None
        self._cons_ptr: Optional[array] = None
        self._cons_flat: Optional[array] = None
        # Wholesale-assignment escape hatches (tests wiring cycles etc.).
        self._in_override: dict[int, tuple] = {}
        self._out_override: dict[int, tuple] = {}
        self._cons_override: dict[int, tuple] = {}
        self._frozen = False
        #: Memo of the last successful validate() arguments, cleared by
        #: construction and by spec-view assignment — lets callers validate
        #: eagerly without the runtime re-paying the Kahn pass.
        self._validated: Optional[tuple] = None

    # -- construction ----------------------------------------------------

    def add_task(
        self,
        node: int,
        duration: float,
        priority: float = 0.0,
        inputs: Iterable[int] = (),
        kind: str = "task",
    ) -> int:
        """Add a task; returns its id.  ``inputs`` are existing flow ids;
        consumer lists of those flows are updated automatically."""
        if duration < 0:
            raise RuntimeBackendError(
                f"task {len(self._t_node)}: negative duration"
            )
        tid = len(self._t_node)
        num_flows = len(self._f_size)
        in_flat = self._in_flat
        n_in = 0
        for fid in inputs:
            if not 0 <= fid < num_flows:
                raise RuntimeBackendError(f"task {tid}: unknown input flow {fid}")
            in_flat.append(fid)
            n_in += 1
        self._in_ptr.append(self._in_ptr[-1] + n_in)
        self._t_node.append(node)
        self._t_dur.append(duration)
        self._t_prio.append(priority)
        kid = self._kind_ids.get(kind)
        if kid is None:
            kid = self._kind_ids[kind] = len(self._kind_names)
            self._kind_names.append(kind)
        self._t_kind.append(kid)
        self._frozen = False
        self._validated = None
        return tid

    def add_flow(self, producer: int, size: int) -> int:
        """Add an output flow to task ``producer``; returns the flow id."""
        if not 0 <= producer < len(self._t_node):
            raise RuntimeBackendError(f"flow producer task {producer} unknown")
        fid = len(self._f_size)
        if size < 0:
            raise RuntimeBackendError(f"flow {fid}: negative size")
        self._f_size.append(size)
        self._f_prod.append(producer)
        self._frozen = False
        self._validated = None
        return fid

    def freeze(self) -> "TaskGraph":
        """Derive the output/consumer CSR adjacency from the build columns.

        Two stable counting sorts: flows sorted by producer give each
        task's outputs in flow-id order; input-CSR positions sorted by flow
        give each flow's consumers in task-id order — exactly the append
        order the old per-object tuples had.  Idempotent; re-run
        automatically after further :meth:`add_task`/:meth:`add_flow`.
        """
        if self._frozen:
            return self
        import numpy as np

        num_tasks = len(self._t_node)
        num_flows = len(self._f_size)
        prod = np.frombuffer(self._f_prod, dtype=np.int64) if num_flows else \
            np.empty(0, dtype=np.int64)
        out_counts = np.bincount(prod, minlength=max(num_tasks, 1))
        out_ptr = np.zeros(num_tasks + 1, dtype=np.int64)
        np.cumsum(out_counts[:num_tasks], out=out_ptr[1:])
        out_flat = np.argsort(prod, kind="stable")
        in_flat = np.frombuffer(self._in_flat, dtype=np.int64) if len(self._in_flat) \
            else np.empty(0, dtype=np.int64)
        in_ptr = np.frombuffer(self._in_ptr, dtype=np.int64)
        owner = np.repeat(np.arange(num_tasks, dtype=np.int64), np.diff(in_ptr))
        order = np.argsort(in_flat, kind="stable")
        cons_flat = owner[order]
        cons_counts = np.bincount(in_flat, minlength=max(num_flows, 1))
        cons_ptr = np.zeros(num_flows + 1, dtype=np.int64)
        np.cumsum(cons_counts[:num_flows], out=cons_ptr[1:])
        # Store as array('q'): indexing yields plain Python ints, so flow
        # ids never leak NumPy scalars into payload dicts or JSON codecs.
        self._out_ptr = _as_q(out_ptr)
        self._out_flat = _as_q(out_flat)
        self._cons_ptr = _as_q(cons_ptr)
        self._cons_flat = _as_q(cons_flat)
        self._frozen = True
        return self

    # -- columnar accessors ----------------------------------------------

    def task_node(self, tid: int) -> int:
        """Node placement of task ``tid``."""
        return self._t_node[tid]

    def task_duration(self, tid: int) -> float:
        """Compute duration of task ``tid``."""
        return self._t_dur[tid]

    def task_priority(self, tid: int) -> float:
        """Scheduling priority of task ``tid``."""
        return self._t_prio[tid]

    def task_kind(self, tid: int) -> str:
        """Kind label of task ``tid``."""
        return self._kind_names[self._t_kind[tid]]

    def task_inputs(self, tid: int) -> tuple[int, ...]:
        """Input flow ids of task ``tid`` (registration order)."""
        override = self._in_override
        if override:
            hit = override.get(tid)
            if hit is not None:
                return hit
        return tuple(self._in_flat[self._in_ptr[tid]:self._in_ptr[tid + 1]])

    def input_count(self, tid: int) -> int:
        """Number of input flows of task ``tid`` (no tuple allocation)."""
        override = self._in_override
        if override:
            hit = override.get(tid)
            if hit is not None:
                return len(hit)
        return self._in_ptr[tid + 1] - self._in_ptr[tid]

    def task_outputs(self, tid: int) -> tuple[int, ...]:
        """Output flow ids of task ``tid`` (creation order)."""
        return tuple(self.outputs_of(tid))

    def outputs_of(self, tid: int):
        """Output flow ids of task ``tid`` as a flat int sequence."""
        override = self._out_override
        if override:
            hit = override.get(tid)
            if hit is not None:
                return hit
        if not self._frozen:
            self.freeze()
        return self._out_flat[self._out_ptr[tid]:self._out_ptr[tid + 1]]

    def flow_size(self, fid: int) -> int:
        """Payload bytes of flow ``fid``."""
        return self._f_size[fid]

    def flow_producer(self, fid: int) -> int:
        """Producer task id of flow ``fid``."""
        return self._f_prod[fid]

    def flow_consumers(self, fid: int) -> tuple[int, ...]:
        """Consumer task ids of flow ``fid`` (registration order)."""
        return tuple(self.consumers_of(fid))

    def consumers_of(self, fid: int):
        """Consumer task ids of flow ``fid`` as a flat int sequence."""
        override = self._cons_override
        if override:
            hit = override.get(fid)
            if hit is not None:
                return hit
        if not self._frozen:
            self.freeze()
        return self._cons_flat[self._cons_ptr[fid]:self._cons_ptr[fid + 1]]

    def task_ids_on(self, node: int) -> list[int]:
        """Ids of the tasks placed on ``node``, ascending."""
        import numpy as np

        if not len(self._t_node):
            return []
        col = np.frombuffer(self._t_node, dtype=np.int64)
        return np.nonzero(col == node)[0].tolist()

    # -- queries ---------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        """Number of tasks in the graph."""
        return len(self._t_node)

    @property
    def num_flows(self) -> int:
        """Number of dataflows in the graph."""
        return len(self._f_size)

    def nodes_used(self) -> set[int]:
        """Set of node ids any task is placed on."""
        return set(self._t_node)

    def source_tasks(self) -> list[int]:
        """Tasks with no inputs — initially ready."""
        return [
            tid for tid in range(len(self._t_node)) if self.input_count(tid) == 0
        ]

    def consumer_nodes(self, flow) -> set[int]:
        """Nodes on which this flow's consumers run (flow id or view)."""
        fid = flow if isinstance(flow, int) else flow.flow_id
        t_node = self._t_node
        return {t_node[tid] for tid in self.consumers_of(fid)}

    def total_remote_bytes(self) -> int:
        """Bytes that must cross the network at least once (one copy per
        remote consumer node, ignoring multicast-tree forwarding)."""
        import numpy as np

        num_flows = len(self._f_size)
        if not num_flows:
            return 0
        if self._cons_override or self._in_override:
            total = 0
            t_node = self._t_node
            for fid in range(num_flows):
                src = t_node[self._f_prod[fid]]
                remote = {n for n in self.consumer_nodes(fid) if n != src}
                total += self._f_size[fid] * len(remote)
            return total
        self.freeze()
        cons_ptr = np.frombuffer(self._cons_ptr, dtype=np.int64)
        cons_flat = np.frombuffer(self._cons_flat, dtype=np.int64) \
            if len(self._cons_flat) else np.empty(0, dtype=np.int64)
        if not len(cons_flat):
            return 0
        t_node = np.frombuffer(self._t_node, dtype=np.int64)
        fid_rep = np.repeat(
            np.arange(num_flows, dtype=np.int64), np.diff(cons_ptr)
        )
        cnode = t_node[cons_flat]
        stride = int(t_node.max()) + 1
        unique = np.unique(fid_rep * stride + cnode)
        ufid, unode = unique // stride, unique % stride
        sizes = np.frombuffer(self._f_size, dtype=np.int64)
        remote = unode != t_node[np.frombuffer(self._f_prod, dtype=np.int64)][ufid]
        return int(sizes[ufid[remote]].sum())

    # -- validation ------------------------------------------------------

    def validate(self, num_nodes: Optional[int] = None) -> None:
        """Check structural invariants; raises RuntimeBackendError.

        A repeat call with the same ``num_nodes`` on an unmodified graph
        is a no-op (structural edits through :meth:`add_task` /
        :meth:`add_flow` or spec-view assignment clear the memo).
        """
        if self._validated == (num_nodes,):
            return
        if not len(self._t_node):
            raise RuntimeBackendError("empty task graph")
        if num_nodes is not None:
            for tid, node in enumerate(self._t_node):
                if not 0 <= node < num_nodes:
                    raise RuntimeBackendError(
                        f"task {tid} placed on node {node} "
                        f"outside [0, {num_nodes})"
                    )
        num_flows = len(self._f_size)
        for tid, inputs in self._in_override.items():
            for fid in inputs:
                if not 0 <= fid < num_flows:
                    raise RuntimeBackendError(
                        f"task {tid}: missing input flow {fid}"
                    )
        if not self.source_tasks():
            raise RuntimeBackendError("task graph has no source tasks (cycle?)")
        self._check_acyclic()
        self._validated = (num_nodes,)

    def _check_acyclic(self) -> None:
        """Kahn's algorithm over the task-dependency relation."""
        num_tasks = len(self._t_node)
        indeg = [self.input_count(tid) for tid in range(num_tasks)]
        ready = [tid for tid in range(num_tasks) if indeg[tid] == 0]
        seen = 0
        while ready:
            tid = ready.pop()
            seen += 1
            for fid in self.outputs_of(tid):
                for consumer in self.consumers_of(fid):
                    d = indeg[consumer] - 1
                    indeg[consumer] = d
                    if d == 0:
                        ready.append(consumer)
        if seen != num_tasks:
            raise RuntimeBackendError(self._cycle_detail(indeg))

    def _cycle_detail(self, indeg: list) -> str:
        """Name the tasks the Kahn pass could not drain (cycle members or
        their downstream closure), so the offending wiring is findable."""
        remaining = [tid for tid, d in enumerate(indeg) if d > 0]
        sample = ", ".join(
            f"task {tid} ({self.task_kind(tid)}@n{self._t_node[tid]}, "
            f"{indeg[tid]} unmet input{'s' if indeg[tid] != 1 else ''})"
            for tid in remaining[:8]
        )
        more = f", and {len(remaining) - 8} more" if len(remaining) > 8 else ""
        return (
            f"task graph has a cycle ({len(remaining)} tasks unreachable): "
            f"{sample}{more}"
        )


def _as_q(np_array) -> array:
    """Copy an int64 NumPy array into a plain ``array('q')``."""
    out = array("q")
    out.frombytes(np_array.tobytes())
    return out
