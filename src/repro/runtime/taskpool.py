"""Distributed task graphs: tasks, dataflows, and validation.

A :class:`TaskGraph` is the static description of a computation the runtime
executes (PaRSEC would generate it from a parameterized task graph; our
workload generators build it explicitly):

- a :class:`TaskSpec` runs on a fixed node for ``duration`` simulated
  seconds once every input flow's data is available on that node;
- a :class:`FlowSpec` is one output datum of a task, consumed by zero or
  more other tasks; consumers on other nodes receive it through the
  ACTIVATE / GET DATA / put protocol of the paper's Fig. 1.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import RuntimeBackendError

__all__ = ["FlowSpec", "TaskSpec", "TaskGraph"]


class FlowSpec:
    """One dataflow: ``size`` bytes produced by ``producer``, consumed by
    the tasks in ``consumers``."""

    __slots__ = ("flow_id", "size", "producer", "_consumers", "_consumers_cache")

    def __init__(self, flow_id: int, size: int, producer: int, consumers: tuple[int, ...]):
        if size < 0:
            raise RuntimeBackendError(f"flow {flow_id}: negative size")
        self.flow_id = flow_id
        self.size = size
        self.producer = producer
        self._consumers = list(consumers)
        self._consumers_cache: Optional[tuple] = None

    @property
    def consumers(self) -> tuple[int, ...]:
        """Consumer task ids, in registration order."""
        cache = self._consumers_cache
        if cache is None:
            cache = self._consumers_cache = tuple(self._consumers)
        return cache

    @consumers.setter
    def consumers(self, value: Iterable[int]) -> None:
        self._consumers = list(value)
        self._consumers_cache = None

    def _append_consumer(self, tid: int) -> None:
        self._consumers.append(tid)
        self._consumers_cache = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Flow({self.flow_id}, {self.size}B, {self.producer}->{list(self.consumers)})"


class TaskSpec:
    """One task: node placement, compute duration, priority, dataflows."""

    __slots__ = (
        "task_id", "node", "duration", "priority", "inputs",
        "_outputs", "_outputs_cache", "kind",
    )

    def __init__(
        self,
        task_id: int,
        node: int,
        duration: float,
        priority: float = 0.0,
        inputs: tuple[int, ...] = (),
        outputs: tuple[int, ...] = (),
        kind: str = "task",
    ):
        if duration < 0:
            raise RuntimeBackendError(f"task {task_id}: negative duration")
        self.task_id = task_id
        self.node = node
        self.duration = duration
        self.priority = priority
        self.inputs = inputs  # flow ids this task consumes
        self._outputs = list(outputs)  # flow ids this task produces
        self._outputs_cache: Optional[tuple] = None
        self.kind = kind

    @property
    def outputs(self) -> tuple[int, ...]:
        """Output flow ids, in creation order."""
        cache = self._outputs_cache
        if cache is None:
            cache = self._outputs_cache = tuple(self._outputs)
        return cache

    @outputs.setter
    def outputs(self, value: Iterable[int]) -> None:
        self._outputs = list(value)
        self._outputs_cache = None

    def _append_output(self, fid: int) -> None:
        self._outputs.append(fid)
        self._outputs_cache = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.task_id} {self.kind}@{self.node})"


class TaskGraph:
    """A complete task graph.

    Build with :meth:`add_task` / :meth:`add_flow` (ids are assigned
    automatically), then :meth:`validate` before execution.
    """

    def __init__(self) -> None:
        self.tasks: dict[int, TaskSpec] = {}
        self.flows: dict[int, FlowSpec] = {}
        self._next_task = 0
        self._next_flow = 0
        #: Memo of the last successful validate() arguments, cleared on
        #: add_task/add_flow — lets callers validate eagerly without the
        #: runtime re-paying the Kahn pass on large graphs.
        self._validated: Optional[tuple] = None

    # -- construction ----------------------------------------------------

    def add_task(
        self,
        node: int,
        duration: float,
        priority: float = 0.0,
        inputs: Iterable[int] = (),
        kind: str = "task",
    ) -> int:
        """Add a task; returns its id.  ``inputs`` are existing flow ids;
        consumer lists of those flows are updated automatically."""
        tid = self._next_task
        self._next_task += 1
        self._validated = None
        inputs = tuple(inputs)
        self.tasks[tid] = TaskSpec(tid, node, duration, priority, inputs, (), kind)
        for fid in inputs:
            flow = self.flows.get(fid)
            if flow is None:
                raise RuntimeBackendError(f"task {tid}: unknown input flow {fid}")
            flow._append_consumer(tid)
        return tid

    def add_flow(self, producer: int, size: int) -> int:
        """Add an output flow to task ``producer``; returns the flow id."""
        task = self.tasks.get(producer)
        if task is None:
            raise RuntimeBackendError(f"flow producer task {producer} unknown")
        fid = self._next_flow
        self._next_flow += 1
        self._validated = None
        self.flows[fid] = FlowSpec(fid, size, producer, ())
        task._append_output(fid)
        return fid

    # -- queries ---------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        """Number of tasks in the graph."""
        return len(self.tasks)

    @property
    def num_flows(self) -> int:
        """Number of dataflows in the graph."""
        return len(self.flows)

    def nodes_used(self) -> set[int]:
        """Set of node ids any task is placed on."""
        return {t.node for t in self.tasks.values()}

    def source_tasks(self) -> list[int]:
        """Tasks with no inputs — initially ready."""
        return [t.task_id for t in self.tasks.values() if not t.inputs]

    def consumer_nodes(self, flow: FlowSpec) -> set[int]:
        """Nodes on which this flow's consumers run."""
        return {self.tasks[tid].node for tid in flow.consumers}

    def total_remote_bytes(self) -> int:
        """Bytes that must cross the network at least once (one copy per
        remote consumer node, ignoring multicast-tree forwarding)."""
        total = 0
        for flow in self.flows.values():
            src = self.tasks[flow.producer].node
            remote = {n for n in self.consumer_nodes(flow) if n != src}
            total += flow.size * len(remote)
        return total

    # -- validation ------------------------------------------------------

    def validate(self, num_nodes: Optional[int] = None) -> None:
        """Check structural invariants; raises RuntimeBackendError.

        A repeat call with the same ``num_nodes`` on an unmodified graph
        is a no-op (structural edits through :meth:`add_task` /
        :meth:`add_flow` clear the memo; direct attribute surgery on
        specs does not, so re-validate explicitly after doing that).
        """
        if self._validated == (num_nodes,):
            return
        if not self.tasks:
            raise RuntimeBackendError("empty task graph")
        for task in self.tasks.values():
            if num_nodes is not None and not 0 <= task.node < num_nodes:
                raise RuntimeBackendError(
                    f"task {task.task_id} placed on node {task.node} "
                    f"outside [0, {num_nodes})"
                )
            for fid in task.inputs:
                if fid not in self.flows:
                    raise RuntimeBackendError(
                        f"task {task.task_id}: missing input flow {fid}"
                    )
        if not self.source_tasks():
            raise RuntimeBackendError("task graph has no source tasks (cycle?)")
        self._check_acyclic()
        self._validated = (num_nodes,)

    def _check_acyclic(self) -> None:
        """Kahn's algorithm over the task-dependency relation."""
        indeg = {tid: len(t.inputs) for tid, t in self.tasks.items()}
        ready = [tid for tid, d in indeg.items() if d == 0]
        seen = 0
        while ready:
            tid = ready.pop()
            seen += 1
            for fid in self.tasks[tid].outputs:
                for consumer in self.flows[fid].consumers:
                    indeg[consumer] -= 1
                    if indeg[consumer] == 0:
                        ready.append(consumer)
        if seen != len(self.tasks):
            raise RuntimeBackendError(self._cycle_detail(indeg))

    def _cycle_detail(self, indeg: dict) -> str:
        """Name the tasks the Kahn pass could not drain (cycle members or
        their downstream closure), so the offending wiring is findable."""
        remaining = [tid for tid, d in indeg.items() if d > 0]
        sample = ", ".join(
            f"task {tid} ({self.tasks[tid].kind}@n{self.tasks[tid].node}, "
            f"{d} unmet input{'s' if d != 1 else ''})"
            for tid, d in ((tid, indeg[tid]) for tid in remaining[:8])
        )
        more = f", and {len(remaining) - 8} more" if len(remaining) > 8 else ""
        return (
            f"task graph has a cycle ({len(remaining)} tasks unreachable): "
            f"{sample}{more}"
        )
