"""The top-level runtime context: platform + backend + task graph → stats.

:class:`ParsecContext` assembles a simulated cluster (fabric, one
communication library instance per node, one :class:`NodeRuntime` per node),
executes a :class:`~repro.runtime.taskpool.TaskGraph`, and returns
:class:`RunStats` with the measurements the paper reports: time-to-solution
and end-to-end communication latency ("from send of the ACTIVATE message to
arrival of data for individual flows", §6.4.2), plus per-message latencies
and traffic counters.

Latency measurement can optionally go through simulated drifting node
clocks synchronized with the Hunold-style algorithm (§6.1.3) instead of the
simulator's global clock, to reproduce the paper's measurement methodology
including its small synchronisation error.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import FaultConfig, PlatformConfig, scaled_platform
from repro.errors import ConfigError, RuntimeBackendError
from repro.faults.engine import FaultEngine, NULL_FAULTS
from repro.lci.device import LciWorld
from repro.mpi.world import MpiWorld
from repro.network.fabric import Fabric
from repro.obs.bus import NULL_BUS, ObsBus
from repro.runtime.lci_backend import LciBackend
from repro.runtime.mpi_backend import MpiBackend
from repro.runtime.node import NodeRuntime
from repro.runtime.taskpool import TaskGraph
from repro.sim.clock import ClockEnsemble
from repro.sim.core import Event, SchedulePolicy, Simulator
from repro.sim.rng import RngStreams

__all__ = ["ParsecContext", "RunStats"]


@dataclass
class RunStats:
    """Measurements from one task-graph execution."""

    backend: str
    num_nodes: int
    workers_per_node: int
    makespan: float = 0.0
    tasks_executed: int = 0
    #: End-to-end latencies: ACTIVATE send at the multicast root → data
    #: arrival, one sample per (flow, destination node).
    flow_latencies: list = field(default_factory=list)
    #: Per-message (single multicast hop) latencies.
    msg_latencies: list = field(default_factory=list)
    activates_sent: int = 0
    activations_aggregated: int = 0
    wire_bytes: int = 0
    events_processed: int = 0
    busy_time_total: float = 0.0
    #: Observability counters summed across nodes (empty when obs is off).
    obs_counters: dict = field(default_factory=dict)

    @property
    def mean_flow_latency(self) -> float:
        """Mean end-to-end (multicast-root → arrival) latency, seconds."""
        return float(np.mean(self.flow_latencies)) if self.flow_latencies else 0.0

    @property
    def mean_msg_latency(self) -> float:
        """Mean single-hop message latency, seconds."""
        return float(np.mean(self.msg_latencies)) if self.msg_latencies else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker-time spent executing tasks."""
        denom = self.makespan * self.workers_per_node * self.num_nodes
        return self.busy_time_total / denom if denom > 0 else 0.0

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"backend={self.backend} nodes={self.num_nodes} "
            f"workers/node={self.workers_per_node}",
            f"  time-to-solution: {self.makespan * 1e3:.3f} ms "
            f"({self.tasks_executed} tasks, utilization {self.worker_utilization:.1%})",
        ]
        if self.flow_latencies:
            lines.append(
                f"  end-to-end latency: mean {self.mean_flow_latency * 1e6:.2f} us "
                f"over {len(self.flow_latencies)} flows"
            )
        return "\n".join(lines)


def _scale_time_costs(costs, factor: float):
    """Scale every float (time) field of a frozen cost dataclass."""
    updates = {
        f.name: getattr(costs, f.name) * factor
        for f in dataclasses.fields(costs)
        if isinstance(getattr(costs, f.name), float)
    }
    return dataclasses.replace(costs, **updates)


class ParsecContext:
    """A simulated PaRSEC job on a simulated cluster."""

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        backend: str = "lci",
        multithreaded_activate: bool = False,
        clock_sync: bool = False,
        seed: int = 0,
        native_put: bool = False,
        num_progress_threads: int = 1,
        num_comm_threads: int = 1,
        collect_traces: bool = False,
        scheduler: str = "central",
        mpi_put_mode: str = "twosided",
        observability: Optional[bool] = None,
        faults: Optional[FaultConfig] = None,
        schedule_policy: Optional[SchedulePolicy] = None,
        partition_role=None,
    ):
        if backend not in ("mpi", "lci"):
            raise RuntimeBackendError(f"unknown backend {backend!r}")
        if native_put and backend != "lci":
            raise RuntimeBackendError("native_put requires the LCI backend")
        if num_progress_threads < 1 or num_comm_threads < 1:
            raise RuntimeBackendError("thread counts must be at least 1")
        self.native_put = native_put
        self.num_progress_threads = num_progress_threads
        self.num_comm_threads = num_comm_threads
        #: Scheduler policy: "central" priority queue or "ws" work stealing.
        self.scheduler = scheduler
        from repro.sim.trace import TraceRecorder

        #: Observability bus shared by every layer (repro.obs).  Defaults to
        #: on iff tracing was requested; the disabled path is a free no-op.
        if observability is None:
            observability = collect_traces
        self.obs = ObsBus() if (observability or collect_traces) else NULL_BUS
        #: Optional per-flow protocol-phase tracing (see analysis.latency) —
        #: a compatibility facade over the bus's in-memory sink.
        self.trace = TraceRecorder(bus=self.obs) if collect_traces else None
        self.platform = platform or scaled_platform()
        self.backend = backend
        self.multithreaded_activate = multithreaded_activate
        #: Partition role for PDES workers (``None`` for serial runs): an
        #: object with ``index``, ``partitions`` and an ``owner`` rank map
        #: (see :class:`repro.sim.partition.PartitionRole`).  The context
        #: builds the *whole* world either way — construction is passive —
        #: but a partition worker loads and threads only its owned nodes.
        self.partition = partition_role
        #: ``schedule_policy`` plugs alternative same-timestamp tie-breaking
        #: into the kernel (see :class:`~repro.sim.core.SchedulePolicy`);
        #: ``None`` keeps the default bit-identical FIFO fast path.
        if partition_role is not None:
            if faults is not None and faults.enabled:
                raise ConfigError(
                    "fault injection is not supported in partitioned runs "
                    "(the fault RNG is consumed in global send order, which "
                    "no partition worker observes); set partitions=None or "
                    "disable the fault plan"
                )
            from repro.sim.partition import PartitionSimulator

            self.sim = PartitionSimulator(obs=self.obs, policy=schedule_policy)
        else:
            self.sim = Simulator(obs=self.obs, policy=schedule_policy)
        self.obs.bind_clock(self.sim)
        self.rng = RngStreams(seed)
        n = self.platform.num_nodes
        #: Fault-injection engine (NULL_FAULTS unless a plan is passed);
        #: the fabric routes wire traffic through its reliable transport.
        if faults is not None and faults.enabled:
            self.faults = FaultEngine(faults, sim=self.sim, rng=self.rng, obs=self.obs)
        else:
            self.faults = NULL_FAULTS
        if partition_role is not None:
            from repro.network.fabric import PartitionFabric

            self.fabric = PartitionFabric(
                self.sim,
                n,
                self.platform.network,
                faults=self.faults,
                owner=partition_role.owner,
                local_partition=partition_role.index,
            )
        else:
            self.fabric = Fabric(
                self.sim, n, self.platform.network, faults=self.faults
            )
        penalty = (
            1.0
            if self.platform.dedicated_comm_cores
            else self.platform.runtime.floating_thread_penalty
        )
        backoff = None
        if self.faults.enabled:
            # Fault runs swap the fixed 0.5 us backend retry backoff for an
            # exponential, capped, jittered schedule from the plan.
            fc = self.faults.cfg
            from repro.runtime.comm_engine import BackoffPolicy

            backoff = BackoffPolicy(
                base=0.5e-6,
                factor=fc.retry_backoff_factor,
                max_delay=fc.retry_max_delay,
                jitter=fc.retry_jitter,
                rng=self.rng.get("faults.backend_backoff"),
            )
        if backend == "mpi":
            mpi_costs = _scale_time_costs(self.platform.mpi, penalty)
            self.mpi_world = MpiWorld(
                self.sim, self.fabric, mpi_costs, allow_overtaking=True
            )
            self.engines = [
                MpiBackend(
                    self.sim,
                    self.mpi_world.ranks[r],
                    self.platform.runtime,
                    put_mode=mpi_put_mode,
                    backoff=backoff,
                )
                for r in range(n)
            ]
            self.has_progress_thread = False
        else:
            lci_costs = _scale_time_costs(self.platform.lci, penalty)
            self.lci_world = LciWorld(self.sim, self.fabric, lci_costs)
            self.engines = [
                LciBackend(
                    self.sim,
                    self.lci_world.devices[r],
                    self.platform.runtime,
                    native_put=native_put,
                    backoff=backoff,
                )
                for r in range(n)
            ]
            self.has_progress_thread = True
            self.faults.schedule_pool_spikes(self.lci_world)
        self.faults.bind_stop(lambda: self.stopped)
        self.nodes = [NodeRuntime(self, r) for r in range(n)]
        # Measurement clocks (§6.1.3 methodology), optional.
        self.clock_sync = clock_sync
        if clock_sync:
            self.clocks = ClockEnsemble(n, rng=self.rng.get("clocks"))
            rtt = 2 * self.fabric.base_latency(0, min(1, n - 1)) if n > 1 else 1e-6
            self.clocks.synchronize(0.0, max(rtt, 1e-6), rng=self.rng.get("clocksync"))
        else:
            self.clocks = None
        # Run state.
        self.stop_event = Event(self.sim)
        self.stopped = False
        self._total_tasks = 0
        self._executed = 0
        self._makespan = 0.0
        self._last_task_t = 0.0
        self._guards = None
        self.stats_activates = 0
        self.stats_aggregated = 0
        self.stats_activate_flows = 0
        # Partition workers time-tag latency samples so the coordinator can
        # merge all partitions' lists back into the serial kernel's append
        # order (stable merge by time, worker index breaking cross-partition
        # ties); serial runs keep plain floats.
        self._timed_lat = partition_role is not None
        self._flow_lat: list = []
        self._msg_lat: list = []

    # -- measurement hooks ------------------------------------------------

    def record_flow_latency(self, fid: int, node: int, root: int, true_latency: float) -> None:
        """Record one end-to-end latency sample (via synced clocks if on)."""
        if self.clocks is not None:
            # Reproduce the paper's measurement path: timestamps come from
            # drifting local clocks corrected by the estimated offsets.
            now = self.sim.now
            t_arr = self.clocks.corrected(node, self.clocks.local(node, now))
            t_snd = self.clocks.corrected(root, self.clocks.local(root, now - true_latency))
            sample = t_arr - t_snd
        else:
            sample = true_latency
        if self._timed_lat:
            self._flow_lat.append((self.sim.now, sample))
        else:
            self._flow_lat.append(sample)

    def record_msg_latency(self, latency: float) -> None:
        """Record one per-hop message latency sample."""
        if self._timed_lat:
            self._msg_lat.append((self.sim.now, latency))
        else:
            self._msg_lat.append(latency)

    def on_task_done(self, task) -> None:
        """Count a task completion; stops the run when all have executed."""
        self._executed += 1
        self._last_task_t = self.sim.now
        if self._executed >= self._total_tasks:
            self._makespan = self.sim.now
            self.stopped = True
            self.stop_event.succeed()

    # -- execution ----------------------------------------------------------

    def _partial_stats(self, workers: int) -> RunStats:
        """Measurements salvaged from a run aborted mid-flight (guards).

        ``makespan`` is the simulated clock at the abort — a lower bound on
        the true time-to-solution, clearly partial because
        ``tasks_executed < graph.num_tasks``.
        """
        return RunStats(
            backend=self.backend,
            num_nodes=self.platform.num_nodes,
            workers_per_node=workers,
            makespan=self.sim.now,
            tasks_executed=self._executed,
            flow_latencies=list(self._flow_lat),
            msg_latencies=list(self._msg_lat),
            activates_sent=self.stats_activates,
            activations_aggregated=self.stats_aggregated,
            wire_bytes=self.fabric.total_bytes(),
            events_processed=self.sim.events_processed,
            busy_time_total=sum(nd.busy_time for nd in self.nodes),
            obs_counters=self.obs.counter_totals(),
        )

    # -- partitioned execution (driven by repro.sim.partition) --------------

    def _owned_nodes(self):
        role = self.partition
        return [nd for nd in self.nodes if role.owner[nd.rank] == role.index]

    def partition_prepare(self, graph: TaskGraph, guards=None) -> int:
        """Load and thread this partition's nodes; returns workers/node.

        The window loop itself is driven by the partition worker (see
        :mod:`repro.sim.partition`) — this context never calls
        ``sim.run()`` on its own in partitioned mode.  ``guards`` install
        exactly as in :meth:`run` and enforce *per-worker* budgets.
        """
        if self.partition is None:
            raise RuntimeBackendError(
                "partition_prepare requires a partition_role"
            )
        n = self.platform.num_nodes
        graph.validate(num_nodes=n)
        self._total_tasks = graph.num_tasks
        workers = self.platform.workers_for(self.backend, multinode=n > 1)
        owned = self._owned_nodes()
        for node in owned:
            node.load(graph, workers)
        for node in owned:
            node.start_threads(workers)
        if guards is not None and guards.enabled:
            guards.install(self)
            self._guards = guards
        return workers

    def partition_check_threads(self) -> None:
        """Raise if any owned worker/comm thread died with an exception.

        A crashed thread looks like premature quiescence from the window
        loop; the driver calls this whenever the local heap goes idle so
        the real exception surfaces instead of a coordinator-side
        task-count mismatch.
        """
        for node in self._owned_nodes():
            for proc in node._threads + node._workers:
                if proc.triggered and not proc.ok:
                    raise RuntimeBackendError(
                        f"thread {proc.name} died: {proc.value!r}"
                    ) from proc.value

    def partition_fragment(self, workers: int) -> dict:
        """Picklable per-partition stats fragment for coordinator merge.

        Latency lists carry ``(time, value)`` pairs (see ``_timed_lat``);
        ``busy`` is per-owned-rank so the coordinator can sum in global
        rank order, reproducing the serial kernel's float-addition order.
        """
        role = self.partition
        return {
            "partition": role.index,
            "workers": workers,
            "executed": self._executed,
            "last_task_t": self._last_task_t,
            "flow_lat": list(self._flow_lat),
            "msg_lat": list(self._msg_lat),
            "activates": self.stats_activates,
            "aggregated": self.stats_aggregated,
            "activate_flows": self.stats_activate_flows,
            "wire_bytes": self.fabric.total_bytes(),
            "events": self.sim.events_processed,
            "busy": {
                nd.rank: nd.busy_time for nd in self._owned_nodes()
            },
            "counters": self.obs.counter_totals(),
        }

    def partition_finalize(self, workers: int) -> dict:
        """Stop owned threads, drain the heap, and build the fragment."""
        if self._guards is not None:
            self._guards.finish()
            self._guards = None
        if not self.stopped and any(
            nd.rank == 0 for nd in self._owned_nodes()
        ):
            # Multi-partition runs detect global completion on the
            # coordinator, so no single worker ever sees
            # ``_executed >= _total_tasks``.  Retire the run-wide stop
            # event here — in the rank-0 partition, exactly once — so
            # the fleet processes the same kernel event set as the
            # serial engine: one stop dispatch plus one wake-or-
            # interrupt resume per parked thread.
            self.stopped = True
            self.stop_event.succeed()
            self.sim.run()
        for node in self._owned_nodes():
            node.stop_threads()
        self.sim.run()  # drain remaining events (thread interrupts etc.)
        return self.partition_fragment(workers)

    def run(
        self,
        graph: TaskGraph,
        until: Optional[float] = None,
        progress=None,
        guards=None,
    ) -> RunStats:
        """Execute ``graph`` to completion and return the statistics.

        ``progress`` installs run-progress heartbeats for the duration of
        the run: pass a :class:`~repro.obs.progress.ProgressReporter`, or
        ``True`` for one with defaults (bus-only, 1 s cadence).  The
        reporter is observational — it cannot change the schedule.

        ``guards`` (a :class:`~repro.supervise.guards.RunGuards`) enforces
        hard budgets — wall-clock deadline, kernel event count, memory
        ceiling, no-progress window — from the same run-loop tick.  On a
        violation the structured :class:`~repro.errors.RunBudgetExceeded`
        / :class:`~repro.errors.NoProgressError` carries a diagnostic
        snapshot plus salvaged partial :class:`RunStats` (``exc.partial``)
        for whatever the run completed before the abort.
        """
        if self.partition is not None:
            raise RuntimeBackendError(
                "a partitioned context is driven through partition_prepare/"
                "partition_finalize by repro.sim.partition, not run()"
            )
        n = self.platform.num_nodes
        graph.validate(num_nodes=n)
        self._total_tasks = graph.num_tasks
        workers = self.platform.workers_for(self.backend, multinode=n > 1)
        for node in self.nodes:
            node.load(graph, workers)
        for node in self.nodes:
            node.start_threads(workers)
        if progress is not None and progress is not False:
            if progress is True:
                from repro.obs.progress import ProgressReporter

                progress = ProgressReporter()
            progress.install(self)
        else:
            progress = None
        # Guards install after progress so they chain (not clobber) its tick.
        if guards is not None and guards.enabled:
            guards.install(self)
        else:
            guards = None
        try:
            self.sim.run(until=until)
        except Exception as exc:
            from repro.errors import SupervisionError

            if isinstance(exc, SupervisionError):
                # Salvage what the aborted run did complete: both kernels
                # guarantee a raising tick leaves the run loop consistent,
                # so the partial stats are well-defined measurements.
                exc.partial = self._partial_stats(workers)
            raise
        finally:
            if guards is not None:
                guards.finish()
            if progress is not None:
                progress.finish()
        if not self.stopped:
            # A crashed comm/progress/worker thread looks like a deadlock
            # from the outside — surface its exception instead.
            for node in self.nodes:
                for proc in node._threads + node._workers:
                    if proc.triggered and not proc.ok:
                        raise RuntimeBackendError(
                            f"thread {proc.name} died: {proc.value!r}"
                        ) from proc.value
            raise RuntimeBackendError(
                f"run did not complete: {self._executed}/{self._total_tasks} "
                f"tasks executed by t={self.sim.now:.6f}s "
                f"(deadlock or insufficient `until`)"
            )
        for node in self.nodes:
            node.stop_threads()
        self.faults.quiesce()  # stop injector chains so the heap drains
        self.sim.run()  # drain remaining events
        return RunStats(
            backend=self.backend,
            num_nodes=n,
            workers_per_node=workers,
            makespan=self._makespan,
            tasks_executed=self._executed,
            flow_latencies=self._flow_lat,
            msg_latencies=self._msg_lat,
            activates_sent=self.stats_activates,
            activations_aggregated=self.stats_aggregated,
            wire_bytes=self.fabric.total_bytes(),
            events_processed=self.sim.events_processed,
            busy_time_total=sum(nd.busy_time for nd in self.nodes),
            obs_counters=self.obs.counter_totals(),
        )
