"""Per-node runtime: workers, scheduler, and the communication thread.

Implements the execution semantics of §4.1/§4.3 and Fig. 1:

- worker threads pop ready tasks from a priority scheduler and execute them;
- on completion, each output dataflow is released: local consumers are
  satisfied directly; remote consumer nodes are organised into a binomial
  **multicast tree** and ACTIVATE messages are sent to the tree children
  (by the communication thread, aggregated per destination — or directly by
  the worker when communication multithreading is enabled, §6.4.3);
- an ACTIVATE callback evaluates successor priorities and enqueues GET DATA
  requests, which the comm thread sends in priority order (deferred
  GET DATA queue, §4.3);
- a GET DATA callback starts a put of the flow's data back to the
  requester (the backend may defer it);
- when put data arrives, the flow becomes available: local consumers'
  dependence counts drop, newly ready tasks enter the scheduler, and the
  ACTIVATE/GET/put cascade continues down the multicast tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import RuntimeBackendError
from repro.runtime.comm_engine import TAG_ACTIVATE, TAG_GETDATA, TAG_PUT_COMPLETE
from repro.runtime.scheduler import make_scheduler
from repro.runtime.taskpool import TaskGraph
from repro.sim.core import Interrupt, PARK
from repro.sim.primitives import NotifyQueue, PriorityStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import ParsecContext

__all__ = ["NodeRuntime", "binomial_tree"]


def binomial_tree(nodes: list[int]) -> tuple:
    """Binomial broadcast tree over ``nodes`` (``nodes[0]`` is the root).

    Returns a nested spec ``(node, (child_spec, ...))``.  A binomial tree
    completes a broadcast in ⌈log₂ n⌉ rounds, which is what PaRSEC's
    dataflow multicast uses.
    """
    if not nodes:
        raise RuntimeBackendError("empty multicast tree")

    def subtree(lo: int, hi: int) -> tuple:
        children = []
        span = 1
        while lo + span < hi:
            children.append(subtree(lo + span, min(lo + 2 * span, hi)))
            span *= 2
        return (nodes[lo], tuple(children))

    return subtree(0, len(nodes))


class _FlowState:
    """Remote-flow bookkeeping at one node (created on ACTIVATE receipt)."""

    __slots__ = ("size", "holder", "priority", "subtree", "root_t", "hop_t", "root")

    def __init__(self, size, holder, priority, subtree, root_t, hop_t, root):
        self.size = size
        self.holder = holder
        self.priority = priority
        self.subtree = subtree
        self.root_t = root_t
        self.hop_t = hop_t
        self.root = root


class NodeRuntime:
    """One node of the simulated AMT runtime."""

    def __init__(self, ctx: "ParsecContext", rank: int):
        self.ctx = ctx
        self.sim = ctx.sim
        self.rank = rank
        self.rt = ctx.platform.runtime
        self.engine = ctx.engines[rank]
        self.sched = None  # created in load() once the worker count is known
        #: Commands from workers to the comm thread: ("activate", dst, ad).
        self.cmd_q = NotifyQueue(self.sim)
        #: Deferred GET DATA queue, highest priority first (§4.3 duty 3).
        self.getdata_q = PriorityStore(self.sim)
        # Dataflow state.  All four maps are reference-counted per flow and
        # emptied as soon as every local consumer and multicast serve has
        # happened, so live protocol state is bounded by in-flight flows,
        # not total flows (paper-scale graphs have ~585k of the latter).
        self.flow_available: set[int] = set()
        self.flow_states: dict[int, _FlowState] = {}
        self.input_remaining: dict[int, int] = {}
        self.serves_remaining: dict[int, int] = {}
        #: Outstanding obligations per available flow: one per unsatisfied
        #: local consumer plus one per multicast child still to be served.
        self.flow_refs: dict[int, int] = {}
        #: Flows fully consumed and dropped from the maps above.
        self.flows_retired = 0
        self.cleanups_done = 0
        self.tasks_executed = 0
        self.busy_time = 0.0
        self._workers: list = []
        self._threads: list = []
        # Register the runtime's active messages (§4.1) + put completion.
        self.engine.tag_reg(TAG_ACTIVATE, self._activate_cb, max_len=self.engine.am_payload_max())
        self.engine.tag_reg(TAG_GETDATA, self._getdata_cb, max_len=4096)
        self.engine.tag_reg(TAG_PUT_COMPLETE, self._put_complete_cb, max_len=4096)

    # ------------------------------------------------------------------
    # graph loading
    # ------------------------------------------------------------------

    def load(self, graph: TaskGraph, num_workers: int) -> None:
        """Bind a task graph: build the scheduler, seed source tasks."""
        self.graph = graph.freeze()
        # Column handles for the hot paths (plain arrays: int/float reads).
        self._t_node = graph._t_node
        self._t_dur = graph._t_dur
        self._t_prio = graph._t_prio
        self.sched = make_scheduler(
            getattr(self.ctx, "scheduler", "central"), self.sim, num_workers
        )
        prio = self._t_prio
        for tid in graph.task_ids_on(self.rank):
            n_in = graph.input_count(tid)
            self.input_remaining[tid] = n_in
            if not n_in:
                self.sched.push(-prio[tid], tid)

    # ------------------------------------------------------------------
    # threads
    # ------------------------------------------------------------------

    def start_threads(self, num_workers: int) -> None:
        """Spawn worker, communication, and (LCI) progress threads."""
        for wid in range(num_workers):
            self._workers.append(
                self.sim.process(self._worker(wid), name=f"n{self.rank}w{wid}")
            )
        # §7 future work: "multiple communication or progress threads to
        # further reduce communication latency in highly-loaded scenarios".
        # Only the first comm thread runs the one-time engine start.
        # Comm/progress threads idle via ``yield PARK`` (no per-wait event
        # allocation); each generator learns its own Process through a
        # one-slot holder filled right after spawning, and the run-wide
        # stop event wakes parked threads so they can observe the stop flag.
        for ci in range(getattr(self.ctx, "num_comm_threads", 1)):
            holder: list = []
            proc = self.sim.process(
                self._comm_thread(holder, run_start=ci == 0),
                name=f"n{self.rank}comm{ci}",
            )
            holder.append(proc)
            self.ctx.stop_event.add_callback(lambda _evt, p=proc: p.wake())
            self._threads.append(proc)
        if self.ctx.has_progress_thread:
            for pi in range(getattr(self.ctx, "num_progress_threads", 1)):
                holder = []
                proc = self.sim.process(
                    self._progress_thread(holder), name=f"n{self.rank}prog{pi}"
                )
                holder.append(proc)
                self.ctx.stop_event.add_callback(lambda _evt, p=proc: p.wake())
                self._threads.append(proc)

    def stop_threads(self) -> None:
        """Interrupt every thread (end of run)."""
        for proc in self._workers + self._threads:
            proc.interrupt("shutdown")

    # ------------------------------------------------------------------
    # worker threads
    # ------------------------------------------------------------------

    def _worker(self, wid: int) -> Generator:
        rt = self.rt
        obs = self.ctx.obs
        faults = self.ctx.faults
        durations = self._t_dur
        try:
            while True:
                tid: int = yield from self.sched.pop(wid)
                start = self.sim.now
                yield rt.sched_op + rt.task_spawn
                duration = durations[tid]
                if duration > 0:
                    if faults.enabled:
                        # Straggler injection stretches this node's compute.
                        yield duration * faults.compute_scale(self.rank)
                    else:
                        yield duration
                self.busy_time += self.sim.now - start
                if obs.enabled:
                    obs.emit(
                        "task_exec",
                        self.rank,
                        key=(self.rank, wid),
                        info=(self.graph.task_kind(tid), self.sim.now - start),
                        time=start,
                    )
                yield from self._complete_task(tid, wid)
        except Interrupt:
            return

    def _complete_task(self, tid: int, wid: Optional[int] = None) -> Generator:
        self.tasks_executed += 1
        # The hook's contract passes a spec view (wrappers read .kind etc.);
        # views are two-slot proxies, so this stays allocation-cheap.
        self.ctx.on_task_done(self.graph.tasks[tid])
        for fid in self.graph.outputs_of(tid):
            yield self.rt.sched_op
            yield from self._release_flow(fid, initial=True, origin=wid)

    def _release_flow(
        self, fid: int, initial: bool, origin: Optional[int] = None
    ) -> Generator:
        """Data for ``fid`` is now available here: satisfy local consumers
        and activate the multicast subtree.

        The flow is tracked with a reference count — one per local
        consumer, one per multicast child to serve — and every map entry
        for it is dropped the moment the count drains, so a node's live
        protocol state scales with in-flight flows only."""
        graph = self.graph
        rank = self.rank
        t_node = self._t_node
        consumers = graph.consumers_of(fid)
        local = [tid for tid in consumers if t_node[tid] == rank]
        if initial:
            # Producer: build the multicast tree over remote consumer nodes.
            remote = sorted({t_node[tid] for tid in consumers} - {rank})
            children = binomial_tree([rank] + remote)[1] if remote else ()
            state = None
        else:
            state = self.flow_states.get(fid)
            children = state.subtree[1] if state is not None else ()
        refs = len(local) + len(children)
        if not refs:
            # Nothing at this node will ever read the flow again.
            self.flow_states.pop(fid, None)
            self.flows_retired += 1
            return
        self.flow_available.add(fid)
        self.flow_refs[fid] = refs
        # Local consumers (released to the originating worker's queue when
        # the work-stealing scheduler is active — data affinity).
        for tid in local:
            self._satisfy_input(tid, origin)
            self._unref_flow(fid)
        if not children:
            return
        self.serves_remaining[fid] = len(children)
        prio = max(
            (self._t_prio[tid] for tid in consumers), default=0.0
        )
        flow_size = graph.flow_size(fid)
        for child in children:
            # Latency stamps are taken when the activation is handed to the
            # communication layer ("send of the ACTIVATE message following
            # task completion", §6.4.2) — comm-thread queueing and
            # aggregation delay count toward the measured latency, which is
            # exactly what multithreaded ACTIVATE sending eliminates.
            now = self.sim.now
            ad = {
                "flow": fid,
                "size": flow_size,
                "holder": self.rank,
                "sub": child,
                "prio": prio,
                "root": state.root if state is not None else self.rank,
                "root_t": state.root_t if state is not None else now,
                "hop_t": now,
            }
            if self.ctx.obs.enabled:
                self.ctx.obs.emit(
                    "activate_handoff", self.rank, key=(fid, child[0]), time=now
                )
            yield from self._emit_activate(child[0], ad)

    def _emit_activate(self, dst: int, ad: dict) -> Generator:
        if self.ctx.multithreaded_activate:
            # Workers send their own ACTIVATEs (§6.4.3): no aggregation,
            # possible library contention, but no comm-thread queueing delay.
            yield self.rt.activate_pack_per_flow
            size = 64 + self.rt.activate_bytes_per_flow
            yield from self.engine.send_am(TAG_ACTIVATE, dst, [ad], size)
            self.ctx.stats_activates += 1
        else:
            self.cmd_q.push(("activate", dst, ad))

    def _satisfy_input(self, tid: int, origin: Optional[int] = None) -> None:
        remaining = self.input_remaining[tid] - 1
        self.input_remaining[tid] = remaining
        if remaining == 0:
            self.sched.push(-self._t_prio[tid], tid, origin)
        elif remaining < 0:
            raise RuntimeBackendError(
                f"task {tid}: dependence count went negative"
            )

    def _unref_flow(self, fid: int) -> None:
        """Drop one obligation on ``fid``; retire all its state at zero."""
        refs = self.flow_refs.get(fid)
        if refs is None:
            return
        refs -= 1
        if refs:
            self.flow_refs[fid] = refs
        else:
            del self.flow_refs[fid]
            self.flow_available.discard(fid)
            self.flow_states.pop(fid, None)
            self.flows_retired += 1

    def quiescence_report(self) -> dict:
        """Depths of the per-flow protocol maps (all zero after a fully
        drained run) plus the running retire counter."""
        return {
            "flow_available": len(self.flow_available),
            "flow_refs": len(self.flow_refs),
            "flow_states": len(self.flow_states),
            "serves_remaining": len(self.serves_remaining),
            "getdata_q": len(self.getdata_q),
            "flows_retired": self.flows_retired,
        }

    # ------------------------------------------------------------------
    # communication thread (§4.3)
    # ------------------------------------------------------------------

    def _comm_thread(self, me: list, run_start: bool = True) -> Generator:
        engine = self.engine
        rt = self.rt
        max_batch = max(
            1, (engine.am_payload_max() - 64) // rt.activate_bytes_per_flow
        )
        try:
            if run_start:
                yield from engine.start()
            while True:
                worked = 0
                # (1) Aggregate ACTIVATE commands per destination.
                by_dst: dict[int, list[dict]] = {}
                while True:
                    ok, cmd = self.cmd_q.try_pop()
                    if not ok:
                        break
                    _kind, dst, ad = cmd
                    by_dst.setdefault(dst, []).append(ad)
                for dst, ads in by_dst.items():
                    for i in range(0, len(ads), max_batch):
                        batch = ads[i : i + max_batch]
                        yield rt.activate_pack_per_flow * len(batch)
                        size = 64 + rt.activate_bytes_per_flow * len(batch)
                        yield from engine.send_am(TAG_ACTIVATE, dst, batch, size)
                        self.ctx.stats_activates += 1
                        if len(batch) > 1:
                            self.ctx.stats_aggregated += len(batch) - 1
                        worked += 1
                # (2) Poll the engine progress function.
                worked += yield from engine.progress()
                # (3) Send deferred GET DATA messages in priority order.
                while True:
                    ok, item = self.getdata_q.try_get()
                    if not ok:
                        break
                    fid, holder = item
                    yield from engine.send_am(
                        TAG_GETDATA,
                        holder,
                        {"flow": fid},
                        self.rt.getdata_bytes,
                    )
                    worked += 1
                # (4) Deferred puts are promoted inside engine.progress().
                if worked == 0:
                    if self.ctx.stopped:
                        return
                    # Idle: park until a command arrives, the engine has
                    # work, or the stop event wakes us.  Both park()
                    # registrations are kept (deduplicated) across cycles;
                    # spurious wakes just re-run the drain loop above.
                    proc = me[0]
                    if self.cmd_q.park(proc) and engine.park(proc):
                        yield PARK
                    if self.ctx.stopped:
                        return
        except Interrupt:
            return

    def _progress_thread(self, me: list) -> Generator:
        """LCI progress thread (§5.3.1): drives LCI_progress exclusively."""
        device = self.engine.device
        try:
            while True:
                n = yield from device.progress()
                if n == 0:
                    if self.ctx.stopped:
                        return
                    if device.park(me[0]):
                        yield PARK
                    if self.ctx.stopped:
                        return
        except Interrupt:
            return

    # ------------------------------------------------------------------
    # active-message callbacks (run on the comm thread via the engine)
    # ------------------------------------------------------------------

    def _activate_cb(self, engine, tag, msg, size, src, cb_data) -> Generator:
        """Unpack aggregated activations, walk local descendants, enqueue
        GET DATA requests (the "long callback" of §4.3)."""
        for ad in msg:
            yield self.rt.activate_unpack_per_flow
            fid = ad["flow"]
            if self.ctx.obs.enabled:
                self.ctx.obs.emit("activate_cb", self.rank, key=(fid, self.rank))
            state = _FlowState(
                ad["size"], ad["holder"], ad["prio"], ad["sub"],
                ad["root_t"], ad["hop_t"], ad["root"],
            )
            self.flow_states[fid] = state
            # Priority decides when the GET DATA goes out (§4.1); the comm
            # thread drains this queue highest-priority-first.
            self.getdata_q.try_put((-state.priority, (fid, state.holder)))
        self.ctx.stats_activate_flows += len(msg)

    def _getdata_cb(self, engine, tag, msg, size, src, cb_data) -> Generator:
        """Serve a GET DATA: put the flow's data back to the requester."""
        yield self.rt.getdata_handle
        fid = msg["flow"]
        if self.ctx.obs.enabled:
            self.ctx.obs.emit("getdata_cb", self.rank, key=(fid, src))
        if fid not in self.flow_available:
            raise RuntimeBackendError(
                f"node {self.rank}: GET DATA for flow {fid} before data ready"
            )
        yield from engine.put(
            data=("flowdata", fid),
            size=self.graph.flow_size(fid),
            remote=src,
            l_cb=self._put_local_cb,
            r_cb_data={"flow": fid},
            l_cb_data=fid,
        )

    def _put_local_cb(self, engine, fid) -> Generator:
        """Origin-side put completion: cleanup bookkeeping (Fig. 1).

        Each completed serve releases one reference on the flow, so a
        fully-served, fully-consumed flow vanishes from every map here."""
        remaining = self.serves_remaining.get(fid)
        if remaining is not None:
            remaining -= 1
            if remaining == 0:
                del self.serves_remaining[fid]
                self.cleanups_done += 1
            else:
                self.serves_remaining[fid] = remaining
            self._unref_flow(fid)
        return
        yield  # pragma: no cover - generator shape

    def _put_complete_cb(self, engine, tag, msg, size, src, cb_data) -> Generator:
        """Target-side put completion: data arrived for a flow."""
        yield self.rt.callback_exec
        fid = msg["r_cb_data"]["flow"]
        state = self.flow_states.get(fid)
        if state is None:
            raise RuntimeBackendError(
                f"node {self.rank}: put completion for unknown flow {fid}"
            )
        now = self.sim.now
        if self.ctx.obs.enabled:
            self.ctx.obs.emit("data_arrival", self.rank, key=(fid, self.rank), time=now)
        if state.root_t is not None:
            self.ctx.record_flow_latency(fid, self.rank, state.root, now - state.root_t)
        if state.hop_t is not None:
            self.ctx.record_msg_latency(now - state.hop_t)
        yield from self._release_flow(fid, initial=False)
