"""The MPI backend for the PaRSEC communication engine (paper §4.2).

Faithful to the described design:

- **Active messages** (§4.2.1): five persistent ``MPI_ANY_SOURCE`` receives
  per registered tag, re-enabled after each callback; ``send_am`` is a
  blocking eager ``MPI_Send``.
- **Data transport** (§4.2.2): puts are emulated with two-sided
  communication plus a handshake active message carrying the data tag, the
  size, and the remote completion callback data.  At most
  ``mpi_max_transfers`` (30) transfers are *polled* concurrently; overflow
  sends are deferred, overflow receives are posted from a dynamic pool but
  only polled once promoted into the global array, both promoted in FIFO
  order.
- **Progress** (§4.2.3): ``MPI_Testsome`` over the global array of
  ``5 × N_am + 30`` requests; completion callbacks run *inline on the
  polling thread* (the comm thread), so a long ACTIVATE callback blocks all
  further matching — the bottleneck §4.3 describes and §5 removes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.config import RuntimeCosts
from repro.errors import RuntimeBackendError
from repro.mpi.requests import PersistentRecvRequest, Request
from repro.mpi.world import ANY_SOURCE, MpiRank
from repro.runtime.comm_engine import (
    BackoffPolicy,
    CommEngine,
    OnesidedCallback,
    TAG_PUT_COMPLETE,
    next_data_tag,
)
from repro.sim.core import Event, Process, Simulator

__all__ = ["MpiBackend"]

#: Internal AM tag for put handshakes (never visible to the runtime).
_TAG_PUT_HS = 0
#: Internal AM tags for the RMA put mode (§4.2.2's unexplored alternative):
#: target→origin "window attached, go ahead" and origin→target completion
#: notification (standard MPI RMA has no remote notification).
_TAG_RMA_READY = 98
_TAG_RMA_NOTIFY = 99


class _AmSlot:
    """One persistent-receive slot of the global array."""

    __slots__ = ("tag", "preq")

    def __init__(self, tag: int, preq: PersistentRecvRequest):
        self.tag = tag
        self.preq = preq


class _Transfer:
    """One data send or receive being polled in the global array."""

    __slots__ = ("kind", "req", "cb", "cb_data", "size", "peer")

    def __init__(self, kind: str, req: Request, cb, cb_data: Any, size: int, peer: int):
        self.kind = kind  # "send" | "recv"
        self.req = req
        self.cb = cb
        self.cb_data = cb_data
        self.size = size
        self.peer = peer


class MpiBackend(CommEngine):
    """Listing-1 engine implemented over the simulated MPI library."""

    def __init__(
        self,
        sim: Simulator,
        rank: MpiRank,
        rt_costs: Optional[RuntimeCosts] = None,
        put_mode: str = "twosided",
        backoff: Optional[BackoffPolicy] = None,
    ):
        super().__init__(sim, rank.rank, backoff=backoff)
        if put_mode not in ("twosided", "rma"):
            raise RuntimeBackendError(f"unknown put mode {put_mode!r}")
        self.rank = rank
        self.rt = rt_costs or RuntimeCosts()
        #: "twosided" emulates puts with a handshake + send (the backend the
        #: paper ships); "rma" uses MPI dynamic-window RMA (the alternative
        #: §4.2.2 leaves unexplored because attach/detach and the missing
        #: remote-completion notification are known liabilities).
        self.put_mode = put_mode
        self._am_slots: list[_AmSlot] = []
        self._transfers: list[_Transfer] = []
        #: FIFO of deferred work: ("send", ...) entries wait for array space
        #: before even posting; ("recv", transfer) entries are already-posted
        #: dynamic receives waiting to be *polled*.
        self._deferred: deque[tuple] = deque()
        self._started = False
        self._pending_tags: list[tuple[int, int]] = []
        #: RMA-mode state: puts waiting for the target's window attach.
        self._rma_pending: dict[int, tuple] = {}
        #: §4.2.2 deferrals: transfers parked for lack of global-array space.
        self._c_deferred = self.obs.counter("parsec.mpi.deferred", rank.rank)
        self._h_deferred_depth = self.obs.histogram(
            "parsec.mpi.deferred_depth", rank.rank
        )
        self.tag_reg(_TAG_PUT_HS, self._handshake_cb, max_len=64 * 1024)
        self.tag_reg(_TAG_RMA_READY, self._rma_ready_cb, max_len=4096)
        self.tag_reg(_TAG_RMA_NOTIFY, self._rma_notify_cb, max_len=64 * 1024)

    # -- engine interface --------------------------------------------------

    def am_payload_max(self) -> int:
        """Largest active-message payload (bounded by the eager protocol)."""
        return self.rank.costs.rendezvous_threshold

    def quiescence_report(self) -> dict:
        """Leftover protocol state after a drained run (diagnostic).

        A clean termination leaves every queue here empty: no deferred
        transfers awaiting array slots, no announced-but-unserved RMA
        windows, no in-flight send/recv requests, and no unexpected
        envelopes in the match engine.  The schedule explorer's quiescence
        invariant flags any non-zero entry.
        """
        return {
            "deferred": len(self._deferred),
            "rma_pending": len(self._rma_pending),
            "transfers": len(self._transfers),
            "match_unexpected": self.rank.match.unexpected_count,
        }

    def _tag_reg_backend(self, tag: int, max_len: int) -> None:
        if self._started:
            raise RuntimeBackendError("tag_reg after engine start")
        self._pending_tags.append((tag, max_len))

    def start(self) -> Generator:
        """Create and start the persistent receives (5 per registered tag)."""
        if self._started:
            raise RuntimeBackendError("engine started twice")
        self._started = True
        for tag, max_len in self._pending_tags:
            for _ in range(self.rt.mpi_recvs_per_tag):
                preq = self.rank.recv_init(ANY_SOURCE, tag, max_len)
                yield from self.rank.start(preq)
                self._am_slots.append(_AmSlot(tag, preq))

    def send_am(self, tag: int, remote: int, data: Any, size: int) -> Generator:
        """Blocking eager MPI_Send with the registered tag (§4.2.1)."""
        self._am_entry(tag)  # raises on unregistered tag
        self.stats["am_sent"] += 1
        self._c_am_sent.inc()
        yield from self.rank.send(
            remote, tag, size, payload={"am": data, "seq": self.am_seq(remote)}
        )

    def put(
        self,
        data: Any,
        size: int,
        remote: int,
        l_cb: Optional[OnesidedCallback],
        r_cb_data: Any,
        l_cb_data: Any = None,
    ) -> Generator:
        """Handshake AM + (possibly deferred) two-sided data send."""
        data_tag = next_data_tag()
        self.stats["puts_started"] += 1
        self.stats["bytes_put"] += size
        self._c_puts.inc()
        self._h_put_bytes.observe(size)
        if self.put_mode == "rma":
            # Round 1: ask the target to attach window memory; the actual
            # MPI_Put happens when its READY reply arrives (_rma_ready_cb).
            self._rma_pending[data_tag] = (remote, size, data, l_cb, l_cb_data, r_cb_data)
            yield from self.send_am(
                _TAG_PUT_HS,
                remote,
                {"rma": True, "data_tag": data_tag, "size": size},
                self.rt.handshake_bytes,
            )
            return
        yield from self.send_am(
            _TAG_PUT_HS,
            remote,
            {"data_tag": data_tag, "size": size, "r_cb_data": r_cb_data},
            self.rt.handshake_bytes,
        )
        if self._array_has_space():
            yield from self._post_data_send(remote, data_tag, size, data, l_cb, l_cb_data)
        else:
            self._deferred.append(
                ("send", remote, data_tag, size, data, l_cb, l_cb_data)
            )
            self._note_deferred()

    def progress(self) -> Generator[Any, Any, int]:
        """Testsome loop: poll, run callbacks, compact, promote; repeat while
        completions keep arriving (§4.2.3)."""
        total = 0
        while True:
            entries: list = list(self._am_slots) + list(self._transfers)
            requests = [
                e.preq if isinstance(e, _AmSlot) else e.req for e in entries
            ]
            idxs = yield from self.rank.testsome(requests)
            if not idxs:
                # §4.2.3: promotion happens whenever there is free space in
                # the array, even on passes that completed nothing.
                yield from self._promote_deferred()
                break
            completed = [entries[i] for i in idxs]
            # Remove finished transfers before running callbacks (callbacks
            # may start new ones and reshape the array).
            finished_transfers = {id(e) for e in completed if isinstance(e, _Transfer)}
            if finished_transfers:
                self._transfers = [
                    t for t in self._transfers if id(t) not in finished_transfers
                ]
            for entry in completed:
                yield self.rt.callback_exec
                if isinstance(entry, _AmSlot):
                    preq = entry.preq
                    msg = preq.payload["am"]
                    yield from self._run_am_callback(
                        entry.tag, msg, preq.recv_size, preq.source,
                        preq.payload.get("seq"),
                    )
                    # Re-enable the persistent receive after the callback.
                    yield from self.rank.start(preq)
                else:
                    yield from self._finish_transfer(entry)
            yield from self._promote_deferred()
            total += len(idxs)
        return total

    def activity_event(self) -> Event:
        """Engine work is signalled by the MPI library's activity."""
        return self.rank.activity_event()

    def park(self, proc: Process) -> bool:
        """Engine wake-ups are the MPI library's deliveries/completions."""
        return self.rank.park(proc)

    # -- internals -----------------------------------------------------------

    def _array_has_space(self) -> bool:
        return len(self._transfers) < self.rt.mpi_max_transfers

    def _post_data_send(
        self, remote: int, data_tag: int, size: int, data: Any, l_cb, l_cb_data
    ) -> Generator:
        sreq = yield from self.rank.isend(remote, data_tag, size, payload={"put": data})
        self._transfers.append(_Transfer("send", sreq, l_cb, l_cb_data, size, remote))

    def _handshake_cb(self, engine, tag, msg, size, src, cb_data) -> Generator:
        """Target side of a put: post the matching receive (§4.2.2)."""
        if msg.get("rma"):
            # RMA mode: attach window memory and tell the origin to go.
            yield from self.rank.win_attach(msg["size"])
            yield from self.send_am(
                _TAG_RMA_READY, src, {"data_tag": msg["data_tag"]}, 64
            )
            return
        data_tag = msg["data_tag"]
        data_size = msg["size"]
        rreq = yield from self.rank.irecv(src, data_tag, data_size)
        transfer = _Transfer("recv", rreq, None, msg["r_cb_data"], data_size, src)
        if self._array_has_space():
            self._transfers.append(transfer)
        else:
            # Posted (so it matches and the wire moves), but polled only
            # after promotion into the global array.
            self._deferred.append(("recv", transfer))
            self._note_deferred()

    def _rma_ready_cb(self, engine, tag, msg, size, src, cb_data) -> Generator:
        """Origin side, RMA mode: window attached — put, flush, notify."""
        entry = self._rma_pending.pop(msg["data_tag"], None)
        if entry is None:
            raise RuntimeBackendError(f"RMA READY for unknown put {msg['data_tag']}")
        remote, data_size, data, l_cb, l_cb_data, r_cb_data = entry
        req = yield from self.rank.rma_put(remote, data_size, payload=data)
        yield from self.rank.flush(req)
        # Standard MPI RMA gives the target no completion notification
        # (§4.2.2) — send one as an active message, carrying r_cb_data.
        yield from self.send_am(
            _TAG_RMA_NOTIFY,
            remote,
            {"r_cb_data": r_cb_data, "data": data, "size": data_size},
            self.rt.handshake_bytes,
        )
        if l_cb is not None:
            yield from l_cb(self, l_cb_data)

    def _rma_notify_cb(self, engine, tag, msg, size, src, cb_data) -> Generator:
        """Target side, RMA mode: data has landed — detach and deliver."""
        yield from self.rank.win_detach()
        self.stats["puts_completed"] += 1
        cb, r_cb_arg = self._am_entry(TAG_PUT_COMPLETE)
        yield from cb(
            self,
            TAG_PUT_COMPLETE,
            {"r_cb_data": msg["r_cb_data"], "data": msg["data"]},
            msg["size"],
            src,
            r_cb_arg,
        )

    def _finish_transfer(self, t: _Transfer) -> Generator:
        if t.kind == "send":
            if t.cb is not None:
                yield from t.cb(self, t.cb_data)
        else:
            self.stats["puts_completed"] += 1
            cb, cb_data = self._am_entry(TAG_PUT_COMPLETE)
            data = t.req.payload["put"]
            # Drop the completed request's reference to the payload: the
            # request object can outlive the transfer (request tables,
            # traces), and at paper scale pinning every delivered tile
            # would dominate resident memory.
            t.req.payload = None
            yield from cb(
                self,
                TAG_PUT_COMPLETE,
                {"r_cb_data": t.cb_data, "data": data},
                t.size,
                t.peer,
                cb_data,
            )

    def _note_deferred(self) -> None:
        self._c_deferred.inc()
        self._h_deferred_depth.observe(len(self._deferred))

    def _promote_deferred(self) -> Generator:
        """FIFO promotion of deferred sends and dynamic receives (§4.2.3).

        Runs on the comm thread (inside progress), so posting promoted sends
        charges comm-thread time, as in the real implementation.
        """
        while self._deferred and self._array_has_space():
            item = self._deferred.popleft()
            if item[0] == "recv":
                self._transfers.append(item[1])
            else:
                _kind, remote, data_tag, size, data, l_cb, l_cb_data = item
                yield from self._post_data_send(
                    remote, data_tag, size, data, l_cb, l_cb_data
                )
