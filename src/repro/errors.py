"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch simulation-level failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all repro-specific errors."""


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (e.g. running a finished sim)."""


class ConfigError(ReproError):
    """Invalid calibration/platform/fault-plan configuration value."""


class NetworkError(ReproError):
    """Invalid network configuration or routing failure."""


class FaultError(ReproError):
    """Fault-injection failure the resilience machinery could not absorb
    (e.g. a message exhausted its retransmission budget)."""


class MpiError(ReproError):
    """Simulated-MPI usage error (invalid rank, truncated receive, ...)."""


class LciError(ReproError):
    """Simulated-LCI usage error (bad endpoint, message too large, ...)."""


class RuntimeBackendError(ReproError):
    """PaRSEC-like runtime misconfiguration or protocol violation."""


class SweepError(ReproError):
    """Sweep-engine failure: a point's simulation raised (after retries),
    an unknown grid was requested, or the result cache is unusable."""


class SupervisionError(ReproError):
    """Base class for execution-supervision failures (run guards, worker
    supervision, sweep journal).  Guard subclasses carry a diagnostic
    ``snapshot`` dict and, when a run was aborted mid-flight, the salvaged
    ``partial`` statistics — an aborted run never dies opaquely."""

    def __init__(self, message: str, snapshot: "dict | None" = None, partial=None):
        super().__init__(message)
        #: Diagnostic state captured at the moment of the violation:
        #: task/event counters, quiescence reports, the last observability
        #: events (see :func:`repro.supervise.guards.diagnostic_snapshot`).
        self.snapshot = snapshot or {}
        #: Partial typed results salvaged from the aborted run
        #: (a :class:`~repro.runtime.context.RunStats`), or ``None``.
        self.partial = partial


class RunBudgetExceeded(SupervisionError):
    """A supervised run crossed one of its hard budgets: wall-clock
    deadline, kernel event count, or memory ceiling."""


class NoProgressError(SupervisionError):
    """A supervised run is live-locked: simulated time keeps advancing but
    no task has completed over the configured window."""


class SweepInterrupted(SupervisionError):
    """A journaled sweep was interrupted (SIGINT/SIGTERM); the write-ahead
    journal was flushed and the sweep can be resumed with ``--resume``."""


class HicmaError(ReproError):
    """HiCMA numerical or DAG-construction failure."""


class BenchmarkError(ReproError):
    """Benchmark harness configuration error."""


class ExploreError(ReproError):
    """Schedule-space explorer misuse: an unknown scenario, an unreadable
    or version-mismatched schedule file, or an invalid exploration bound."""
