"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch simulation-level failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all repro-specific errors."""


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (e.g. running a finished sim)."""


class ConfigError(ReproError):
    """Invalid calibration/platform/fault-plan configuration value."""


class NetworkError(ReproError):
    """Invalid network configuration or routing failure."""


class FaultError(ReproError):
    """Fault-injection failure the resilience machinery could not absorb
    (e.g. a message exhausted its retransmission budget)."""


class MpiError(ReproError):
    """Simulated-MPI usage error (invalid rank, truncated receive, ...)."""


class LciError(ReproError):
    """Simulated-LCI usage error (bad endpoint, message too large, ...)."""


class RuntimeBackendError(ReproError):
    """PaRSEC-like runtime misconfiguration or protocol violation."""


class SweepError(ReproError):
    """Sweep-engine failure: a point's simulation raised (after retries),
    an unknown grid was requested, or the result cache is unusable."""


class HicmaError(ReproError):
    """HiCMA numerical or DAG-construction failure."""


class BenchmarkError(ReproError):
    """Benchmark harness configuration error."""


class ExploreError(ReproError):
    """Schedule-space explorer misuse: an unknown scenario, an unreadable
    or version-mismatched schedule file, or an invalid exploration bound."""
