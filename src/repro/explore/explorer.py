"""The schedule-space exploration engine.

Given a :class:`~repro.explore.scenarios.Scenario`, the explorer runs the
baseline FIFO schedule first (recording every choice point), then
enumerates alternative interleavings:

- **DFS mode** — a bounded depth-first search over decision prefixes: for
  each recorded choice point within the budget, each alternative candidate
  (up to ``max_branch``) spawns a new prefix; prefixes whose swapped
  candidate has a known rank scope disjoint from everything it overtakes
  are pruned (sleep-set style — swapping commuting events cannot reach a
  new state).
- **Walk mode** — seeded random walks: each run picks uniformly at every
  budgeted choice point; the decisions actually taken are recorded, so any
  failing walk replays exactly.

Every run is checked against the protocol invariants
(:mod:`repro.explore.invariants`) plus result invariance against the
baseline digest.  On the first violation the failing decision list is
shrunk to a minimal prefix (binary search on length, then zeroing
individual decisions) — small enough to read, and replayable via
``python -m repro explore --replay schedule.json``.

With ``jobs > 1`` schedule batches fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, mirroring the sweep
engine: run records cross the process boundary as canonical JSON.  Note
that in-process monkeypatching (the mutation smoke test) requires
``jobs=1`` so the mutant is visible to the runs.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.codec import canonical_json
from repro.errors import ExploreError
from repro.explore.policy import MAX_BRANCH, RandomWalkPolicy, ReplayPolicy
from repro.explore.scenarios import Scenario, run_scenario
from repro.explore.schedule import load_schedule
from repro.obs.bus import NULL_BUS

__all__ = [
    "ExploreConfig",
    "Finding",
    "ExploreOutcome",
    "run_explore",
    "replay_schedule",
]


@dataclass(frozen=True)
class ExploreConfig:
    """Exploration bounds and mode.

    ``budget`` caps how many choice points each run may perturb;
    ``max_schedules`` caps the total runs (baseline + alternatives);
    ``shrink_budget`` caps the extra runs spent minimizing a failure.
    """

    max_schedules: int = 50
    budget: int = 24
    mode: str = "dfs"
    walk_seed: int = 0
    jobs: int = 1
    max_branch: int = MAX_BRANCH
    shrink_budget: int = 32
    stop_on_violation: bool = True

    def __post_init__(self):
        if self.mode not in ("dfs", "walk"):
            raise ExploreError(f"unknown exploration mode {self.mode!r}")
        if self.max_schedules < 1 or self.budget < 1 or self.jobs < 1:
            raise ExploreError("exploration bounds must be positive")


@dataclass(frozen=True)
class Finding:
    """One failing schedule: where it was found and how to replay it."""

    schedule_index: int
    #: Positional decision list that reproduces the failure.
    decisions: tuple
    #: ``[kind, detail]`` pairs from the invariant checkers.
    violations: tuple


@dataclass
class ExploreOutcome:
    """Everything one exploration produced."""

    scenario: Scenario
    config: ExploreConfig
    schedules_run: int = 0
    pruned: int = 0
    #: Highest choice-point count observed across runs.
    total_sites: int = 0
    baseline_digest: Optional[dict] = None
    findings: list = field(default_factory=list)
    #: Minimal failing decision prefix (after shrinking), None when clean.
    shrunk: Optional[list] = None
    shrink_runs: int = 0
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every explored schedule satisfied every invariant."""
        return not self.findings

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"explore[{self.scenario.label()}] mode={self.config.mode}: "
            f"{self.schedules_run} schedules, {self.pruned} pruned, "
            f"{self.total_sites} choice points, {self.wall_time:.1f}s wall",
        ]
        if self.ok:
            lines.append("  all invariants hold on every explored schedule")
        else:
            first = self.findings[0]
            lines.append(
                f"  {len(self.findings)} failing schedule(s); first at "
                f"run {first.schedule_index}:"
            )
            for kind, detail in first.violations[:4]:
                lines.append(f"    [{kind}] {detail}")
            if self.shrunk is not None:
                lines.append(
                    f"  shrunk to {len(self.shrunk)} decision(s) "
                    f"{list(self.shrunk)} in {self.shrink_runs} extra runs"
                )
        return "\n".join(lines)


def _execute(scenario_doc: dict, spec: dict) -> dict:
    """Run one schedule (worker-process safe) and return its record.

    ``spec`` is either ``{"decisions": [...], "budget": n}`` (replay) or
    ``{"walk_seed": s, "budget": n}`` (random walk).  Records round-trip
    through canonical JSON so in-process and pooled execution return
    byte-identical structures.
    """
    scenario = Scenario.from_dict(scenario_doc)
    if "walk_seed" in spec:
        policy = RandomWalkPolicy(spec["walk_seed"], spec["budget"])
    else:
        policy = ReplayPolicy(spec["decisions"], spec["budget"])
    return json.loads(canonical_json(run_scenario(scenario, policy)))


def _strip_zeros(decisions) -> list:
    """Drop trailing FIFO decisions — they are the default anyway."""
    out = list(decisions)
    while out and out[-1] == 0:
        out.pop()
    return out


def _prunable(site: dict, alt: int) -> bool:
    """Sleep-set-style check: does swapping ``alt`` to the front commute?

    Choosing candidate ``alt`` instead of FIFO bubbles it past candidates
    ``0..alt-1``.  If its rank scope is known and disjoint from each of
    theirs, the swap reorders only commuting events and cannot reach a new
    protocol state.  Unknown scopes conservatively conflict.
    """
    scopes = site["scopes"]
    if alt >= len(scopes) or scopes[alt] is None:
        return False
    mine = set(scopes[alt])
    for j in range(alt):
        other = scopes[j]
        if other is None or mine & set(other):
            return False
    return True


def run_explore(scenario: Scenario, config: Optional[ExploreConfig] = None,
                obs=NULL_BUS) -> ExploreOutcome:
    """Explore ``scenario``'s schedule space within ``config``'s bounds."""
    config = config or ExploreConfig()
    outcome = ExploreOutcome(scenario=scenario, config=config)
    doc = scenario.to_dict()
    t0 = time.perf_counter()
    c_runs = obs.counter("explore.schedules")
    c_viol = obs.counter("explore.violations")
    c_pruned = obs.counter("explore.pruned")
    obs.emit(
        "explore_start", -1, key=scenario.label(),
        info={"mode": config.mode, "max_schedules": config.max_schedules,
              "budget": config.budget}, time=0.0,
    )

    pool = (
        ProcessPoolExecutor(max_workers=config.jobs)
        if config.jobs > 1 else None
    )

    def execute_batch(specs: list) -> list:
        if pool is None:
            return [_execute(doc, spec) for spec in specs]
        return list(pool.map(_execute, [doc] * len(specs), specs))

    def process(record: dict, decisions: list) -> bool:
        """Account one run; True when it violated an invariant."""
        index = outcome.schedules_run
        outcome.schedules_run += 1
        c_runs.inc()
        outcome.total_sites = max(outcome.total_sites, record["total_sites"])
        violations = list(record["violations"])
        if not violations and record["digest"] is not None:
            if outcome.baseline_digest is None:
                outcome.baseline_digest = record["digest"]
            elif record["digest"] != outcome.baseline_digest:
                violations.append([
                    "invariance",
                    f"result digest {record['digest']} differs from "
                    f"baseline {outcome.baseline_digest}",
                ])
        obs.emit(
            "explore_schedule", -1, key=scenario.label(),
            info={"index": index, "decisions": len(decisions),
                  "violations": len(violations)}, time=0.0,
        )
        if not violations:
            return False
        taken = _strip_zeros(record.get("taken", decisions))
        outcome.findings.append(Finding(
            schedule_index=index,
            decisions=tuple(taken),
            violations=tuple(tuple(v) for v in violations),
        ))
        c_viol.inc()
        for kind, detail in violations:
            obs.emit("explore_violation", -1, key=kind, info=detail, time=0.0)
        return True

    def expansions(record: dict, decisions: list) -> list:
        """DFS children of a run: one alternative per unexplored site."""
        children = []
        sites = record.get("sites", [])
        for pos in range(len(decisions), len(sites)):
            site = sites[pos]
            pad = [0] * (pos - len(decisions))
            for alt in range(1, min(site["n"], config.max_branch)):
                if _prunable(site, alt):
                    outcome.pruned += 1
                    c_pruned.inc()
                    continue
                children.append(decisions + pad + [alt])
        return children

    try:
        baseline = execute_batch([{"decisions": [], "budget": config.budget}])[0]
        violated = process(baseline, [])
        if config.mode == "walk":
            _walk(outcome, config, execute_batch, process, violated)
        else:
            _dfs(outcome, config, execute_batch, process, expansions,
                 baseline, violated)
        if outcome.findings:
            _shrink(outcome, config, doc)
            obs.emit("explore_shrunk", -1, key=scenario.label(),
                     info={"decisions": outcome.shrunk,
                           "runs": outcome.shrink_runs}, time=0.0)
    finally:
        if pool is not None:
            pool.shutdown()
    outcome.wall_time = time.perf_counter() - t0
    obs.emit(
        "explore_end", -1, key=scenario.label(),
        info={"schedules": outcome.schedules_run, "pruned": outcome.pruned,
              "findings": len(outcome.findings)}, time=0.0,
    )
    return outcome


def _walk(outcome, config, execute_batch, process, violated: bool) -> None:
    """Random-walk enumeration: one seeded run per remaining slot."""
    if violated and config.stop_on_violation:
        return
    next_seed = config.walk_seed + 1
    while outcome.schedules_run < config.max_schedules:
        width = min(
            max(config.jobs, 1),
            config.max_schedules - outcome.schedules_run,
        )
        specs = [
            {"walk_seed": next_seed + i, "budget": config.budget}
            for i in range(width)
        ]
        next_seed += width
        for spec, record in zip(specs, execute_batch(specs)):
            if process(record, []) and config.stop_on_violation:
                return


def _dfs(outcome, config, execute_batch, process, expansions,
         baseline: dict, violated: bool) -> None:
    """Bounded DFS over decision prefixes, batched ``jobs`` at a time."""
    if violated and config.stop_on_violation:
        return
    stack: list = list(reversed(expansions(baseline, [])))
    seen = {()}
    while stack and outcome.schedules_run < config.max_schedules:
        batch = []
        while stack and len(batch) < max(config.jobs, 1) and (
            outcome.schedules_run + len(batch) < config.max_schedules
        ):
            decisions = stack.pop()
            key = tuple(decisions)
            if key in seen:
                continue
            seen.add(key)
            batch.append(decisions)
        if not batch:
            break
        specs = [{"decisions": d, "budget": config.budget} for d in batch]
        records = execute_batch(specs)
        for decisions, record in zip(batch, records):
            if process(record, decisions):
                if config.stop_on_violation:
                    return
                continue
            stack.extend(reversed(expansions(record, decisions)))


def _shrink(outcome: ExploreOutcome, config: ExploreConfig, doc: dict) -> None:
    """Minimize the first finding's decision list (ddmin-flavoured).

    Binary-search the shortest failing prefix, then zero out individual
    non-FIFO decisions left to right; each probe is one extra run, capped
    by ``shrink_budget``.
    """
    decisions = list(outcome.findings[0].decisions)
    used = 0

    def fails(d: list) -> bool:
        nonlocal used
        used += 1
        record = _execute(doc, {"decisions": d, "budget": config.budget})
        return bool(record["violations"])

    lo, hi = 0, len(decisions)
    while lo < hi and used < config.shrink_budget:
        mid = (lo + hi) // 2
        if fails(decisions[:mid]):
            hi = mid
        else:
            lo = mid + 1
    best = decisions[:hi]
    i = 0
    while i < len(best) and used < config.shrink_budget:
        if best[i] != 0:
            candidate = _strip_zeros(best[:i] + [0] + best[i + 1:])
            if fails(candidate):
                best = candidate
                continue
        i += 1
    outcome.shrunk = _strip_zeros(best)
    outcome.shrink_runs = used


def replay_schedule(path) -> tuple:
    """Replay a ``schedule.json`` file; returns ``(scenario, record)``.

    The record is exactly what :func:`~repro.explore.scenarios.
    run_scenario` produced — ``record["violations"]`` is empty iff the
    replayed schedule satisfies every invariant.
    """
    scenario, decisions, budget = load_schedule(path)
    policy = ReplayPolicy(decisions, budget)
    return scenario, json.loads(canonical_json(run_scenario(scenario, policy)))
