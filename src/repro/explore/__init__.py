"""Deterministic schedule-space exploration (protocol race detection).

The simulator normally resolves same-timestamp ties in one fixed FIFO
order, so each seed validates exactly one interleaving.  This package
turns the simulator into a correctness tool: it re-executes a scenario
under alternative legal interleavings (every candidate was runnable at
that instant) and checks protocol invariants — quiescence, deadlock, MPI
matching soundness, result invariance — on every schedule.  Failures
shrink to a minimal decision prefix and round-trip through a replayable
``schedule.json``.

Entry points: :func:`~repro.explore.explorer.run_explore`,
:func:`~repro.explore.explorer.replay_schedule`, and the CLI verb
``python -m repro explore``.
"""

from repro.explore.explorer import (
    ExploreConfig,
    ExploreOutcome,
    Finding,
    replay_schedule,
    run_explore,
)
from repro.explore.invariants import MatchAuditor, Violation, check_quiescence
from repro.explore.policy import MAX_BRANCH, RandomWalkPolicy, ReplayPolicy, scope_of
from repro.explore.scenarios import SCENARIO_KINDS, Scenario, default_scenario, run_scenario
from repro.explore.schedule import encode_schedule, load_schedule, write_schedule

__all__ = [
    "MAX_BRANCH",
    "SCENARIO_KINDS",
    "ExploreConfig",
    "ExploreOutcome",
    "Finding",
    "MatchAuditor",
    "RandomWalkPolicy",
    "ReplayPolicy",
    "Scenario",
    "Violation",
    "check_quiescence",
    "default_scenario",
    "encode_schedule",
    "load_schedule",
    "replay_schedule",
    "run_explore",
    "run_scenario",
    "scope_of",
    "write_schedule",
]
