"""Schedule policies: record, replay, and perturb same-timestamp tie-breaks.

The kernel fires runnable entries in FIFO (``seq``) order; any other order
over the *same* runnable set is an equally legal execution of the modelled
protocol.  A **choice point** is a simulator step with two or more runnable
entries; the policies here identify each such step, record the size of the
candidate set (and a best-effort rank scope per candidate, for commutative
pruning), and either replay a positional decision list or sample decisions
from a seeded RNG:

- :class:`ReplayPolicy` — decision ``i`` picks the candidate index at the
  ``i``-th choice point; beyond the list (or the choice budget) it falls
  back to FIFO.  An empty decision list therefore *records* the baseline
  schedule bit-identically.
- :class:`RandomWalkPolicy` — a seeded uniform pick at each budgeted choice
  point; the decisions actually taken are recorded, so any walk can be
  replayed exactly with :class:`ReplayPolicy`.

Both record, per budgeted choice point, ``{"n": candidates, "scopes":
[...]}`` — consumed by the explorer's DFS frontier and its sleep-set-style
pruning (:mod:`repro.explore.explorer`).
"""

from __future__ import annotations

import random
import re
from typing import Optional

from repro.sim.core import K_CALL, K_EVT, K_RESUME, SchedulePolicy  # noqa: F401

__all__ = [
    "MAX_BRANCH",
    "ReplayPolicy",
    "RandomWalkPolicy",
    "scope_of",
]

#: Candidates considered per choice point: alternatives beyond the first
#: few rarely reach new protocol states but multiply the search space.
MAX_BRANCH = 4

_THREAD_NAME = re.compile(r"^n(\d+)(?:w|comm|prog)")


def scope_of(entry) -> Optional[frozenset]:
    """Best-effort set of node ranks a runnable entry touches.

    Used for commutative pruning: two same-time entries whose scopes are
    disjoint cannot observe each other's effects, so swapping them yields
    an equivalent execution.  Returns ``None`` when the scope cannot be
    determined — unknown entries conservatively conflict with everything.

    Accepts both the batched kernel's kind-coded ``(seq, kind, a, b, c)``
    entries and the legacy kernel's ``(seq, event, fn, args)`` shape
    (selected via ``REPRO_SIM_CORE=legacy``).
    """
    if type(entry[1]) is int:
        _seq, kind, a, b, _c = entry
        if kind == K_RESUME:
            # A typed sleep wake-up touches exactly the owning thread's
            # rank (the same scope the legacy Timeout + ``_resume``
            # callback pair resolved to).
            rank = _owner_rank(a)
            return None if rank is None else frozenset((rank,))
        event = a if kind == K_EVT else None
        fn = a if kind == K_CALL else None
        args = b if kind == K_CALL else ()
    else:
        _seq, event, fn, args = entry
    if fn is not None:
        ranks = set()
        owner = getattr(fn, "__self__", None)
        if owner is not None:
            rank = _owner_rank(owner)
            if rank is None:
                return None
            ranks.add(rank)
        for arg in args:
            src = getattr(arg, "src", None)
            dst = getattr(arg, "dst", None)
            if isinstance(src, int) and isinstance(dst, int):
                ranks.update((src, dst))
        return frozenset(ranks) if ranks else None
    if event is not None:
        callbacks = event.callbacks
        if not callbacks:
            return frozenset()
        ranks = set()
        for cb in callbacks:
            owner = getattr(cb, "__self__", None)
            rank = _owner_rank(owner) if owner is not None else None
            if rank is None:
                return None
            ranks.add(rank)
        return frozenset(ranks)
    return None


def _owner_rank(owner) -> Optional[int]:
    """The node rank an object belongs to, if it names one."""
    for attr in ("rank", "node"):
        value = getattr(owner, attr, None)
        if isinstance(value, int):
            return value
    name = getattr(owner, "name", None)
    if isinstance(name, str):
        match = _THREAD_NAME.match(name)
        if match:
            return int(match.group(1))
    return None


class _TracingPolicy(SchedulePolicy):
    """Shared bookkeeping: number choice points, record sites and decisions.

    ``sites`` holds one ``{"n", "scopes"}`` record per *budgeted* choice
    point (scope extraction stops at :data:`MAX_BRANCH` candidates);
    ``taken`` holds the decision actually applied at each of them;
    ``total_sites`` counts every choice point seen, budgeted or not.
    """

    def __init__(self, budget: int):
        self.budget = budget
        self.sites: list = []
        self.taken: list = []
        self.total_sites = 0

    def choose(self, sim, ready) -> int:
        """Record the site, delegate the decision, record what was taken."""
        site = self.total_sites
        self.total_sites += 1
        if site >= self.budget:
            return 0
        n = len(ready)
        limit = min(n, MAX_BRANCH)
        self.sites.append({
            "n": n,
            "scopes": [
                sorted(s) if (s := scope_of(ready[i])) is not None else None
                for i in range(limit)
            ],
        })
        idx = self._decide(site, n)
        if not 0 <= idx < n:
            idx = 0
        self.taken.append(idx)
        return idx

    def _decide(self, site: int, n: int) -> int:
        """The policy-specific decision for choice point ``site``."""
        raise NotImplementedError


class ReplayPolicy(_TracingPolicy):
    """Replay a positional decision list; FIFO beyond it.

    ``decisions[i]`` is the candidate index taken at the ``i``-th choice
    point; out-of-range decisions (the runnable set can be smaller on a
    divergent schedule) clamp to FIFO.  ``ReplayPolicy([], budget)`` is the
    recording baseline: pure FIFO, sites logged.
    """

    def __init__(self, decisions, budget: int):
        super().__init__(budget)
        self.decisions = list(decisions)

    def _decide(self, site: int, n: int) -> int:
        """The pinned decision, or FIFO past the end of the list."""
        if site < len(self.decisions):
            return self.decisions[site]
        return 0


class RandomWalkPolicy(_TracingPolicy):
    """Uniform seeded pick at each budgeted choice point.

    The applied decisions accumulate in ``taken``, so a failing walk is
    replayable as ``ReplayPolicy(walk.taken, budget)``.
    """

    def __init__(self, seed: int, budget: int):
        super().__init__(budget)
        self.seed = seed
        self._rng = random.Random(seed)

    def _decide(self, site: int, n: int) -> int:
        """A uniform pick among the first :data:`MAX_BRANCH` candidates."""
        return self._rng.randrange(min(n, MAX_BRANCH))
