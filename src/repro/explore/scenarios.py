"""Explorable scenarios: small, fast workload descriptions.

A :class:`Scenario` names a workload (any name registered with
:mod:`repro.workloads` — the paper benchmarks plus the whole scenario
catalog), a backend, a node count, a seed, an optional named fault plan,
and workload-config overrides.  It serializes through the repo's
canonical codec (:class:`~repro.codec.DictCodec`), which is what makes
``schedule.json`` replayable: the scenario document plus a decision list
fully determines a run.

:func:`run_scenario` executes one schedule of a scenario under an optional
:class:`~repro.sim.core.SchedulePolicy` and applies every invariant from
:mod:`repro.explore.invariants`, returning the violations and the
schedule-invariant result digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.codec import DictCodec
from repro.errors import ExploreError, ReproError, RuntimeBackendError
from repro.explore.invariants import (
    MatchAuditor,
    Violation,
    check_quiescence,
    result_digest,
)
from repro.faults.plans import fault_plan

__all__ = ["scenario_kinds", "SCENARIO_KINDS", "Scenario",
           "default_scenario", "run_scenario"]


def scenario_kinds() -> tuple:
    """Workloads the explorer can drive: every registered workload,
    including any plugins registered since import."""
    from repro.workloads import workload_names

    return workload_names()


def _spec_of(workload: str):
    """Resolve a workload, re-raising unknown names as ExploreError."""
    from repro.errors import ConfigError
    from repro.workloads import get_workload

    try:
        return get_workload(workload)
    except ConfigError:
        raise ExploreError(
            f"unknown scenario workload {workload!r} "
            f"(known: {', '.join(scenario_kinds())})"
        ) from None


class _ScenarioKinds(tuple):
    """Registry-backed kind listing (kept for back-compat with the old
    ``SCENARIO_KINDS`` constant): iteration/membership consult the live
    registry, so workloads registered after import still count."""

    def __iter__(self):
        return iter(scenario_kinds())

    def __contains__(self, item):
        return item in scenario_kinds()

    def __len__(self):
        return len(scenario_kinds())


#: Workloads the explorer can drive (live view over the registry).
SCENARIO_KINDS = _ScenarioKinds()


@dataclass(frozen=True)
class Scenario(DictCodec):
    """One explorable experiment: workload + backend + knobs.

    ``params`` are workload-config overrides (e.g. ``fragment_size``);
    node count and seed are injected on top.  ``fault_plan`` names a plan
    from :data:`~repro.faults.plans.FAULT_PLANS` (kept as a name, not an
    expanded config, so scenario documents stay small and readable).
    """

    workload: str = "pingpong"
    backend: str = "lci"
    nodes: int = 2
    seed: int = 0
    fault_plan: Optional[str] = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        _spec_of(self.workload)
        if self.backend not in ("mpi", "lci"):
            raise ExploreError(f"unknown backend {self.backend!r}")
        if self.nodes < 2:
            raise ExploreError("exploration needs at least 2 nodes")

    def label(self) -> str:
        """Short human-readable identifier for progress output."""
        extra = f" faults={self.fault_plan}" if self.fault_plan else ""
        return (
            f"{self.workload}/{self.backend} nodes={self.nodes} "
            f"seed={self.seed}{extra}"
        )


def default_scenario(workload: str, backend: str = "lci", nodes: int = 2,
                     seed: int = 0, fault_plan: Optional[str] = None) -> Scenario:
    """A scenario with the workload's small fast default parameters.

    The parameter overrides come from the workload spec's
    ``explore_params`` — each registered workload declares a
    small-but-non-trivial configuration so hundreds of schedules stay
    interactive.
    """
    spec = _spec_of(workload)
    params = dict(spec.explore_params)
    # The Scenario's own nodes field wins over any explore_params hint.
    params.pop("num_nodes", None)
    return Scenario(
        workload=workload, backend=backend, nodes=nodes, seed=seed,
        fault_plan=fault_plan, params=params,
    )


def run_scenario(scenario: Scenario, policy=None) -> dict:
    """Execute one schedule of ``scenario`` and check every invariant.

    Returns a JSON-plain record::

        {"violations": [[kind, detail], ...],  # empty = all invariants hold
         "digest": {...} | None,               # result_digest, None on error
         "makespan": float | None}

    plus, when ``policy`` is a tracing policy, its recorded ``sites``,
    ``taken`` decisions, and ``total_sites`` (consumed by the explorer).
    """
    faults = fault_plan(scenario.fault_plan) if scenario.fault_plan else None
    auditor = MatchAuditor()
    captured = {}

    def observer(ctx):
        captured["ctx"] = ctx
        auditor.install(ctx)

    violations: list = []
    result = None
    try:
        result = _dispatch(scenario, faults, policy, observer)
    except RuntimeBackendError as exc:
        kind = "deadlock" if "did not complete" in str(exc) else "protocol"
        violations.append(Violation(kind, str(exc)))
    except ReproError as exc:
        violations.append(Violation("protocol", f"{type(exc).__name__}: {exc}"))
    ctx = captured.get("ctx")
    if result is not None and ctx is not None:
        # Quiescence only means something after a clean completion — an
        # aborted run legitimately strands queue contents.
        violations.extend(check_quiescence(ctx))
    violations.extend(auditor.violations)
    record = {
        "violations": [v.to_list() for v in violations],
        "digest": result_digest(result) if result is not None else None,
        "makespan": (
            getattr(result, "makespan", None) or
            getattr(result, "time_to_solution", None)
        ) if result is not None else None,
    }
    if policy is not None and hasattr(policy, "sites"):
        record["sites"] = policy.sites
        record["taken"] = policy.taken
        record["total_sites"] = policy.total_sites
    return record


def _dispatch(scenario: Scenario, faults, policy, observer):
    """Build the workload config and run its benchmark driver.

    Resolves through the :mod:`repro.workloads` registry, so any
    registered workload — including in-process plugins — is explorable.
    """
    spec = _spec_of(scenario.workload)
    params = dict(scenario.params)
    params["num_nodes"] = scenario.nodes
    params["seed"] = scenario.seed
    return spec.run(
        scenario.backend, spec.build_config(**params),
        faults=faults, schedule_policy=policy, ctx_observer=observer,
    )
