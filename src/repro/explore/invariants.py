"""Protocol invariants checked after every explored schedule.

Four families, mirroring the correctness argument of the modelled runtime:

- **Deadlock** — the run must complete: a simulation that goes quiet (or
  hits its time horizon) with unfinished tasks is flagged.  Detected from
  the runtime's own ``run did not complete`` error.
- **Protocol errors** — any backend/runtime exception (dependence count
  going negative, a GET DATA for a flow whose data is not ready, a dead
  simulated thread) is a violation of the activation/transfer protocol.
- **Quiescence** — after a drained run no protocol state may linger:
  LCI packet/slot pools back to full (and never negative — a leak or
  double-free otherwise), no unexpected rendezvous headers, no deferred
  MPI transfers or announced-but-unserved RMA windows, empty deferred-GET
  queues, and zero in-flight reliable-transport sends.
- **MPI matching soundness** — via the :class:`~repro.mpi.matching.
  MatchEngine` audit hook: every match pairs a compatible (src, tag)
  recv/envelope, nothing is matched twice or without being offered, and —
  when the world does not allow overtaking — matches are FIFO per
  (src, tag).

Result invariance (same outputs on every schedule) is checked by the
explorer itself, by comparing :func:`result_digest` across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.matching import _compatible

__all__ = [
    "Violation",
    "MatchAuditor",
    "check_quiescence",
    "result_digest",
]


@dataclass(frozen=True)
class Violation:
    """One invariant breach: a short machine-sortable kind plus detail."""

    kind: str
    detail: str

    def to_list(self) -> list:
        """JSON-plain ``[kind, detail]`` pair (schedule.json encoding)."""
        return [self.kind, self.detail]


class MatchAuditor:
    """Matching-soundness monitor over every rank's :class:`MatchEngine`.

    :meth:`install` hooks the audit callback on each rank of an MPI-backend
    context (a no-op on LCI, which has no two-sided matching); violations
    accumulate in :attr:`violations` as the run executes.
    """

    def __init__(self):
        self.violations: list = []
        self._installed = False

    def install(self, ctx) -> None:
        """Attach to every match engine of ``ctx`` (MPI backend only)."""
        if getattr(ctx, "backend", None) != "mpi":
            return
        world = ctx.mpi_world
        fifo_required = not world.allow_overtaking
        for rank in world.ranks:
            rank.match.audit = _RankAudit(
                rank.rank, fifo_required, self.violations
            )
        self._installed = True


class _RankAudit:
    """Per-rank audit callback: mirrors both match queues independently."""

    def __init__(self, rank: int, fifo_required: bool, violations: list):
        self.rank = rank
        self.fifo_required = fifo_required
        self.violations = violations
        self._posted: list = []
        self._unexpected: list = []

    def _flag(self, detail: str) -> None:
        self.violations.append(
            Violation("matching", f"rank {self.rank}: {detail}")
        )

    def __call__(self, op: str, recv, env) -> None:
        if op == "post":
            if env is None:
                self._posted.append(recv)
                return
            self._check_pair(recv, env)
            self._take(self._unexpected, env, recv, "envelope")
        elif op == "arrive":
            if recv is None:
                self._unexpected.append(env)
                return
            self._check_pair(recv, env)
            self._take(self._posted, recv, env, "receive")
        elif op == "cancel":
            try:
                self._posted.remove(recv)
            except ValueError:
                self._flag("cancel of a receive that was never posted")

    def _check_pair(self, recv, env) -> None:
        if not _compatible(recv, env.src, env.tag):
            self._flag(
                f"matched recv(src={recv.src}, tag={recv.tag}) with "
                f"incompatible envelope(src={env.src}, tag={env.tag})"
            )

    def _take(self, mirror: list, item, partner, label: str) -> None:
        """Remove a matched item from its mirror queue, checking FIFO.

        An item absent from the mirror was either matched twice or matched
        without ever being offered — both break the ≤1-match rule.
        """
        for i, cand in enumerate(mirror):
            if cand is item:
                if i > 0 and self.fifo_required and self._overtook(
                    mirror[:i], item, partner, label
                ):
                    self._flag(
                        f"non-FIFO match: {label} overtook an earlier "
                        f"compatible entry (src={env_src(partner)})"
                    )
                del mirror[i]
                return
        self._flag(f"{label} matched twice or without being queued")

    def _overtook(self, earlier: list, item, partner, label: str) -> bool:
        for cand in earlier:
            if label == "envelope":
                if _compatible(partner, cand.src, cand.tag):
                    return True
            else:
                if _compatible(cand, partner.src, partner.tag):
                    return True
        return False


def env_src(obj) -> object:
    """The ``src`` attribute of a recv/envelope, for error messages."""
    return getattr(obj, "src", "?")


def check_quiescence(ctx) -> list:
    """Invariant: a completed run leaves no protocol state behind.

    Reads each backend's ``quiescence_report()``, every node's deferred-GET
    queue, and the reliable transport's in-flight table; returns a list of
    :class:`Violation` (empty when clean).  Only meaningful after a run
    that completed without raising — an aborted run legitimately strands
    queue contents.
    """
    violations = []

    def flag(kind: str, detail: str) -> None:
        violations.append(Violation(kind, detail))

    for i, engine in enumerate(ctx.engines):
        report = engine.quiescence_report()
        if ctx.backend == "lci":
            for free_key, size_key in (
                ("tx_packets_free", "packet_pool_size"),
                ("rx_packets_free", "packet_pool_size"),
                ("send_slots_free", "direct_slots"),
                ("recv_slots_free", "direct_slots"),
            ):
                free, size = report[free_key], report[size_key]
                if free < 0:
                    flag("quiescence",
                         f"node {i}: {free_key} negative ({free}) — double free")
                elif free > size:
                    flag("quiescence",
                         f"node {i}: {free_key} over pool size ({free}>{size})")
                elif free < size:
                    flag("quiescence",
                         f"node {i}: {free_key} leaked {size - free} entries")
            if report["unexpected_rts"]:
                flag("quiescence",
                     f"node {i}: {report['unexpected_rts']} unexpected RTS left")
        else:
            if report["deferred"]:
                flag("quiescence",
                     f"node {i}: {report['deferred']} deferred transfers left")
            if report["rma_pending"]:
                flag("quiescence",
                     f"node {i}: {report['rma_pending']} unserved RMA windows")
    for node in ctx.nodes:
        depth = len(node.getdata_q)
        if depth:
            flag("quiescence",
                 f"node {node.rank}: deferred-GET queue holds {depth} entries")
        # Note: the node's ref-counted flow maps (node.quiescence_report())
        # are deliberately NOT checked here.  The run stops at the instant
        # the last task completes, which can legitimately strand a trailing
        # put-completion callback on the origin of the final flow; the leak
        # tests assert full drainage on runs whose shape guarantees it.
    rel = ctx.fabric._rel
    if rel is not None and rel.inflight_count:
        flag("quiescence",
             f"{rel.inflight_count} reliable-transport sends still in flight")
    return violations


def result_digest(result) -> dict:
    """Schedule-invariant fingerprint of a benchmark result.

    Only fields every legal interleaving must agree on: the number of
    tasks executed and the number of end-to-end flow samples.  Timing
    outputs (makespan, bandwidth) legitimately vary with the schedule —
    queue-depth-dependent costs and activation batching are part of the
    model — and are deliberately excluded.
    """
    return {
        "tasks": result.tasks,
        "flow_samples": result.flow_latency.get("count", 0),
    }
