"""Replayable schedule files (``schedule.json``).

A schedule file is the complete recipe for reproducing one explored
interleaving: the scenario document (canonical-codec form), the choice
budget, and the positional decision list, plus the violations the run
produced and a content key over the replay-relevant fields.  The key uses
the repo-wide canonical JSON codec — the same serializer as the sweep
cache — so a byte-level edit of the replay recipe is detected on load.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro._version import __version__
from repro.codec import stable_hash, to_plain
from repro.errors import ExploreError
from repro.explore.scenarios import Scenario

__all__ = ["encode_schedule", "write_schedule", "load_schedule"]


def _key_of(doc: dict) -> str:
    """Content key over the fields that determine the replayed run."""
    return stable_hash({
        "scenario": doc["scenario"],
        "budget": doc["budget"],
        "decisions": doc["decisions"],
    })


def encode_schedule(scenario: Scenario, decisions, budget: int,
                    violations=()) -> dict:
    """Build the JSON-plain schedule document."""
    doc = {
        "version": __version__,
        "scenario": scenario.to_dict(),
        "budget": int(budget),
        "decisions": [int(d) for d in decisions],
        "violations": to_plain(list(violations)),
    }
    doc["key"] = _key_of(doc)
    return doc


def write_schedule(path, scenario: Scenario, decisions, budget: int,
                   violations=()) -> dict:
    """Write a schedule file and return its document."""
    doc = encode_schedule(scenario, decisions, budget, violations)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def load_schedule(path) -> tuple:
    """Load and verify a schedule file.

    Returns ``(scenario, decisions, budget)``.  Raises
    :class:`~repro.errors.ExploreError` on unreadable JSON, missing
    fields, or a content-key mismatch (a hand-edited or truncated file).
    """
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ExploreError(f"cannot read schedule file {path}: {exc}") from exc
    for key in ("scenario", "decisions", "budget", "key"):
        if key not in doc:
            raise ExploreError(f"schedule file {path} is missing {key!r}")
    if doc["key"] != _key_of(doc):
        raise ExploreError(
            f"schedule file {path} failed its content check — "
            "the replay recipe was modified or truncated"
        )
    scenario = Scenario.from_dict(doc["scenario"])
    return scenario, [int(d) for d in doc["decisions"]], int(doc["budget"])
