"""A simulated MPI library.

Implements the MPI subset the PaRSEC MPI backend (paper §4.2) relies on, at
protocol fidelity:

- two-sided matching with posted-receive and unexpected-message queues,
  ``MPI_ANY_SOURCE`` wildcards, FIFO (non-overtaking) matching, and the
  ``mpi_assert_allow_overtaking`` info key;
- eager and rendezvous (RTS/CTS) protocols with a configurable threshold;
- non-blocking sends/receives, persistent receives (``MPI_Recv_init`` /
  ``MPI_Start``), ``MPI_Testsome`` over request arrays, blocking
  send/recv/wait;
- progress that happens *only inside MPI calls* — exactly the property that
  lets long active-message callbacks starve communication in the paper;
- an internal library lock so concurrent calls from many simulated threads
  serialize (the behaviour studied in §6.4.3).

All calls are generators: simulated threads invoke them as
``result = yield from rank.isend(...)`` so CPU costs are charged to the
calling thread's simulated time.
"""

from repro.mpi.requests import Request, SendRequest, RecvRequest, PersistentRecvRequest
from repro.mpi.world import MpiWorld, MpiRank, ANY_SOURCE

__all__ = [
    "MpiWorld",
    "MpiRank",
    "ANY_SOURCE",
    "Request",
    "SendRequest",
    "RecvRequest",
    "PersistentRecvRequest",
]
