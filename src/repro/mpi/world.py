"""The simulated MPI world: per-rank library instances and protocol logic.

Usage from a simulated thread (a DES process)::

    world = MpiWorld(sim, fabric, costs)
    rank0 = world.ranks[0]
    req = yield from rank0.isend(dst=1, tag=7, size=4096, payload=obj)
    ...
    done = yield from rank0.testsome(request_array)

Key modelled behaviours (matching the paper's description of Open MPI):

- **Progress only inside calls.**  Wire deliveries land in a per-rank inbox;
  matching, rendezvous replies, and completions happen when some local
  thread enters the library (``testsome``/``wait``/...).  A comm thread busy
  in a long callback therefore delays *all* protocol processing — §4.3.
- **Eager vs rendezvous.** Sends at or below ``costs.rendezvous_threshold``
  copy into bounce buffers and complete locally at once; larger sends issue
  an RTS and move data only after the CTS arrives, completing when the NIC
  finishes reading the buffer (FIN modelled at data-delivery time).
- **Library lock.**  Concurrent calls from multiple simulated threads
  serialize on an internal lock, reproducing the multithreaded-MPI
  behaviour studied in §6.4.3.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional, Sequence

from repro.config import MpiCosts
from repro.errors import MpiError
from repro.mpi.matching import Envelope, MatchEngine
from repro.mpi.requests import (
    PersistentRecvRequest,
    RecvRequest,
    Request,
    SendRequest,
)
from repro.network.fabric import Fabric
from repro.network.message import MessageClass, WireMessage
from repro.obs.bus import NULL_BUS, ObsBus
from repro.sim.core import Event, Process, Simulator
from repro.units import KiB

__all__ = ["MpiWorld", "MpiRank", "ANY_SOURCE"]

#: Wildcard source (``MPI_ANY_SOURCE``).
ANY_SOURCE: Optional[int] = None

#: Bytes of protocol header added to every wire message.
_HEADER = 64
#: Size of RTS/CTS control messages.
_CTRL = 64
#: Wire class threshold: small messages ride the control virtual channel.
_CTRL_CLASS_MAX = 4 * KiB


def _wire_class(size: int) -> MessageClass:
    return MessageClass.CONTROL if size <= _CTRL_CLASS_MAX else MessageClass.DATA


class MpiWorld:
    """All ranks of a simulated MPI job (one rank per fabric node)."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        costs: Optional[MpiCosts] = None,
        allow_overtaking: bool = False,
        obs: Optional[ObsBus] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.costs = costs or MpiCosts()
        self.allow_overtaking = allow_overtaking
        self.obs = obs if obs is not None else sim.obs
        self.ranks = [
            MpiRank(self, rank) for rank in range(fabric.num_nodes)
        ]
        # Deferred wire sends carry their source-side completion as a
        # ``_fin`` payload hint; the fabric applies it through this hook
        # once the destination NIC resolves the delivery time.
        fabric.register_fin_applier("mpi", self._apply_fin)

    def _apply_fin(self, node: int, ref: int) -> None:
        self.ranks[node]._apply_fin(ref)

    @property
    def size(self) -> int:
        """Number of ranks (= fabric nodes)."""
        return len(self.ranks)


class MpiRank:
    """One rank's library instance."""

    def __init__(self, world: MpiWorld, rank: int):
        self.world = world
        self.sim = world.sim
        self.costs = world.costs
        self.rank = rank
        self.faults = world.fabric.faults
        self.match = MatchEngine()
        self._inbox: deque[WireMessage] = deque()
        self._sends: dict[int, SendRequest] = {}
        self._rndv_recvs: dict[int, RecvRequest] = {}
        # Requests whose completion is delivery-driven (deferred wire
        # sends, keyed by req_id; see ``_apply_fin``).
        self._pending_fin: dict[int, tuple[str, Request]] = {}
        self._waiters: list[Event] = []
        self._locked = False
        self._lock_queue: deque[Event] = deque()
        # Per-rank instruments (null-bus: shared no-op singletons).
        obs = world.obs
        self.obs = obs
        self._c_eager = obs.counter("mpi.eager_sends", rank)
        self._c_rndv = obs.counter("mpi.rndv_sends", rank)
        self._c_unexpected = obs.counter("mpi.unexpected_msgs", rank)
        self._h_unexp_depth = obs.histogram("mpi.unexpected_depth", rank)
        self._h_posted_depth = obs.histogram("mpi.posted_depth", rank)
        world.fabric.register_handler(rank, "mpi", self._on_wire)

    # ------------------------------------------------------------------
    # wire side (no CPU charged here — the NIC delivered into the inbox)
    # ------------------------------------------------------------------

    def _on_wire(self, msg: WireMessage) -> None:
        if msg.payload["kind"] == "rma_put":
            if self.faults.enabled:
                # Fault mode: origin-side completion must follow the actual
                # delivery (the origin's predicted time would complete puts
                # whose data was dropped).  Remote ack ≈ one wire latency.
                ack = self.world.fabric.base_latency(self.rank, msg.src)
                origin = self.world.ranks[msg.src]
                self.sim.call_later(ack, origin._complete_rma, msg.payload["req"])
            # One-sided data lands directly in window memory; the target's
            # software stack never sees it (completion is origin-side only).
            return
        self._inbox.append(msg)
        self._notify()

    def _notify(self) -> None:
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            if isinstance(w, Process):
                w.wake()
            else:
                w.succeed()

    def activity_event(self) -> Event:
        """Event that fires on the next inbox delivery or completion.

        If work is already pending the event fires immediately.
        """
        evt = Event(self.sim)
        if self._inbox:
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def park(self, proc: Process) -> bool:
        """Register a parked process for the next delivery/completion.

        Returns ``False`` when inbox work is already pending — the caller
        should drain instead of parking.  Registration is deduplicated.
        """
        if self._inbox:
            return False
        if proc not in self._waiters:
            self._waiters.append(proc)
        return True

    @property
    def pending_incoming(self) -> int:
        """Wire messages delivered but not yet progressed (diagnostic)."""
        return len(self._inbox)

    # ------------------------------------------------------------------
    # internal lock (serializes concurrent threads, §6.4.3)
    # ------------------------------------------------------------------

    def _acquire(self) -> Generator:
        if not self._locked:
            self._locked = True
            return
        evt = Event(self.sim)
        self._lock_queue.append(evt)
        yield evt

    def _release(self) -> None:
        if self._lock_queue:
            self._lock_queue.popleft().succeed()
        else:
            self._locked = False

    # ------------------------------------------------------------------
    # public API (generator methods: `yield from` them)
    # ------------------------------------------------------------------

    def isend(
        self, dst: int, tag: int, size: int, payload: Any = None
    ) -> Generator[Any, Any, SendRequest]:
        """Non-blocking send.  Eager below the threshold, rendezvous above."""
        if not 0 <= dst < self.world.size:
            raise MpiError(f"invalid destination rank {dst}")
        if size < 0:
            raise MpiError("negative send size")
        yield from self._acquire()
        try:
            sreq = SendRequest(self.sim, dst, tag, size, payload)
            if size <= self.costs.rendezvous_threshold:
                sreq.protocol = "eager"
                self._c_eager.inc()
                if self.obs.enabled:
                    self.obs.emit(
                        "mpi_eager_send", self.rank, key=(self.rank, dst, tag), info=size
                    )
                yield self.costs.eager_send + size * self.costs.eager_copy_per_byte
                self.world.fabric.send(
                    WireMessage(
                        src=self.rank,
                        dst=dst,
                        size=size + _HEADER,
                        msg_class=_wire_class(size + _HEADER),
                        channel="mpi",
                        payload={
                            "kind": "eager",
                            "tag": tag,
                            "size": size,
                            "data": payload,
                            "sreq": sreq.req_id,
                        },
                    )
                )
                # Buffer copied out — locally complete immediately.
                sreq._complete()
            else:
                sreq.protocol = "rndv"
                self._c_rndv.inc()
                if self.obs.enabled:
                    self.obs.emit(
                        "mpi_rndv_rts", self.rank, key=(self.rank, dst, tag), info=size
                    )
                self._sends[sreq.req_id] = sreq
                yield self.costs.post_request
                self.world.fabric.send(
                    WireMessage(
                        src=self.rank,
                        dst=dst,
                        size=_CTRL,
                        msg_class=MessageClass.CONTROL,
                        channel="mpi",
                        payload={
                            "kind": "rts",
                            "tag": tag,
                            "size": size,
                            "sreq": sreq.req_id,
                        },
                    )
                )
            return sreq
        finally:
            self._release()

    def irecv(
        self, src: Optional[int], tag: Optional[int], max_size: int
    ) -> Generator[Any, Any, RecvRequest]:
        """Non-blocking receive; ``src=None`` is ``MPI_ANY_SOURCE``."""
        yield from self._acquire()
        try:
            rreq = RecvRequest(self.sim, src, tag, max_size)
            yield self.costs.post_request
            env = self.match.post_recv(rreq)
            if env is not None:
                yield from self._match_found(rreq, env)
            else:
                self._h_posted_depth.observe(self.match.posted_count)
            return rreq
        finally:
            self._release()

    def recv_init(
        self, src: Optional[int], tag: Optional[int], max_size: int
    ) -> PersistentRecvRequest:
        """Create (but do not start) a persistent receive."""
        return PersistentRecvRequest(self.sim, src, tag, max_size)

    def start(self, preq: PersistentRecvRequest) -> Generator:
        """Arm (or re-arm) a persistent receive — ``MPI_Start``."""
        yield from self._acquire()
        try:
            yield self.costs.restart_persistent
            preq._rearm()
            env = self.match.post_recv(preq)
            if env is not None:
                yield from self._match_found(preq, env)
        finally:
            self._release()

    def testsome(
        self, requests: Sequence[Request]
    ) -> Generator[Any, Any, list[int]]:
        """Progress the library, then report indices of completed active
        requests (deactivating them, like ``MPI_Testsome``)."""
        yield from self._acquire()
        try:
            yield from self._progress_locked()
            active = [r for r in requests if r is not None and r.active]
            yield (self.costs.testsome_base
                   + self.costs.testsome_per_request * len(active))
            out = []
            for i, req in enumerate(requests):
                if req is not None and req.active and req.done:
                    req.active = False
                    out.append(i)
            return out
        finally:
            self._release()

    def progress(self) -> Generator[Any, Any, int]:
        """Drain the inbox, running protocol state machines; returns the
        number of wire messages processed."""
        yield from self._acquire()
        try:
            return (yield from self._progress_locked())
        finally:
            self._release()

    def wait(self, req: Request) -> Generator[Any, Any, Request]:
        """Block (progressing) until ``req`` completes."""
        while True:
            yield from self._acquire()
            try:
                yield from self._progress_locked()
                if req.done:
                    req.active = False
                    return req
            finally:
                self._release()
            yield self.activity_event()

    # ------------------------------------------------------------------
    # one-sided (RMA) operations on dynamic windows — §4.2.2 alternative
    # ------------------------------------------------------------------

    def win_attach(self, size: int) -> Generator:
        """Attach memory to the dynamic window (expensive, see [25])."""
        yield self.costs.win_attach

    def win_detach(self) -> Generator:
        """Detach memory from the dynamic window."""
        yield self.costs.win_detach

    def rma_put(
        self, dst: int, size: int, payload: Any = None
    ) -> Generator[Any, Any, Request]:
        """MPI_Put into the target's (already attached) window memory.

        True one-sided: the target's CPU is not involved; the returned
        request completes when the data has been written remotely (i.e. a
        subsequent flush would return).  There is **no remote notification**
        — the caller must signal the target separately, which is exactly
        why the PaRSEC put interface is awkward over standard MPI RMA.
        """
        if not 0 <= dst < self.world.size:
            raise MpiError(f"invalid RMA target rank {dst}")
        yield from self._acquire()
        try:
            req = Request(self.sim)
            yield self.costs.rma_put_post
            fabric = self.world.fabric
            wire_payload = {"kind": "rma_put", "size": size, "data": payload}
            deferred = fabric.defers_wire and dst != self.rank
            if self.faults.enabled:
                # The request rides along so the target can schedule the
                # origin-side completion at actual delivery (see _on_wire).
                wire_payload["req"] = req
            elif deferred:
                # Deferred wire put (serial epoch flush or partitioned
                # barrier): origin completion is applied one ack latency
                # after the resolved delivery via the ``_fin`` hint.
                ack = fabric.base_latency(dst, self.rank)
                wire_payload["_fin"] = (req.req_id, ack)
                self._pending_fin[req.req_id] = ("rma", req)
            deliver = fabric.send(
                WireMessage(
                    src=self.rank,
                    dst=dst,
                    size=size + _HEADER,
                    msg_class=MessageClass.DATA,
                    channel="mpi",
                    payload=wire_payload,
                )
            )
            if not self.faults.enabled and not deferred:
                # Remote completion detected by flush ≈ one ack latency later.
                ack = fabric.base_latency(dst, self.rank)
                self.sim.call_later(
                    deliver - self.sim.now + ack, self._complete_rma, req
                )
            return req
        finally:
            self._release()

    def flush(self, req: Request) -> Generator:
        """MPI_Win_flush: wait for an RMA operation's remote completion."""
        yield self.costs.rma_flush
        if not req.done:
            yield from self.wait(req)

    def _complete_rma(self, req: Request) -> None:
        req._complete()
        self._notify()

    def send(self, dst: int, tag: int, size: int, payload: Any = None):
        """Blocking send (the backend uses this for active messages)."""
        sreq = yield from self.isend(dst, tag, size, payload)
        if not sreq.done:
            yield from self.wait(sreq)
        return sreq

    def recv(self, src: Optional[int], tag: Optional[int], max_size: int):
        """Blocking receive."""
        rreq = yield from self.irecv(src, tag, max_size)
        if not rreq.done:
            yield from self.wait(rreq)
        return rreq

    # ------------------------------------------------------------------
    # protocol internals
    # ------------------------------------------------------------------

    def _progress_locked(self) -> Generator[Any, Any, int]:
        n = 0
        while self._inbox:
            msg = self._inbox.popleft()
            yield self.costs.match
            yield from self._handle(msg)
            walked = self.match.take_walked()
            if walked:
                yield walked * self.costs.match_per_queue_entry
            n += 1
        return n

    def _handle(self, msg: WireMessage) -> Generator:
        p = msg.payload
        kind = p["kind"]
        if kind == "eager":
            env = Envelope(
                src=msg.src, tag=p["tag"], size=p["size"], kind="eager",
                payload=p["data"], sreq_id=p["sreq"],
            )
            rreq = self.match.arrive(env)
            if rreq is not None:
                yield from self._match_found(rreq, env)
            else:
                self._note_unexpected()
                # Unexpected eager: copy into a temporary buffer now.
                yield env.size * self.costs.eager_copy_per_byte
        elif kind == "rts":
            env = Envelope(
                src=msg.src, tag=p["tag"], size=p["size"], kind="rts",
                sreq_id=p["sreq"],
            )
            rreq = self.match.arrive(env)
            if rreq is not None:
                yield from self._match_found(rreq, env)
            else:
                self._note_unexpected()
        elif kind == "cts":
            sreq = self._sends.pop(p["sreq"], None)
            if sreq is None:
                raise MpiError(f"CTS for unknown send request {p['sreq']}")
            if self.obs.enabled:
                self.obs.emit(
                    "mpi_rndv_cts", self.rank,
                    key=(sreq.dst, self.rank, sreq.tag), info=sreq.size,
                )
            yield self.costs.rendezvous_ctrl + self.costs.post_request
            fabric = self.world.fabric
            rdata_payload = {
                "kind": "rdata",
                "rreq": p["rreq"],
                "size": sreq.size,
                "data": sreq.payload,
            }
            deferred = fabric.defers_wire and sreq.dst != self.rank
            if deferred:
                # Deferred wire send: local completion is modelled at data
                # delivery, which is only resolved at ejection (the serial
                # epoch flush, or the destination partition's barrier
                # deliver) — it comes back through the ``_fin`` hint
                # (extra 0.0 keeps the timestamp identical).
                rdata_payload["_fin"] = (sreq.req_id, 0.0)
                self._pending_fin[sreq.req_id] = ("send", sreq)
            deliver = fabric.send(
                WireMessage(
                    src=self.rank,
                    dst=sreq.dst,
                    size=sreq.size + _HEADER,
                    msg_class=MessageClass.DATA,
                    channel="mpi",
                    payload=rdata_payload,
                )
            )
            if not deferred:
                # Local completion when the NIC has read the buffer; modelled
                # at data delivery (a FIN would arrive one latency later —
                # folded in).
                self.sim.call_later(
                    deliver - self.sim.now, self._complete_send, sreq
                )
        elif kind == "rdata":
            rreq = self._rndv_recvs.pop(p["rreq"], None)
            if rreq is None:
                raise MpiError(f"rendezvous data for unknown recv {p['rreq']}")
            if self.obs.enabled:
                self.obs.emit(
                    "mpi_rndv_data", self.rank,
                    key=(msg.src, self.rank, p.get("size")), info=p["size"],
                )
            rreq.recv_size = p["size"]
            rreq.payload = p["data"]
            rreq._complete()
            self._notify()
        else:  # pragma: no cover - defensive
            raise MpiError(f"unknown wire message kind {kind!r}")

    def _match_found(self, rreq: RecvRequest, env: Envelope) -> Generator:
        if env.size > rreq.max_size:
            raise MpiError(
                f"message truncation: incoming {env.size} B > posted {rreq.max_size} B"
            )
        rreq.source = env.src
        rreq.recv_tag = env.tag
        if env.kind == "eager":
            yield env.size * self.costs.eager_copy_per_byte
            rreq.recv_size = env.size
            rreq.payload = env.payload
            rreq._complete()
            self._notify()
        else:  # rendezvous RTS: reply CTS, park until rdata arrives
            yield self.costs.rendezvous_ctrl
            self._rndv_recvs[rreq.req_id] = rreq
            self.world.fabric.send(
                WireMessage(
                    src=self.rank,
                    dst=env.src,
                    size=_CTRL,
                    msg_class=MessageClass.CONTROL,
                    channel="mpi",
                    payload={"kind": "cts", "sreq": env.sreq_id, "rreq": rreq.req_id},
                )
            )

    def _note_unexpected(self) -> None:
        """Sample the unexpected-message queue after an unmatched arrival."""
        self._c_unexpected.inc()
        self._h_unexp_depth.observe(self.match.unexpected_count)

    def _complete_send(self, sreq: SendRequest) -> None:
        sreq._complete()
        self._notify()

    def _apply_fin(self, ref: int) -> None:
        """Apply a deferred source-side completion (``_fin`` hint).

        ``ref`` is the ``req_id`` registered in ``_pending_fin`` when the
        send/put was issued.  The serial fabric's epoch flush and the
        partition driver's barrier notices both land here, at the same
        timestamp by construction.
        """
        kind, req = self._pending_fin.pop(ref)
        if kind == "send":
            self._complete_send(req)
        else:
            self._complete_rma(req)
