"""MPI request objects.

A request is the handle for one in-flight communication.  ``done`` flips
exactly once per *activation* (persistent requests can be re-started);
``event`` is a fresh simulation event per activation so blocking waiters can
park on it.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import MpiError
from repro.sim.core import Event, Simulator

__all__ = ["Request", "SendRequest", "RecvRequest", "PersistentRecvRequest"]

_req_ids = itertools.count()


class Request:
    """Base request: completion flag + waitable event."""

    __slots__ = ("sim", "req_id", "done", "event", "active")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.req_id = next(_req_ids)
        self.done = False
        self.active = True
        self.event = Event(sim)

    def _complete(self) -> None:
        if self.done:
            raise MpiError(f"request {self.req_id} completed twice")
        self.done = True
        self.event.succeed(self)


class SendRequest(Request):
    """An in-flight send (eager or rendezvous)."""

    __slots__ = ("dst", "tag", "size", "payload", "protocol")

    def __init__(self, sim: Simulator, dst: int, tag: int, size: int, payload: Any):
        super().__init__(sim)
        self.dst = dst
        self.tag = tag
        self.size = size
        self.payload = payload
        self.protocol: str = ""  # "eager" | "rndv", set by the library


class RecvRequest(Request):
    """An in-flight receive.  ``source``/``recv_tag``/``recv_size``/``payload``
    are filled at match/completion time (like ``MPI_Status``)."""

    __slots__ = ("src", "tag", "max_size", "source", "recv_tag", "recv_size", "payload")

    def __init__(self, sim: Simulator, src: Optional[int], tag: Optional[int], max_size: int):
        super().__init__(sim)
        self.src = src  # None = MPI_ANY_SOURCE
        self.tag = tag  # None = MPI_ANY_TAG
        self.max_size = max_size
        self.source: Optional[int] = None
        self.recv_tag: Optional[int] = None
        self.recv_size: Optional[int] = None
        self.payload: Any = None


class PersistentRecvRequest(RecvRequest):
    """A persistent receive (``MPI_Recv_init``): re-armable with ``start``.

    Between completion and the next ``start`` the request is inactive and is
    ignored by ``testsome``.
    """

    __slots__ = ()

    def __init__(self, sim: Simulator, src: Optional[int], tag: Optional[int], max_size: int):
        super().__init__(sim, src, tag, max_size)
        self.active = False  # must be started first

    def _rearm(self) -> None:
        if self.active and not self.done:
            raise MpiError("MPI_Start on an already-active persistent request")
        self.done = False
        self.active = True
        self.source = None
        self.recv_tag = None
        self.recv_size = None
        self.payload = None
        self.event = Event(self.sim)
