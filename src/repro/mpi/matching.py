"""Two-sided message matching.

MPI matching semantics: an incoming message matches the earliest posted
receive whose (source, tag) pattern is compatible; a newly posted receive
matches the earliest compatible unexpected message.  Wildcards:
``src=None`` ⇒ ``MPI_ANY_SOURCE``, ``tag=None`` ⇒ ``MPI_ANY_TAG``.

With ``allow_overtaking`` (the MPI-4 ``mpi_assert_allow_overtaking`` info
key, which PaRSEC sets — §4.2.2) the implementation is *permitted* to match
out of order; we additionally use it to model the cheaper matching path
(shorter queue walks) by exposing the walked-entries count to the cost model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.mpi.requests import RecvRequest

__all__ = ["Envelope", "MatchEngine"]


@dataclass
class Envelope:
    """Metadata of an arrived-but-unmatched message (header only for
    rendezvous; carries data reference for eager)."""

    src: int
    tag: int
    size: int
    kind: str  # "eager" | "rts"
    payload: Any = None
    sreq_id: int = -1


def _compatible(recv: RecvRequest, src: int, tag: int) -> bool:
    return (recv.src is None or recv.src == src) and (
        recv.tag is None or recv.tag == tag
    )


class MatchEngine:
    """Posted-receive and unexpected-message queues for one rank."""

    def __init__(self) -> None:
        self.posted: deque[RecvRequest] = deque()
        self.unexpected: deque[Envelope] = deque()
        #: Queue entries walked since last reset — feeds the match-cost model.
        self.walked = 0
        #: High-watermarks, sampled by the observability layer at run end.
        self.max_posted = 0
        self.max_unexpected = 0
        #: Optional soundness audit: ``audit(op, recv, env)`` is invoked on
        #: every ``post``/``arrive`` with the match partner (``None`` when
        #: the request/envelope was queued instead).  Installed by the
        #: schedule explorer's matching-soundness invariant; ``None`` (the
        #: default) costs one attribute test per operation.
        self.audit = None

    def post_recv(self, recv: RecvRequest) -> Optional[Envelope]:
        """Post a receive; returns the matching unexpected envelope if one
        was already waiting, else queues the receive."""
        for i, env in enumerate(self.unexpected):
            self.walked += 1
            if _compatible(recv, env.src, env.tag):
                del self.unexpected[i]
                if self.audit is not None:
                    self.audit("post", recv, env)
                return env
        self.posted.append(recv)
        if len(self.posted) > self.max_posted:
            self.max_posted = len(self.posted)
        if self.audit is not None:
            self.audit("post", recv, None)
        return None

    def arrive(self, env: Envelope) -> Optional[RecvRequest]:
        """An envelope arrived off the wire; returns the matching posted
        receive if any, else queues the envelope as unexpected."""
        for i, recv in enumerate(self.posted):
            self.walked += 1
            if _compatible(recv, env.src, env.tag):
                del self.posted[i]
                if self.audit is not None:
                    self.audit("arrive", recv, env)
                return recv
        self.unexpected.append(env)
        if len(self.unexpected) > self.max_unexpected:
            self.max_unexpected = len(self.unexpected)
        if self.audit is not None:
            self.audit("arrive", None, env)
        return None

    def cancel(self, recv: RecvRequest) -> bool:
        """Remove a posted receive (MPI_Cancel); True when it was queued."""
        try:
            self.posted.remove(recv)
            if self.audit is not None:
                self.audit("cancel", recv, None)
            return True
        except ValueError:
            return False

    def take_walked(self) -> int:
        """Return and reset the walked-entry counter."""
        n, self.walked = self.walked, 0
        return n

    @property
    def posted_count(self) -> int:
        """Receives posted and not yet matched."""
        return len(self.posted)

    @property
    def unexpected_count(self) -> int:
        """Arrived messages awaiting a matching receive."""
        return len(self.unexpected)
