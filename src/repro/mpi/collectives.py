"""Collective operations over the simulated MPI library.

The paper's methodology uses collectives between benchmark executions
(barriers separating the 18 runs, broadcast of configuration) and its clock
synchronisation is hierarchical over groups.  These are implemented purely
in terms of the point-to-point layer, with the standard algorithms:

- :func:`barrier` — dissemination barrier, ⌈log₂ P⌉ rounds;
- :func:`bcast` — binomial-tree broadcast;
- :func:`allreduce` — recursive doubling (value + commutative op).

Each rank runs its call in its own simulated thread:
``yield from barrier(world.ranks[r], tag_base=...)``.  A given ``tag_base``
must not be reused until the collective completes (no communicator
contexts in the model — the caller provides disjoint tag ranges).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import MpiError
from repro.mpi.world import MpiRank

__all__ = ["barrier", "bcast", "allreduce", "COLLECTIVE_TAG_BASE"]

#: Default tag range for collectives; far above the runtime's AM/data tags.
COLLECTIVE_TAG_BASE = 1_000_000


def _log2_rounds(n: int) -> int:
    rounds = 0
    while (1 << rounds) < n:
        rounds += 1
    return rounds


def barrier(rank: MpiRank, tag_base: int = COLLECTIVE_TAG_BASE) -> Generator:
    """Dissemination barrier: no rank leaves before every rank has entered."""
    n = rank.world.size
    me = rank.rank
    for k in range(_log2_rounds(n)):
        dist = 1 << k
        dst = (me + dist) % n
        src = (me - dist) % n
        sreq = yield from rank.isend(dst, tag_base + k, 1)
        yield from rank.recv(src, tag_base + k, 64)
        if not sreq.done:
            yield from rank.wait(sreq)


def bcast(
    rank: MpiRank,
    root: int,
    size: int,
    payload: Any = None,
    tag_base: int = COLLECTIVE_TAG_BASE + 100,
) -> Generator[Any, Any, Any]:
    """Binomial-tree broadcast; returns the payload on every rank."""
    n = rank.world.size
    if not 0 <= root < n:
        raise MpiError(f"invalid bcast root {root}")
    # Rotate so the root is virtual rank 0.
    vrank = (rank.rank - root) % n
    rounds = _log2_rounds(n)
    value = payload
    if vrank != 0:
        # Receive from the virtual parent: clear the lowest set bit.
        parent_v = vrank & (vrank - 1)
        parent = (parent_v + root) % n
        rreq = yield from rank.recv(parent, tag_base + vrank, size)
        value = rreq.payload
    # Forward to children: set each higher bit beyond the lowest set bit.
    low = 1
    while vrank & low == 0 and low < n:
        child_v = vrank | low
        if child_v != vrank and child_v < n:
            child = (child_v + root) % n
            yield from rank.send(child, tag_base + child_v, size, payload=value)
        low <<= 1
        if vrank == 0 and low >= n:
            break
    return value


def allreduce(
    rank: MpiRank,
    value: Any,
    op: Callable[[Any, Any], Any],
    size: int = 8,
    tag_base: int = COLLECTIVE_TAG_BASE + 10_000,
) -> Generator[Any, Any, Any]:
    """Recursive-doubling allreduce for power-of-two rank counts; falls back
    to gather-to-0 + bcast otherwise.  ``op`` must be commutative."""
    n = rank.world.size
    me = rank.rank
    if n & (n - 1) == 0:
        acc = value
        for k in range(_log2_rounds(n)):
            peer = me ^ (1 << k)
            sreq = yield from rank.isend(peer, tag_base + k, size, payload=acc)
            rreq = yield from rank.recv(peer, tag_base + k, max(size, 64))
            if not sreq.done:
                yield from rank.wait(sreq)
            acc = op(acc, rreq.payload)
        return acc
    # Non-power-of-two fallback.
    if me == 0:
        acc = value
        for src in range(1, n):
            rreq = yield from rank.recv(src, tag_base + 500 + src, max(size, 64))
            acc = op(acc, rreq.payload)
        result = yield from bcast(rank, 0, size, payload=acc, tag_base=tag_base + 600)
        return result
    yield from rank.send(0, tag_base + 500 + me, size, payload=value)
    result = yield from bcast(rank, 0, size, tag_base=tag_base + 600)
    return result
