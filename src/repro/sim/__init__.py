"""Deterministic discrete-event simulation kernel.

A minimal-but-complete simpy-style kernel: a :class:`Simulator` drives a heap
of timestamped events; generator coroutines (:class:`Process`) yield
*waitables* (timeouts, one-shot :class:`Event` completions, store gets, ...)
and are resumed when those complete.  Tie-breaking is by schedule order, so
every run is bit-for-bit reproducible.

Kernel selection goes through :func:`build_simulator` — the one place that
knows about the serial epoch-batched core, the frozen ``REPRO_SIM_CORE=
legacy`` twin, and the partitioned (PDES) worker kernel.  Constructing
:class:`Simulator` directly from user code is deprecated (a
:class:`DeprecationWarning` shim delegates identically); internal modules
import the class from :mod:`repro.sim.core`, which stays warning-free.
"""

import warnings

from repro.sim.core import Simulator as _CoreSimulator
from repro.sim.core import (
    Event,
    Timeout,
    Process,
    Interrupt,
    AllOf,
    AnyOf,
    PARK,
)
from repro.sim.primitives import (
    Store,
    PriorityStore,
    Resource,
    Semaphore,
    Latch,
    NotifyQueue,
)
from repro.sim.rng import RngStreams
from repro.sim.clock import NodeClock, ClockEnsemble, hunold_synchronize
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "Simulator",
    "build_simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "PARK",
    "Store",
    "PriorityStore",
    "Resource",
    "Semaphore",
    "Latch",
    "NotifyQueue",
    "RngStreams",
    "NodeClock",
    "ClockEnsemble",
    "hunold_synchronize",
    "TraceRecorder",
    "TraceEvent",
]


def build_simulator(config=None, *, obs=None, policy=None):
    """Build the right DES kernel for a run — the one construction point.

    ``config`` is ``None`` for a serial in-process run (returns the core
    :class:`~repro.sim.core.Simulator`, honouring the ``REPRO_SIM_CORE=
    legacy`` twin selected at import time) or a
    :class:`~repro.config.PartitionConfig` for a partitioned run (returns
    a :class:`~repro.sim.partition.PartitionSimulator`, the window-capable
    kernel a partition worker drives).  ``obs``/``policy`` forward to the
    kernel constructor unchanged.

    This factory is the supported public entry point; constructing
    :class:`Simulator` directly still works but emits a
    :class:`DeprecationWarning`.
    """
    if config is None:
        return _CoreSimulator(obs=obs, policy=policy)
    from repro.config import PartitionConfig
    from repro.errors import ConfigError

    if not isinstance(config, PartitionConfig):
        raise ConfigError(
            f"build_simulator expects a PartitionConfig or None, "
            f"got {type(config).__name__}"
        )
    from repro.sim.partition import PartitionSimulator

    return PartitionSimulator(obs=obs, policy=policy)


class Simulator(_CoreSimulator):
    """Deprecated direct-construction shim over the selected DES core.

    ``repro.sim.Simulator(...)`` still builds the exact kernel
    :func:`build_simulator` would pick for a serial run — same class
    hierarchy, same behaviour, bit-identical schedules — but direct
    construction from user code is deprecated in favour of the factory,
    which also knows about the partitioned core.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "constructing repro.sim.Simulator directly is deprecated; use "
            "repro.sim.build_simulator(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
