"""Deterministic discrete-event simulation kernel.

A minimal-but-complete simpy-style kernel: a :class:`Simulator` drives a heap
of timestamped events; generator coroutines (:class:`Process`) yield
*waitables* (timeouts, one-shot :class:`Event` completions, store gets, ...)
and are resumed when those complete.  Tie-breaking is by schedule order, so
every run is bit-for-bit reproducible.
"""

from repro.sim.core import (
    Simulator,
    Event,
    Timeout,
    Process,
    Interrupt,
    AllOf,
    AnyOf,
    PARK,
)
from repro.sim.primitives import (
    Store,
    PriorityStore,
    Resource,
    Semaphore,
    Latch,
    NotifyQueue,
)
from repro.sim.rng import RngStreams
from repro.sim.clock import NodeClock, ClockEnsemble, hunold_synchronize
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "PARK",
    "Store",
    "PriorityStore",
    "Resource",
    "Semaphore",
    "Latch",
    "NotifyQueue",
    "RngStreams",
    "NodeClock",
    "ClockEnsemble",
    "hunold_synchronize",
    "TraceRecorder",
    "TraceEvent",
]
