"""Structured tracing of simulation events — compatibility facade.

The paper measures end-to-end communication latency "from send of the
ACTIVATE message to arrival of data for individual flows" (§6.4.2) using
synchronized clocks.  Historically each subsystem recorded into a flat
:class:`TraceRecorder`; the stack now emits through the typed observability
bus (:mod:`repro.obs`), and :class:`TraceRecorder` survives as a thin facade
over a bus's in-memory sink so existing analysis code and tests keep
working.

``TraceEvent`` is an alias of :class:`repro.obs.events.ObsEvent` — the
field layout is unchanged (``time``, ``kind``, ``node``, ``key``, ``info``,
``local_time``) plus the new ``phase`` marker.

``by_kind``/``by_key`` are now index lookups (O(matching events)) instead of
full scans: the memory sink maintains both indexes as events are recorded.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.bus import NULL_BUS, ObsBus
from repro.obs.events import ObsEvent

__all__ = ["TraceEvent", "TraceRecorder"]

#: Backwards-compatible name for the bus event record.
TraceEvent = ObsEvent

_EMPTY: list = []


class TraceRecorder:
    """A queryable view over an observability bus; cheap no-op when disabled.

    Standalone construction (``TraceRecorder()``) creates a private
    :class:`~repro.obs.bus.ObsBus`; passing ``bus=`` wraps an existing one
    (this is what :class:`~repro.runtime.context.ParsecContext` does, so
    ``ctx.trace`` and ``ctx.obs`` see the same events).
    """

    def __init__(self, enabled: bool = True, bus: Optional[ObsBus] = None):
        if bus is None:
            bus = ObsBus() if enabled else NULL_BUS
        elif bus.enabled and bus.memory is None:
            raise ValueError("TraceRecorder requires a bus with a memory sink")
        self.enabled = bus.enabled
        self.bus = bus
        self._mem = bus.memory

    @property
    def events(self) -> list[TraceEvent]:
        """Every recorded event, in emission order."""
        return self._mem.events if self._mem is not None else _EMPTY

    def record(  # one timestamped row; no-op when disabled
        self,
        time: float,
        kind: str,
        node: int,
        key: Any = None,
        info: Any = None,
        local_time: Optional[float] = None,
    ) -> None:
        self.bus.emit(kind, node, key=key, info=info, time=time, local_time=local_time)

    def by_kind(self, kind: str) -> list[TraceEvent]:
        """Events of ``kind``, in emission order (indexed lookup)."""
        return self._mem.by_kind(kind) if self._mem is not None else _EMPTY

    def by_key(self, key: Any) -> list[TraceEvent]:
        """Events with ``key``, in emission order (indexed lookup)."""
        return self._mem.by_key(key) if self._mem is not None else _EMPTY

    def clear(self) -> None:
        """Drop all recorded events (and their indexes)."""
        if self._mem is not None:
            self._mem.clear()

    def __len__(self) -> int:
        return len(self._mem) if self._mem is not None else 0
