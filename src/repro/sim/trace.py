"""Structured tracing of simulation events.

The paper measures end-to-end communication latency "from send of the
ACTIVATE message to arrival of data for individual flows" (§6.4.2) using
synchronized clocks.  The :class:`TraceRecorder` captures timestamped records
from any subsystem; analysis code (``repro.analysis.latency``) joins them
into per-flow latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record.

    ``time`` is global simulated time; ``local_time`` is the (possibly
    skewed) node-local clock reading, present when a clock was supplied.
    """

    time: float
    kind: str
    node: int
    key: Any = None
    info: Any = None
    local_time: Optional[float] = None


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records; cheap no-op when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(  # one timestamped row; no-op when disabled
        self,
        time: float,
        kind: str,
        node: int,
        key: Any = None,
        info: Any = None,
        local_time: Optional[float] = None,
    ) -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, kind, node, key, info, local_time))

    def by_kind(self, kind: str) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.kind == kind)

    def by_key(self, key: Any) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.key == key)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
