"""Conservative-synchronization partitioned parallel DES (PDES).

The serial kernel processes every event of a simulated cluster in one
process.  This module splits the simulated *nodes* across worker
processes: each worker owns a contiguous block of ranks (see
:func:`repro.network.fabric.partition_owner`), rebuilds the whole world
from the same job description — construction is passive, so only owned
nodes get threads and load — and drives its own
:class:`PartitionSimulator` through *windows* bounded by the LogGP link
latency ``L`` (the lookahead: no wire message can take effect sooner
than ``L`` after it was injected).

Synchronization is a two-round-trip barrier per window, run by a
coordinator in the parent process over one pipe per worker:

1. ``advance(notices, H)`` → workers apply pending source-side
   completion notices and run their heaps up to the global horizon
   ``H``; deferred wire sends accumulate as
   :class:`~repro.network.fabric.WireRecord` entries.
2. ``sent`` ← each worker's outbox.  The coordinator sorts the
   concatenation by the canonical ``(inject, src, seq)`` total order —
   the same key the serial fabric's end-of-epoch flush replays — and
   buckets records by the destination's owner.  Same-timestamp ties
   therefore resolve identically in both engines by construction,
   without any partition having to observe global execution order.
3. ``deliver(records)`` → each worker ejects its records at the
   destination NICs in canonical order (:meth:`PartitionFabric.
   eject_delivery`) and converts ``_fin`` payload hints into source-side
   completion notices (queued locally when the source is owned, reported
   otherwise).  Heap insertion is *deferred*: deliveries and fins are
   queued tagged with their originating send's global merge position and
   inserted at the next ``advance`` in that order — the serial kernel
   schedules both at send time, so this replays its insertion order and
   resolves equal-fire-time ties identically.
4. ``state`` ← each worker's next-event time, foreign notices, and task
   count.  The coordinator computes the next horizon ``H' = min(all
   next-event times ∪ all notice times) + L``; clamping by unapplied
   notice times is what makes reporting before application safe.

Safety: the earliest event in window ``k`` is exactly ``m = H_k − L``,
so any wire send in the window happens at ``t ≥ m`` and delivers at
``t + ≥L ≥ H_k`` — never in a worker's past.  Termination is global
quiescence (every heap empty, no records or notices in flight), after
which the coordinator verifies the summed task count and merges the
per-partition stats fragments into one :class:`~repro.runtime.context.
RunStats` whose floats match the serial kernel bit for bit (validated by
``tools/check_fault_determinism.py`` for partitions ∈ {1, 2, 4}).

Crash handling rides the supervision idioms of
:mod:`repro.supervise.pool`: a worker that dies (EOF) or stalls past the
heartbeat timeout is a *transient* failure — the coordinator kills the
fleet and retries the whole run (results are deterministic, so a retry
is indistinguishable from an undisturbed run).  Guard aborts
(:class:`~repro.errors.SupervisionError`) are re-raised without retry,
carrying the aborting worker's salvaged partial stats.
"""

from __future__ import annotations

import math
import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import (
    ConfigError,
    NetworkError,
    RuntimeBackendError,
    SupervisionError,
)
from repro.network.fabric import WIRE_MERGE_KEY, partition_owner
from repro.sim.core import Simulator

__all__ = [
    "PartitionRole",
    "PartitionSimulator",
    "lookahead_bound",
    "run_partitioned_graph",
]

#: Environment hook for crash testing: ``kill:<worker>:<window>`` makes
#: that worker SIGKILL itself at the start of that window — on the first
#: attempt only, so the supervised retry completes and the run result is
#: identical to an undisturbed one.
CHAOS_ENV = "REPRO_PARTITION_CHAOS"


@dataclass(frozen=True)
class PartitionRole:
    """This worker's place in a partitioned run.

    ``owner`` maps every node rank to its partition index; the context
    uses it to decide which nodes to load/thread and the fabric uses it
    to classify sends.
    """

    index: int
    partitions: int
    owner: tuple

    def __post_init__(self):
        if not 0 <= self.index < self.partitions:
            raise ConfigError(
                f"partition index {self.index} outside "
                f"[0, {self.partitions})"
            )


class PartitionSimulator(Simulator):
    """The DES kernel a partition worker drives window by window.

    Identical event semantics to the serial core (it *is* the selected
    core class, including the ``REPRO_SIM_CORE=legacy`` twin) — the only
    addition is window bookkeeping, because the partition driver calls
    ``run(until=horizon)`` repeatedly instead of once.
    """

    def __init__(self, obs=None, policy=None):
        super().__init__(obs=obs, policy=policy)
        #: Windows completed so far (diagnostics; the driver increments).
        self.windows_run = 0


def lookahead_bound(fabric) -> float:
    """The conservative lookahead ``L``: the minimum base wire latency.

    Taken over *all* ordered node pairs — not just cross-partition ones —
    because every wire send (including intra-partition) defers to the
    barrier and must deliver no earlier than the window horizon.  A
    single-node fabric has no wire pairs and returns ``inf`` (windows
    then run to local exhaustion).
    """
    n = fabric.num_nodes
    best = math.inf
    for src in range(n):
        for dst in range(n):
            if src != dst:
                lat = fabric.base_latency(src, dst)
                if lat < best:
                    best = lat
    if n > 1 and not best > 0.0:
        raise NetworkError(
            f"non-positive minimum link latency {best!r}: conservative "
            f"partitioned execution needs strictly positive lookahead"
        )
    return best


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


def _chaos_window(wid: int, attempt: int) -> Optional[int]:
    """Window at which this worker should SIGKILL itself (chaos hook)."""
    spec = os.environ.get(CHAOS_ENV, "")
    if not spec or attempt != 0:
        return None
    try:
        action, target, window = spec.split(":")
        if action == "kill" and int(target) == wid:
            return int(window)
    except ValueError:
        pass
    return None


def _fin_call(ctx, channel: str, node: int, ref: int):
    """The ``(fn, args)`` applying one source-side completion notice."""
    if channel == "lci":
        device = ctx.lci_world.devices[node]
        return device._push_hw, (("fin", ref),)
    if channel == "mpi":
        rank = ctx.mpi_world.ranks[node]
        return rank._apply_fin, (ref,)
    raise RuntimeBackendError(f"unknown fin channel {channel!r}")


class _PeerLost(Exception):
    """A peer worker's pipe broke mid-exchange: the fleet is dying.

    The worker exits silently — its coordinator pipe closes, the
    coordinator sees EOF and treats the whole fleet as transiently dead
    (:class:`_WorkerDied`), exactly as when the peer's own pipe closes.
    """


def _exchange(peers, payload):
    """One all-to-all round over the pairwise worker pipes.

    ``peers`` is this worker's row of the fleet's pipe matrix (``None``
    at its own index, and ``None`` entirely for a single-worker fleet).
    Sends ``payload`` to every peer, then returns the per-partition
    payloads in partition-index order (own payload included) — every
    worker sees the identical list, which is what lets each one replay
    the same canonical merge the coordinator protocol computes
    centrally.  Writes complete before any read: exchange payloads are
    small (a window's records and completion notices), far below the
    pipe buffer, so the write fan-out cannot deadlock.
    """
    if peers is None:
        return [payload]
    for conn in peers:
        if conn is not None:
            try:
                conn.send(payload)
            except (BrokenPipeError, OSError):
                raise _PeerLost from None
    gathered = []
    for conn in peers:
        if conn is None:
            gathered.append(payload)
        else:
            try:
                gathered.append(conn.recv())
            except (EOFError, OSError):
                raise _PeerLost from None
    return gathered


def _worker_main(wid: int, job: dict, conn, peer_rows=None) -> None:
    """One partition worker: build the world, then serve barrier rounds."""
    ctx = None
    workers = 0
    try:
        peers = None
        if peer_rows is not None:
            # Own exactly one row of the fleet's pairwise-pipe matrix;
            # close every other inherited endpoint so a dead peer's pipe
            # reads EOF promptly instead of staying half-open here.
            peers = peer_rows[wid]
            for k, row in enumerate(peer_rows):
                if k == wid:
                    continue
                for c in row:
                    if c is not None:
                        c.close()

        from repro.runtime.context import ParsecContext

        role = PartitionRole(
            index=wid, partitions=job["partitions"], owner=job["owner"]
        )
        cfg, platform = job["cfg"], job["platform"]
        graph = job["builder"](cfg, platform)
        ctx = ParsecContext(
            platform,
            backend=job["backend"],
            partition_role=role,
            **job["ctx_kwargs"],
        )
        workers = ctx.partition_prepare(graph, guards=job["guards"])
        sim, fabric = ctx.sim, ctx.fabric
        lookahead = lookahead_bound(fabric)
        conn.send(("ready", wid, lookahead, graph.num_tasks))
        if job.get("lookahead_override") is not None:
            # Same tightening the coordinator applies — both sides must
            # compute bit-identical horizons.
            lookahead = min(lookahead, job["lookahead_override"])
        chaos_at = _chaos_window(wid, job["attempt"])
        # Deferred heap insertions: ``(win, pos, sub, when, fn, args)``.
        # The serial kernel schedules a send's delivery handler and its
        # source-side completion *at send time*, so equal-fire-time ties
        # resolve by send order.  Replaying that order needs every
        # deferred insertion — delivery or fin, local or foreign — to
        # enter the heap sorted by the originating send's global merge
        # position (``sub`` keeps delivery-before-fin within one send).
        pending: list = []
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "advance":
                _, notices, horizon = msg
                for when, win, pos, channel, node, ref in notices:
                    fn, args = _fin_call(ctx, channel, node, ref)
                    pending.append((win, pos, 1, when, fn, args))
                pending.sort(key=lambda e: (e[0], e[1], e[2]))
                for _, _, _, when, fn, args in pending:
                    sim.call_at(when, fn, *args)
                pending.clear()
                sim.windows_run += 1
                if chaos_at is not None and sim.windows_run == chaos_at:
                    os.kill(os.getpid(), signal.SIGKILL)
                if horizon is None:
                    sim.run()
                else:
                    sim.run(until=horizon)
                if sim._tick_fn is not None:
                    # Each run() call re-arms the kernel's in-loop tick
                    # counter, and a window rarely spans a full tick
                    # interval — so cross-window budgets (run guards)
                    # are enforced here, once per window.
                    sim._tick_fn(sim.events_processed)
                conn.send(("sent", wid, fabric.take_outbox()))
            elif tag == "deliver":
                _, win, bucket = msg
                foreign = []
                for pos, rec in bucket:
                    wire_msg, deliver, when, handler = (
                        fabric.eject_delivery(rec)
                    )
                    pending.append((win, pos, 0, when, handler, (wire_msg,)))
                    payload = wire_msg.payload
                    fin = (
                        payload.get("_fin")
                        if isinstance(payload, dict)
                        else None
                    )
                    if fin is not None:
                        ref, extra = fin
                        # Same float arithmetic as the serial kernel's
                        # call_later(deliver - now + extra) at send time.
                        fin_when = (
                            rec.inject + ((deliver - rec.inject) + extra)
                        )
                        if fabric.owner_of(rec.src) == role.index:
                            fn, args = _fin_call(
                                ctx, rec.channel, rec.src, ref
                            )
                            pending.append((win, pos, 1, fin_when, fn, args))
                        else:
                            foreign.append(
                                (fin_when, win, pos, rec.channel,
                                 rec.src, ref)
                            )
                t_next = sim.next_event_time()
                for entry in pending:
                    if entry[3] < t_next:
                        t_next = entry[3]
                if t_next == math.inf:
                    # Premature local quiescence is how a crashed worker
                    # thread presents; surface the real exception.
                    ctx.partition_check_threads()
                conn.send(("state", wid, t_next, foreign, ctx._executed))
            elif tag == "batch":
                # Self-synchronized batch: run up to ``quota`` windows
                # exchanging records and completion notices directly
                # with peer workers — the coordinator is only contacted
                # once per batch.  Every step replays the classic
                # advance/sent/deliver/state round bit for bit: same
                # pending-insertion order, same canonical merge, same
                # horizon formula — just without the central hop.
                _, horizon, quota = msg
                done = 0
                quiescent = False
                while True:
                    pending.sort(key=lambda e: (e[0], e[1], e[2]))
                    for _, _, _, when, fn, args in pending:
                        sim.call_at(when, fn, *args)
                    pending.clear()
                    sim.windows_run += 1
                    if chaos_at is not None and sim.windows_run == chaos_at:
                        os.kill(os.getpid(), signal.SIGKILL)
                    if horizon is None:
                        sim.run()
                    else:
                        sim.run(until=horizon)
                    if sim._tick_fn is not None:
                        sim._tick_fn(sim.events_processed)
                    done += 1
                    win = sim.windows_run
                    boxes = _exchange(peers, fabric.take_outbox())
                    records = [rec for box in boxes for rec in box]
                    records.sort(key=WIRE_MERGE_KEY)
                    out_fins = []
                    for pos, rec in enumerate(records):
                        if fabric.owner_of(rec.dst) != role.index:
                            continue
                        wire_msg, deliver, when, handler = (
                            fabric.eject_delivery(rec)
                        )
                        pending.append(
                            (win, pos, 0, when, handler, (wire_msg,))
                        )
                        payload = wire_msg.payload
                        fin = (
                            payload.get("_fin")
                            if isinstance(payload, dict)
                            else None
                        )
                        if fin is not None:
                            ref, extra = fin
                            fin_when = (
                                rec.inject + ((deliver - rec.inject) + extra)
                            )
                            if fabric.owner_of(rec.src) == role.index:
                                fn, args = _fin_call(
                                    ctx, rec.channel, rec.src, ref
                                )
                                pending.append(
                                    (win, pos, 1, fin_when, fn, args)
                                )
                            else:
                                out_fins.append(
                                    (fin_when, win, pos, rec.channel,
                                     rec.src, ref)
                                )
                    t_next = sim.next_event_time()
                    for entry in pending:
                        if entry[3] < t_next:
                            t_next = entry[3]
                    if t_next == math.inf:
                        ctx.partition_check_threads()
                    states = _exchange(peers, (t_next, out_fins))
                    lows = []
                    for peer_t, peer_fins in states:
                        lows.append(peer_t)
                        for notice in peer_fins:
                            # notice = (when, win, pos, channel, src, ref)
                            lows.append(notice[0])
                            if fabric.owner_of(notice[4]) == role.index:
                                fn, args = _fin_call(
                                    ctx, notice[3], notice[4], notice[5]
                                )
                                pending.append(
                                    (notice[1], notice[2], 1, notice[0],
                                     fn, args)
                                )
                    earliest = min(lows)
                    if earliest == math.inf:
                        quiescent = True
                        break
                    horizon = earliest + lookahead
                    if horizon == math.inf:
                        horizon = None  # single-node world
                    if done >= quota:
                        break
                conn.send(
                    ("batch-done", wid, done, ctx._executed, horizon,
                     quiescent)
                )
            elif tag == "stop":
                frag = ctx.partition_finalize(workers)
                conn.send(("fragment", wid, frag))
                return
            else:  # pragma: no cover - defensive
                raise RuntimeBackendError(
                    f"worker {wid}: unknown coordinator message {tag!r}"
                )
    except _PeerLost:
        # A peer died mid-exchange: exit without a report.  The closed
        # coordinator pipe (in ``finally``) reads as EOF there, which is
        # the transient-fleet-failure signal that triggers the retry.
        return
    except SupervisionError as exc:
        frag = None
        try:
            if ctx is not None:
                frag = ctx.partition_fragment(workers)
        except Exception:
            pass
        snapshot = exc.snapshot
        try:
            pickle.dumps(snapshot)
        except Exception:
            snapshot = {"repr": repr(snapshot)}
        try:
            conn.send(
                ("error", wid, "guard", type(exc).__name__, str(exc),
                 snapshot, frag)
            )
        except Exception:
            pass
    except BaseException:
        try:
            conn.send(
                ("error", wid, "fatal", "Exception",
                 traceback.format_exc(), None, None)
            )
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------


class _WorkerDied(Exception):
    """Transient fleet failure (crash/stall) — the whole run retries."""


class _Progress:
    """Coordinator-side aggregate progress lines (partitioned runs have
    no single in-process context for a reporter to install into).

    Beats are counted here *and* mirrored onto the wrapped reporter's
    ``beats`` attribute when it has one (e.g.
    :class:`repro.obs.progress.ProgressReporter`), so callers that
    gate on observed heartbeats see partitioned runs too.  ``final``
    always emits — every partitioned run records at least one beat.
    """

    def __init__(self, progress, total: int):
        self.enabled = bool(progress)
        self.interval = (
            getattr(progress, "interval", 1.0)
            if progress is not None and progress is not True
            else 1.0
        )
        self.total = total
        self.beats = 0
        self._reporter = progress if progress is not True else None
        self._last = time.monotonic()

    def _emit(self, sim_time: float, executed: int, windows: int) -> None:
        self.beats += 1
        if self._reporter is not None and hasattr(self._reporter, "beats"):
            self._reporter.beats += 1
        print(
            f"[partitioned] t={sim_time:.6f}s "
            f"tasks={executed}/{self.total} windows={windows}",
            file=sys.stderr,
            flush=True,
        )

    def tick(self, sim_time: float, executed: int, windows: int) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if now - self._last < self.interval:
            return
        self._last = now
        self._emit(sim_time, executed, windows)

    def final(self, sim_time: float, executed: int, windows: int) -> None:
        """The end-of-run beat, emitted regardless of the interval."""
        if not self.enabled:
            return
        self._emit(sim_time, executed, windows)


def _merge_fragments(frags: list, backend: str, num_nodes: int):
    """Merge per-partition fragments into one serial-identical RunStats.

    Latency lists stable-merge by sample time (worker index breaks
    cross-partition ties); per-node busy times sum in global rank order.
    Both reproduce the serial kernel's float-addition order, which is
    what keeps downstream sums bit-identical.
    """
    from repro.runtime.context import RunStats

    frags = sorted(frags, key=lambda f: f["partition"])
    busy: dict = {}
    counters: dict = {}
    for f in frags:
        busy.update(f["busy"])
        for name, value in f["counters"].items():
            counters[name] = counters.get(name, 0) + value
    flow = [
        v
        for _, v in sorted(
            ((t, v) for f in frags for t, v in f["flow_lat"]),
            key=lambda pair: pair[0],
        )
    ]
    msgl = [
        v
        for _, v in sorted(
            ((t, v) for f in frags for t, v in f["msg_lat"]),
            key=lambda pair: pair[0],
        )
    ]
    return RunStats(
        backend=backend,
        num_nodes=num_nodes,
        workers_per_node=frags[0]["workers"] if frags else 0,
        makespan=max((f["last_task_t"] for f in frags), default=0.0),
        tasks_executed=sum(f["executed"] for f in frags),
        flow_latencies=flow,
        msg_latencies=msgl,
        activates_sent=sum(f["activates"] for f in frags),
        activations_aggregated=sum(f["aggregated"] for f in frags),
        wire_bytes=sum(f["wire_bytes"] for f in frags),
        events_processed=sum(f["events"] for f in frags),
        busy_time_total=sum(busy[rank] for rank in sorted(busy)),
        obs_counters=counters,
    )


def _raise_worker_error(msg: tuple, job: dict) -> None:
    """Re-raise a worker-reported failure on the coordinator."""
    _, wid, kind, cls_name, text, snapshot, frag = msg
    if kind == "guard":
        import repro.errors as errors_mod

        cls = getattr(errors_mod, cls_name, SupervisionError)
        exc = cls(f"partition worker {wid}: {text}")
        exc.snapshot = (
            snapshot if isinstance(snapshot, dict) else {"snapshot": snapshot}
        )
        if frag is not None:
            exc.partial = _merge_fragments(
                [frag], backend=job["backend"], num_nodes=job["num_nodes"]
            )
        raise exc
    raise RuntimeBackendError(f"partition worker {wid} failed:\n{text}")


def _attempt(job: dict, pcfg, owner: tuple, progress, attempt: int):
    """One supervised attempt: spawn workers, run windows, merge stats."""
    P = pcfg.partitions
    methods = multiprocessing.get_all_start_methods()
    mp_ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    job = dict(job, attempt=attempt)
    batch = pcfg.window_batch
    conns: list = []
    procs: list = []
    peer_conns: list = []
    try:
        # Pairwise worker pipes for self-synchronized batches: one
        # duplex pipe per worker pair, built before any fork so every
        # child can close the endpoints it does not own (see
        # ``_worker_main`` — prompt EOF on peer death depends on it).
        peer_rows = None
        if batch > 1 and P > 1:
            peer_rows = [[None] * P for _ in range(P)]
            for i in range(P):
                for j in range(i + 1, P):
                    a, b = mp_ctx.Pipe(True)
                    peer_rows[i][j] = a
                    peer_rows[j][i] = b
                    peer_conns.extend((a, b))
        for wid in range(P):
            parent, child = mp_ctx.Pipe()
            proc = mp_ctx.Process(
                target=_worker_main,
                args=(wid, job, child, peer_rows),
                daemon=True,
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)
        for c in peer_conns:
            c.close()
        peer_conns = []

        heartbeat = pcfg.heartbeat_timeout

        def recv(wid: int):
            if not conns[wid].poll(heartbeat):
                raise _WorkerDied(
                    f"worker {wid} silent for {heartbeat:.0f}s "
                    f"(heartbeat timeout)"
                )
            try:
                msg = conns[wid].recv()
            except EOFError:
                raise _WorkerDied(
                    f"worker {wid} pipe closed (process crashed?)"
                ) from None
            if msg[0] == "error":
                _raise_worker_error(msg, job)
            return msg

        def recv_all(tag: str) -> list:
            """One message of kind ``tag`` from every worker, any order.

            Waits on all remaining pipes at once so a crashed worker's
            EOF surfaces promptly even while its peers block in a
            worker-to-worker exchange (they report nothing until the
            fleet is torn down).
            """
            got: dict = {}
            remaining = {wid: conns[wid] for wid in range(P)}
            while remaining:
                ready = multiprocessing.connection.wait(
                    list(remaining.values()), timeout=heartbeat
                )
                if not ready:
                    raise _WorkerDied(
                        f"fleet silent for {heartbeat:.0f}s "
                        f"(heartbeat timeout)"
                    )
                for rconn in ready:
                    wid = next(
                        w for w, c in remaining.items() if c is rconn
                    )
                    try:
                        msg = rconn.recv()
                    except EOFError:
                        raise _WorkerDied(
                            f"worker {wid} pipe closed (process crashed?)"
                        ) from None
                    if msg[0] == "error":
                        _raise_worker_error(msg, job)
                    if msg[0] != tag:  # pragma: no cover - defensive
                        raise RuntimeBackendError(
                            f"worker {wid}: expected {tag}, "
                            f"got {msg[0]!r}"
                        )
                    got[wid] = msg
                    del remaining[wid]
            return [got[wid] for wid in range(P)]

        def collect_state():
            t_nexts = [math.inf] * P
            notices_for: list = [[] for _ in range(P)]
            executed = [0] * P
            for wid in range(P):
                msg = recv(wid)
                if msg[0] != "state":  # pragma: no cover - defensive
                    raise RuntimeBackendError(
                        f"worker {wid}: expected state, got {msg[0]!r}"
                    )
                t_nexts[wid] = msg[2]
                executed[wid] = msg[4]
                for notice in msg[3]:
                    # notice = (when, win, pos, channel, src, ref)
                    notices_for[owner[notice[4]]].append(notice)
            return t_nexts, notices_for, executed

        bounds, totals = [], []
        for wid in range(P):
            msg = recv(wid)
            if msg[0] != "ready":  # pragma: no cover - defensive
                raise RuntimeBackendError(
                    f"worker {wid}: expected ready, got {msg[0]!r}"
                )
            bounds.append(msg[2])
            totals.append(msg[3])
        if len(set(totals)) != 1:
            raise RuntimeBackendError(
                f"workers disagree on task count: {totals} — "
                f"non-deterministic graph builder?"
            )
        if len(set(bounds)) != 1:
            raise RuntimeBackendError(
                f"workers disagree on the lookahead bound: {bounds}"
            )
        total = totals[0]
        lookahead = bounds[0]
        if pcfg.lookahead is not None:
            # The override can only tighten: a lookahead beyond the
            # network bound would let a delivery land in a worker's past.
            lookahead = min(lookahead, pcfg.lookahead)

        # Bootstrap: an empty delivery round makes every worker report
        # its initial next-event time (the t=0 source tasks).
        for conn in conns:
            conn.send(("deliver", 0, []))
        t_nexts, notices_for, executed = collect_state()

        reporter = _Progress(progress, total)
        windows = 0
        roundtrips = 1  # the bootstrap deliver/state exchange
        last_t = 0.0
        if batch > 1:
            # Batched sync windows: grant each worker up to
            # ``window_batch`` windows per round-trip; the fleet
            # self-synchronizes through the pairwise pipes (records and
            # notices never transit the coordinator) and reports back
            # once per batch with the jointly computed next horizon.
            earliest = min(t_nexts)
            if earliest != math.inf:
                horizon = earliest + lookahead
                if horizon == math.inf:
                    horizon = None  # single-node world
                while True:
                    for conn in conns:
                        conn.send(("batch", horizon, batch))
                    roundtrips += 1
                    reports = recv_all("batch-done")
                    done = {msg[2] for msg in reports}
                    horizons = {msg[4] for msg in reports}
                    quiet = {msg[5] for msg in reports}
                    if (
                        len(done) != 1
                        or len(horizons) != 1
                        or len(quiet) != 1
                    ):  # pragma: no cover - defensive
                        raise RuntimeBackendError(
                            f"workers disagree on batch outcome: "
                            f"windows={sorted(done)} "
                            f"horizons={sorted(horizons, key=repr)} "
                            f"quiescent={sorted(quiet)}"
                        )
                    windows += done.pop()
                    executed = [msg[3] for msg in reports]
                    next_h = horizons.pop()
                    if next_h is not None:
                        last_t = next_h
                    reporter.tick(last_t, sum(executed), windows)
                    if quiet.pop():
                        break
                    horizon = next_h
        else:
            while True:
                lows = list(t_nexts)
                for per_worker in notices_for:
                    lows.extend(notice[0] for notice in per_worker)
                earliest = min(lows)
                if earliest == math.inf:
                    break
                horizon = earliest + lookahead
                if horizon == math.inf:
                    horizon = None  # single-node world: run to exhaustion
                for wid, conn in enumerate(conns):
                    conn.send(("advance", notices_for[wid], horizon))
                windows += 1
                roundtrips += 2
                records: list = []
                for wid in range(P):
                    msg = recv(wid)
                    if msg[0] != "sent":  # pragma: no cover - defensive
                        raise RuntimeBackendError(
                            f"worker {wid}: expected sent, got {msg[0]!r}"
                        )
                    records.extend(msg[2])
                # Canonical global order: the (inject, src, seq) total
                # order.  The serial fabric defers destination-NIC
                # ejection to the end of each injecting epoch and flushes
                # in exactly this key order, so same-timestamp
                # cross-partition arrivals at one NIC resolve identically
                # in both engines *by construction* — no partition needs
                # to observe the serial execution order.
                records.sort(key=WIRE_MERGE_KEY)
                buckets: list = [[] for _ in range(P)]
                for pos, rec in enumerate(records):
                    buckets[owner[rec.dst]].append((pos, rec))
                for wid, conn in enumerate(conns):
                    conn.send(("deliver", windows, buckets[wid]))
                t_nexts, notices_for, executed = collect_state()
                last_t = earliest if horizon is None else horizon
                reporter.tick(last_t, sum(executed), windows)

        if sum(executed) != total:
            raise RuntimeBackendError(
                f"partitioned run reached global quiescence with "
                f"{sum(executed)}/{total} tasks executed — cross-partition "
                f"deadlock or lost message"
            )
        reporter.final(last_t, sum(executed), windows)
        for conn in conns:
            conn.send(("stop",))
        frags = []
        for wid in range(P):
            msg = recv(wid)
            if msg[0] != "fragment":  # pragma: no cover - defensive
                raise RuntimeBackendError(
                    f"worker {wid}: expected fragment, got {msg[0]!r}"
                )
            frags.append(msg[2])
        stats = _merge_fragments(
            frags, backend=job["backend"], num_nodes=job["num_nodes"]
        )
        # Engine telemetry, deliberately NOT a RunStats field: the typed
        # result stays bit-comparable with serial runs (dataclasses.
        # asdict never sees it), while tooling that wants the sync-layer
        # numbers reads the attribute off the instance.
        stats.partition_sync = {
            "partitions": P,
            "window_batch": batch,
            "sync_windows": windows,
            "coordinator_roundtrips": roundtrips,
            "progress_beats": reporter.beats,
        }
        return stats
    finally:
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass
        for c in peer_conns:
            try:
                c.close()
            except Exception:
                pass
        for proc in procs:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5)


def run_partitioned_graph(
    builder,
    backend: str,
    cfg: Any,
    platform=None,
    partitions=None,
    *,
    faults=None,
    schedule_policy=None,
    ctx_observer=None,
    progress=None,
    guards=None,
    ctx_kwargs: Optional[dict] = None,
):
    """Execute ``builder(cfg, platform)`` as a partitioned PDES run.

    The partitioned twin of the serial path in
    :func:`repro.workloads.runner.run_graph_benchmark`: same builder,
    same platform defaulting, bit-identical
    :class:`~repro.runtime.context.RunStats` out, field for field —
    ``events_processed`` included, since the serial fabric now defers
    wire ejection to end of epoch and replays the same
    ``(inject, src, seq)`` order this engine's coordinator merge uses.

    ``partitions`` is an ``int`` or a :class:`~repro.config.
    PartitionConfig`; ``guards`` install per worker (budgets are
    per-partition); ``progress`` enables coordinator-side aggregate
    lines.  ``faults`` and ``ctx_observer`` are rejected — fault RNG
    draws follow global send order no worker observes, and there is no
    single in-process context to observe.  ``ctx_kwargs`` forwards extra
    :class:`~repro.runtime.context.ParsecContext` keywords (e.g.
    ``observability=True``) to every worker.
    """
    from repro.config import as_partition_config, scaled_platform
    from repro.runtime.comm_engine import BackoffPolicy

    pcfg = as_partition_config(partitions)
    if pcfg is None:
        raise ConfigError(
            "run_partitioned_graph requires partitions (an int >= 1 or a "
            "PartitionConfig)"
        )
    env_batch = os.environ.get("REPRO_PARTITION_WINDOW_BATCH")
    if env_batch:
        import dataclasses as _dc

        try:
            pcfg = _dc.replace(pcfg, window_batch=int(env_batch))
        except ValueError:
            raise ConfigError(
                f"REPRO_PARTITION_WINDOW_BATCH must be an int >= 1 "
                f"(got {env_batch!r})"
            ) from None
    if faults is not None and getattr(faults, "enabled", False):
        raise ConfigError(
            "fault injection is not supported in partitioned runs (the "
            "fault RNG is consumed in global send order, which no "
            "partition worker observes); drop partitions or the fault plan"
        )
    if ctx_observer is not None:
        raise ConfigError(
            "ctx_observer is not supported in partitioned runs: the world "
            "is rebuilt inside each worker process, so there is no single "
            "context object to observe"
        )
    platform = platform or scaled_platform(num_nodes=cfg.num_nodes)
    num_nodes = platform.num_nodes
    owner = tuple(partition_owner(num_nodes, pcfg.partitions))
    kwargs = dict(ctx_kwargs or {})
    kwargs.setdefault("seed", getattr(cfg, "seed", 0))
    if schedule_policy is not None:
        kwargs["schedule_policy"] = schedule_policy
    job = {
        "builder": builder,
        "backend": backend,
        "cfg": cfg,
        "platform": platform,
        "partitions": pcfg.partitions,
        "owner": owner,
        "guards": guards,
        "ctx_kwargs": kwargs,
        "num_nodes": num_nodes,
        "lookahead_override": pcfg.lookahead,
        "attempt": 0,
    }
    backoff = BackoffPolicy(base=0.05, factor=2.0, max_delay=2.0)
    last_error: Optional[_WorkerDied] = None
    for attempt in range(pcfg.retries + 1):
        try:
            return _attempt(job, pcfg, owner, progress, attempt)
        except _WorkerDied as exc:
            last_error = exc
            if attempt < pcfg.retries:
                time.sleep(backoff.delay(attempt + 1))
    raise RuntimeBackendError(
        f"partitioned run failed after {pcfg.retries + 1} attempt(s): "
        f"{last_error}"
    ) from last_error
