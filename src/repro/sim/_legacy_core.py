"""The *legacy* discrete-event kernel, frozen for A/B comparison.

This module is a verbatim snapshot of the pre-epoch tuple-heap kernel
(:mod:`repro.sim.core` before the epoch-batched rewrite), kept so
``REPRO_SIM_CORE=legacy`` can select it at import time and
``tools/bench_ab.py`` can prove the batched core is bit-identical and
faster on the same interpreter.  The only functional additions over the
historical kernel are (a) :meth:`Process._step` accepts the new
``yield <float>`` sleep shorthand by wrapping it into a :class:`Timeout`
at the exact same ``seq`` ordinal, and (b) ``yield PARK`` /
:meth:`Process.wake` are supported with one ``call_soon`` entry per wake
(again the same ``seq`` accounting as the batched kernel), so sources
converted to the shorthands run identically on both cores.  Do not
extend this module otherwise.

Design notes
------------
The kernel is a classic event-heap design tuned for the millions of events a
single HiCMA run generates:

- the heap holds ``(time, seq, event, fn, args)`` tuples — ``seq`` is a
  monotonically increasing counter so simultaneous events fire in schedule
  order and runs are deterministic;
- entries scheduled *at the current time* (event-trigger dispatches,
  :meth:`Simulator.call_soon`, zero-delay timeouts) bypass the heap through
  a FIFO ready queue.  Because simulated time never moves backwards, a
  current-time entry can only be ordered against same-time heap entries,
  and the shared ``seq`` counter decides that race exactly as the heap
  would — so the fast path is O(1) instead of O(log n) per entry while
  preserving bit-identical execution order (the determinism checker runs
  on traces to enforce this);
- :class:`Event` is a one-shot completion: callbacks attached before it
  triggers run when it fires, in attachment order;
- :class:`Process` wraps a generator.  ``yield`` transfers control back to
  the simulator; the yielded object must be an :class:`Event` (or subclass —
  :class:`Timeout`, another process, a store get, ...).  The value sent back
  into the generator is the event's value;
- a process is itself an :class:`Event` that triggers when the generator
  returns, so processes can wait on each other.

Only behaviours needed by the repro stack are implemented; there is no
real-time synchronisation and no thread safety (the simulation is strictly
single-threaded — simulated "threads" are processes).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.bus import NULL_BUS
from repro.sim._kinds import PARK

__all__ = [
    "Simulator",
    "SchedulePolicy",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
]

_PENDING = object()


class SchedulePolicy:
    """Pluggable same-timestamp tie-breaking for :meth:`Simulator.run`.

    The kernel's default order is FIFO by ``seq``: among all entries
    runnable at the current simulated time, the one scheduled first fires
    first.  A simulator constructed with a policy instead collects the
    complete runnable set at each step and asks :meth:`choose` which entry
    fires next — any answer is a *legal* execution (every candidate is due
    now), so a policy explores alternative interleavings without ever
    reordering across simulated time.

    The base class chooses index 0 every time, which replays the default
    FIFO order exactly; subclasses (see :mod:`repro.explore.policy`)
    record, replay, or perturb the tie-breaks.
    """

    def choose(self, sim: "Simulator", ready) -> int:
        """Return the index (into ``ready``) of the entry to fire next.

        ``ready`` is the runnable set at the current time, in FIFO order,
        as ``(seq, event, fn, args)`` tuples; treat it as read-only.
        Called only when there are at least two candidates.
        """
        return 0


class Event:
    """A one-shot completion that callbacks and processes can wait on."""

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, scheduling callbacks now."""
        if self._value is not _PENDING:
            raise SimulationError("event triggered twice")
        self._value = value
        self.sim._queue_trigger(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exc`` raised."""
        if self._value is not _PENDING:
            raise SimulationError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._ok = False
        self._value = exc
        self.sim._queue_trigger(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if already
        triggered — scheduled at the current time, preserving order)."""
        if self.callbacks is None:
            # Already dispatched: schedule the late callback right away.
            self.sim.call_soon(fn, self)
        else:
            self.callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        # Field setup and scheduling are inlined (no super().__init__ /
        # _schedule_at calls): timers are the single most-constructed object
        # in a run, and the call overhead is measurable.
        self.sim = sim
        self.callbacks = []
        self._value = value if value is not None else delay
        self._ok = True
        sim._seq += 1
        if delay == 0:
            sim._ready.append((sim._seq, self, None, None))
        else:
            heapq.heappush(sim._heap, (sim.now + delay, sim._seq, self, None, None))

    # Timeouts are pre-triggered at construction; suppress double-trigger.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout cannot be re-triggered")


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        """The value passed to ``Process.interrupt``."""
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator coroutine; also an event for its termination."""

    __slots__ = ("generator", "_waiting_on", "_wtok", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        #: Wake token: bumped every time the process runs so a pending
        #: :meth:`wake` callback whose captured token no longer matches is
        #: stale and fires as a no-op (mirrors the batched kernel).
        self._wtok: int = 0
        if sim.obs.enabled:
            sim.obs.emit("process_start", -1, key=self.name, time=sim.now)
        sim.call_soon(self._start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self.sim.call_soon(self._throw, Interrupt(cause))

    def _start(self, _evt: Event = None) -> None:
        self._step(self.generator.send, None)

    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING or event is not self._waiting_on:
            # Stale wake-up: the process was interrupted (or finished) while
            # this event was pending; ignore it.
            return
        self._waiting_on = None
        if event._ok:
            self._step(self.generator.send, event._value)
        else:
            self._step(self.generator.throw, event._value)

    def _throw(self, exc: BaseException) -> None:
        if self._value is not _PENDING:
            return
        self._waiting_on = None
        self._step(self.generator.throw, exc)

    def wake(self, value: Any = None) -> None:
        """Wake a process parked on ``yield PARK`` (idempotent until it runs).

        Scheduled through :meth:`Simulator.call_soon` so the wake costs one
        entry at one ``seq`` ordinal — exactly what the batched kernel's
        typed-resume entry costs — keeping the two cores bit-identical.
        """
        if self._waiting_on is not PARK or self._value is not _PENDING:
            return
        self._waiting_on = None
        self.sim.call_soon(self._wake_fire, self._wtok, value)

    def _wake_fire(self, tok: int, value: Any) -> None:
        if self._value is not _PENDING or self._wtok != tok:
            return
        self._step(self.generator.send, value)

    def _step(self, advance: Callable[[Any], Any], arg: Any) -> None:
        self._wtok += 1
        try:
            target = advance(arg)
        except StopIteration as stop:
            super().succeed(stop.value)
            self._emit_end("ok")
            return
        except Interrupt as exc:
            # An uncaught interrupt terminates the process "normally" with
            # the interrupt as its value — callers may inspect it.
            super().succeed(exc)
            self._emit_end("interrupted")
            return
        except BaseException as exc:
            super().fail(exc)
            self._emit_end("error")
            return
        if target is PARK:
            # Batched-kernel park shorthand: suspend with no scheduled
            # wake-up until someone calls :meth:`wake`.
            self._waiting_on = PARK
            return
        if not isinstance(target, Event):
            # The batched kernel's sleep shorthand: ``yield <float|int>``
            # means "resume me after that many seconds".  Wrapping into a
            # Timeout here allocates the same ``seq`` the shorthand would
            # (nothing can run between this wrap and the suspension), so
            # converted sources stay bit-identical across both cores.
            tt = type(target)
            if tt is float or tt is int:
                try:
                    target = Timeout(self.sim, target)
                except SimulationError as exc:
                    self._step(self.generator.throw, exc)
                    return
            else:
                self._step(
                    self.generator.throw,
                    SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    ),
                )
                return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _emit_end(self, status: str) -> None:
        obs = self.sim.obs
        if obs.enabled:
            obs.emit("process_end", -1, key=self.name, info=status, time=self.sim.now)


class _Condition(Event):
    """Base for AllOf/AnyOf combinators."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
        else:
            for evt in self._events:
                evt.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered; value is their values."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(_Condition):
    """Triggers when the first child event triggers; value is (index, value)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            self.fail(event.value)
            return
        self.succeed((self._events.index(event), event.value))


class Simulator:
    """Owns simulated time and the event heap.

    ``obs`` is the observability bus the kernel (and anything holding the
    simulator) emits through; it defaults to the free no-op bus.  The event
    loop itself is never instrumented per-event — only process lifecycle and
    per-run aggregates are emitted — so an enabled bus does not perturb the
    kernel's hot path.
    """

    __slots__ = (
        "now", "obs", "policy", "_heap", "_ready", "_seq", "_running",
        "_event_count", "_tick_fn", "_tick_every", "_epoch_cbs",
    )

    def __init__(self, obs=None, policy: Optional[SchedulePolicy] = None) -> None:
        self.now: float = 0.0
        self.obs = obs if obs is not None else NULL_BUS
        #: Optional coarse heartbeat: ``_tick_fn(event_count)`` runs every
        #: ``_tick_every`` processed events (see :meth:`set_tick`).  The
        #: disabled path costs one int compare against +inf per iteration.
        self._tick_fn: Optional[Callable[[int], None]] = None
        self._tick_every: int = 0
        #: One-shot end-of-epoch callbacks (see :meth:`at_epoch_end`).
        self._epoch_cbs: list = []
        #: Optional same-timestamp tie-break policy.  ``None`` (the default)
        #: keeps the original merged heap/ready fast path byte-for-byte; a
        #: policy routes :meth:`run` through :meth:`_run_policy` instead.
        self.policy = policy
        self._heap: list = []
        #: FIFO of current-time entries ``(seq, event, fn, args)``.  Every
        #: entry here carries a timestamp equal to ``now``; the run loop
        #: merges it with the heap by comparing ``seq`` against same-time
        #: heap heads, so ordering is bit-identical to the all-heap kernel.
        self._ready: deque = deque()
        self._seq: int = 0
        self._running = False
        self._event_count = 0

    # -- scheduling ------------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        self._seq += 1
        if when <= self.now:
            # Zero-delay timers land on the O(1) ready queue; ``seq``
            # ordering against same-time heap entries is preserved by the
            # run-loop merge.
            self._ready.append((self._seq, event, None, None))
        else:
            heapq.heappush(self._heap, (when, self._seq, event, None, None))

    def _queue_trigger(self, event: Event) -> None:
        """Queue a triggered event's callback dispatch at the current time."""
        self._seq += 1
        self._ready.append((self._seq, event, None, None))

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at the current simulated time, after already
        queued work."""
        self._seq += 1
        self._ready.append((self._seq, None, fn, args))

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._seq += 1
        if delay == 0:
            self._ready.append((self._seq, None, fn, args))
        else:
            heapq.heappush(self._heap, (self.now + delay, self._seq, None, fn, args))

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``.

        Exact-timestamp twin of :meth:`call_later` (see the batched
        kernel's docstring); kept API-identical so the legacy core stays a
        drop-in A/B twin for the partitioned engine too.
        """
        if when < self.now:
            raise SimulationError(
                f"call_at in the past: {when!r} < now={self.now!r}"
            )
        self._seq += 1
        if when == self.now:
            self._ready.append((self._seq, None, fn, args))
        else:
            heapq.heappush(self._heap, (when, self._seq, None, fn, args))

    def at_epoch_end(self, fn: Callable[[], None]) -> None:
        """Register a one-shot callback to run when the current epoch ends.

        Behaviour-identical twin of the batched kernel's hook (see its
        docstring): ``fn()`` fires once no more work is pending at the
        current timestamp, before the clock advances or :meth:`run`
        returns.  The serial fabric uses it to eject same-epoch wire sends
        at destination NICs in canonical ``(inject, src, seq)`` order.
        """
        self._epoch_cbs.append(fn)

    def next_event_time(self) -> float:
        """Timestamp of the earliest pending entry (``inf`` when idle)."""
        if self._ready:
            return self.now
        return self._heap[0][0] if self._heap else math.inf

    # -- public API ------------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator coroutine as a simulation process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when every child event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first child event fires."""
        return AnyOf(self, events)

    @property
    def events_processed(self) -> int:
        """Total heap entries processed so far (diagnostic)."""
        return self._event_count

    def set_tick(self, fn: Optional[Callable[[int], None]], every: int = 16384) -> None:
        """Install (or clear, with ``fn=None``) a run-loop heartbeat.

        ``fn(event_count)`` is invoked from inside :meth:`run` roughly every
        ``every`` processed events — a coarse, deterministic-in-simulation
        hook for wall-clock progress reporting (:mod:`repro.obs.progress`).
        The callback runs *between* event dispatches and must not schedule
        simulation work; it sees the kernel mid-run, so treat the simulator
        as read-only.  With no tick installed the run loop pays only one
        integer compare per iteration.

        A tick callback **may raise** to abort the run: both kernels
        guarantee the exception propagates out of :meth:`run` with the
        simulator left consistent (clock, event count, and pending events
        reflect everything dispatched before the abort), so a supervisor
        (:class:`repro.supervise.guards.RunGuards`) can budget-limit a run
        and still take a trustworthy diagnostic snapshot afterwards.
        """
        if fn is not None and every < 1:
            raise SimulationError(f"tick interval must be >= 1, got {every!r}")
        self._tick_fn = fn
        self._tick_every = every if fn is not None else 0

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap empties or simulated time reaches ``until``.

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if self.policy is not None:
            return self._run_policy(until)
        self._running = True
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        count = self._event_count
        tick_fn = self._tick_fn
        next_tick = count + self._tick_every if tick_fn is not None else math.inf
        epoch_cbs = self._epoch_cbs
        try:
            while True:
                if count >= next_tick:
                    tick_fn(count)
                    next_tick = count + self._tick_every
                if ready:
                    # A heap entry can only precede the ready head when it
                    # is stamped at the current time with a smaller seq
                    # (time never moves backwards while work is ready).
                    if heap:
                        head = heap[0]
                        if head[0] <= self.now and head[1] < ready[0][0]:
                            heappop(heap)
                            count += 1
                            _w, _s, event, fn, args = head
                            if event is not None:
                                event._dispatch()
                            else:
                                fn(*args)
                            continue
                    _seq, event, fn, args = ready.popleft()
                    count += 1
                    if event is not None:
                        event._dispatch()
                    else:
                        fn(*args)
                    continue
                if epoch_cbs and (not heap or heap[0][0] > self.now):
                    # The ``now`` epoch is exhausted (nothing ready, no
                    # heap entry left at the current time): fire the
                    # end-of-epoch callbacks, then re-check for work they
                    # scheduled before advancing or breaking.
                    todo = epoch_cbs[:]
                    del epoch_cbs[:]
                    for cb in todo:
                        cb()
                    continue
                if not heap:
                    if until is not None:
                        self.now = until
                    break
                when, _seq, event, fn, args = heap[0]
                if until is not None and when > until:
                    self.now = until
                    break
                heappop(heap)
                self.now = when
                count += 1
                if event is not None:
                    event._dispatch()
                else:
                    fn(*args)
        finally:
            self._event_count = count
            self._running = False
        if self.obs.enabled:
            self.obs.emit(
                "sim_run", -1,
                info={"events_processed": self._event_count, "now": self.now},
                time=self.now,
            )
        return self.now

    def _run_policy(self, until: Optional[float]) -> float:
        """Policy-driven run loop (see :class:`SchedulePolicy`).

        Instead of merging the heap against the ready deque one entry at a
        time, each time step first drains every heap entry stamped at (or
        before) the current time into the ready deque.  Such entries were
        all pushed before simulated time reached ``now`` — zero-delay
        scheduling always lands on the ready deque directly — so their
        ``seq`` values precede every ready entry's and the drained deque
        is the complete runnable set in exact FIFO order.  The policy then
        picks which candidate fires; index 0 replays the default kernel
        bit-identically.
        """
        self._running = True
        policy = self.policy
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        count = self._event_count
        tick_fn = self._tick_fn
        next_tick = count + self._tick_every if tick_fn is not None else math.inf
        epoch_cbs = self._epoch_cbs
        try:
            while True:
                if count >= next_tick:
                    tick_fn(count)
                    next_tick = count + self._tick_every
                while heap and heap[0][0] <= self.now:
                    _w, seq, event, fn, args = heappop(heap)
                    ready.append((seq, event, fn, args))
                if not ready:
                    if epoch_cbs:
                        # End of the ``now`` epoch: fire callbacks, then
                        # re-check for work they scheduled.
                        todo = epoch_cbs[:]
                        del epoch_cbs[:]
                        for cb in todo:
                            cb()
                        continue
                    if not heap:
                        if until is not None:
                            self.now = until
                        break
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        break
                    self.now = when
                    continue
                if len(ready) > 1:
                    idx = policy.choose(self, ready)
                    if idx:
                        entry = ready[idx]
                        del ready[idx]
                    else:
                        entry = ready.popleft()
                else:
                    entry = ready.popleft()
                count += 1
                _seq, event, fn, args = entry
                if event is not None:
                    event._dispatch()
                else:
                    fn(*args)
        finally:
            self._event_count = count
            self._running = False
        if self.obs.enabled:
            self.obs.emit(
                "sim_run", -1,
                info={"events_processed": self._event_count, "now": self.now},
                time=self.now,
            )
        return self.now

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: start ``generator`` and run to completion; return its
        value (raising if it failed)."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self.now}"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
