"""Named deterministic random-number streams.

Every stochastic element of the simulation (kernel-time jitter, network
jitter, workload generation) draws from its own named stream so that adding
randomness to one subsystem never perturbs another — a standard reproducible-
HPC-simulation practice.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independent, name-keyed ``numpy.random.Generator``s."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically
        from (seed, name) on first use."""
        gen = self._streams.get(name)
        if gen is None:
            sub = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, sub]))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of the parent's."""
        sub = zlib.crc32(name.encode("utf-8"))
        return RngStreams(seed=(self.seed * 1_000_003 + sub) % (2**63))
