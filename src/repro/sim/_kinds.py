"""Kernel entry-kind constants and the PARK sentinel.

Shared by the epoch-batched kernel (:mod:`repro.sim.core`) and the frozen
legacy kernel (:mod:`repro.sim._legacy_core`) so that ``yield PARK`` and
the kind-coded entry tuples mean the same thing under either
``REPRO_SIM_CORE`` selection.
"""

__all__ = ["K_EVT", "K_CALL", "K_RESUME", "PARK"]

#: Entry kinds (the ``kind`` slot of every scheduled entry).
K_EVT = 0      #: generic event dispatch: ``a._dispatch()``
K_CALL = 1     #: plain callback: ``a(*b)``
K_RESUME = 2   #: typed process resume: send ``c`` into process ``a``


class _ParkSentinel:
    """Singleton yielded by a process to park until :meth:`Process.wake`."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PARK"


#: ``yield PARK`` suspends the process with *no* scheduled wake-up; some
#: other actor must call :meth:`Process.wake` (idempotent until the process
#: next runs).  This is the allocation-free replacement for parking on an
#: ``AnyOf`` over per-wait notification events.
PARK = _ParkSentinel()
