"""Per-node clocks and clock synchronisation.

The paper measures inter-node end-to-end latency with clocks synchronised by
"an algorithm adapted from [Hunold & Carpen-Amarie, Hierarchical Clock
Synchronization in MPI]" and re-synchronises at every PaRSEC context epoch to
bound drift (§6.1.3).  We reproduce both parts:

- :class:`NodeClock` models a node's oscillator with a fixed offset and a
  linear drift rate: ``local(t) = t * (1 + drift) + offset``;
- :func:`hunold_synchronize` estimates each node's offset (relative to node
  0) from ping-pong round trips, hierarchically, exactly like the referenced
  scheme: offsets estimated within groups, then group leaders synchronised.

Latency analysis subtracts the estimated offsets from local timestamps; the
residual synchronisation error is what a real measurement would suffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = ["NodeClock", "ClockEnsemble", "hunold_synchronize"]


@dataclass
class NodeClock:
    """A drifting local clock: ``local(t) = t * (1 + drift) + offset``."""

    offset: float = 0.0
    drift: float = 0.0  # fractional rate error, e.g. 1e-6 = 1 ppm

    def local(self, global_time: float) -> float:
        """Local reading at true (global) time ``global_time``."""
        return global_time * (1.0 + self.drift) + self.offset

    def to_global(self, local_time: float) -> float:
        """Invert :meth:`local` (exact; used only by tests)."""
        return (local_time - self.offset) / (1.0 + self.drift)


class ClockEnsemble:
    """The clocks of every node in a simulated cluster."""

    def __init__(
        self,
        num_nodes: int,
        rng: np.random.Generator | None = None,
        offset_spread: float = 5e-3,
        drift_spread: float = 2e-6,
    ):
        if num_nodes <= 0:
            raise SimulationError("ClockEnsemble needs at least one node")
        rng = rng or np.random.default_rng(0)
        self.clocks: list[NodeClock] = []
        for i in range(num_nodes):
            if i == 0:
                # Node 0 is the reference clock.
                self.clocks.append(NodeClock(0.0, 0.0))
            else:
                self.clocks.append(
                    NodeClock(
                        offset=float(rng.uniform(-offset_spread, offset_spread)),
                        drift=float(rng.uniform(-drift_spread, drift_spread)),
                    )
                )
        #: Estimated offsets (relative to node 0), filled by synchronisation.
        self.estimated_offsets: list[float] = [0.0] * num_nodes
        self.last_sync_time: float = 0.0

    def __len__(self) -> int:
        return len(self.clocks)

    def local(self, node: int, global_time: float) -> float:
        """Node-local clock reading at a true (global) time."""
        return self.clocks[node].local(global_time)

    def corrected(self, node: int, local_time: float) -> float:
        """Apply the current offset estimate to a local timestamp."""
        return local_time - self.estimated_offsets[node]

    def synchronize(
        self,
        global_time: float,
        rtt: float,
        rng: np.random.Generator | None = None,
        group_size: int = 4,
        rounds: int = 5,
    ) -> None:
        """Run the hierarchical synchronisation at ``global_time``."""
        self.estimated_offsets = hunold_synchronize(
            self.clocks, global_time, rtt, rng=rng, group_size=group_size, rounds=rounds
        )
        self.last_sync_time = global_time


def _pingpong_offset_estimate(
    ref: NodeClock,
    other: NodeClock,
    global_time: float,
    rtt: float,
    rng: np.random.Generator,
    rounds: int,
) -> float:
    """Estimate ``other``'s offset relative to ``ref`` from ping-pong RTTs.

    Classic Cristian/SKaMPI estimator: the reference sends at local t1, the
    remote stamps t_r on receipt, the reply arrives at local t2; assuming a
    symmetric path, offset ≈ t_r − (t1 + t2)/2.  Asymmetric network jitter
    makes each round noisy; the minimum-RTT round wins (as in Hunold's
    algorithm, which keeps the exchange with the smallest round-trip time).
    """
    best = None
    best_rtt = None
    for _ in range(rounds):
        fwd = rtt / 2 * (1.0 + abs(rng.normal(0.0, 0.08)))
        bwd = rtt / 2 * (1.0 + abs(rng.normal(0.0, 0.08)))
        t1 = ref.local(global_time)
        t_r = other.local(global_time + fwd)
        t2 = ref.local(global_time + fwd + bwd)
        est = t_r - 0.5 * (t1 + t2)
        round_rtt = t2 - t1
        if best_rtt is None or round_rtt < best_rtt:
            best_rtt = round_rtt
            best = est
        global_time += fwd + bwd
    assert best is not None
    return best


def hunold_synchronize(
    clocks: Sequence[NodeClock],
    global_time: float,
    rtt: float,
    rng: np.random.Generator | None = None,
    group_size: int = 4,
    rounds: int = 5,
) -> list[float]:
    """Hierarchical offset estimation (adapted from Hunold & Carpen-Amarie).

    Nodes are partitioned into groups of ``group_size``; within each group
    every member ping-pongs with its group leader, then the leaders ping-pong
    with the global root (node 0).  A member's offset estimate is the sum of
    its intra-group estimate and its leader's estimate, mirroring the
    two-level scheme of the reference (which reduces synchronisation time
    from O(P) sequential exchanges to O(P/G + G)).

    Returns estimated offsets relative to node 0.
    """
    if rtt <= 0:
        raise SimulationError("synchronisation requires a positive RTT")
    rng = rng or np.random.default_rng(12345)
    n = len(clocks)
    estimates = [0.0] * n
    leaders = list(range(0, n, group_size))
    # Level 1: group leaders against the root.
    leader_offset = {0: 0.0}
    for leader in leaders:
        if leader == 0:
            continue
        leader_offset[leader] = _pingpong_offset_estimate(
            clocks[0], clocks[leader], global_time, rtt, rng, rounds
        )
    # Level 2: members against their leader.
    for leader in leaders:
        for member in range(leader, min(leader + group_size, n)):
            if member == leader:
                estimates[member] = leader_offset[leader]
            else:
                intra = _pingpong_offset_estimate(
                    clocks[leader], clocks[member], global_time, rtt, rng, rounds
                )
                estimates[member] = leader_offset[leader] + intra
    estimates[0] = 0.0
    return estimates
