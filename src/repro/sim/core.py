"""The discrete-event simulation core (epoch-batched kernel).

Design notes
------------
The kernel processes events in **epochs** — the set of all entries sharing
one timestamp — instead of merging a heap against a ready queue one entry
at a time:

- every schedulable unit is a flat *kind-coded* entry.  Heap entries are
  ``(time, seq, kind, a, b, c)`` tuples; current-time entries live in a
  plain list of ``(seq, kind, a, b, c)`` (the *epoch batch*).  ``seq`` is a
  monotonically increasing counter so simultaneous entries fire in schedule
  order and runs are deterministic.  ``kind`` selects a typed fast path:

  ======== ======================= =========================================
  kind     payload                 dispatch
  ======== ======================= =========================================
  K_EVT    ``a`` = event           ``a._dispatch()`` — generic event fire
  K_CALL   ``a`` = fn, ``b`` =     ``a(*b)`` — plain callback
           args
  K_RESUME ``a`` = process,        resume the generator directly with ``c``
           ``b`` = wake token,     (skipping Event/Timeout allocation and
           ``c`` = value           callback dispatch entirely)
  ======== ======================= =========================================

- when the batch empties, time advances to the next heap timestamp and the
  *whole epoch* at that time is drained in one go.  Two invariants make
  this bit-identical to the classic one-at-a-time merge: (1) a heap push
  always carries a strictly future timestamp (zero/underflow delays are
  routed to the batch), so no heap entry at the current time can appear
  *during* an epoch; and (2) ``seq`` is global, so every pre-existing
  heap entry at time ``T`` precedes every entry appended while the epoch
  runs.  Draining the heap epoch first and then walking the batch
  positionally therefore reproduces the exact ``(time, seq)`` total order;

- processes may ``yield <float|int>`` as a sleep shorthand — the kernel
  schedules a K_RESUME entry that re-enters the generator directly.  This
  is the dominant event kind in a run (poll ticks, task durations, per-item
  progress costs) and costs one tuple instead of a Timeout object, its
  callback list, and two dispatch indirections.  ``yield sim.timeout(d)``
  remains fully supported and bit-identical (the shorthand allocates the
  same ``seq`` at the same point);

- :class:`Event` is a one-shot completion: callbacks attached before it
  triggers run when it fires, in attachment order;

- :class:`Process` wraps a generator.  ``yield`` transfers control back to
  the simulator; the yielded object must be an :class:`Event` (or subclass),
  a number, or :data:`PARK`.  The value sent back into the generator is the
  event's value (the delay, for sleeps);

- ``yield PARK`` suspends a process with *no* scheduled wake-up; another
  actor calls :meth:`Process.wake` (idempotent until the process runs)
  to schedule a K_RESUME at the current time.  Pollers (comm/progress
  threads) idle this way instead of constructing an ``AnyOf`` over
  per-wait notification events — the second-largest allocation source in
  paper-scale runs after Timeouts;

- a process is itself an :class:`Event` that triggers when the generator
  returns, so processes can wait on each other.

Setting ``REPRO_SIM_CORE=legacy`` in the environment selects the frozen
pre-epoch kernel (:mod:`repro.sim._legacy_core`) at import time — the A/B
baseline used by ``tools/bench_ab.py`` to prove the batched core produces
bit-identical traces.

Only behaviours needed by the repro stack are implemented; there is no
real-time synchronisation and no thread safety (the simulation is strictly
single-threaded — simulated "threads" are processes).
"""

from __future__ import annotations

import heapq
import math
import os
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.bus import NULL_BUS
from repro.sim._kinds import K_CALL, K_EVT, K_RESUME, PARK

__all__ = [
    "Simulator",
    "SchedulePolicy",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "K_EVT",
    "K_CALL",
    "K_RESUME",
    "PARK",
]

_PENDING = object()


class SchedulePolicy:
    """Pluggable same-timestamp tie-breaking for :meth:`Simulator.run`.

    The kernel's default order is FIFO by ``seq``: among all entries
    runnable at the current simulated time, the one scheduled first fires
    first.  A simulator constructed with a policy instead collects the
    complete runnable set at each step and asks :meth:`choose` which entry
    fires next — any answer is a *legal* execution (every candidate is due
    now), so a policy explores alternative interleavings without ever
    reordering across simulated time.

    The base class chooses index 0 every time, which replays the default
    FIFO order exactly; subclasses (see :mod:`repro.explore.policy`)
    record, replay, or perturb the tie-breaks.
    """

    def choose(self, sim: "Simulator", ready) -> int:
        """Return the index (into ``ready``) of the entry to fire next.

        ``ready`` is the runnable set at the current time, in FIFO order,
        as kind-coded ``(seq, kind, a, b, c)`` tuples (see the module
        docstring for the payload layout per kind); treat it as read-only.
        Called only when there are at least two candidates.
        """
        return 0


class Event:
    """A one-shot completion that callbacks and processes can wait on."""

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, scheduling callbacks now."""
        if self._value is not _PENDING:
            raise SimulationError("event triggered twice")
        self._value = value
        sim = self.sim
        sim._seq += 1
        sim._ready.append((sim._seq, K_EVT, self, None, None))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exc`` raised."""
        if self._value is not _PENDING:
            raise SimulationError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._ok = False
        self._value = exc
        sim = self.sim
        sim._seq += 1
        sim._ready.append((sim._seq, K_EVT, self, None, None))
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if already
        triggered — scheduled at the current time, preserving order)."""
        if self.callbacks is None:
            # Already dispatched: schedule the late callback right away.
            self.sim.call_soon(fn, self)
        else:
            self.callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        # Field setup and scheduling are inlined (no super().__init__ call):
        # explicit Timeouts are still common enough that the call overhead
        # is measurable.  The ``when > now`` test (rather than ``delay ==
        # 0``) routes underflowed delays (now + delay == now in float) to
        # the batch, preserving the epoch invariant that the heap never
        # gains entries at the current time.
        self.sim = sim
        self.callbacks = []
        self._value = value if value is not None else delay
        self._ok = True
        sim._seq += 1
        when = sim.now + delay
        if when > sim.now:
            heapq.heappush(sim._heap, (when, sim._seq, K_EVT, self, None, None))
        else:
            sim._ready.append((sim._seq, K_EVT, self, None, None))

    # Timeouts are pre-triggered at construction; suppress double-trigger.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout cannot be re-triggered")


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        """The value passed to ``Process.interrupt``."""
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator coroutine; also an event for its termination."""

    __slots__ = ("generator", "_gsend", "_waiting_on", "_wtok", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process requires a generator, got {generator!r}")
        self.generator = generator
        #: ``generator.send`` pre-bound once — the run loop resumes typed
        #: sleeps through this, avoiding a bound-method allocation per event.
        self._gsend = generator.send
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        #: Wake token for typed sleeps: bumped every time the process runs,
        #: so a pending K_RESUME entry whose captured token no longer
        #: matches (the process was interrupted, or finished) is stale and
        #: fires as a no-op — the typed analogue of the legacy stale-Timeout
        #: identity check in :meth:`_resume`.
        self._wtok: int = 0
        if sim.obs.enabled:
            sim.obs.emit("process_start", -1, key=self.name, time=sim.now)
        sim.call_soon(self._start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self.sim.call_soon(self._throw, Interrupt(cause))

    def _start(self, _evt: Event = None) -> None:
        self._step(self.generator.send, None)

    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING or event is not self._waiting_on:
            # Stale wake-up: the process was interrupted (or finished) while
            # this event was pending; ignore it.
            return
        self._waiting_on = None
        if event._ok:
            self._step(self.generator.send, event._value)
        else:
            self._step(self.generator.throw, event._value)

    def _throw(self, exc: BaseException) -> None:
        if self._value is not _PENDING:
            return
        self._waiting_on = None
        self._step(self.generator.throw, exc)

    def _step(self, advance: Callable[[Any], Any], arg: Any) -> None:
        # Invalidate any still-pending typed sleep before the generator
        # runs: whatever it yields next is the only wake-up that counts.
        self._wtok += 1
        try:
            target = advance(arg)
        except BaseException as exc:
            self._terminate(exc)
            return
        self._suspend(target)

    def _terminate(self, exc: BaseException) -> None:
        """The generator raised out of a resume: record the termination."""
        if type(exc) is StopIteration:
            super().succeed(exc.value)
            self._emit_end("ok")
        elif isinstance(exc, Interrupt):
            # An uncaught interrupt terminates the process "normally" with
            # the interrupt as its value — callers may inspect it.
            super().succeed(exc)
            self._emit_end("interrupted")
        elif isinstance(exc, StopIteration):  # subclass, pathological
            super().succeed(exc.value)
            self._emit_end("ok")
        else:
            super().fail(exc)
            self._emit_end("error")

    def _suspend(self, target: Any) -> None:
        """Park the process on whatever the generator yielded."""
        tt = type(target)
        if tt is float or tt is int:
            # Sleep shorthand: resume after ``target`` seconds with the
            # delay sent back — bit-identical to ``yield sim.timeout(d)``
            # (same seq at the same point) but allocation-free.
            if target < 0:
                self._step(
                    self.generator.throw,
                    SimulationError(f"negative timeout: {target!r}"),
                )
                return
            sim = self.sim
            sim._seq += 1
            when = sim.now + target
            if when > sim.now:
                heapq.heappush(
                    sim._heap, (when, sim._seq, K_RESUME, self, self._wtok, target)
                )
            else:
                sim._ready.append((sim._seq, K_RESUME, self, self._wtok, target))
            return
        if target is PARK:
            # ``yield PARK``: suspend with *no* scheduled wake-up.  Some
            # other actor calls :meth:`wake`; until then the process costs
            # the kernel nothing (no event, no heap entry, no callbacks).
            self._waiting_on = PARK
            return
        if not isinstance(target, Event):
            self._step(
                self.generator.throw,
                SimulationError(f"process {self.name!r} yielded non-event {target!r}"),
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def wake(self, value: Any = None) -> None:
        """Wake a process parked on ``yield PARK``.

        Idempotent until the process actually runs: the first call schedules
        a typed resume at the current time; further calls (and calls while
        the process is not parked) are no-ops.  ``value`` is sent into the
        generator.  Spurious wakes are expected — parked pollers re-check
        their condition and re-park.
        """
        if self._waiting_on is not PARK or self._value is not _PENDING:
            return
        self._waiting_on = None
        sim = self.sim
        sim._seq += 1
        sim._ready.append((sim._seq, K_RESUME, self, self._wtok, value))

    def _emit_end(self, status: str) -> None:
        obs = self.sim.obs
        if obs.enabled:
            obs.emit("process_end", -1, key=self.name, info=status, time=self.sim.now)


class _Condition(Event):
    """Base for AllOf/AnyOf combinators."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
        else:
            for evt in self._events:
                evt.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered; value is their values."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(_Condition):
    """Triggers when the first child event triggers; value is (index, value)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            self.fail(event.value)
            return
        self.succeed((self._events.index(event), event.value))


class Simulator:
    """Owns simulated time, the event heap, and the current epoch batch.

    ``obs`` is the observability bus the kernel (and anything holding the
    simulator) emits through; it defaults to the free no-op bus.  The event
    loop itself is never instrumented per-event — only process lifecycle and
    per-run aggregates are emitted — so an enabled bus does not perturb the
    kernel's hot path.
    """

    __slots__ = (
        "now", "obs", "policy", "_heap", "_ready", "_seq", "_running",
        "_event_count", "_tick_fn", "_tick_every", "_epoch_cbs",
    )

    def __init__(self, obs=None, policy: Optional[SchedulePolicy] = None) -> None:
        self.now: float = 0.0
        self.obs = obs if obs is not None else NULL_BUS
        #: Optional coarse heartbeat: ``_tick_fn(event_count)`` runs every
        #: ``_tick_every`` processed events (see :meth:`set_tick`).  The
        #: disabled path costs one int compare against +inf per iteration.
        self._tick_fn: Optional[Callable[[int], None]] = None
        self._tick_every: int = 0
        #: One-shot end-of-epoch callbacks (see :meth:`at_epoch_end`).
        self._epoch_cbs: list = []
        #: Optional same-timestamp tie-break policy.  ``None`` (the default)
        #: keeps the epoch-batched fast path; a policy routes :meth:`run`
        #: through :meth:`_run_policy` instead.
        self.policy = policy
        #: Heap of future entries ``(time, seq, kind, a, b, c)``.  ``seq``
        #: is globally unique, so tuple comparison never reaches the
        #: (possibly incomparable) payload slots.
        self._heap: list = []
        #: The epoch batch: current-time entries ``(seq, kind, a, b, c)``
        #: in append (= seq) order.  Every entry here is stamped at ``now``;
        #: the run loop walks it positionally, so appends made while an
        #: epoch runs fire in the same pass, in exact seq order.
        self._ready: list = []
        self._seq: int = 0
        self._running = False
        self._event_count = 0

    # -- scheduling ------------------------------------------------------

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at the current simulated time, after already
        queued work."""
        self._seq += 1
        self._ready.append((self._seq, K_CALL, fn, args, None))

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._seq += 1
        when = self.now + delay
        if when > self.now:
            heapq.heappush(self._heap, (when, self._seq, K_CALL, fn, args, None))
        else:
            self._ready.append((self._seq, K_CALL, fn, args, None))

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``.

        The exact-timestamp twin of :meth:`call_later`, for callers that
        must hit a precomputed absolute time without the ``now + (when -
        now)`` float round-trip — the partitioned engine injects remote
        deliveries and completion notices this way so their event times
        are bit-identical to the serial kernel's.
        """
        if when < self.now:
            raise SimulationError(
                f"call_at in the past: {when!r} < now={self.now!r}"
            )
        self._seq += 1
        if when > self.now:
            heapq.heappush(self._heap, (when, self._seq, K_CALL, fn, args, None))
        else:
            self._ready.append((self._seq, K_CALL, fn, args, None))

    def at_epoch_end(self, fn: Callable[[], None]) -> None:
        """Register a one-shot callback to run when the current epoch ends.

        ``fn()`` fires inside :meth:`run` at the first point where no more
        work is pending at the current timestamp — after every entry of the
        ``now`` epoch (including appends they make) has been dispatched,
        and strictly before the clock advances or :meth:`run` returns.  A
        callback may schedule new work (at ``now`` or later) and may
        re-register itself; the loop re-checks for both before moving on.

        This is the hook the serial :class:`~repro.network.fabric.Fabric`
        uses to defer destination-NIC ejection to the end of the send's
        epoch, so equal-timestamp wire sends eject in the canonical
        ``(inject, src, seq)`` order — the same total order the partitioned
        engine's barrier merge replays (see ``repro.sim.partition``).

        Callbacks registered while no :meth:`run` is active fire at the end
        of the first epoch of the next :meth:`run` call.
        """
        self._epoch_cbs.append(fn)

    def next_event_time(self) -> float:
        """Timestamp of the earliest pending entry (``inf`` when idle).

        Current-time batch entries report ``now``; otherwise the heap head.
        Only meaningful between :meth:`run` calls — the conservative-
        synchronization coordinator polls this to compute the next safe
        horizon.
        """
        if self._ready:
            return self.now
        return self._heap[0][0] if self._heap else math.inf

    # -- public API ------------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator coroutine as a simulation process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when every child event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first child event fires."""
        return AnyOf(self, events)

    @property
    def events_processed(self) -> int:
        """Total entries processed so far (diagnostic)."""
        return self._event_count

    def set_tick(self, fn: Optional[Callable[[int], None]], every: int = 16384) -> None:
        """Install (or clear, with ``fn=None``) a run-loop heartbeat.

        ``fn(event_count)`` is invoked from inside :meth:`run` roughly every
        ``every`` processed events — a coarse, deterministic-in-simulation
        hook for wall-clock progress reporting (:mod:`repro.obs.progress`).
        The callback runs *between* event dispatches and must not schedule
        simulation work; it sees the kernel mid-run, so treat the simulator
        as read-only.  With no tick installed the run loop pays only one
        integer compare per iteration.

        A tick callback **may raise** to abort the run: both kernels
        guarantee the exception propagates out of :meth:`run` with the
        simulator left consistent (clock, event count, and pending events
        reflect everything dispatched before the abort), so a supervisor
        (:class:`repro.supervise.guards.RunGuards`) can budget-limit a run
        and still take a trustworthy diagnostic snapshot afterwards.
        """
        if fn is not None and every < 1:
            raise SimulationError(f"tick interval must be >= 1, got {every!r}")
        self._tick_fn = fn
        self._tick_every = every if fn is not None else 0

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap empties or simulated time reaches ``until``.

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if self.policy is not None:
            return self._run_policy(until)
        self._running = True
        heap = self._heap
        batch = self._ready
        heappop = heapq.heappop
        heappush = heapq.heappush
        count = self._event_count
        tick_fn = self._tick_fn
        next_tick = count + self._tick_every if tick_fn is not None else math.inf
        epoch_cbs = self._epoch_cbs
        pos = 0
        try:
            while True:
                if count >= next_tick:
                    tick_fn(count)
                    next_tick = count + self._tick_every
                if pos < len(batch):
                    # Walk the epoch batch positionally — appends made by
                    # the entries we fire land behind ``pos`` and run in
                    # this same pass, in seq order.
                    _seq, kind, a, b, c = batch[pos]
                    pos += 1
                    count += 1
                    if kind == 2:  # K_RESUME — the hottest kind, inlined:
                        # resume the generator and reschedule its next
                        # sleep without leaving the loop frame.
                        if a._wtok == b and a._value is _PENDING:
                            a._wtok += 1
                            try:
                                target = a._gsend(c)
                            except BaseException as exc:
                                a._terminate(exc)
                                continue
                            tt = type(target)
                            if (tt is float or tt is int) and target >= 0:
                                self._seq = seq = self._seq + 1
                                when = self.now + target
                                if when > self.now:
                                    heappush(
                                        heap, (when, seq, 2, a, a._wtok, target)
                                    )
                                else:
                                    batch.append((seq, 2, a, a._wtok, target))
                            else:
                                a._suspend(target)
                        continue
                    if kind == 0:  # K_EVT
                        a._dispatch()
                    else:          # K_CALL
                        a(*b)
                    continue
                if pos:
                    del batch[:]
                    pos = 0
                if epoch_cbs:
                    # The ``now`` epoch is exhausted (the inner heap drain
                    # below never leaves same-time entries behind): run the
                    # end-of-epoch callbacks before the clock can advance
                    # or the loop can break, then re-check — callbacks may
                    # schedule work at ``now`` or later.
                    todo = epoch_cbs[:]
                    del epoch_cbs[:]
                    for cb in todo:
                        cb()
                    continue
                if not heap:
                    if until is not None:
                        self.now = until
                    break
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    break
                self.now = when
                # Drain the whole heap epoch at ``when`` directly: every
                # entry here predates the batch appends its firing can
                # cause (scheduling at the current time always routes to
                # the batch, never the heap), so seq order is preserved.
                while True:
                    _w, _seq, kind, a, b, c = heappop(heap)
                    count += 1
                    if kind == 2:
                        if a._wtok == b and a._value is _PENDING:
                            a._wtok += 1
                            try:
                                target = a._gsend(c)
                            except BaseException as exc:
                                a._terminate(exc)
                            else:
                                tt = type(target)
                                if (tt is float or tt is int) and target >= 0:
                                    self._seq = seq = self._seq + 1
                                    twhen = when + target
                                    if twhen > when:
                                        heappush(
                                            heap,
                                            (twhen, seq, 2, a, a._wtok, target),
                                        )
                                    else:
                                        batch.append((seq, 2, a, a._wtok, target))
                                else:
                                    a._suspend(target)
                    elif kind == 0:
                        a._dispatch()
                    else:
                        a(*b)
                    if not heap or heap[0][0] != when:
                        break
                    if count >= next_tick:
                        tick_fn(count)
                        next_tick = count + self._tick_every
        finally:
            if pos:
                # Drop the fired prefix so an exception escaping a callback
                # cannot leave already-dispatched entries behind for a
                # later run() to re-fire.
                del batch[:pos]
            self._event_count = count
            self._running = False
        if self.obs.enabled:
            self.obs.emit(
                "sim_run", -1,
                info={"events_processed": self._event_count, "now": self.now},
                time=self.now,
            )
        return self.now

    def _run_policy(self, until: Optional[float]) -> float:
        """Policy-driven run loop (see :class:`SchedulePolicy`).

        Each time step first drains every heap entry stamped at (or before)
        the current time into the ready list.  Such entries were all pushed
        before simulated time reached ``now`` — zero-delay scheduling
        always lands on the ready list directly — so their ``seq`` values
        precede every ready entry's and the drained list is the complete
        runnable set in exact FIFO order.  The policy then picks which
        candidate fires; index 0 replays the default kernel bit-identically.
        """
        self._running = True
        policy = self.policy
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        count = self._event_count
        tick_fn = self._tick_fn
        next_tick = count + self._tick_every if tick_fn is not None else math.inf
        epoch_cbs = self._epoch_cbs
        try:
            while True:
                if count >= next_tick:
                    tick_fn(count)
                    next_tick = count + self._tick_every
                while heap and heap[0][0] <= self.now:
                    ready.append(heappop(heap)[1:])
                if not ready:
                    if epoch_cbs:
                        # End of the ``now`` epoch (the drain above leaves
                        # no runnable entries): fire the callbacks, then
                        # re-check for work they scheduled.
                        todo = epoch_cbs[:]
                        del epoch_cbs[:]
                        for cb in todo:
                            cb()
                        continue
                    if not heap:
                        if until is not None:
                            self.now = until
                        break
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        break
                    self.now = when
                    continue
                if len(ready) > 1:
                    idx = policy.choose(self, ready)
                else:
                    idx = 0
                _seq, kind, a, b, c = ready.pop(idx) if idx else ready.pop(0)
                count += 1
                if kind == 2:
                    if a._wtok == b and a._value is _PENDING:
                        a._step(a.generator.send, c)
                elif kind == 0:
                    a._dispatch()
                else:
                    a(*b)
        finally:
            self._event_count = count
            self._running = False
        if self.obs.enabled:
            self.obs.emit(
                "sim_run", -1,
                info={"events_processed": self._event_count, "now": self.now},
                time=self.now,
            )
        return self.now

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: start ``generator`` and run to completion; return its
        value (raising if it failed)."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self.now}"
            )
        if not proc.ok:
            raise proc.value
        return proc.value


#: ``REPRO_SIM_CORE=legacy`` swaps in the frozen pre-epoch kernel at import
#: time — every ``from repro.sim.core import X`` site then resolves to the
#: legacy implementation, which is how ``tools/bench_ab.py`` A/B-tests the
#: two cores in separate interpreters on identical upper layers.
_SELECTED_CORE = os.environ.get("REPRO_SIM_CORE", "batched")
if _SELECTED_CORE == "legacy":
    from repro.sim import _legacy_core as _impl

    Simulator = _impl.Simulator            # noqa: F811
    SchedulePolicy = _impl.SchedulePolicy  # noqa: F811
    Event = _impl.Event                    # noqa: F811
    Timeout = _impl.Timeout                # noqa: F811
    Process = _impl.Process                # noqa: F811
    Interrupt = _impl.Interrupt            # noqa: F811
    AllOf = _impl.AllOf                    # noqa: F811
    AnyOf = _impl.AnyOf                    # noqa: F811
    _PENDING = _impl._PENDING
elif _SELECTED_CORE != "batched":
    raise SimulationError(
        f"REPRO_SIM_CORE must be 'batched' or 'legacy', got {_SELECTED_CORE!r}"
    )
