"""Synchronisation primitives built on the event kernel.

All primitives hand out :class:`~repro.sim.core.Event` objects, so processes
use them uniformly: ``item = yield store.get()``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush, heappop
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Process, Simulator

__all__ = ["Store", "PriorityStore", "Resource", "Semaphore", "Latch", "NotifyQueue"]


class Store:
    """An unbounded (or capacity-bounded) FIFO of items.

    ``get()`` returns an event that triggers with the next item; ``put(item)``
    returns an event that triggers once the item is accepted (immediately
    unless the store is at capacity).
    """

    __slots__ = ("sim", "capacity", "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("Store capacity must be positive or None")
        self.sim = sim
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (diagnostic)."""
        return tuple(self._items)

    @property
    def waiters(self) -> tuple:
        """``(blocked getters, blocked putters)`` — deadlock diagnostics.

        The schedule explorer's quiescence checker reads this after a run:
        a drained simulation should leave no process parked on a store.
        """
        return (len(self._getters), len(self._putters))

    def put(self, item: Any) -> Event:
        """Offer an item; the returned event fires when it is accepted."""
        evt = Event(self.sim)
        if self._getters:
            # Hand straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            evt.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            evt.succeed()
        else:
            self._putters.append((evt, item))
        return evt

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False when the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Event that fires with the next item (FIFO)."""
        evt = Event(self.sim)
        if self._items:
            evt.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(evt)
        return evt

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            evt, item = self._putters.popleft()
            self._items.append(item)
            evt.succeed()


class PriorityStore(Store):
    """A store that releases the *lowest-priority-key* item first.

    Items are ``(priority, payload)`` pairs; ties release in insertion order.
    """

    __slots__ = ("_seq",)

    def __init__(self, sim: Simulator):
        super().__init__(sim, capacity=None)
        self._items: list = []  # heap of (priority, seq, payload)
        self._seq = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued payloads in priority order (diagnostic)."""
        return tuple(payload for _p, _s, payload in sorted(self._items))

    def put(self, item: Any) -> Event:
        """Accept a ``(priority, payload)`` pair (never blocks)."""
        priority, payload = item
        evt = Event(self.sim)
        if self._getters:
            self._getters.popleft().succeed(payload)
        else:
            self._seq += 1
            heappush(self._items, (priority, self._seq, payload))
        evt.succeed()
        return evt

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; a priority store always accepts."""
        self.put(item)
        return True

    def get(self) -> Event:
        """Event that fires with the lowest-key payload."""
        evt = Event(self.sim)
        if self._items:
            _p, _s, payload = heappop(self._items)
            evt.succeed(payload)
        else:
            self._getters.append(evt)
        return evt

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, payload)."""
        if self._items:
            _p, _s, payload = heappop(self._items)
            return True, payload
        return False, None


class Resource:
    """A counted resource with FIFO acquisition.

    ``acquire()`` yields an event; callers must call ``release()`` exactly
    once per successful acquisition.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int):
        if capacity <= 0:
            raise SimulationError("Resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Currently held slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Free slots."""
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Event that fires once a slot is held (FIFO)."""
        evt = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def try_acquire(self) -> bool:
        """Take a slot if one is free; False otherwise."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("Resource.release without acquire")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Semaphore:
    """A counting semaphore (may start at zero)."""

    __slots__ = ("sim", "_value", "_waiters")

    def __init__(self, sim: Simulator, value: int = 0):
        if value < 0:
            raise SimulationError("Semaphore value must be non-negative")
        self.sim = sim
        self._value = value
        self._waiters: deque[Event] = deque()

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    def acquire(self) -> Event:
        """Event that fires once the counter can be decremented."""
        evt = Event(self.sim)
        if self._value > 0:
            self._value -= 1
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def release(self, n: int = 1) -> None:
        """Increment the counter ``n`` times, waking waiters first."""
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._value += 1


class NotifyQueue:
    """A non-consuming notification FIFO.

    Unlike :class:`Store`, waiting on :meth:`event` does **not** pop an item:
    it just fires when the queue is (or becomes) non-empty.  Consumers drain
    with :meth:`try_pop`.  This is the shape both communication backends
    need: a thread parks until *any* work exists, then drains everything.
    """

    __slots__ = ("sim", "_items", "_waiters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: deque = deque()
        #: Mixed waiter list: one-shot :class:`Event` s (from :meth:`event`)
        #: and parked :class:`Process` es (from :meth:`park`).
        self._waiters: list = []

    def push(self, item: Any) -> None:
        self._items.append(item)
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for w in waiters:
                if isinstance(w, Process):
                    # A parked Process — wake() is idempotent, so a process
                    # registered with several queues wakes exactly once.
                    w.wake()
                elif not w.triggered:
                    # A waiter may be registered with several queues (e.g. an
                    # engine watching both its FIFOs); only fire it once.
                    w.succeed()

    def try_pop(self) -> tuple[bool, Any]:
        """Non-blocking pop; returns (ok, item)."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def event(self) -> Event:
        """Event firing when the queue is non-empty (now or later)."""
        evt = Event(self.sim)
        if self._items:
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def park(self, proc) -> bool:
        """Register a parked process to be woken on the next :meth:`push`.

        Returns ``False`` (and registers nothing) when items are already
        queued — the caller should drain instead of parking.  Registration
        is deduplicated, so a poller that parks on every idle cycle keeps
        exactly one slot in the waiter list.
        """
        if self._items:
            return False
        if proc not in self._waiters:
            self._waiters.append(proc)
        return True

    def __len__(self) -> int:
        return len(self._items)


class Latch:
    """A countdown latch: triggers its event when the count reaches zero."""

    __slots__ = ("sim", "_count", "event")

    def __init__(self, sim: Simulator, count: int):
        if count < 0:
            raise SimulationError("Latch count must be non-negative")
        self.sim = sim
        self._count = count
        self.event = Event(sim)
        if count == 0:
            self.event.succeed()

    @property
    def count(self) -> int:
        """Remaining count before the latch opens."""
        return self._count

    def count_down(self, n: int = 1) -> None:
        """Decrement; opens the latch (fires the event) at zero."""
        if self._count <= 0:
            raise SimulationError("Latch already released")
        self._count -= n
        if self._count < 0:
            raise SimulationError("Latch count went negative")
        if self._count == 0:
            self.event.succeed()

    def wait(self) -> Event:
        """The latch event (fires when the count reaches zero)."""
        return self.event
