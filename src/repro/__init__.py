"""repro — reproduction of *Improving the Scaling of an Asynchronous Many-Task
Runtime with a Lightweight Communication Engine* (Mor, Bosilca, Snir; ICPP 2023).

The package provides:

- :mod:`repro.sim` — a deterministic discrete-event simulation kernel;
- :mod:`repro.network` — a LogGP-style InfiniBand fabric model;
- :mod:`repro.mpi` — a simulated MPI library (matching, eager/rendezvous,
  persistent requests, ``Testsome``);
- :mod:`repro.lci` — a simulated Lightweight Communication Interface
  (immediate/buffered/direct protocols, completion queues, explicit progress);
- :mod:`repro.runtime` — a PaRSEC-like asynchronous many-task runtime with
  both an MPI backend (paper §4.2) and an LCI backend (paper §5.3);
- :mod:`repro.hicma` — a tile low-rank (TLR) Cholesky factorization, both as
  real NumPy numerics and as a task-graph generator for simulated runs;
- :mod:`repro.bench` / :mod:`repro.analysis` — the experiment harness that
  regenerates every figure and table of the paper's evaluation;
- :mod:`repro.explore` — a schedule-space explorer that replays scenarios
  under alternative legal interleavings and checks protocol invariants;
- :mod:`repro.workloads` — the workload plugin registry and the bundled
  scenario suite (stencil, taskbench, ring, ... — see ``docs/workloads.md``).

Quickstart::

    from repro import Experiment
    result = Experiment(workload="pingpong", backend="lci",
                        fragment_size=128 * 1024).run()
    print(result.summary())
"""

from repro._version import __version__
from repro.api import (
    BackendKind,
    Experiment,
    GraphResult,
    HicmaResult,
    OverlapResult,
    PingPongResult,
    Result,
    quick_compare,
    run_pingpong,
    run_overlap,
    run_hicma,
)

__all__ = [
    "__version__",
    "BackendKind",
    "Experiment",
    "Result",
    "PingPongResult",
    "OverlapResult",
    "HicmaResult",
    "GraphResult",
    "quick_compare",
    "run_pingpong",
    "run_overlap",
    "run_hicma",
]
