"""Task-graph generators for the registered scenario suite.

These extend the §2.1-style generators of :mod:`repro.bench.workloads`
with the dependence patterns related work sweeps: a FleCSI-like 2D
stencil with halo exchange, collective-shaped reduce/broadcast trees, a
nearest-neighbor ring shift, a spawn-heavy fork-join, and a Task
Bench-style tunable graph (width × depth × dependence pattern × task
granularity).  Every generator emits directly onto the columnar
:class:`~repro.runtime.taskpool.TaskGraph` builder, so paper-scale
instances stay cheap to construct.

All generators are deterministic: the only randomness (the ``random``
Task Bench pattern) draws from a generator seeded by the config.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.runtime.taskpool import TaskGraph

__all__ = [
    "TASKBENCH_PATTERNS",
    "stencil2d",
    "tree_collective",
    "ring_shift",
    "fork_join",
    "taskbench_graph",
]

#: The tunable dependence patterns of :func:`taskbench_graph`, mirroring
#: the Task Bench study's named patterns.
TASKBENCH_PATTERNS = (
    "trivial", "serial", "stencil", "fft", "random", "all_to_all",
)


def stencil2d(
    grid: int,
    steps: int,
    num_nodes: int,
    halo_bytes: int = 32 * 1024,
    duration: float = 20e-6,
) -> TaskGraph:
    """A 2D periodic stencil: ``grid × grid`` tiles, block-row partitioned.

    Each step every tile recomputes from its own previous state plus the
    four von-Neumann neighbours' halos; tiles on a partition boundary pull
    halos across nodes — the FleCSI-like halo-exchange traffic pattern.
    """
    if grid < 2:
        raise ConfigError("stencil grid must be at least 2 tiles per side")
    if steps < 1:
        raise ConfigError("stencil needs at least one step")
    g = TaskGraph()

    def owner(i: int) -> int:
        # Block-row decomposition: contiguous rows per node.
        return (i * num_nodes) // grid

    state = [[None] * grid for _ in range(grid)]
    for step in range(steps):
        new_state = [[None] * grid for _ in range(grid)]
        for i in range(grid):
            for j in range(grid):
                inputs = []
                if state[i][j] is not None:
                    inputs.append(state[i][j])
                    inputs.append(state[(i - 1) % grid][j])
                    inputs.append(state[(i + 1) % grid][j])
                    inputs.append(state[i][(j - 1) % grid])
                    inputs.append(state[i][(j + 1) % grid])
                t = g.add_task(
                    node=owner(i),
                    duration=duration,
                    priority=float(steps - step),
                    inputs=inputs,
                    kind=f"stencil{step}",
                )
                new_state[i][j] = g.add_flow(t, halo_bytes)
        state = new_state
    return g


def tree_collective(
    fanout: int,
    depth: int,
    num_nodes: int,
    rounds: int = 1,
    payload_bytes: int = 64 * 1024,
    duration: float = 5e-6,
    mode: str = "allreduce",
) -> TaskGraph:
    """A ``fanout``-ary collective tree, repeated for ``rounds``.

    ``mode="broadcast"`` fans one flow down to ``fanout**depth`` leaves,
    ``"reduce"`` gathers leaves up to the root, ``"allreduce"`` chains a
    reduce into a broadcast per round — the multicast-tree traffic the
    runtime's ACTIVATE aggregation is built for.  Vertices are placed
    round-robin across nodes in breadth-first order.
    """
    if mode not in ("broadcast", "reduce", "allreduce"):
        raise ConfigError(
            f"unknown tree mode {mode!r} "
            f"(known: broadcast, reduce, allreduce)"
        )
    if fanout < 2:
        raise ConfigError("tree fanout must be at least 2")
    if depth < 1:
        raise ConfigError("tree depth must be at least 1")
    g = TaskGraph()
    placed = 0

    def place() -> int:
        nonlocal placed
        node = placed % num_nodes
        placed += 1
        return node

    def broadcast(root_flow, step: int) -> list:
        """Fan ``root_flow`` down; returns the leaf flows."""
        level = [root_flow]
        for d in range(depth):
            nxt = []
            for flow in level:
                for _ in range(fanout):
                    t = g.add_task(node=place(), duration=duration,
                                   inputs=[flow], kind=f"bcast{step}d{d}")
                    nxt.append(g.add_flow(t, payload_bytes))
            level = nxt
        return level

    def reduce(leaf_flows, step: int):
        """Gather ``leaf_flows`` up; returns the root flow."""
        level = list(leaf_flows)
        d = 0
        while len(level) > 1:
            nxt = []
            for lo in range(0, len(level), fanout):
                group = level[lo:lo + fanout]
                t = g.add_task(node=place(), duration=duration,
                               inputs=group, kind=f"reduce{step}d{d}")
                nxt.append(g.add_flow(t, payload_bytes))
            level = nxt
            d += 1
        return level[0]

    def leaves(step: int) -> list:
        """Independent leaf producers feeding a reduce."""
        out = []
        for _ in range(fanout ** depth):
            t = g.add_task(node=place(), duration=duration,
                           kind=f"leaf{step}")
            out.append(g.add_flow(t, payload_bytes))
        return out

    carry = None
    for r in range(rounds):
        if mode == "broadcast":
            root = g.add_task(node=place(), duration=duration,
                              inputs=[carry] if carry is not None else [],
                              kind=f"root{r}")
            carry_leaves = broadcast(g.add_flow(root, payload_bytes), r)
            # Next round's root waits on one leaf (keeps rounds ordered).
            carry = carry_leaves[0]
        elif mode == "reduce":
            carry = reduce(leaves(r), r)
        else:  # allreduce: reduce up, then broadcast the result back down
            root_flow = reduce(leaves(r), r)
            carry = broadcast(root_flow, r)[0]
    # A sink consumes the final carry so the last flow is observable.
    g.add_task(node=0, duration=0.0, inputs=[carry], kind="sink")
    return g


def ring_shift(
    num_nodes: int,
    steps: int,
    flow_bytes: int = 64 * 1024,
    duration: float = 5e-6,
) -> TaskGraph:
    """A nearest-neighbor ring: every step each node consumes its left
    neighbour's previous flow plus its own, then produces one flow — the
    shift pattern of ring allreduce/halo pipelines.  Every flow crosses
    exactly one link, so the wire traffic is perfectly regular."""
    if num_nodes < 2:
        raise ConfigError("ring needs at least two nodes")
    if steps < 1:
        raise ConfigError("ring needs at least one step")
    g = TaskGraph()
    state = [None] * num_nodes
    for step in range(steps):
        new_state = [None] * num_nodes
        for node in range(num_nodes):
            inputs = []
            if state[node] is not None:
                inputs.append(state[node])
                inputs.append(state[(node - 1) % num_nodes])
            t = g.add_task(
                node=node,
                duration=duration,
                priority=float(steps - step),
                inputs=inputs,
                kind=f"ring{step}",
            )
            new_state[node] = g.add_flow(t, flow_bytes)
        state = new_state
    return g


def fork_join(
    fanout: int,
    depth: int,
    num_nodes: int,
    flow_bytes: int = 16 * 1024,
    duration: float = 5e-6,
) -> TaskGraph:
    """A spawn-heavy recursive fork-join.

    The root forks ``fanout`` children per level down to ``depth``, then
    the tree joins symmetrically back to a single task — ``fanout**depth``
    parallel leaves with bursts of small ACTIVATE traffic at every fork
    and join boundary, the dynamic-runtime pattern MPI aggregation handles
    worst.  Children scatter round-robin across nodes.
    """
    if fanout < 2:
        raise ConfigError("fork-join fanout must be at least 2")
    if depth < 1:
        raise ConfigError("fork-join depth must be at least 1")
    g = TaskGraph()
    placed = 0

    def place() -> int:
        nonlocal placed
        node = placed % num_nodes
        placed += 1
        return node

    root = g.add_task(node=place(), duration=duration, kind="fork0")
    level = [g.add_flow(root, flow_bytes)]
    for d in range(depth):
        nxt = []
        for flow in level:
            for _ in range(fanout):
                t = g.add_task(node=place(), duration=duration,
                               inputs=[flow], kind=f"fork{d + 1}")
                nxt.append(g.add_flow(t, flow_bytes))
        level = nxt
    d = 0
    while len(level) > 1:
        nxt = []
        for lo in range(0, len(level), fanout):
            t = g.add_task(node=place(), duration=duration,
                           inputs=level[lo:lo + fanout], kind=f"join{d}")
            nxt.append(g.add_flow(t, flow_bytes))
        level = nxt
        d += 1
    g.add_task(node=0, duration=0.0, inputs=level, kind="sink")
    return g


def _pattern_deps(pattern: str, width: int, layer: int, col: int,
                  fan_in: int, rng) -> list:
    """Previous-layer columns task ``(layer, col)`` depends on."""
    if pattern == "trivial":
        return []
    if pattern == "serial":
        return [col]
    if pattern == "stencil":
        return [c for c in (col - 1, col, col + 1) if 0 <= c < width]
    if pattern == "fft":
        span = max(1, width.bit_length() - 1)
        partner = col ^ (1 << ((layer - 1) % span))
        deps = [col]
        if partner != col and partner < width:
            deps.append(partner)
        return deps
    if pattern == "all_to_all":
        return list(range(width))
    # "random": a seeded draw of fan_in distinct previous columns.
    take = min(fan_in, width)
    picks = rng.choice(width, size=take, replace=False)
    return sorted(int(c) for c in picks)


def taskbench_graph(
    width: int,
    depth: int,
    pattern: str,
    num_nodes: int,
    granularity: float = 5e-6,
    flow_bytes: int = 16 * 1024,
    fan_in: int = 3,
    seed: int = 0,
) -> TaskGraph:
    """A Task Bench-style tunable graph: ``width`` columns × ``depth``
    layers with a named dependence ``pattern`` between consecutive layers
    and per-task compute ``granularity``.

    Columns map to nodes round-robin, so any cross-column dependence is a
    cross-node flow; sweeping width × depth × pattern × granularity moves
    the workload continuously between latency-bound, bandwidth-bound and
    compute-bound regimes — the axis the Task Bench comparisons sweep.
    """
    if pattern not in TASKBENCH_PATTERNS:
        raise ConfigError(
            f"unknown taskbench pattern {pattern!r} "
            f"(known: {', '.join(TASKBENCH_PATTERNS)})"
        )
    if width < 1 or depth < 1:
        raise ConfigError("taskbench width and depth must be at least 1")
    if fan_in < 1:
        raise ConfigError("taskbench fan_in must be at least 1")
    rng = np.random.default_rng(seed)
    g = TaskGraph()
    prev = [None] * width
    for layer in range(depth):
        new = [None] * width
        for col in range(width):
            deps = (
                _pattern_deps(pattern, width, layer, col, fan_in, rng)
                if layer > 0 else []
            )
            t = g.add_task(
                node=col % num_nodes,
                duration=granularity,
                priority=float(depth - layer),
                inputs=[prev[c] for c in deps],
                kind=f"tb{layer}",
            )
            new[col] = g.add_flow(t, flow_bytes)
        prev = new
    return g
