"""Workload plugin registry and the bundled scenario suite.

:class:`WorkloadSpec` describes one runnable, self-documenting workload
(config schema, driver, task-graph builder, typed reducer, catalog
prose); :func:`register`/:func:`get_workload`/:func:`workload_names`
are the registry surface every layer — ``repro.Experiment``, the CLI,
sweeps, chaos, explore — resolves workloads through.  External packages
contribute specs via the ``repro.workloads`` entry-point group
(:data:`ENTRY_POINT_GROUP`).

See ``docs/workloads.md`` for the generated scenario catalog.
"""

from repro.workloads.registry import (
    ENTRY_POINT_GROUP,
    Param,
    WorkloadSpec,
    get_workload,
    register,
    unregister,
    workload_names,
    workload_specs,
)
from repro.workloads.runner import (
    GraphBenchResult,
    freeze_graph_result,
    run_graph_benchmark,
)

__all__ = [
    "ENTRY_POINT_GROUP",
    "Param",
    "WorkloadSpec",
    "register",
    "unregister",
    "get_workload",
    "workload_names",
    "workload_specs",
    "GraphBenchResult",
    "run_graph_benchmark",
    "freeze_graph_result",
]
