"""Generic execution of task-graph workloads on the simulated runtime.

Registered scenario workloads (stencil, taskbench, ring, ...) all share
one driver shape: build a :class:`~repro.runtime.taskpool.TaskGraph` from
the config, validate placement, run it on a :class:`~repro.runtime.
context.ParsecContext`, and report the runtime's common measurements.
:func:`run_graph_benchmark` is that driver; per-workload wrappers in
:mod:`repro.workloads.catalog` bind it to a graph builder.

The driver honours the full hook contract of the paper benchmarks
(``faults``/``schedule_policy``/``ctx_observer``) plus run-progress
heartbeats and :class:`~repro.supervise.guards.RunGuards` budgets, so
every registered workload works under chaos plans, the schedule explorer,
and supervised sweeps without per-workload glue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["GraphBenchResult", "run_graph_benchmark", "freeze_graph_result"]


@dataclass
class GraphBenchResult:
    """Raw measurements of one task-graph workload execution.

    The common :class:`~repro.runtime.context.RunStats` surface, flattened
    the same way the paper benchmarks flatten theirs, so sweep records and
    result digests treat every workload uniformly.
    """

    config: Any
    backend: str
    workload: str
    makespan: float = 0.0
    tasks: int = 0
    flow_latency: dict = field(default_factory=dict)
    msg_latency: dict = field(default_factory=dict)
    activates_sent: int = 0
    wire_bytes: int = 0
    worker_utilization: float = 0.0
    events_processed: int = 0

    def summary(self) -> str:
        """One-line report."""
        return (
            f"{self.workload}[{self.backend}]: "
            f"makespan={self.makespan * 1e3:.3f} ms, {self.tasks} tasks, "
            f"{self.wire_bytes / 1e6:.1f} MB wire, "
            f"utilization {self.worker_utilization:.1%}"
        )


def run_graph_benchmark(
    workload: str,
    builder: Callable,
    backend: str,
    cfg: Any,
    platform: Optional[Any] = None,
    *,
    faults: Any = None,
    schedule_policy: Any = None,
    ctx_observer: Any = None,
    progress: Any = None,
    guards: Any = None,
    partitions: Any = None,
) -> GraphBenchResult:
    """Build ``builder(cfg, platform)`` and execute it on the runtime.

    ``faults``/``schedule_policy``/``ctx_observer`` follow the contract of
    :func:`repro.bench.pingpong.run_pingpong_benchmark`; ``progress`` and
    ``guards`` follow :func:`repro.bench.hicma_bench.run_hicma_benchmark`.
    The default platform is the CI-scale cluster sized to the config's
    ``num_nodes``.

    ``partitions`` (an ``int``, a :class:`~repro.config.PartitionConfig`,
    or ``None`` for serial) selects the partitioned PDES engine — the run
    shards simulated nodes across worker processes but produces
    bit-identical measurements (see :mod:`repro.sim.partition`).
    """
    from repro.config import as_partition_config, scaled_platform
    from repro.runtime.context import ParsecContext

    pcfg = as_partition_config(partitions)
    platform = platform or scaled_platform(num_nodes=cfg.num_nodes)
    if pcfg is not None:
        from repro.sim.partition import run_partitioned_graph

        stats = run_partitioned_graph(
            builder,
            backend,
            cfg,
            platform,
            pcfg,
            faults=faults,
            schedule_policy=schedule_policy,
            ctx_observer=ctx_observer,
            progress=progress,
            guards=guards,
        )
        return _graph_result(workload, backend, cfg, stats)
    graph = builder(cfg, platform)
    graph.validate(num_nodes=cfg.num_nodes)
    ctx = ParsecContext(
        platform,
        backend=backend,
        seed=cfg.seed,
        faults=faults,
        schedule_policy=schedule_policy,
    )
    if ctx_observer is not None:
        ctx_observer(ctx)
    stats = ctx.run(graph, until=36_000.0, progress=progress, guards=guards)
    return _graph_result(workload, backend, cfg, stats)


def _graph_result(
    workload: str, backend: str, cfg: Any, stats: Any
) -> GraphBenchResult:
    """Flatten :class:`~repro.runtime.context.RunStats` into the raw
    result record (shared by the serial and partitioned paths)."""
    from repro.analysis.stats import summarize

    result = GraphBenchResult(
        config=cfg,
        backend=backend,
        workload=workload,
        makespan=stats.makespan,
        tasks=stats.tasks_executed,
        flow_latency=summarize(stats.flow_latencies),
        msg_latency=summarize(stats.msg_latencies),
        activates_sent=stats.activates_sent,
        wire_bytes=stats.wire_bytes,
        worker_utilization=stats.worker_utilization,
        events_processed=stats.events_processed,
    )
    # Partitioned runs attach sync-protocol telemetry (window counts,
    # coordinator round-trips) as an undeclared attribute so
    # dataclasses.asdict() fingerprints stay comparable with serial runs.
    sync = getattr(stats, "partition_sync", None)
    if sync is not None:
        result.partition_sync = sync
    return result


def freeze_graph_result(raw: GraphBenchResult, backend: str):
    """Reduce a :class:`GraphBenchResult` to the frozen public
    :class:`~repro.api.GraphResult` (the shared reducer of every
    registered scenario workload)."""
    from repro.api import GraphResult

    result = GraphResult(
        workload=raw.workload,
        backend=backend,
        makespan=raw.makespan,
        tasks=raw.tasks,
        flow_latency=dict(raw.flow_latency),
        activates_sent=raw.activates_sent,
        wire_bytes=raw.wire_bytes,
        worker_utilization=raw.worker_utilization,
        events_processed=raw.events_processed,
    )
    sync = getattr(raw, "partition_sync", None)
    if sync is not None:
        # GraphResult is frozen; telemetry rides along undeclared so
        # asdict() fingerprints stay engine-agnostic.
        object.__setattr__(result, "partition_sync", sync)
    return result
