"""The paper's three benchmarks as registered workloads.

These specs wrap the existing :mod:`repro.bench` drivers unchanged —
same configs, same drivers, same reduction into the typed public results
:class:`~repro.api.PingPongResult`/:class:`~repro.api.OverlapResult`/
:class:`~repro.api.HicmaResult` — so ``Experiment(workload=...)`` through
the registry stays bit-identical to the pre-registry dispatch.  Only the
lookup moved; nothing about execution did.
"""

from __future__ import annotations

from repro.workloads.registry import WorkloadSpec, register

__all__ = ["PINGPONG", "OVERLAP", "HICMA"]


def _freeze_pingpong(raw, backend):
    """Reduce the raw bench result to :class:`~repro.api.PingPongResult`."""
    from repro.api import PingPongResult

    return PingPongResult(
        workload="pingpong",
        backend=backend,
        makespan=raw.makespan,
        tasks=raw.tasks,
        flow_latency=dict(raw.flow_latency),
        bandwidth=raw.bandwidth,
        iteration_times=tuple(raw.iteration_times),
        activates_sent=raw.activates_sent,
    )


def _freeze_overlap(raw, backend):
    """Reduce the raw bench result to :class:`~repro.api.OverlapResult`."""
    from repro.api import OverlapResult

    return OverlapResult(
        workload="overlap",
        backend=backend,
        makespan=raw.makespan,
        tasks=raw.tasks,
        flow_latency=dict(raw.flow_latency),
        flops_per_s=raw.flops_per_s,
        total_flops=raw.total_flops,
    )


def _freeze_hicma(raw, backend):
    """Reduce the raw bench result to :class:`~repro.api.HicmaResult`."""
    from repro.api import HicmaResult

    result = HicmaResult(
        workload="hicma",
        backend=backend,
        makespan=raw.time_to_solution,
        tasks=raw.tasks,
        flow_latency=dict(raw.flow_latency),
        time_to_solution=raw.time_to_solution,
        msg_latency=dict(raw.msg_latency),
        activates_sent=raw.activates_sent,
        wire_bytes=raw.wire_bytes,
        worker_utilization=raw.worker_utilization,
    )
    sync = getattr(raw, "partition_sync", None)
    if sync is not None:
        # Frozen dataclass; telemetry rides along undeclared so asdict()
        # fingerprints stay engine-agnostic.
        object.__setattr__(result, "partition_sync", sync)
    return result


def _pingpong_graph(cfg, platform):
    """The PINGPONG/SYNC DAG, as the driver would build it."""
    from repro.bench.pingpong import build_pingpong_graph

    return build_pingpong_graph(cfg, platform.compute.flops_per_core)


def _overlap_graph(cfg, platform):
    """The overlap DAG: the unsynchronised ping-pong graph the driver runs."""
    from repro.bench.overlap import PingPongConfig, build_pingpong_graph

    pp_cfg = PingPongConfig(
        fragment_size=cfg.fragment_size,
        streams=1,
        total_bytes=cfg.resolved_total(),
        iterations=cfg.iterations(),
        sync=False,
        intensity=cfg.intensity(),
        num_nodes=cfg.num_nodes,
        seed=cfg.seed,
    )
    return build_pingpong_graph(pp_cfg, platform.compute.flops_per_core)


def _hicma_graph(cfg, platform):
    """The TLR Cholesky DAG, as the driver would build it."""
    from repro.hicma.dag import build_tlr_cholesky_graph
    from repro.hicma.ranks import RankModel
    from repro.hicma.timing import KernelTimeModel

    return build_tlr_cholesky_graph(
        cfg.nt,
        cfg.tile_size,
        num_nodes=cfg.num_nodes,
        rank_model=RankModel(cfg.nt, cfg.tile_size, cfg.maxrank),
        time_model=KernelTimeModel(platform.compute),
        maxrank=cfg.maxrank,
        two_flow=cfg.two_flow,
    )


PINGPONG = register(WorkloadSpec(
    name="pingpong",
    description="Windowed ping-pong bandwidth benchmark (paper §6.2).",
    details=(
        "Two nodes bounce `window = total_bytes / fragment_size` fragments "
        "back and forth for `iterations` rounds; with `sync=True` a SYNC "
        "task serializes iterations (the paper's forced-serialization "
        "variant), without it consecutive iterations pipeline in opposite "
        "wire directions. Reports achieved bandwidth — the Figure 2/3 axis."
    ),
    dag="""\
iter t          iter t+1
[pp(0)] --frag--> [pp(0)]
[pp(1)] --frag--> [pp(1)]     (sync=True inserts SYNC -> RELAY
  ...               ...        gates between iterations)
[pp(W)] --frag--> [pp(W)]""",
    example="python -m repro run pingpong --backend lci --fragment-size 256K",
    config="repro.bench.pingpong:PingPongConfig",
    driver="repro.bench.pingpong:run_pingpong_benchmark",
    reducer="repro.workloads.builtin:_freeze_pingpong",
    graph="repro.workloads.builtin:_pingpong_graph",
    param_docs=(
        ("fragment_size", "Bytes per fragment (the Figure 2 sweep axis)."),
        ("streams", "Concurrent ping-pong streams."),
        ("total_bytes",
         "Total data per iteration per stream (None = scale default)."),
        ("iterations", "Ping-pong rounds (first is warmup)."),
        ("sync", "Force serialization between iterations (paper §6.2)."),
        ("intensity", "FMA operations per 8-byte element (0 = pure BW)."),
        ("num_nodes", "Cluster size (ping-pong itself uses two)."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(
        ("fragment_size", 256 * 1024),
        ("total_bytes", 1024 * 1024),
        ("iterations", 3),
    ),
    tags=("paper", "builtin"),
))

OVERLAP = register(WorkloadSpec(
    name="overlap",
    description="Computation/communication overlap benchmark (paper §6.3).",
    details=(
        "The unsynchronised ping-pong graph with GEMM-like compute attached "
        "to every fragment (`intensity = sqrt(M/8)` FMAs per element) and "
        "iteration counts scaled to hold total FLOPs constant across "
        "fragment sizes. Reports sustained FLOP/s against the roofline and "
        "no-overlap analytic bounds."
    ),
    dag="""\
[compute+send] --frag--> [compute+send] --frag--> ...
   (no SYNC gates: compute on iteration t overlaps the
    wire transfer of iteration t-1's fragments)""",
    example="python -m repro run overlap --backend mpi --fragment-size 1M",
    config="repro.bench.overlap:OverlapConfig",
    driver="repro.bench.overlap:run_overlap_benchmark",
    reducer="repro.workloads.builtin:_freeze_overlap",
    graph="repro.workloads.builtin:_overlap_graph",
    param_docs=(
        ("fragment_size", "Bytes per fragment (the Figure sweep axis)."),
        ("total_bytes", "Total data per iteration (None = scale default)."),
        ("base_iterations", "Iterations at the largest fragment size."),
        ("reference_fragment",
         "Fragment anchoring constant-FLOPs scaling (None = total/4)."),
        ("num_nodes", "Cluster size (the exchange uses two)."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(
        ("fragment_size", 1024 * 1024),
        ("total_bytes", 4 * 1024 * 1024),
    ),
    tags=("paper", "builtin"),
))

HICMA = register(WorkloadSpec(
    name="hicma",
    description="Simulated HiCMA TLR Cholesky factorization (paper §6.4).",
    details=(
        "The tile low-rank Cholesky DAG (POTRF/TRSM/SYRK/GEMM over an "
        "NT×NT tile grid, 2D block-cyclic placement) with rank-dependent "
        "kernel times and multicast ACTIVATE trees — the paper's headline "
        "application. Long-running: supports `--progress` heartbeats and "
        "run guards. Reports time-to-solution plus end-to-end latency "
        "percentiles (Figures 4/5)."
    ),
    dag="""\
[POTRF(k)] -> [TRSM(k,i)] -> [SYRK/GEMM(k,i,j)] -> [POTRF(k+1)] ...
    (panel factorization cascades down the tile grid;
     each TRSM output multicasts to a row of updates)""",
    example="python -m repro run hicma --nodes 16 --backend lci",
    config="repro.bench.hicma_bench:HicmaConfig",
    driver="repro.bench.hicma_bench:run_hicma_benchmark",
    reducer="repro.workloads.builtin:_freeze_hicma",
    graph="repro.workloads.builtin:_hicma_graph",
    param_docs=(
        ("matrix_size", "Matrix dimension N (must divide by tile_size)."),
        ("tile_size", "Tile dimension (the Figure 4 sweep axis)."),
        ("num_nodes", "Cluster size (2D block-cyclic tile placement)."),
        ("maxrank", "Maximum off-diagonal tile rank of the TLR model."),
        ("two_flow", "Emit separate U/V flows per low-rank tile."),
        ("multithreaded_activate",
         "Spray ACTIVATE sends across worker threads (paper's MT variant)."),
        ("clock_sync", "Model per-node clock skew in latency reporting."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(
        ("matrix_size", 3600),
        ("tile_size", 1200),
    ),
    accepts_progress=True,
    accepts_partitions=True,
    tags=("paper", "builtin"),
))
