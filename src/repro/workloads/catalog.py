"""The bundled scenario workloads: configs, drivers, and registrations.

Ten parameterized task-graph scenarios beyond the paper's three
benchmarks — the §2.1 generators of :mod:`repro.bench.workloads`
(``chain``/``fanout``/``halo``/``randomdag``/``alltoall``) promoted into
registered workloads, plus the related-work patterns from
:mod:`repro.workloads.generators`: a FleCSI-like 2D ``stencil``, a
collective ``tree``, a nearest-neighbor ``ring``, a spawn-heavy
``forkjoin``, and the Task Bench-style ``taskbench`` tunable graph.

Every workload here shares one driver shape
(:func:`~repro.workloads.runner.run_graph_benchmark`) and one reducer
(:func:`~repro.workloads.runner.freeze_graph_result` →
:class:`~repro.api.GraphResult`), so the whole catalog runs under
sweeps, chaos plans, explore, and run guards with no per-workload glue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec import DictCodec
from repro.errors import ConfigError
from repro.units import KiB
from repro.workloads.registry import WorkloadSpec, register
from repro.workloads.runner import run_graph_benchmark

__all__ = [
    "ChainConfig",
    "FanOutConfig",
    "HaloConfig",
    "RandomDagConfig",
    "AllToAllConfig",
    "StencilConfig",
    "TreeConfig",
    "RingConfig",
    "ForkJoinConfig",
    "TaskBenchConfig",
]


def _positive(name: str, value, minimum=1) -> None:
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")


# ---------------------------------------------------------------------------
# Promoted §2.1 generators (repro.bench.workloads)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChainConfig(DictCodec):
    """One dependency-chain execution."""

    length: int = 64
    flow_bytes: int = 64 * KiB
    duration: float = 5e-6
    num_nodes: int = 2
    seed: int = 0

    def __post_init__(self):
        _positive("length", self.length)
        _positive("flow_bytes", self.flow_bytes)
        _positive("num_nodes", self.num_nodes)


def _chain_graph(cfg: ChainConfig, platform):
    from repro.bench.workloads import chain

    return chain(cfg.length, cfg.num_nodes, cfg.flow_bytes, cfg.duration)


def run_chain_benchmark(backend, cfg, platform=None, *, faults=None,
                        schedule_policy=None, ctx_observer=None,
                        partitions=None):
    """Run the ``chain`` workload (see :class:`ChainConfig`)."""
    return run_graph_benchmark(
        "chain", _chain_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


@dataclass(frozen=True)
class FanOutConfig(DictCodec):
    """One multicast fan-out execution."""

    consumers_per_node: int = 8
    flow_bytes: int = 64 * KiB
    duration: float = 5e-6
    num_nodes: int = 4
    seed: int = 0

    def __post_init__(self):
        _positive("consumers_per_node", self.consumers_per_node)
        _positive("flow_bytes", self.flow_bytes)
        _positive("num_nodes", self.num_nodes)


def _fanout_graph(cfg: FanOutConfig, platform):
    from repro.bench.workloads import fan_out

    return fan_out(cfg.consumers_per_node, cfg.num_nodes, cfg.flow_bytes,
                   cfg.duration)


def run_fanout_benchmark(backend, cfg, platform=None, *, faults=None,
                         schedule_policy=None, ctx_observer=None,
                         partitions=None):
    """Run the ``fanout`` workload (see :class:`FanOutConfig`)."""
    return run_graph_benchmark(
        "fanout", _fanout_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


@dataclass(frozen=True)
class HaloConfig(DictCodec):
    """One 1D halo-exchange execution."""

    steps: int = 8
    tiles_per_node: int = 4
    halo_bytes: int = 32 * KiB
    duration: float = 20e-6
    num_nodes: int = 4
    seed: int = 0

    def __post_init__(self):
        _positive("steps", self.steps)
        _positive("tiles_per_node", self.tiles_per_node)
        _positive("num_nodes", self.num_nodes, minimum=2)


def _halo_graph(cfg: HaloConfig, platform):
    from repro.bench.workloads import halo_exchange

    return halo_exchange(cfg.num_nodes, cfg.steps, cfg.tiles_per_node,
                         cfg.halo_bytes, cfg.duration)


def run_halo_benchmark(backend, cfg, platform=None, *, faults=None,
                       schedule_policy=None, ctx_observer=None,
                       partitions=None):
    """Run the ``halo`` workload (see :class:`HaloConfig`)."""
    return run_graph_benchmark(
        "halo", _halo_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


@dataclass(frozen=True)
class RandomDagConfig(DictCodec):
    """One irregular layered-DAG execution."""

    layers: int = 8
    width: int = 16
    fan_in: int = 2
    flow_bytes: int = 16 * KiB
    duration: float = 5e-6
    num_nodes: int = 4
    seed: int = 0

    def __post_init__(self):
        _positive("layers", self.layers)
        _positive("width", self.width)
        _positive("fan_in", self.fan_in)
        _positive("num_nodes", self.num_nodes)


def _randomdag_graph(cfg: RandomDagConfig, platform):
    from repro.bench.workloads import random_layered_dag

    return random_layered_dag(
        [cfg.width] * cfg.layers, cfg.num_nodes, cfg.fan_in,
        cfg.flow_bytes, cfg.duration, seed=cfg.seed)


def run_randomdag_benchmark(backend, cfg, platform=None, *, faults=None,
                            schedule_policy=None, ctx_observer=None,
                            partitions=None):
    """Run the ``randomdag`` workload (see :class:`RandomDagConfig`)."""
    return run_graph_benchmark(
        "randomdag", _randomdag_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


@dataclass(frozen=True)
class AllToAllConfig(DictCodec):
    """One all-to-all-rounds execution."""

    rounds: int = 4
    flow_bytes: int = 64 * KiB
    duration: float = 5e-6
    num_nodes: int = 4
    seed: int = 0

    def __post_init__(self):
        _positive("rounds", self.rounds)
        _positive("num_nodes", self.num_nodes, minimum=2)


def _alltoall_graph(cfg: AllToAllConfig, platform):
    from repro.bench.workloads import all_to_all_rounds

    return all_to_all_rounds(cfg.num_nodes, cfg.rounds, cfg.flow_bytes,
                             cfg.duration)


def run_alltoall_benchmark(backend, cfg, platform=None, *, faults=None,
                           schedule_policy=None, ctx_observer=None,
                           partitions=None):
    """Run the ``alltoall`` workload (see :class:`AllToAllConfig`)."""
    return run_graph_benchmark(
        "alltoall", _alltoall_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


# ---------------------------------------------------------------------------
# New related-work scenarios (repro.workloads.generators)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StencilConfig(DictCodec):
    """One 2D stencil/halo-exchange execution (FleCSI-like)."""

    grid: int = 16
    steps: int = 8
    halo_bytes: int = 32 * KiB
    duration: float = 20e-6
    num_nodes: int = 4
    seed: int = 0

    def __post_init__(self):
        _positive("grid", self.grid, minimum=2)
        _positive("steps", self.steps)
        _positive("num_nodes", self.num_nodes)
        if self.num_nodes > self.grid:
            raise ConfigError(
                f"stencil grid of {self.grid} rows cannot span "
                f"{self.num_nodes} nodes (at most one node per row)"
            )


def _stencil_graph(cfg: StencilConfig, platform):
    from repro.workloads.generators import stencil2d

    return stencil2d(cfg.grid, cfg.steps, cfg.num_nodes, cfg.halo_bytes,
                     cfg.duration)


def run_stencil_benchmark(backend, cfg, platform=None, *, faults=None,
                          schedule_policy=None, ctx_observer=None,
                          partitions=None):
    """Run the ``stencil`` workload (see :class:`StencilConfig`)."""
    return run_graph_benchmark(
        "stencil", _stencil_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


@dataclass(frozen=True)
class TreeConfig(DictCodec):
    """One collective-tree execution (reduce/broadcast/allreduce)."""

    fanout: int = 2
    depth: int = 4
    rounds: int = 2
    mode: str = "allreduce"
    payload_bytes: int = 64 * KiB
    duration: float = 5e-6
    num_nodes: int = 4
    seed: int = 0

    def __post_init__(self):
        _positive("fanout", self.fanout, minimum=2)
        _positive("depth", self.depth)
        _positive("rounds", self.rounds)
        _positive("num_nodes", self.num_nodes)
        if self.mode not in ("broadcast", "reduce", "allreduce"):
            raise ConfigError(
                f"unknown tree mode {self.mode!r} "
                f"(known: broadcast, reduce, allreduce)"
            )


def _tree_graph(cfg: TreeConfig, platform):
    from repro.workloads.generators import tree_collective

    return tree_collective(cfg.fanout, cfg.depth, cfg.num_nodes, cfg.rounds,
                           cfg.payload_bytes, cfg.duration, cfg.mode)


def run_tree_benchmark(backend, cfg, platform=None, *, faults=None,
                       schedule_policy=None, ctx_observer=None,
                       partitions=None):
    """Run the ``tree`` workload (see :class:`TreeConfig`)."""
    return run_graph_benchmark(
        "tree", _tree_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


@dataclass(frozen=True)
class RingConfig(DictCodec):
    """One nearest-neighbor ring-shift execution."""

    steps: int = 16
    flow_bytes: int = 64 * KiB
    duration: float = 5e-6
    num_nodes: int = 4
    seed: int = 0

    def __post_init__(self):
        _positive("steps", self.steps)
        _positive("num_nodes", self.num_nodes, minimum=2)


def _ring_graph(cfg: RingConfig, platform):
    from repro.workloads.generators import ring_shift

    return ring_shift(cfg.num_nodes, cfg.steps, cfg.flow_bytes, cfg.duration)


def run_ring_benchmark(backend, cfg, platform=None, *, faults=None,
                       schedule_policy=None, ctx_observer=None,
                       partitions=None):
    """Run the ``ring`` workload (see :class:`RingConfig`)."""
    return run_graph_benchmark(
        "ring", _ring_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


@dataclass(frozen=True)
class ForkJoinConfig(DictCodec):
    """One recursive fork-join execution."""

    fanout: int = 3
    depth: int = 4
    flow_bytes: int = 16 * KiB
    duration: float = 5e-6
    num_nodes: int = 4
    seed: int = 0

    def __post_init__(self):
        _positive("fanout", self.fanout, minimum=2)
        _positive("depth", self.depth)
        _positive("num_nodes", self.num_nodes)


def _forkjoin_graph(cfg: ForkJoinConfig, platform):
    from repro.workloads.generators import fork_join

    return fork_join(cfg.fanout, cfg.depth, cfg.num_nodes, cfg.flow_bytes,
                     cfg.duration)


def run_forkjoin_benchmark(backend, cfg, platform=None, *, faults=None,
                           schedule_policy=None, ctx_observer=None,
                           partitions=None):
    """Run the ``forkjoin`` workload (see :class:`ForkJoinConfig`)."""
    return run_graph_benchmark(
        "forkjoin", _forkjoin_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


@dataclass(frozen=True)
class TaskBenchConfig(DictCodec):
    """One Task Bench-style tunable-graph execution."""

    width: int = 16
    depth: int = 16
    pattern: str = "stencil"
    granularity: float = 5e-6
    flow_bytes: int = 16 * KiB
    fan_in: int = 3
    num_nodes: int = 4
    seed: int = 0

    def __post_init__(self):
        from repro.workloads.generators import TASKBENCH_PATTERNS

        _positive("width", self.width)
        _positive("depth", self.depth)
        _positive("fan_in", self.fan_in)
        _positive("num_nodes", self.num_nodes)
        if self.pattern not in TASKBENCH_PATTERNS:
            raise ConfigError(
                f"unknown taskbench pattern {self.pattern!r} "
                f"(known: {', '.join(TASKBENCH_PATTERNS)})"
            )
        if self.granularity < 0:
            raise ConfigError(
                f"granularity must be >= 0, got {self.granularity}"
            )


def _taskbench_graph(cfg: TaskBenchConfig, platform):
    from repro.workloads.generators import taskbench_graph

    return taskbench_graph(cfg.width, cfg.depth, cfg.pattern, cfg.num_nodes,
                           cfg.granularity, cfg.flow_bytes, cfg.fan_in,
                           cfg.seed)


def run_taskbench_benchmark(backend, cfg, platform=None, *, faults=None,
                            schedule_policy=None, ctx_observer=None,
                            partitions=None):
    """Run the ``taskbench`` workload (see :class:`TaskBenchConfig`)."""
    return run_graph_benchmark(
        "taskbench", _taskbench_graph, backend, cfg, platform, faults=faults,
        schedule_policy=schedule_policy, ctx_observer=ctx_observer,
        partitions=partitions)


# ---------------------------------------------------------------------------
# Registrations
# ---------------------------------------------------------------------------

_REDUCER = "repro.workloads.runner:freeze_graph_result"

register(WorkloadSpec(
    name="chain",
    description="Single dependency chain round-robin across nodes.",
    details=(
        "The purest latency workload: one task per step, each consuming "
        "the previous step's flow from the neighbouring node, so makespan "
        "is `length` serialized cross-node flow latencies — the directly "
        "interpretable baseline for rendezvous-protocol costs."
    ),
    dag="[t0]@n0 --flow--> [t1]@n1 --flow--> [t2]@n2 --flow--> ...",
    example="python -m repro run chain --nodes 4 --length 128",
    config="repro.workloads.catalog:ChainConfig",
    driver="repro.workloads.catalog:run_chain_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_chain_graph",
    param_docs=(
        ("length", "Tasks in the chain."),
        ("flow_bytes", "Bytes per inter-task flow."),
        ("duration", "Compute seconds per task."),
        ("num_nodes", "Cluster size (chain hops round-robin)."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(("length", 16),),
    tags=("scenario", "latency"),
))

register(WorkloadSpec(
    name="fanout",
    description="One producer multicast to consumers on every node.",
    details=(
        "A single root flow consumed by `consumers_per_node × num_nodes` "
        "tasks — the multicast-tree shape the runtime's ACTIVATE "
        "aggregation targets; stresses one-to-many delivery and duplicate "
        "GET suppression."
    ),
    dag="""\
            [root]@n0
           /   |    \\
        [c]@n0 [c]@n1 [c]@n2 ...  (consumers_per_node per node)""",
    example="python -m repro run fanout --nodes 8 --consumers-per-node 16",
    config="repro.workloads.catalog:FanOutConfig",
    driver="repro.workloads.catalog:run_fanout_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_fanout_graph",
    param_docs=(
        ("consumers_per_node", "Consumer tasks per node."),
        ("flow_bytes", "Bytes of the multicast payload."),
        ("duration", "Compute seconds per task."),
        ("num_nodes", "Cluster size."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(("consumers_per_node", 4),),
    tags=("scenario", "multicast"),
))

register(WorkloadSpec(
    name="halo",
    description="1D periodic halo exchange over tiles (bulk-synchronous).",
    details=(
        "Each step every node's boundary tiles exchange halos with both "
        "neighbours, then all tiles compute — regular, bulk-synchronous "
        "traffic, the pattern MPI is optimised for, useful as a contrast "
        "to the runtime-style irregular workloads."
    ),
    dag="""\
step s:   [tile0..tileT]@n0  <-halo->  [tile0..tileT]@n1  <-halo-> ...
             |  (all tiles also feed their own next step)
step s+1: [tile0..tileT]@n0  <-halo->  ...""",
    example="python -m repro run halo --nodes 4 --steps 16",
    config="repro.workloads.catalog:HaloConfig",
    driver="repro.workloads.catalog:run_halo_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_halo_graph",
    param_docs=(
        ("steps", "Stencil steps (DAG depth)."),
        ("tiles_per_node", "Tiles per node (two are boundary tiles)."),
        ("halo_bytes", "Bytes per halo/tile flow."),
        ("duration", "Compute seconds per tile task."),
        ("num_nodes", "Cluster size (periodic ring of nodes)."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(("steps", 3), ("tiles_per_node", 2)),
    tags=("scenario", "stencil"),
))

register(WorkloadSpec(
    name="randomdag",
    description="Irregular layered DAG, random placement and fan-in.",
    details=(
        "Seeded random task placement, durations, flow sizes, and "
        "fan-in — the nondeterministic communication pattern §2.1 calls "
        "typical of dynamic runtimes, where receivers cannot predict "
        "message sources or sizes."
    ),
    dag="""\
layer 0: [t]@n? [t]@n? ... (width tasks, random nodes)
            \\  X  /        (each task draws fan_in random
layer 1: [t]@n? [t]@n? ...  parents from the layer above)""",
    example="python -m repro run randomdag --nodes 4 --layers 12 --width 24",
    config="repro.workloads.catalog:RandomDagConfig",
    driver="repro.workloads.catalog:run_randomdag_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_randomdag_graph",
    param_docs=(
        ("layers", "DAG depth (number of layers)."),
        ("width", "Tasks per layer."),
        ("fan_in", "Random parents drawn per task."),
        ("flow_bytes", "Mean bytes per flow (sizes vary ±: 0.25–2×)."),
        ("duration", "Mean compute seconds per task (varies 0.5–1.5×)."),
        ("num_nodes", "Cluster size (uniform random placement)."),
        ("seed", "Seed for structure, placement, and simulation."),
    ),
    explore_params=(("layers", 3), ("width", 6)),
    tags=("scenario", "irregular"),
))

register(WorkloadSpec(
    name="alltoall",
    description="Every node exchanges one flow with every other, per round.",
    details=(
        "Maximal incast/multicast pressure: each round every node "
        "produces one flow consumed by all peers, so each step moves "
        "`num_nodes²` flows — the dense-collective stress test for "
        "rendezvous queue depth and link contention."
    ),
    dag="""\
round r:   [t]@n0   [t]@n1   [t]@n2
              \\  \\ /  X  \\ /  /      (every flow fans out to
round r+1: [t]@n0   [t]@n1   [t]@n2    every node's next task)""",
    example="python -m repro run alltoall --nodes 8 --rounds 4",
    config="repro.workloads.catalog:AllToAllConfig",
    driver="repro.workloads.catalog:run_alltoall_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_alltoall_graph",
    param_docs=(
        ("rounds", "Exchange rounds (DAG depth)."),
        ("flow_bytes", "Bytes per node-to-node flow."),
        ("duration", "Compute seconds per task."),
        ("num_nodes", "Cluster size (flows scale as nodes squared)."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(("rounds", 2),),
    tags=("scenario", "collective"),
))

register(WorkloadSpec(
    name="stencil",
    description="2D periodic stencil with halo exchange (FleCSI-like).",
    details=(
        "A `grid × grid` tile mesh, block-row partitioned across nodes; "
        "each step every tile recomputes from its four von-Neumann "
        "neighbours, pulling halos across the partition boundary — the "
        "radiation-hydro halo-exchange pattern of the FleCSI comparison "
        "(arXiv 2603.05366), where cross-node traffic grows with the "
        "partition perimeter."
    ),
    dag="""\
step s:    [tile i,j] needs (i±1,j) and (i,j±1) from step s-1
node 0:  rows 0..k      | halos cross this boundary
node 1:  rows k+1..2k   | every step""",
    example="python -m repro run stencil --nodes 16",
    config="repro.workloads.catalog:StencilConfig",
    driver="repro.workloads.catalog:run_stencil_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_stencil_graph",
    param_docs=(
        ("grid", "Tiles per side (the mesh is grid × grid)."),
        ("steps", "Stencil steps (DAG depth)."),
        ("halo_bytes", "Bytes per halo flow."),
        ("duration", "Compute seconds per tile task."),
        ("num_nodes", "Cluster size (block-row partition; <= grid)."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(("grid", 4), ("steps", 2), ("num_nodes", 2)),
    tags=("scenario", "stencil", "flecsi"),
))

register(WorkloadSpec(
    name="tree",
    description="Collective tree: reduce, broadcast, or allreduce rounds.",
    details=(
        "A `fanout`-ary tree over `fanout**depth` leaves, repeated for "
        "`rounds`: broadcast fans one payload down, reduce gathers leaves "
        "up, allreduce chains both per round — the multicast-tree traffic "
        "ACTIVATE aggregation and duplicate-GET suppression exist for."
    ),
    dag="""\
reduce:   [leaf]x(fanout^depth) -> ... -> [root]
broadcast:        [root] -> ... -> [leaf]x(fanout^depth)
allreduce:  leaves -> [root] -> leaves   (per round)""",
    example="python -m repro run tree --nodes 8 --fanout 4 --depth 3",
    config="repro.workloads.catalog:TreeConfig",
    driver="repro.workloads.catalog:run_tree_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_tree_graph",
    param_docs=(
        ("fanout", "Tree arity (children per vertex)."),
        ("depth", "Tree depth (leaves = fanout ** depth)."),
        ("rounds", "Collective rounds chained back to back."),
        ("mode", "One of broadcast, reduce, allreduce."),
        ("payload_bytes", "Bytes per tree-edge flow."),
        ("duration", "Compute seconds per vertex task."),
        ("num_nodes", "Cluster size (vertices placed round-robin)."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(("depth", 2), ("rounds", 1)),
    tags=("scenario", "collective"),
))

register(WorkloadSpec(
    name="ring",
    description="Nearest-neighbor ring shift, one flow per node per step.",
    details=(
        "Every step each node consumes its left neighbour's previous flow "
        "plus its own and produces one flow — the shift pattern of ring "
        "allreduce pipelines. Perfectly regular wire traffic: every flow "
        "crosses exactly one link, so per-step latency is directly "
        "comparable across backends."
    ),
    dag="""\
step s:   [t]@n0 -> [t]@n1 -> [t]@n2 -> ... -> (wraps to n0)
             |         |         |     (each also feeds its own
step s+1: [t]@n0 -> [t]@n1 -> [t]@n2    next step)""",
    example="python -m repro run ring --nodes 8 --steps 32",
    config="repro.workloads.catalog:RingConfig",
    driver="repro.workloads.catalog:run_ring_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_ring_graph",
    param_docs=(
        ("steps", "Shift steps (DAG depth)."),
        ("flow_bytes", "Bytes per neighbour flow."),
        ("duration", "Compute seconds per task."),
        ("num_nodes", "Ring size (>= 2)."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(("steps", 4), ("num_nodes", 3)),
    tags=("scenario", "latency"),
))

register(WorkloadSpec(
    name="forkjoin",
    description="Spawn-heavy recursive fork-join over scattered children.",
    details=(
        "The root forks `fanout` children per level down to `depth`, then "
        "joins symmetrically back to one task: `fanout**depth` parallel "
        "leaves with bursts of small ACTIVATE traffic at every fork and "
        "join boundary — the dynamic-spawn pattern where per-message "
        "overheads dominate and MPI aggregation fares worst."
    ),
    dag="""\
[root] -> fanout children -> ... -> fanout^depth leaves
                                        |
[sink] <- joins of fanout  <- ... <-  (mirror tree back up)""",
    example="python -m repro run forkjoin --nodes 8 --fanout 3 --depth 5",
    config="repro.workloads.catalog:ForkJoinConfig",
    driver="repro.workloads.catalog:run_forkjoin_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_forkjoin_graph",
    param_docs=(
        ("fanout", "Children per fork (and join arity)."),
        ("depth", "Fork levels (leaves = fanout ** depth)."),
        ("flow_bytes", "Bytes per fork/join flow."),
        ("duration", "Compute seconds per task."),
        ("num_nodes", "Cluster size (children scatter round-robin)."),
        ("seed", "Deterministic simulation seed."),
    ),
    explore_params=(("fanout", 2), ("depth", 3)),
    tags=("scenario", "spawn"),
))

register(WorkloadSpec(
    name="taskbench",
    description="Task Bench-style tunable graph: width × depth × pattern.",
    details=(
        "The parameterized benchmark of the Task Bench methodology (cf. "
        "the Itoyori/HPX/MPI study, arXiv 2601.14608): `width` columns × "
        "`depth` layers with a named dependence pattern between layers "
        "(trivial, serial, stencil, fft, all_to_all, random) and per-task "
        "compute `granularity`. Columns map to nodes round-robin, so "
        "sweeping the axes moves the run continuously between "
        "latency-bound, bandwidth-bound, and compute-bound regimes."
    ),
    dag="""\
layer 0:  [c0] [c1] [c2] ... [cW]
            |  pattern-dependent edges (stencil: c±1;
layer 1:  [c0] [c1] [c2] ... [cW]   fft: butterfly; ...)""",
    example=(
        "python -m repro run taskbench --width 32 --depth 16 "
        "--pattern stencil"
    ),
    config="repro.workloads.catalog:TaskBenchConfig",
    driver="repro.workloads.catalog:run_taskbench_benchmark",
    reducer=_REDUCER,
    accepts_partitions=True,
    graph="repro.workloads.catalog:_taskbench_graph",
    param_docs=(
        ("width", "Columns (parallel tasks per layer)."),
        ("depth", "Layers (DAG depth)."),
        ("pattern",
         "Dependence pattern: trivial, serial, stencil, fft, "
         "all_to_all, or random."),
        ("granularity", "Compute seconds per task."),
        ("flow_bytes", "Bytes per dependence flow."),
        ("fan_in", "Parents per task for the random pattern."),
        ("num_nodes", "Cluster size (columns map round-robin)."),
        ("seed", "Seed for the random pattern and simulation."),
    ),
    explore_params=(("width", 4), ("depth", 3)),
    tags=("scenario", "taskbench"),
))
