"""The workload plugin registry: specs, parameters, and discovery.

A :class:`WorkloadSpec` is the complete, self-documenting description of
one runnable workload: a name, catalog prose (description, DAG sketch,
example invocation), a config dataclass whose fields *are* the parameter
schema, a benchmark driver, a task-graph builder, and a typed result
reducer.  Registering a spec (:func:`register`) makes the workload
reachable everywhere at once — ``repro.Experiment``, ``python -m repro
run``, the sweep grid builders, the chaos harness, and the schedule
explorer all resolve workloads through this module.

Specs reference their config/driver/builder lazily as ``"module:attr"``
strings so that listing workload *names* never imports the simulator;
the heavy modules load only when a workload actually runs.  External
packages contribute workloads through the ``repro.workloads`` entry-point
group (each entry point resolves to a :class:`WorkloadSpec` or a callable
returning one/iterable of them); in-process plugins — tests, notebooks —
just call :func:`register` directly.

The registry is also the single source of truth for the documentation:
``tools/gen_api_docs.py`` renders ``docs/workloads.md`` from the specs'
metadata and ``tools/check_docs.py`` fails if the catalog and the
registry ever disagree, so the scenario docs cannot drift.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ConfigError

__all__ = [
    "ENTRY_POINT_GROUP",
    "Param",
    "WorkloadSpec",
    "register",
    "unregister",
    "get_workload",
    "workload_names",
    "workload_specs",
]

#: The ``importlib.metadata`` entry-point group external packages use to
#: contribute workloads (``[project.entry-points."repro.workloads"]``).
ENTRY_POINT_GROUP = "repro.workloads"


@dataclass(frozen=True)
class Param:
    """One documented workload parameter (a config-dataclass field)."""

    #: Field name, as accepted by ``Experiment(**{name: ...})``.
    name: str
    #: The config dataclass's default value (``None`` when required).
    default: Any
    #: One-line human description rendered into the scenario catalog.
    doc: str
    #: The config dataclass declares no default — callers must pass it.
    required: bool = False


def _resolve(ref: Any) -> Any:
    """Resolve a lazy ``"module:attr"`` reference (pass objects through)."""
    if not isinstance(ref, str):
        return ref
    modname, _, attr = ref.partition(":")
    module = __import__(modname, fromlist=[attr])
    return getattr(module, attr)


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the harness needs to run — and document — a workload.

    ``config``/``driver``/``reducer``/``graph`` accept either the object
    itself or a lazy ``"module:attr"`` string; resolution happens on first
    use.  The contract:

    - ``config`` is a frozen dataclass with at least ``num_nodes`` and
      ``seed`` fields; constructing it validates values (raising
      :class:`~repro.errors.ConfigError` family errors).
    - ``driver(backend, config, platform=None, *, faults=None,
      schedule_policy=None, ctx_observer=None)`` executes one run and
      returns a raw (mutable) result; drivers with
      ``accepts_progress=True`` additionally take ``progress=``/
      ``guards=`` keywords.
    - ``reducer(raw, backend)`` freezes the raw result into the typed
      public dataclass ``Experiment.run()`` returns.
    - ``graph(config, platform)`` builds the workload's
      :class:`~repro.runtime.taskpool.TaskGraph` without running it —
      the hook the chaos harness and DAG-shape tests use.
    - ``param_docs`` must document **every** public config field;
      :meth:`params` raises on an undocumented field, which is what keeps
      the generated catalog complete.
    """

    #: Registry key; also the ``Experiment(workload=...)``/CLI name.
    name: str
    #: One-line summary (catalog section lead, ``workloads`` verb output).
    description: str
    #: Longer catalog paragraph: what the DAG stresses and why it exists.
    details: str = ""
    #: ASCII DAG sketch rendered verbatim into the catalog.
    dag: str = ""
    #: Example CLI invocation (must start ``python -m repro run <name>``).
    example: str = ""
    #: Config dataclass (or lazy ref): fields = the parameter schema.
    config: Any = None
    #: Benchmark driver (or lazy ref).
    driver: Any = None
    #: Typed result reducer (or lazy ref).
    reducer: Any = None
    #: Task-graph builder ``(config, platform) -> TaskGraph`` (or ref).
    graph: Any = None
    #: ``((field_name, one_line_doc), ...)`` for every public field.
    param_docs: tuple = ()
    #: Small fast parameter overrides for the schedule explorer.
    explore_params: tuple = ()
    #: Driver takes ``progress=``/``guards=`` keywords (long-running).
    accepts_progress: bool = False
    #: Driver takes a ``partitions=`` keyword (partitioned PDES engine).
    accepts_partitions: bool = False
    #: Free-form labels (``"paper"``, ``"taskbench"``, ``"collective"``).
    tags: tuple = ()

    def config_cls(self) -> type:
        """The workload's config dataclass (resolved)."""
        return _resolve(self.config)

    def driver_fn(self) -> Callable:
        """The workload's benchmark driver (resolved)."""
        return _resolve(self.driver)

    def reducer_fn(self) -> Callable:
        """The workload's typed result reducer (resolved)."""
        return _resolve(self.reducer)

    def graph_fn(self) -> Optional[Callable]:
        """The workload's ``(config, platform) -> TaskGraph`` builder."""
        return _resolve(self.graph) if self.graph is not None else None

    def field_names(self) -> frozenset:
        """Names of every config field (the accepted parameter set)."""
        return frozenset(f.name for f in dataclasses.fields(self.config_cls()))

    def params(self) -> tuple:
        """The documented parameter schema, one :class:`Param` per field.

        Raises :class:`~repro.errors.ConfigError` if any public config
        field lacks an entry in ``param_docs`` (or vice versa) — the
        registration-time guarantee that the generated catalog documents
        every knob.
        """
        docs = dict(self.param_docs)
        params = []
        for f in dataclasses.fields(self.config_cls()):
            if f.name not in docs:
                raise ConfigError(
                    f"workload {self.name!r}: config field {f.name!r} has "
                    f"no param_docs entry — every parameter must be "
                    f"documented"
                )
            required = f.default is dataclasses.MISSING
            params.append(Param(name=f.name,
                                default=None if required else f.default,
                                doc=docs.pop(f.name), required=required))
        if docs:
            raise ConfigError(
                f"workload {self.name!r}: param_docs documents unknown "
                f"field(s) {sorted(docs)}"
            )
        return tuple(params)

    def build_config(self, **kwargs: Any):
        """Validate ``kwargs`` against the schema and build the config.

        Unknown parameter names raise :class:`~repro.errors.ConfigError`
        listing the valid set; value validation is the config dataclass's
        own ``__post_init__`` job.
        """
        valid = self.field_names()
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ConfigError(
                f"workload {self.name!r} does not accept parameter(s) "
                f"{unknown}; valid: {sorted(valid)}"
            )
        return self.config_cls()(**kwargs)

    def run(
        self,
        backend: str,
        config: Any,
        platform: Any = None,
        *,
        faults: Any = None,
        schedule_policy: Any = None,
        ctx_observer: Any = None,
        progress: Any = None,
        guards: Any = None,
        partitions: Any = None,
    ):
        """Execute one run through the workload's driver.

        ``progress``/``guards`` are forwarded only to drivers declaring
        ``accepts_progress``; passing them to any other workload raises
        :class:`~repro.errors.ConfigError` instead of silently dropping
        a supervision request.  ``partitions`` (partitioned PDES engine)
        likewise requires ``accepts_partitions`` — an unsupported
        workload fails loudly rather than silently running serial.
        """
        kwargs = {
            "faults": faults,
            "schedule_policy": schedule_policy,
            "ctx_observer": ctx_observer,
        }
        if self.accepts_progress:
            kwargs["progress"] = progress
            kwargs["guards"] = guards
        elif progress is not None or guards is not None:
            raise ConfigError(
                f"workload {self.name!r} does not support progress "
                f"reporting or run guards"
            )
        if partitions is not None:
            if not self.accepts_partitions:
                raise ConfigError(
                    f"workload {self.name!r} does not support partitioned "
                    f"execution (partitions=...)"
                )
            kwargs["partitions"] = partitions
        return self.driver_fn()(backend, config, platform, **kwargs)

    def freeze(self, raw: Any, backend: str):
        """Reduce a raw driver result to the frozen typed public result."""
        return self.reducer_fn()(raw, backend)

    def build_graph(self, config: Any, platform: Any):
        """Build (without running) the workload's task graph."""
        builder = self.graph_fn()
        if builder is None:
            raise ConfigError(
                f"workload {self.name!r} has no task-graph builder"
            )
        return builder(config, platform)


_REGISTRY: dict = {}
_LOADED = False


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload to the registry; duplicate names are rejected.

    Returns the spec so modules can ``SPEC = register(WorkloadSpec(...))``.
    """
    if not isinstance(spec, WorkloadSpec):
        raise ConfigError(f"expected a WorkloadSpec, got {type(spec).__name__}")
    if not spec.name or not spec.name.replace("_", "").isalnum():
        raise ConfigError(f"invalid workload name {spec.name!r}")
    if spec.name in _REGISTRY:
        raise ConfigError(
            f"workload {spec.name!r} is already registered; "
            f"unregister it first or pick a unique name"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registered workload (test/plugin teardown hook)."""
    _REGISTRY.pop(name, None)


def _load_entry_points() -> None:
    """Load external workloads from the ``repro.workloads`` entry points.

    A broken plugin must not take the harness down: load failures become
    warnings and the plugin is skipped.
    """
    try:
        from importlib.metadata import entry_points

        eps = entry_points(group=ENTRY_POINT_GROUP)
    except Exception:  # pragma: no cover - importlib.metadata quirk
        return
    for ep in eps:
        try:
            obj = ep.load()
            if callable(obj) and not isinstance(obj, WorkloadSpec):
                obj = obj()
            specs = obj if isinstance(obj, (list, tuple)) else [obj]
            for spec in specs:
                if spec.name not in _REGISTRY:
                    register(spec)
        except Exception as exc:  # noqa: BLE001 - plugin isolation
            warnings.warn(
                f"failed to load workload plugin {ep.name!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )


def _ensure_loaded() -> None:
    """Import the bundled workload modules and entry-point plugins once."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    # The bundled specs register at import time; registration uses lazy
    # refs, so this stays cheap (no simulator import).
    import repro.workloads.builtin  # noqa: F401
    import repro.workloads.catalog  # noqa: F401

    _load_entry_points()


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by name.

    The :class:`~repro.errors.ConfigError` for an unknown name lists the
    actually registered workloads — the message every layer (Experiment,
    CLI, sweep, explore) surfaces.
    """
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r} "
            f"(known: {', '.join(sorted(_REGISTRY))})"
        ) from None


def workload_names() -> tuple:
    """Registered workload names, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def workload_specs() -> tuple:
    """Registered specs, sorted by name (catalog rendering order)."""
    _ensure_loaded()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))
