"""The paper's measurement methodology (§6.1.3).

Microbenchmarks: "running 18 executions in succession, discarding the first
three, and computing the mean of the remaining 15"; HiCMA: "a mean of five
executions".  The simulator is deterministic unless the workload injects
jitter, so the harness defaults to fewer repetitions — but the methodology
code path is identical and fully exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import BenchmarkError

__all__ = ["MethodologyConfig", "methodology_mean", "summarize"]


@dataclass(frozen=True)
class MethodologyConfig:
    """How many executions to run and how many leading ones to discard."""

    runs: int = 18
    discard: int = 3

    def __post_init__(self) -> None:
        if self.runs <= self.discard:
            raise BenchmarkError(
                f"need more runs ({self.runs}) than discards ({self.discard})"
            )

    @classmethod
    def microbenchmark(cls) -> "MethodologyConfig":
        """§6.2/§6.3: 18 runs, first 3 discarded."""
        return cls(runs=18, discard=3)

    @classmethod
    def hicma(cls) -> "MethodologyConfig":
        """§6.4: mean of 5 executions."""
        return cls(runs=5, discard=0)

    @classmethod
    def quick(cls) -> "MethodologyConfig":
        """Deterministic-simulator default."""
        return cls(runs=1, discard=0)


def methodology_mean(
    run_fn: Callable[[int], float], cfg: MethodologyConfig
) -> float:
    """Execute ``run_fn(run_index)`` per the methodology; return the mean of
    the kept samples."""
    samples = [run_fn(i) for i in range(cfg.runs)]
    kept = samples[cfg.discard :]
    return float(np.mean(kept))


def summarize(samples: Sequence[float]) -> dict:
    """Mean / median / p95 / min / max of a latency sample set."""
    if not len(samples):
        return {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0, "min": 0.0, "max": 0.0}
    arr = np.asarray(samples, dtype=float)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p95": float(np.percentile(arr, 95)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
