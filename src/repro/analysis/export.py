"""Serialize benchmark results to JSON for external analysis/plotting.

Every result type of the harness (:class:`RunStats`,
:class:`PingPongResult`, :class:`OverlapResult`, :class:`HicmaResult`,
:class:`FlowBreakdown`, plain dicts of any of these) converts through
:func:`to_jsonable`; :func:`dump_results` writes a self-describing document
with the package version and the platform constants used, so an exported
measurement can always be traced back to its calibration.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, IO, Optional, Union

from repro._version import __version__

__all__ = ["to_jsonable", "dump_results", "load_results", "progress_series"]


def progress_series(source: Any) -> list[dict]:
    """The run's ``run_progress`` heartbeats as JSON-ready dicts.

    ``source`` is an :class:`~repro.obs.bus.ObsBus` or its memory sink
    (anything :func:`~repro.obs.sinks.memory_of` accepts).  Each entry is
    one heartbeat's info payload (tasks done/total, wall elapsed,
    events/s, RSS, ETA) plus its beat ordinal — the wall-clock timeline of
    a long run, ready for :func:`dump_results` or plotting wall-time /
    memory curves against simulated progress.
    """
    from repro.obs.sinks import memory_of

    return [
        {"beat": evt.key, **to_jsonable(evt.info)}
        for evt in memory_of(source).by_kind("run_progress")
    ]


def to_jsonable(obj: Any) -> Any:
    """Best-effort conversion of harness objects to JSON-compatible data."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if hasattr(obj, "tolist"):  # numpy scalars/arrays
        return obj.tolist()
    if hasattr(obj, "__dict__"):
        return {
            k: to_jsonable(v)
            for k, v in vars(obj).items()
            if not k.startswith("_")
        }
    return repr(obj)


def _platform_snapshot() -> dict:
    from repro.config import expanse_platform

    return to_jsonable(expanse_platform())


def dump_results(
    results: Any,
    fp: Union[str, IO[str]],
    title: str = "",
    include_platform: bool = True,
) -> None:
    """Write results (any harness objects) as a JSON document."""
    doc = {
        "repro_version": __version__,
        "title": title,
        "results": to_jsonable(results),
    }
    if include_platform:
        doc["platform"] = _platform_snapshot()
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
    else:
        json.dump(doc, fp, indent=2)


def load_results(fp: Union[str, IO[str]]) -> dict:
    """Read a document written by :func:`dump_results`."""
    if isinstance(fp, str):
        with open(fp, encoding="utf-8") as fh:
            return json.load(fh)
    return json.load(fp)
