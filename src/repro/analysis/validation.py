"""Built-in simulator self-validation against closed-form models.

A calibrated simulator should agree with pencil-and-paper models wherever
those exist; these checks compare measured behaviour against analytic
predictions and report the deviation.  They run in the test suite
(`tests/test_validation.py`) so a modelling regression cannot hide behind
the benchmarks' wider tolerances.

Closed forms used:

- **NetPIPE latency**: one-way time of an S-byte message ≈
  ``o_sw + L + S/B`` (software overhead + wire latency + serialization);
- **NetPIPE bandwidth limit**: ``S / one_way(S) → B`` as S → ∞;
- **Serialized chain latency**: a K-hop dependency chain across two nodes
  costs at least ``K × (one_way(S) + runtime_path)`` — a lower bound the
  simulated runtime must respect;
- **Compute-bound makespan**: W identical independent tasks of duration d
  on c workers take ≈ ``ceil(W/c) × d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import NetworkConfig, PlatformConfig, scaled_platform
from repro.network.netpipe import NETPIPE_SW_OVERHEAD, netpipe_rtt

__all__ = [
    "ValidationResult",
    "predicted_one_way",
    "validate_netpipe_latency",
    "validate_netpipe_bandwidth",
    "validate_compute_bound_makespan",
]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of one analytic cross-check."""

    name: str
    predicted: float
    measured: float
    tolerance: float

    @property
    def deviation(self) -> float:
        """Relative deviation of measured from predicted."""
        if self.predicted == 0:
            return float("inf")
        return abs(self.measured - self.predicted) / abs(self.predicted)

    @property
    def ok(self) -> bool:
        """True when the deviation is inside the tolerance."""
        return self.deviation <= self.tolerance

    def summary(self) -> str:
        """One-line report."""
        flag = "OK " if self.ok else "FAIL"
        return (
            f"[{flag}] {self.name}: predicted {self.predicted:.3e}, "
            f"measured {self.measured:.3e} ({self.deviation:+.1%} vs "
            f"±{self.tolerance:.0%})"
        )


def predicted_one_way(size: int, cfg: Optional[NetworkConfig] = None) -> float:
    """Closed-form one-way time: software + wire latency + serialization.

    Two nodes sit under the same leaf in the default topology (2 hops).
    """
    cfg = cfg or NetworkConfig()
    return NETPIPE_SW_OVERHEAD + cfg.latency(2) + size / cfg.bandwidth


def validate_netpipe_latency(
    size: int, cfg: Optional[NetworkConfig] = None, tolerance: float = 0.05
) -> ValidationResult:
    """Measured NetPIPE one-way time vs the closed form."""
    cfg = cfg or NetworkConfig()
    measured = netpipe_rtt(size, cfg) / 2.0
    return ValidationResult(
        name=f"netpipe one-way @{size}B",
        predicted=predicted_one_way(size, cfg),
        measured=measured,
        tolerance=tolerance,
    )


def validate_netpipe_bandwidth(
    size: int, cfg: Optional[NetworkConfig] = None, tolerance: float = 0.05
) -> ValidationResult:
    """Measured large-message bandwidth vs the configured line rate."""
    cfg = cfg or NetworkConfig()
    one_way = netpipe_rtt(size, cfg) / 2.0
    measured = size / one_way
    # Prediction accounts for the latency share at this finite size.
    predicted = size / predicted_one_way(size, cfg)
    return ValidationResult(
        name=f"netpipe bandwidth @{size}B",
        predicted=predicted,
        measured=measured,
        tolerance=tolerance,
    )


def validate_compute_bound_makespan(
    num_tasks: int = 64,
    duration: float = 100e-6,
    workers: int = 8,
    tolerance: float = 0.10,
    platform: Optional[PlatformConfig] = None,
) -> ValidationResult:
    """Makespan of independent equal tasks vs ceil(W/c)·d."""
    import math

    from repro.runtime import ParsecContext, TaskGraph

    platform = platform or scaled_platform(num_nodes=1, cores_per_node=workers)
    g = TaskGraph()
    for _ in range(num_tasks):
        g.add_task(node=0, duration=duration)
    ctx = ParsecContext(platform, backend="lci")
    stats = ctx.run(g, until=3600.0)
    predicted = math.ceil(num_tasks / workers) * duration
    return ValidationResult(
        name=f"compute-bound makespan ({num_tasks} tasks / {workers} workers)",
        predicted=predicted,
        measured=stats.makespan,
        tolerance=tolerance,
    )
