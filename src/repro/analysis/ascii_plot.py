"""Plain-text charts and tables for benchmark reports.

The harness prints every figure of the paper as an ASCII chart so results
are inspectable straight from the pytest-benchmark output.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["ascii_chart", "ascii_table"]


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as a fixed-grid scatter/line chart."""
    import math

    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [math.log(x) if logx else x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@%&"
    legend = []
    for mi, (name, pts) in enumerate(series.items()):
        mark = marks[mi % len(marks)]
        legend.append(f"{mark}={name}")
        for x, y in pts:
            gx = math.log(x) if logx else x
            col = int((gx - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:12.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:12.4g} +" + "-" * width + "+")
    footer = f"{'':13}{x_lo if not logx else '':<8}"
    lines.append(
        " " * 14 + (x_label or "x") + f" in [{min(x for x,_ in points):g}, "
        f"{max(x for x,_ in points):g}]" + ("  (log x)" if logx else "")
    )
    lines.append(" " * 14 + "  ".join(legend) + (f"   y: {y_label}" if y_label else ""))
    return "\n".join(lines)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render a simple aligned table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    out.append(sep)
    for row in cells[1:]:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
