"""Measurement methodology and reporting utilities."""

from repro.analysis.stats import MethodologyConfig, methodology_mean, summarize
from repro.analysis.ascii_plot import ascii_chart, ascii_table
from repro.analysis.latency import FlowBreakdown, breakdown, phase_summary
from repro.analysis.export import (
    dump_results,
    load_results,
    progress_series,
    to_jsonable,
)
from repro.analysis.gantt import Interval, occupancy, render_gantt, worker_intervals
from repro.analysis.sweep_tables import (
    fig4_table,
    fig5_table,
    index_hicma_results,
    pingpong_table,
    render_outcome,
)

__all__ = [
    "MethodologyConfig",
    "methodology_mean",
    "summarize",
    "ascii_chart",
    "ascii_table",
    "FlowBreakdown",
    "breakdown",
    "phase_summary",
    "dump_results",
    "load_results",
    "progress_series",
    "to_jsonable",
    "Interval",
    "occupancy",
    "render_gantt",
    "worker_intervals",
    "index_hicma_results",
    "fig4_table",
    "fig5_table",
    "pingpong_table",
    "render_outcome",
]
