"""Measurement methodology and reporting utilities."""

from repro.analysis.stats import MethodologyConfig, methodology_mean, summarize
from repro.analysis.ascii_plot import ascii_chart, ascii_table
from repro.analysis.latency import FlowBreakdown, breakdown, phase_summary
from repro.analysis.export import dump_results, load_results, to_jsonable
from repro.analysis.gantt import Interval, occupancy, render_gantt, worker_intervals

__all__ = [
    "MethodologyConfig",
    "methodology_mean",
    "summarize",
    "ascii_chart",
    "ascii_table",
    "FlowBreakdown",
    "breakdown",
    "phase_summary",
    "dump_results",
    "load_results",
    "to_jsonable",
    "Interval",
    "occupancy",
    "render_gantt",
    "worker_intervals",
]
