"""Worker-occupancy timelines (ASCII Gantt) from execution traces.

With ``ParsecContext(..., collect_traces=True)`` (or ``observability=True``)
every task execution is emitted as a ``task_exec`` event keyed
``(node, worker)`` on the :mod:`repro.obs` bus.  This module turns those
into per-worker busy intervals and renders an ASCII timeline — the quickest
way to *see* whether a run is compute-bound (solid bars) or starved waiting
on communication (sparse bars), which is the paper's whole story in one
picture.  Functions accept the bus, its memory sink, or the legacy
:class:`~repro.sim.trace.TraceRecorder` facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.obs.sinks import memory_of

__all__ = ["Interval", "worker_intervals", "render_gantt", "occupancy"]


@dataclass(frozen=True)
class Interval:
    """One task execution on one worker."""

    start: float
    duration: float
    kind: str

    @property
    def end(self) -> float:
        """Completion time of the interval."""
        return self.start + self.duration


def worker_intervals(trace: Any) -> dict[tuple[int, int], list[Interval]]:
    """Group ``task_exec`` events into per-(node, worker) interval lists."""
    out: dict[tuple[int, int], list[Interval]] = {}
    for evt in memory_of(trace).by_kind("task_exec"):
        kind, duration = evt.info
        out.setdefault(evt.key, []).append(Interval(evt.time, duration, kind))
    for intervals in out.values():
        intervals.sort(key=lambda iv: iv.start)
    return out


def occupancy(
    intervals: Mapping[tuple[int, int], Sequence[Interval]],
    t_end: Optional[float] = None,
) -> dict[tuple[int, int], float]:
    """Busy fraction per worker over [0, t_end]."""
    if t_end is None:
        t_end = max(
            (iv.end for ivs in intervals.values() for iv in ivs), default=0.0
        )
    if t_end <= 0:
        return {k: 0.0 for k in intervals}
    return {
        key: min(1.0, sum(iv.duration for iv in ivs) / t_end)
        for key, ivs in intervals.items()
    }


def render_gantt(
    trace: Any,
    width: int = 72,
    t_end: Optional[float] = None,
    max_workers: int = 32,
) -> str:
    """Render per-worker busy timelines as ASCII bars.

    Each row is one worker; '#' marks time slices in which the worker was
    executing a task for at least half the slice, '.' lighter activity,
    ' ' idle.
    """
    intervals = worker_intervals(trace)
    if not intervals:
        return "(no task_exec trace events — run with collect_traces=True)"
    if t_end is None:
        t_end = max(iv.end for ivs in intervals.values() for iv in ivs)
    if t_end <= 0:
        return "(empty timeline)"
    lines = [f"worker timeline, 0 .. {t_end:.6f} s  ('#' busy, '.' partial)"]
    occ = occupancy(intervals, t_end)
    for key in sorted(intervals)[:max_workers]:
        node, wid = key
        slices = [0.0] * width
        for iv in intervals[key]:
            lo = iv.start / t_end * width
            hi = iv.end / t_end * width
            for s in range(int(lo), min(int(hi) + 1, width)):
                overlap = min(hi, s + 1) - max(lo, s)
                if overlap > 0:
                    slices[s] += overlap
        bar = "".join(
            "#" if f >= 0.5 else ("." if f > 0.05 else " ") for f in slices
        )
        lines.append(f"n{node:<3}w{wid:<3} |{bar}| {occ[key]:4.0%}")
    if len(intervals) > max_workers:
        lines.append(f"... ({len(intervals) - max_workers} more workers)")
    return "\n".join(lines)
