"""Aggregate sweep records into the paper's figure tables.

The sweep engine returns flat result records in spec order; the figure
harnesses and the CLI want them indexed the way each figure reads them —
``(backend, tile, mt)`` for the Fig. 4 tile scan, ``(backend, nodes,
tile)`` for the Fig. 5 node scan — and rendered as ASCII tables.  These
helpers do that aggregation without re-running anything, so a warm cache
regenerates every table with zero simulations.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii_plot import ascii_table
from repro.errors import SweepError
from repro.sweep.engine import PointView, SweepOutcome
from repro.units import fmt_size, gbit_per_s

__all__ = [
    "index_hicma_results",
    "fig4_table",
    "fig5_table",
    "pingpong_table",
    "taskbench_table",
    "render_outcome",
]


def _hicma_index_key(point, by_nodes: bool):
    p = point.params
    if by_nodes:
        return (point.backend, p["num_nodes"], p["tile_size"])
    return (point.backend, p["tile_size"], bool(p.get("multithreaded_activate")))


def index_hicma_results(outcome: SweepOutcome, by_nodes: bool = False) -> dict:
    """Index HiCMA records the way the figure harnesses read them.

    ``by_nodes=False`` (Fig. 4): ``(backend, tile, mt) -> PointView``;
    ``by_nodes=True`` (Fig. 5): ``(backend, nodes, tile) -> PointView``.
    """
    out = {}
    for point, record in zip(outcome.spec.points, outcome.records):
        if point.kind != "hicma":
            raise SweepError(f"non-hicma point in hicma sweep: {point.label}")
        if record is None:
            continue
        out[_hicma_index_key(point, by_nodes)] = PointView(record)
    return out


def fig4_table(outcome: SweepOutcome) -> str:
    """The Fig. 4a tile-scan comparison table from sweep records."""
    res = index_hicma_results(outcome, by_nodes=False)
    tiles = sorted({t for (_b, t, mt) in res if not mt})
    rows = []
    for tile in tiles:
        mpi = res[("mpi", tile, False)].time_to_solution
        lci = res[("lci", tile, False)].time_to_solution
        rows.append(
            (tile, f"{mpi:.3f}", f"{lci:.3f}", f"{(mpi - lci) / mpi:+.1%}")
        )
    return ascii_table(
        ["tile", "MPI TTS (s)", "LCI TTS (s)", "LCI gain"],
        rows,
        title="Fig 4a: TLR Cholesky time-to-solution vs tile size",
    )


def fig5_table(outcome: SweepOutcome) -> str:
    """The Fig. 5a / Table 2 best-tile-per-node table from sweep records."""
    res = index_hicma_results(outcome, by_nodes=True)
    nodes = sorted({n for (_b, n, _t) in res})
    rows = []
    for n in nodes:
        row = [n]
        for backend in ("mpi", "lci"):
            tiles = [t for (b, nn, t) in res if b == backend and nn == n]
            best = min(tiles, key=lambda t: res[(backend, n, t)].time_to_solution)
            row += [best, f"{res[(backend, n, best)].time_to_solution:.3f}"]
        rows.append(tuple(row))
    return ascii_table(
        ["nodes", "MPI best tile", "MPI TTS (s)", "LCI best tile", "LCI TTS (s)"],
        rows,
        title="Fig 5a / Table 2: strong scaling, best tile per node count",
    )


def pingpong_table(outcome: SweepOutcome) -> str:
    """The Fig. 2a-style bandwidth table from ping-pong sweep records."""
    res = {}
    for point, record in zip(outcome.spec.points, outcome.records):
        if record is None:
            continue
        res[(point.backend, point.params["fragment_size"])] = record
    frags = sorted({f for (_b, f) in res})
    rows = []
    for frag in frags:
        row = [fmt_size(frag)]
        for backend in ("mpi", "lci"):
            rec = res.get((backend, frag))
            row.append(f"{gbit_per_s(rec['bandwidth']):.1f}" if rec else "-")
        rows.append(tuple(row))
    return ascii_table(
        ["fragment", "MPI Gbit/s", "LCI Gbit/s"],
        rows,
        title="ping-pong bandwidth sweep",
    )


def _scenario_label(point) -> str:
    """Compact per-point label for the taskbench table rows."""
    p = point.params
    if point.kind == "taskbench":
        return f"taskbench {p['pattern']} {p['width']}x{p['depth']}"
    if point.kind == "stencil":
        return f"stencil {p['grid']}x{p['grid']} s{p['steps']}"
    if point.kind == "forkjoin":
        return f"forkjoin f{p['fanout']} d{p['depth']}"
    keys = [k for k in sorted(p) if k not in ("seed", "num_nodes")][:2]
    return point.kind + " " + " ".join(f"{k}={p[k]}" for k in keys)


def taskbench_table(outcome: SweepOutcome) -> str:
    """The scenario-suite comparison table: makespan per point, MPI vs
    LCI side by side (the Task Bench-style rendering of the grid)."""
    res = {}
    for point, record in zip(outcome.spec.points, outcome.records):
        if record is None:
            continue
        res[(point.backend, _scenario_label(point))] = record
    labels = sorted({label for (_b, label) in res})
    rows = []
    for label in labels:
        row = [label]
        for backend in ("mpi", "lci"):
            rec = res.get((backend, label))
            row.append(f"{rec['makespan'] * 1e3:.3f}" if rec else "-")
        mpi, lci = res.get(("mpi", label)), res.get(("lci", label))
        if mpi and lci and mpi["makespan"] > 0:
            gain = (mpi["makespan"] - lci["makespan"]) / mpi["makespan"]
            row.append(f"{gain:+.1%}")
        else:
            row.append("-")
        rows.append(tuple(row))
    return ascii_table(
        ["scenario", "MPI ms", "LCI ms", "LCI gain"],
        rows,
        title="taskbench: scenario-suite makespan, MPI vs LCI",
    )


def render_outcome(outcome: SweepOutcome) -> str:
    """Dispatch to the right table renderer for a named grid."""
    renderers = {"fig4": fig4_table, "fig5": fig5_table,
                 "pingpong": pingpong_table, "taskbench": taskbench_table}
    renderer = renderers.get(outcome.spec.name)
    if renderer is None:
        raise SweepError(f"no table renderer for grid {outcome.spec.name!r}")
    return renderer(outcome)
