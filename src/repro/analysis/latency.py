"""Per-flow latency breakdown.

The paper reports end-to-end latency as a single number; for diagnosis this
module decomposes each remote dataflow's life into the protocol phases of
Fig. 1:

- ``activate``  — handoff of the activation to the comm layer → ACTIVATE
  callback execution at the destination;
- ``getdata``   — ACTIVATE callback → GET DATA callback at the holder
  (includes the priority-queue deferral, §4.3 duty 3);
- ``transfer``  — GET DATA handling → data arrival callback at the
  destination (handshake + wire + completion processing).

Enable with ``ParsecContext(..., collect_traces=True)`` (or
``observability=True``); the runtime then emits events keyed ``(flow, dst)``
on the :mod:`repro.obs` bus which :func:`breakdown` joins into
:class:`FlowBreakdown` records.  ``breakdown`` accepts the bus, its memory
sink, or the legacy :class:`~repro.sim.trace.TraceRecorder` facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.obs.sinks import memory_of

__all__ = ["FlowBreakdown", "breakdown", "phase_summary"]

#: Trace kinds emitted by the runtime, in protocol order.
PHASES = ("activate_handoff", "activate_cb", "getdata_cb", "data_arrival")


@dataclass(frozen=True)
class FlowBreakdown:
    """Phase timings of one (flow, destination) transfer."""

    flow: int
    dst: int
    activate: float  # handoff -> ACTIVATE callback at dst
    getdata: float  # ACTIVATE callback -> GET DATA callback at holder
    transfer: float  # GET DATA callback -> data arrival at dst

    @property
    def total(self) -> float:
        """End-to-end latency (sum of the three phases)."""
        return self.activate + self.getdata + self.transfer


def breakdown(trace: Any) -> list[FlowBreakdown]:
    """Join trace events into per-(flow, dst) phase timings.

    ``trace`` may be a :class:`~repro.obs.bus.ObsBus`, its memory sink, or a
    :class:`~repro.sim.trace.TraceRecorder`.  Uses the per-kind indexes
    (O(phase events), not O(all events)).  Incomplete flows (e.g. cut off at
    run end) are skipped.  A flow's ``activate_handoff`` is always its first
    recorded phase, so iterating that index preserves first-occurrence order;
    duplicate stamps keep the last one, matching the historical join.
    """
    idx = memory_of(trace)
    # Per-kind {key: time} maps; dict assignment keeps the last duplicate.
    stamps = {kind: {e.key: e.time for e in idx.by_kind(kind)} for kind in PHASES}
    handoff = stamps[PHASES[0]]
    out = []
    for key, handoff_t in handoff.items():
        if not all(key in stamps[k] for k in PHASES[1:]):
            continue
        flow, dst = key
        out.append(
            FlowBreakdown(
                flow=flow,
                dst=dst,
                activate=stamps["activate_cb"][key] - handoff_t,
                getdata=stamps["getdata_cb"][key] - stamps["activate_cb"][key],
                transfer=stamps["data_arrival"][key] - stamps["getdata_cb"][key],
            )
        )
    return out


def phase_summary(flows: Iterable[FlowBreakdown]) -> dict[str, dict]:
    """Mean/p95 per phase across flows, plus each phase's share of total."""
    flows = list(flows)
    if not flows:
        return {}
    out: dict[str, dict] = {}
    totals = np.array([f.total for f in flows])
    for phase in ("activate", "getdata", "transfer"):
        vals = np.array([getattr(f, phase) for f in flows])
        out[phase] = {
            "mean": float(vals.mean()),
            "p95": float(np.percentile(vals, 95)),
            "share": float(vals.sum() / totals.sum()) if totals.sum() > 0 else 0.0,
        }
    out["total"] = {
        "mean": float(totals.mean()),
        "p95": float(np.percentile(totals, 95)),
        "share": 1.0,
    }
    return out
