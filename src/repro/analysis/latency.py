"""Per-flow latency breakdown.

The paper reports end-to-end latency as a single number; for diagnosis this
module decomposes each remote dataflow's life into the protocol phases of
Fig. 1:

- ``activate``  — handoff of the activation to the comm layer → ACTIVATE
  callback execution at the destination;
- ``getdata``   — ACTIVATE callback → GET DATA callback at the holder
  (includes the priority-queue deferral, §4.3 duty 3);
- ``transfer``  — GET DATA handling → data arrival callback at the
  destination (handshake + wire + completion processing).

Enable with ``ParsecContext(..., collect_traces=True)``; the runtime then
records :class:`~repro.sim.trace.TraceEvent` rows keyed ``(flow, dst)``
which :func:`breakdown` joins into :class:`FlowBreakdown` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.sim.trace import TraceRecorder

__all__ = ["FlowBreakdown", "breakdown", "phase_summary"]

#: Trace kinds emitted by the runtime, in protocol order.
PHASES = ("activate_handoff", "activate_cb", "getdata_cb", "data_arrival")


@dataclass(frozen=True)
class FlowBreakdown:
    """Phase timings of one (flow, destination) transfer."""

    flow: int
    dst: int
    activate: float  # handoff -> ACTIVATE callback at dst
    getdata: float  # ACTIVATE callback -> GET DATA callback at holder
    transfer: float  # GET DATA callback -> data arrival at dst

    @property
    def total(self) -> float:
        """End-to-end latency (sum of the three phases)."""
        return self.activate + self.getdata + self.transfer


def breakdown(trace: TraceRecorder) -> list[FlowBreakdown]:
    """Join trace events into per-(flow, dst) phase timings.

    Incomplete flows (e.g. cut off at run end) are skipped.
    """
    by_key: dict[tuple, dict[str, float]] = {}
    for evt in trace.events:
        if evt.kind in PHASES:
            by_key.setdefault(evt.key, {})[evt.kind] = evt.time
    out = []
    for (flow, dst), stamps in by_key.items():
        if not all(k in stamps for k in PHASES):
            continue
        out.append(
            FlowBreakdown(
                flow=flow,
                dst=dst,
                activate=stamps["activate_cb"] - stamps["activate_handoff"],
                getdata=stamps["getdata_cb"] - stamps["activate_cb"],
                transfer=stamps["data_arrival"] - stamps["getdata_cb"],
            )
        )
    return out


def phase_summary(flows: Iterable[FlowBreakdown]) -> dict[str, dict]:
    """Mean/p95 per phase across flows, plus each phase's share of total."""
    flows = list(flows)
    if not flows:
        return {}
    out: dict[str, dict] = {}
    totals = np.array([f.total for f in flows])
    for phase in ("activate", "getdata", "transfer"):
        vals = np.array([getattr(f, phase) for f in flows])
        out[phase] = {
            "mean": float(vals.mean()),
            "p95": float(np.percentile(vals, 95)),
            "share": float(vals.sum() / totals.sum()) if totals.sum() > 0 else 0.0,
        }
    out["total"] = {
        "mean": float(totals.mean()),
        "p95": float(np.percentile(totals, 95)),
        "share": 1.0,
    }
    return out
