"""The repository's single canonical-JSON codec.

Every surface that serializes structured data — sweep cache keys
(:func:`repro.sweep.cache.stable_hash`), config ``to_dict``/``from_dict``
round-trips, and the explorer's replayable ``schedule.json`` — goes
through this module, so there is exactly one notion of "the canonical
form of this value" in the tree:

- :func:`canonical_json` — sorted keys, no whitespace, ``allow_nan=False``
  (exact for finite doubles, rejects NaN/Inf instead of silently writing
  non-standard JSON);
- :func:`stable_hash` — SHA-256 of the canonical text;
- :func:`to_plain` — recursively lowers dataclasses and tuples into
  JSON-plain dicts/lists;
- :class:`DictCodec` — a mixin giving frozen config dataclasses a
  validated ``to_dict()``/``from_dict()`` pair built on the above.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.errors import ConfigError

__all__ = ["canonical_json", "stable_hash", "to_plain", "DictCodec"]


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` to canonical JSON text.

    Sorted keys and compact separators make the text independent of dict
    insertion order; ``allow_nan=False`` keeps it strictly standard JSON.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def stable_hash(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON text."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def to_plain(value: Any) -> Any:
    """Recursively lower ``value`` into JSON-plain Python data.

    Dataclass instances become dicts of their fields, tuples become
    lists (matching what a JSON round-trip would produce), dicts and
    lists recurse; everything else passes through unchanged.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {key: to_plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_plain(item) for item in value]
    return value


def _field_exemplar(field: dataclasses.Field) -> Any:
    """The field's default value, instantiating a default factory."""
    if field.default is not dataclasses.MISSING:
        return field.default
    if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return field.default_factory()  # type: ignore[misc]
    return dataclasses.MISSING


class DictCodec:
    """``to_dict``/``from_dict`` mixin for frozen config dataclasses.

    ``to_dict`` lowers the instance through :func:`to_plain`, so its
    output is exactly what :func:`canonical_json` would re-read — one
    serializer for cache keys, sweeps, and schedule files alike.
    ``from_dict`` is the validated inverse: unknown keys and missing
    required keys raise :class:`~repro.errors.ConfigError`, nested
    config dataclasses are rebuilt recursively, and lists are coerced
    back to tuples where the field's default is a tuple.
    """

    def to_dict(self) -> dict:
        """JSON-plain dict of this config's fields (canonical form)."""
        return to_plain(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "DictCodec":
        """Rebuild an instance from :meth:`to_dict` output.

        Raises :class:`~repro.errors.ConfigError` on a non-dict payload,
        unknown keys, missing required keys, or values the target
        class's own validation rejects.
        """
        if not isinstance(doc, dict):
            raise ConfigError(
                f"{cls.__name__}.from_dict expects a dict, got {type(doc).__name__}"
            )
        fields = {f.name: f for f in dataclasses.fields(cls)}
        unknown = sorted(set(doc) - set(fields))
        if unknown:
            raise ConfigError(
                f"{cls.__name__}.from_dict: unknown key(s) {unknown}; "
                f"valid keys: {sorted(fields)}"
            )
        kwargs = {}
        for name, field in fields.items():
            if name not in doc:
                if _field_exemplar(field) is dataclasses.MISSING:
                    raise ConfigError(
                        f"{cls.__name__}.from_dict: missing required key {name!r}"
                    )
                continue
            kwargs[name] = _revive(field, doc[name])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigError(f"{cls.__name__}.from_dict: {exc}") from exc


def _revive(field: dataclasses.Field, value: Any) -> Any:
    """Undo :func:`to_plain` for one field, guided by its default value."""
    exemplar = _field_exemplar(field)
    if (
        dataclasses.is_dataclass(exemplar)
        and isinstance(exemplar, DictCodec)
        and isinstance(value, dict)
    ):
        return type(exemplar).from_dict(value)
    if isinstance(exemplar, tuple) and isinstance(value, list):
        return tuple(value)
    return value
