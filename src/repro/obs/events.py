"""The typed event record shared by every layer of the stack.

An :class:`ObsEvent` is one timestamped observation.  ``phase`` follows the
Chrome tracing convention in spirit:

- ``"I"`` — instant event (the default; what the old ``TraceRecorder``
  recorded exclusively);
- ``"B"``/``"E"`` — begin/end of a span (see :meth:`repro.obs.bus.ObsBus.span`);
- ``"C"`` — a counter sample.

``time`` is global simulated time; ``local_time`` is the (possibly skewed)
node-local clock reading, present when a measurement clock was supplied.
``node`` is the emitting node's rank, or ``-1`` for events that are not
attributable to one node (simulator-kernel events).

Fault-injection runs add the ``fault.*`` (injector) and ``rel.*`` (reliable
transport) kinds; see ``docs/faults.md`` for that taxonomy and its counter
semantics.  The sweep engine adds ``sweep_start`` / ``sweep_point`` /
``sweep_end`` progress events and the ``sweep.executed`` / ``sweep.cached``
/ ``sweep.failed`` / ``sweep.retried`` counters — these carry wall-clock
progress (``time`` is 0.0, ``node`` is ``-1``) since a sweep spans many
independent simulations; see ``docs/observability.md``.  Long single runs
similarly emit ``run_progress`` heartbeats (tasks done/total, events/s,
RSS, ETA) when a :class:`~repro.obs.progress.ProgressReporter` is
installed — wall-clock telemetry for the paper-scale N = 360,000 runs.

Supervised execution (:mod:`repro.supervise`, ``docs/robustness.md``) adds
the watchdog kinds: ``watchdog_abort`` (a :class:`~repro.supervise.guards.
RunGuards` budget tripped; ``key`` is the exception class name, ``info``
the reason) and ``watchdog_worker`` (sweep worker lifecycle: ``key`` is
the worker id, ``info`` one of ``spawned`` / ``died`` / ``hung`` / the
replacement reason), plus the ``supervise.respawned`` / ``supervise.hung``
counters and the ``sweep.resumed`` counter for journal-recovered points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ObsEvent"]


@dataclass(frozen=True)
class ObsEvent:
    """One timestamped observation emitted on the bus."""

    time: float
    kind: str
    node: int
    key: Any = None
    info: Any = None
    local_time: Optional[float] = None
    phase: str = "I"
