"""Run-progress heartbeats: wall-clock telemetry for long simulations.

At paper scale (N = 360,000 → ~575k tasks, tens of millions of kernel
events) a run is minutes of silence without feedback.  The
:class:`ProgressReporter` hooks the simulator's coarse run-loop tick
(:meth:`repro.sim.core.Simulator.set_tick`) and, at a bounded *wall-clock*
cadence, emits ``run_progress`` events on the observability bus and/or
prints a status line:

- tasks executed / total (and percent),
- simulated time reached,
- wall-clock elapsed and instantaneous kernel events/second,
- resident set size (``ru_maxrss``),
- a naive ETA extrapolated from the task completion rate.

Heartbeats carry *wall-clock* measurements, like the sweep engine's
``sweep_point`` events: they are observational only and never feed back
into the simulation, so enabling progress reporting cannot perturb results
(the tick callback treats the simulator as read-only).  A final beat is
always emitted from :meth:`finish`, so even sub-interval runs produce at
least one ``run_progress`` event.
"""

from __future__ import annotations

import sys
import time
from typing import Optional

__all__ = ["ProgressReporter", "peak_rss_bytes"]


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return rss if sys.platform == "darwin" else rss * 1024


class ProgressReporter:
    """Periodic ``run_progress`` heartbeats for one context run.

    ``interval`` is the minimum wall-clock seconds between beats;
    ``every`` is how many kernel events elapse between cheap tick checks
    (the wall clock is only read every ``every`` events).  ``stream`` —
    e.g. ``sys.stderr`` — additionally prints a one-line status per beat;
    ``None`` (the default) emits on the bus only.
    """

    def __init__(
        self,
        *,
        interval: float = 1.0,
        every: int = 16384,
        stream=None,
    ):
        self.interval = interval
        self.every = every
        self.stream = stream
        self.beats = 0
        self._ctx = None
        self._t0 = 0.0
        self._last_wall = 0.0
        self._last_events = 0

    # -- wiring -----------------------------------------------------------

    def install(self, ctx) -> None:
        """Attach to ``ctx`` (a :class:`~repro.runtime.context.ParsecContext`)
        and start the simulator tick.  Called by ``ctx.run(progress=...)``."""
        self._ctx = ctx
        self._t0 = self._last_wall = time.perf_counter()
        self._last_events = ctx.sim.events_processed
        ctx.sim.set_tick(self._tick, every=self.every)

    def finish(self) -> None:
        """Detach the tick and emit the final heartbeat."""
        ctx = self._ctx
        if ctx is None:
            return
        ctx.sim.set_tick(None)
        self._beat(ctx.sim.events_processed, time.perf_counter())
        self._ctx = None

    # -- beats ------------------------------------------------------------

    def _tick(self, event_count: int) -> None:
        wall = time.perf_counter()
        if wall - self._last_wall < self.interval:
            return
        self._beat(event_count, wall)

    def _beat(self, event_count: int, wall: float) -> None:
        ctx = self._ctx
        elapsed = wall - self._t0
        window = wall - self._last_wall
        rate = (event_count - self._last_events) / window if window > 0 else 0.0
        self._last_wall = wall
        self._last_events = event_count
        done = ctx._executed
        total = ctx._total_tasks
        eta = elapsed * (total - done) / done if 0 < done < total else 0.0
        # After the stop condition the kernel drains to the time horizon;
        # report the makespan, not the horizon, once the run has stopped.
        sim_now = ctx._makespan if ctx.stopped else ctx.sim.now
        rss = peak_rss_bytes()
        info = {
            "tasks_done": done,
            "tasks_total": total,
            "sim_now": sim_now,
            "wall_elapsed": elapsed,
            "events_processed": event_count,
            "events_per_sec": rate,
            "rss_bytes": rss,
            "eta_seconds": eta,
        }
        self.beats += 1
        if ctx.obs.enabled:
            ctx.obs.emit("run_progress", -1, key=self.beats, info=info)
        if self.stream is not None:
            pct = 100.0 * done / total if total else 0.0
            print(
                f"[progress] {pct:5.1f}%  {done:,}/{total:,} tasks  "
                f"sim {sim_now:,.1f}s  wall {elapsed:,.1f}s  "
                f"{rate / 1e6:.2f}M ev/s  rss {rss / 2**30:.2f} GiB  "
                f"eta {eta:,.0f}s",
                file=self.stream,
                flush=True,
            )
