"""``repro.obs`` — the cross-layer observability bus.

The paper's headline claims are latency measurements ("from send of the
ACTIVATE message to arrival of data", §6.4.2); diagnosing *why* a
configuration is slow requires per-protocol-phase events and per-operation
counters from every layer — simulator kernel, fabric/NIC, MPI and LCI
libraries, and the runtime itself.  This package gives all of them one
typed event bus with spans, counters, and histograms, plus pluggable sinks
(in-memory query index, Chrome ``about://tracing`` JSON, CSV).

Design rules:

- **Disabled is free.**  :data:`NULL_BUS` implements the full bus API as
  no-ops on shared singletons — zero per-event allocation, so the
  simulator-throughput benchmark is unaffected by the instrumentation.
- **One emit path.**  Ad-hoc tracing (``ctx.trace.record(...)`` call sites,
  private message logs) is forbidden outside this package; the
  ``tools/check_no_adhoc_tracing.py`` lint enforces it.
- **Legacy facade.**  :class:`repro.sim.trace.TraceRecorder` remains as a
  thin compatibility view over a bus's memory sink.

See ``docs/observability.md`` for the event taxonomy and sink API.
"""

from repro.obs.bus import NULL_BUS, NullBus, ObsBus, Span
from repro.obs.events import ObsEvent
from repro.obs.metrics import NULL_COUNTER, NULL_HISTOGRAM, Counter, Histogram
from repro.obs.progress import ProgressReporter, peak_rss_bytes
from repro.obs.sinks import (
    ChromeTraceSink,
    CsvSink,
    MemorySink,
    Sink,
    StreamSink,
    memory_of,
)

__all__ = [
    "ObsBus",
    "NullBus",
    "NULL_BUS",
    "Span",
    "ObsEvent",
    "ProgressReporter",
    "peak_rss_bytes",
    "Counter",
    "Histogram",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "Sink",
    "StreamSink",
    "MemorySink",
    "ChromeTraceSink",
    "CsvSink",
    "memory_of",
]
