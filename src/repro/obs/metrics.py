"""Counters and histograms: cheap aggregate instruments.

Unlike events, metrics never allocate per observation: a :class:`Counter`
bumps an integer, a :class:`Histogram` bumps a fixed power-of-two bin.  The
bus hands out *cached* instances per ``(name, node)``, so instrumented code
should look an instrument up once (at construction time) and hold on to it —
the hot path is then a single method call, and with the null bus the call is
a no-op on a shared singleton.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["Counter", "Histogram", "NULL_COUNTER", "NULL_HISTOGRAM"]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "node", "value")

    def __init__(self, name: str, node: Optional[int] = None):
        self.name = name
        self.node = node
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` to the counter."""
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "" if self.node is None else f"[{self.node}]"
        return f"Counter({self.name}{where}={self.value})"


class Histogram:
    """Power-of-two-binned distribution of non-negative samples.

    Bin ``e`` holds samples in ``[2**(e-1), 2**e)`` (bin ``None`` holds
    zeros), which is plenty for message-size and latency distributions while
    keeping :meth:`observe` allocation-free after the first sample per bin.
    """

    __slots__ = ("name", "node", "count", "total", "min", "max", "bins")

    def __init__(self, name: str, node: Optional[int] = None):
        self.name = name
        self.node = node
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bins: dict = {}

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        e = math.frexp(value)[1] if value > 0 else None
        self.bins[e] = self.bins.get(e, 0) + 1

    @property
    def mean(self) -> float:
        """Mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """Count/sum/min/max/mean as a plain dict (empty histogram ⇒ zeros)."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "" if self.node is None else f"[{self.node}]"
        return f"Histogram({self.name}{where} n={self.count} mean={self.mean:.3g})"


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by the null bus."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        return None


class _NullHistogram(Histogram):
    """Shared do-nothing histogram handed out by the null bus."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


NULL_COUNTER = _NullCounter("null")
NULL_HISTOGRAM = _NullHistogram("null")
