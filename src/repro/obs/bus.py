"""The observability bus: one emit path for every layer of the stack.

Two implementations share one duck type:

- :class:`ObsBus` — the real thing: stamps events with the bound clock,
  fans them out to attached sinks (a :class:`~repro.obs.sinks.MemorySink`
  by default), and hands out cached :class:`~repro.obs.metrics.Counter` /
  :class:`~repro.obs.metrics.Histogram` instruments.
- :class:`NullBus` — the disabled path.  Every method is a constant-return
  no-op on singletons: **zero allocation per event**, so instrumentation can
  stay inline in hot paths.  Code that would build an event payload (tuple
  packing, string formatting) should still guard with ``if bus.enabled:``.

Instrumented layers receive the bus at construction time (defaulting to
:data:`NULL_BUS`) and look instruments up once::

    self._c_retry = bus.counter("lci.retry.sendb", node)   # init
    ...
    self._c_retry.inc()                                    # hot path

Spans bracket an operation in simulated time::

    sp = bus.span("mpi_rndv", node, key=(dst, tag))
    ...                    # any number of yields later
    sp.end(info=size)

which emits paired ``"B"``/``"E"`` events that the Chrome sink renders as
duration bars.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.events import ObsEvent
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_HISTOGRAM,
    Counter,
    Histogram,
)
from repro.obs.sinks import MemorySink, Sink

__all__ = ["ObsBus", "NullBus", "NULL_BUS", "Span"]


class Span:
    """An open interval on the bus; emits ``"B"`` now and ``"E"`` at
    :meth:`end`."""

    __slots__ = ("_bus", "kind", "node", "key", "start")

    def __init__(self, bus: "ObsBus", kind: str, node: int, key: Any, time: Optional[float]):
        self._bus = bus
        self.kind = kind
        self.node = node
        self.key = key
        self.start = bus.emit(kind, node, key=key, time=time, phase="B")

    def end(self, info: Any = None, time: Optional[float] = None) -> None:
        """Close the span (idempotence is the caller's responsibility)."""
        self._bus.emit(self.kind, self.node, key=self.key, info=info, time=time, phase="E")


class _NullSpan:
    """Shared do-nothing span handed out by the null bus."""

    __slots__ = ()

    def end(self, info: Any = None, time: Optional[float] = None) -> None:
        return None


_NULL_SPAN = _NullSpan()


class ObsBus:
    """The enabled event bus."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None, memory: bool = True):
        #: Zero-argument callable returning "now"; see :meth:`bind_clock`.
        self._clock = clock
        self.sinks: list[Sink] = []
        #: The queryable in-memory index (None when ``memory=False``).
        self.memory: Optional[MemorySink] = MemorySink() if memory else None
        if self.memory is not None:
            self.sinks.append(self.memory)
        self._counters: dict[tuple, Counter] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- wiring ----------------------------------------------------------

    def bind_clock(self, sim: Any) -> None:
        """Use ``sim.now`` (a :class:`~repro.sim.core.Simulator`) as the
        default timestamp source for events emitted without ``time=``."""
        self._clock = lambda: sim.now

    def attach(self, sink: Sink) -> Sink:
        """Attach a live sink; returns it for chaining."""
        self.sinks.append(sink)
        return sink

    # -- events ----------------------------------------------------------

    def emit(
        self,
        kind: str,
        node: int,
        key: Any = None,
        info: Any = None,
        time: Optional[float] = None,
        local_time: Optional[float] = None,
        phase: str = "I",
    ) -> float:
        """Emit one event to every sink; returns the stamped time."""
        if time is None:
            time = self._clock() if self._clock is not None else 0.0
        evt = ObsEvent(time, kind, node, key, info, local_time, phase)
        for sink in self.sinks:
            sink.on_event(evt)
        return time

    def span(self, kind: str, node: int, key: Any = None, time: Optional[float] = None) -> Span:
        """Open a span (emits its ``"B"`` event immediately)."""
        return Span(self, kind, node, key, time)

    # -- instruments -----------------------------------------------------

    def counter(self, name: str, node: Optional[int] = None) -> Counter:
        """The (cached) counter for ``(name, node)``."""
        key = (name, node)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, node)
        return c

    def histogram(self, name: str, node: Optional[int] = None) -> Histogram:
        """The (cached) histogram for ``(name, node)``."""
        key = (name, node)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, node)
        return h

    # -- snapshots -------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Per-instrument values, keyed ``name`` or ``name[node]``."""
        return {
            name if node is None else f"{name}[{node}]": c.value
            for (name, node), c in self._counters.items()
        }

    def counter_totals(self) -> dict[str, int]:
        """Counter values summed across nodes, keyed by bare name."""
        out: dict[str, int] = {}
        for (name, _node), c in self._counters.items():
            out[name] = out.get(name, 0) + c.value
        return out

    def histogram_summaries(self) -> dict[str, dict]:
        """Per-histogram :meth:`~repro.obs.metrics.Histogram.summary` dicts."""
        return {
            name if node is None else f"{name}[{node}]": h.summary()
            for (name, node), h in self._histograms.items()
        }

    # -- replay ----------------------------------------------------------

    def export(self, sink: Sink) -> Sink:
        """Replay every event in the memory store into ``sink``.

        Use this to produce a Chrome/CSV export after a run without having
        paid for the rendering during it.  Requires the memory sink.
        """
        if self.memory is None:
            raise ValueError("ObsBus.export requires the memory sink")
        for evt in self.memory.events:
            sink.on_event(evt)
        sink.close()
        return sink


class NullBus:
    """The disabled bus: every operation is a no-op with zero per-event
    allocation.  Shared singleton: :data:`NULL_BUS`."""

    __slots__ = ()

    enabled = False
    memory = None
    sinks: list = []

    def bind_clock(self, sim: Any) -> None:
        return None

    def attach(self, sink: Sink) -> Sink:
        raise ValueError("cannot attach a sink to the null bus")

    def emit(
        self,
        kind: str,
        node: int,
        key: Any = None,
        info: Any = None,
        time: Optional[float] = None,
        local_time: Optional[float] = None,
        phase: str = "I",
    ) -> float:
        return 0.0

    def span(self, kind: str, node: int, key: Any = None, time: Optional[float] = None) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, node: Optional[int] = None) -> Counter:
        return NULL_COUNTER

    def histogram(self, name: str, node: Optional[int] = None) -> Histogram:
        return NULL_HISTOGRAM

    def counters(self) -> dict[str, int]:
        return {}

    def counter_totals(self) -> dict[str, int]:
        return {}

    def histogram_summaries(self) -> dict[str, dict]:
        return {}

    def export(self, sink: Sink) -> Sink:
        raise ValueError("the null bus records nothing to export")


#: The process-wide disabled bus (safe to share: it holds no state).
NULL_BUS = NullBus()
