"""Pluggable event sinks.

A sink receives every :class:`~repro.obs.events.ObsEvent` the bus emits via
:meth:`Sink.on_event`.  Three are provided:

- :class:`MemorySink` — the default: an in-memory store with kind/key
  indexes maintained *as events arrive*, so queries are O(matching events)
  instead of O(all events).  This is what ``repro.analysis`` consumes.
- :class:`ChromeTraceSink` — renders the Chrome ``about://tracing`` /
  Perfetto JSON array format (``ph``/``ts``/``pid``/``tid`` fields; span
  begin/end map to ``"B"``/``"E"``, instants to ``"i"``).
- :class:`CsvSink` — one row per event, for spreadsheets and ad-hoc scripts.

Sinks can be attached live (``bus.attach(sink)``) or fed after the fact from
the memory store (``bus.export(sink)``).
"""

from __future__ import annotations

import csv
import io
import json
import sys
from typing import Any, Iterable, Optional

from repro.obs.events import ObsEvent

__all__ = [
    "Sink",
    "MemorySink",
    "ChromeTraceSink",
    "CsvSink",
    "StreamSink",
    "memory_of",
]


def memory_of(source: Any):
    """The indexed event store behind ``source``.

    Accepts anything with ``by_kind``/``by_key`` (a :class:`MemorySink` or a
    :class:`~repro.sim.trace.TraceRecorder` facade) or an
    :class:`~repro.obs.bus.ObsBus` (uses its attached memory sink).  Lets the
    analysis modules consume traces from any of the three without caring
    which they were handed.
    """
    if hasattr(source, "by_kind"):
        return source
    mem = getattr(source, "memory", None)
    if mem is not None:
        return mem
    raise ValueError(
        f"{type(source).__name__} has no event index (bus without a memory "
        "sink, or observability disabled?)"
    )


class Sink:
    """Abstract event consumer."""

    def on_event(self, evt: ObsEvent) -> None:
        """Receive one event (called by the bus at emit time)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush/finalise; default is a no-op."""


class MemorySink(Sink):
    """In-memory store with kind and key indexes.

    ``events`` preserves emission order; :meth:`by_kind` and :meth:`by_key`
    return (shared, do-not-mutate) lists in that same order.  Events whose
    key is unhashable are kept out of the key index and found by a linear
    fallback — the instrumented stack only uses hashable keys, so the
    fallback list stays empty in practice.
    """

    def __init__(self) -> None:
        self.events: list[ObsEvent] = []
        self._by_kind: dict[str, list[ObsEvent]] = {}
        self._by_key: dict[Any, list[ObsEvent]] = {}
        self._unindexed: list[ObsEvent] = []

    def on_event(self, evt: ObsEvent) -> None:
        self.events.append(evt)
        kind_list = self._by_kind.get(evt.kind)
        if kind_list is None:
            self._by_kind[evt.kind] = [evt]
        else:
            kind_list.append(evt)
        try:
            key_list = self._by_key.get(evt.key)
        except TypeError:  # unhashable key: linear fallback
            self._unindexed.append(evt)
            return
        if key_list is None:
            self._by_key[evt.key] = [evt]
        else:
            key_list.append(evt)

    def by_kind(self, kind: str) -> list[ObsEvent]:
        """All events of ``kind``, in emission order."""
        return self._by_kind.get(kind, [])

    def by_key(self, key: Any) -> list[ObsEvent]:
        """All events with ``key``, in emission order."""
        try:
            indexed = self._by_key.get(key, [])
        except TypeError:
            indexed = []
        if not self._unindexed:
            return indexed
        return sorted(
            indexed + [e for e in self._unindexed if e.key == key],
            key=lambda e: e.time,
        )

    @property
    def kinds(self) -> list[str]:
        """Every event kind seen so far."""
        return list(self._by_kind)

    def clear(self) -> None:
        """Drop all stored events and indexes."""
        self.events.clear()
        self._by_kind.clear()
        self._by_key.clear()
        self._unindexed.clear()

    def __len__(self) -> int:
        return len(self.events)


class StreamSink(Sink):
    """Print one compact line per event to a text stream.

    The live-progress view behind the CLI's ``--progress`` flags: attach it
    to a bus filtered to the wall-clock progress kinds (``sweep_start`` /
    ``sweep_point`` / ``sweep_end``, ``run_progress``) and each event
    becomes one immediately flushed line on ``stream`` (stderr by default,
    keeping stdout clean for results).  ``kinds=None`` passes everything —
    useful for debugging, noisy for real runs.
    """

    def __init__(self, stream=None, kinds: Optional[Iterable[str]] = None):
        self.stream = stream if stream is not None else sys.stderr
        self.kinds = None if kinds is None else frozenset(kinds)

    def on_event(self, evt: ObsEvent) -> None:
        if self.kinds is not None and evt.kind not in self.kinds:
            return
        info = evt.info
        if isinstance(info, dict):
            body = "  ".join(f"{k}={_compact(v)}" for k, v in info.items())
        else:
            body = "" if info is None else str(info)
        key = "" if evt.key is None else f" {evt.key}"
        print(f"[{evt.kind}]{key}  {body}".rstrip(), file=self.stream, flush=True)


def _compact(value: Any) -> str:
    """Short rendering for StreamSink info values."""
    if isinstance(value, float):
        return f"{value:,.3g}" if abs(value) >= 1000 else f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def _chrome_tid(evt: ObsEvent) -> int:
    """Thread lane for the Chrome view: the second element of tuple keys
    (e.g. ``(node, worker)`` for ``task_exec``) when it is a small int."""
    key = evt.key
    if isinstance(key, tuple) and len(key) >= 2 and isinstance(key[1], int):
        return key[1]
    return 0


class ChromeTraceSink(Sink):
    """Render events as Chrome ``about://tracing`` JSON.

    Timestamps are microseconds (``ts``); ``pid`` is the node rank and
    ``tid`` a per-node lane derived from the event key.  Load the output in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """

    _PH = {"I": "i", "B": "B", "E": "E", "C": "C"}

    def __init__(self) -> None:
        self.records: list[dict] = []

    def on_event(self, evt: ObsEvent) -> None:
        rec = {
            "name": evt.kind,
            "ph": self._PH.get(evt.phase, "i"),
            "ts": evt.time * 1e6,
            "pid": evt.node,
            "tid": _chrome_tid(evt),
        }
        if rec["ph"] == "i":
            rec["s"] = "t"  # instant scope: thread
        args = {}
        if evt.key is not None:
            args["key"] = repr(evt.key)
        if evt.info is not None:
            args["info"] = repr(evt.info)
        if evt.local_time is not None:
            args["local_time"] = evt.local_time
        if args:
            rec["args"] = args
        self.records.append(rec)

    def to_json(self) -> dict:
        """The full trace document as a JSON-ready dict."""
        return {"traceEvents": self.records, "displayTimeUnit": "ms"}

    def render(self) -> str:
        """The trace document serialised to a JSON string."""
        return json.dumps(self.to_json())

    def write(self, path: str) -> None:
        """Write the JSON document to ``path``."""
        with open(path, "w") as fp:
            json.dump(self.to_json(), fp)


class CsvSink(Sink):
    """Render events as CSV (one row per event, header included)."""

    COLUMNS = ("time", "kind", "node", "key", "info", "phase", "local_time")

    def __init__(self) -> None:
        self.rows: list[tuple] = []

    def on_event(self, evt: ObsEvent) -> None:
        self.rows.append(
            (
                evt.time,
                evt.kind,
                evt.node,
                "" if evt.key is None else repr(evt.key),
                "" if evt.info is None else repr(evt.info),
                evt.phase,
                "" if evt.local_time is None else evt.local_time,
            )
        )

    def render(self) -> str:
        """The full CSV document as a string."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(self.COLUMNS)
        writer.writerows(self.rows)
        return buf.getvalue()

    def write(self, path: str) -> None:
        """Write the CSV document to ``path``."""
        with open(path, "w") as fp:
            fp.write(self.render())
