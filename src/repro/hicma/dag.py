"""Task-graph builder for the two-flow TLR Cholesky (HiCMA on PaRSEC).

Builds the right-looking tile Cholesky DAG with band size 1 — the paper's
§6.4 configuration — as a :class:`~repro.runtime.taskpool.TaskGraph`
executable on the simulated runtime:

- tiles are distributed 2D block-cyclically over a P×Q process grid;
- ``POTRF(k)`` broadcasts L_kk down column k (the runtime builds the
  binomial multicast tree);
- ``TRSM(i,k)`` results feed ``SYRK(i,k)`` and every ``GEMM`` in row/column
  i — the widest multicasts in the graph;
- per-tile update chains (GEMM/SYRK accumulation) are node-local flows;
- the **two-flow** variant ships each low-rank tile as two dataflows (the U
  and V factors separately, each b·r·8 bytes) rather than one packed
  2·b·r·8 message — more, smaller messages, finer pipelining (HiCMA [7,8]);
- priorities follow the critical path: panel operations at small k first.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import HicmaError
from repro.hicma.ranks import RankModel
from repro.hicma.timing import KernelTimeModel
from repro.runtime.taskpool import TaskGraph

__all__ = ["build_tlr_cholesky_graph", "block_cyclic_node", "process_grid"]


def process_grid(num_nodes: int) -> tuple[int, int]:
    """Nearly square P×Q factorization of the node count (P ≤ Q)."""
    if num_nodes < 1:
        raise HicmaError("need at least one node")
    p = int(num_nodes**0.5)
    while num_nodes % p != 0:
        p -= 1
    return p, num_nodes // p


def block_cyclic_node(i: int, j: int, p: int, q: int) -> int:
    """Owner of tile (i, j) in a 2D block-cyclic distribution."""
    return (i % p) * q + (j % q)


def build_tlr_cholesky_graph(
    nt: int,
    tile_size: int,
    num_nodes: int,
    rank_model: Optional[RankModel] = None,
    time_model: Optional[KernelTimeModel] = None,
    maxrank: int = 150,
    two_flow: bool = True,
    band: int = 1,
) -> TaskGraph:
    """Build the TLR Cholesky DAG for an NT×NT tile matrix.

    ``band`` widens the dense diagonal band (the paper uses 1): tiles with
    ``|i − j| < band`` are dense, so their kernels run at dense rates and
    their dataflows carry full b²·8-byte tiles.
    """
    if nt < 1:
        raise HicmaError("need at least one tile")
    if band < 1:
        raise HicmaError("band must be at least 1")
    ranks = rank_model or RankModel(nt, tile_size, maxrank)
    times = time_model or KernelTimeModel()
    p, q = process_grid(num_nodes)
    g = TaskGraph()
    b = tile_size
    dense_bytes = b * b * 8
    # Emit straight into the columnar builder: bind the two append methods
    # once — at paper scale (NT=150) this loop runs ~575k times and the
    # builder appends are the entire cost of the build.
    add_task = g.add_task
    add_flow = g.add_flow
    rank_of = ranks.rank
    potrf_d = times.potrf(b)

    def owner(i: int, j: int) -> int:
        return block_cyclic_node(i, j, p, q)

    def is_dense(i: int, j: int) -> bool:
        return abs(i - j) < band

    def prio(kind: str, k: int) -> float:
        # Higher = sooner.  Panel ops of early steps dominate the critical
        # path; within a step POTRF > TRSM > SYRK > GEMM (DPLASMA-style).
        base = {"potrf": 3e9, "trsm": 2e9, "syrk": 1e9, "gemm": 0.0}[kind]
        return base + (nt - k) * 1e3

    # tile_dep[(i, j)] = flow ids representing the latest version of tile
    # (i, j) (the accumulation chain); None before any update.
    tile_dep: dict[tuple[int, int], list[int]] = {}
    # trsm_flows[i] = flows of the current panel column's TRSM output row i.
    for k in range(nt):
        # ---- POTRF(k) ----
        inputs = tile_dep.pop((k, k), [])
        potrf_t = add_task(
            node=owner(k, k),
            duration=potrf_d,
            priority=prio("potrf", k),
            inputs=inputs,
            kind="potrf",
        )
        if k == nt - 1:
            break
        # L_kk flows to every TRSM in column k (broadcast).
        lkk_flow = add_flow(potrf_t, dense_bytes)

        # ---- TRSM(i, k) for i > k ----
        trsm_flows: dict[int, list[int]] = {}
        for i in range(k + 1, nt):
            inputs = [lkk_flow] + tile_dep.pop((i, k), [])
            dense_panel = is_dense(i, k)
            r = 0 if dense_panel else rank_of(i, k)
            trsm_t = add_task(
                node=owner(i, k),
                duration=times.trsm_dense(b) if dense_panel else times.trsm(b, r),
                priority=prio("trsm", k),
                inputs=inputs,
                kind="trsm",
            )
            if dense_panel:
                trsm_flows[i] = [add_flow(trsm_t, dense_bytes)]
            elif two_flow:
                half = b * r * 8
                trsm_flows[i] = [add_flow(trsm_t, half), add_flow(trsm_t, half)]
            else:
                trsm_flows[i] = [add_flow(trsm_t, 2 * b * r * 8)]

        # ---- SYRK(i, k) and GEMM(i, j, k) ----
        for i in range(k + 1, nt):
            panel_dense = is_dense(i, k)
            r_ik = 0 if panel_dense else rank_of(i, k)
            syrk_inputs = list(trsm_flows[i]) + tile_dep.pop((i, i), [])
            syrk_t = add_task(
                node=owner(i, i),
                duration=times.syrk_dense(b) if panel_dense else times.syrk(b, r_ik),
                priority=prio("syrk", k),
                inputs=syrk_inputs,
                kind="syrk",
            )
            # SYRK's output is the updated (i,i) tile: a node-local chain
            # flow consumed by the next update or the POTRF of step i.
            tile_dep[(i, i)] = [add_flow(syrk_t, dense_bytes)]
            for j in range(k + 1, i):
                gemm_inputs = (
                    list(trsm_flows[i])
                    + list(trsm_flows[j])
                    + tile_dep.pop((i, j), [])
                )
                c_dense = is_dense(i, j)
                r_ij = 0 if c_dense else rank_of(i, j)
                gemm_t = add_task(
                    node=owner(i, j),
                    duration=times.gemm_mixed(
                        b,
                        max(r_ij, 1),
                        c_dense,
                        is_dense(i, k),
                        is_dense(j, k),
                    ),
                    priority=prio("gemm", k),
                    inputs=gemm_inputs,
                    kind="gemm",
                )
                out_bytes = dense_bytes if c_dense else 2 * b * r_ij * 8
                tile_dep[(i, j)] = [add_flow(gemm_t, out_bytes)]
    return g


def build_compression_graph(
    nt: int,
    tile_size: int,
    num_nodes: int,
    time_model: Optional[KernelTimeModel] = None,
    maxrank: int = 150,
    band: int = 1,
) -> TaskGraph:
    """HiCMA phase 1: generate + compress every lower-triangle tile.

    Each tile is produced locally on its owner (the kernel function is
    evaluated in place, so no data crosses the network) and off-band tiles
    are RSVD-compressed — an embarrassingly parallel phase whose cost the
    HiCMA papers report separately from the factorization.
    """
    if nt < 1:
        raise HicmaError("need at least one tile")
    times = time_model or KernelTimeModel()
    p, q = process_grid(num_nodes)
    g = TaskGraph()
    for i in range(nt):
        for j in range(i + 1):
            duration = times.generate(tile_size)
            if abs(i - j) >= band:
                duration += times.compress(tile_size, maxrank)
            g.add_task(
                node=block_cyclic_node(i, j, p, q),
                duration=duration,
                kind="compress" if abs(i - j) >= band else "generate",
            )
    return g


def expected_task_count(nt: int) -> int:
    """POTRF + TRSM + SYRK + GEMM counts for an NT-tile Cholesky."""
    return nt + nt * (nt - 1) // 2 + nt * (nt - 1) // 2 + nt * (nt - 1) * (nt - 2) // 6


def build_dense_cholesky_graph(
    nt: int,
    tile_size: int,
    num_nodes: int,
    time_model: Optional[KernelTimeModel] = None,
) -> TaskGraph:
    """The DPLASMA substrate: dense tile Cholesky DAG.

    Same task-graph structure as the TLR variant, but every tile is dense:
    kernels are full-rank BLAS3 (TRSM b³, SYRK b³, GEMM 2b³) and every
    dataflow carries b²·8 bytes.  HiCMA's motivation (§6.4.1) is visible by
    comparing this graph's compute and traffic with the TLR one.
    """
    if nt < 1:
        raise HicmaError("need at least one tile")
    times = time_model or KernelTimeModel()
    rate = times.compute.flops_per_core
    p, q = process_grid(num_nodes)
    g = TaskGraph()
    b = tile_size
    dense_bytes = b * b * 8
    potrf_d = times.potrf(b)
    trsm_d = b**3 / rate
    syrk_d = b**3 / rate
    gemm_d = 2 * b**3 / rate

    def owner(i: int, j: int) -> int:
        return block_cyclic_node(i, j, p, q)

    def prio(kind: str, k: int) -> float:
        base = {"potrf": 3e9, "trsm": 2e9, "syrk": 1e9, "gemm": 0.0}[kind]
        return base + (nt - k) * 1e3

    tile_dep: dict[tuple[int, int], list[int]] = {}
    for k in range(nt):
        potrf_t = g.add_task(
            node=owner(k, k),
            duration=potrf_d,
            priority=prio("potrf", k),
            inputs=tile_dep.pop((k, k), []),
            kind="potrf",
        )
        if k == nt - 1:
            break
        lkk_flow = g.add_flow(potrf_t, dense_bytes)
        trsm_flows: dict[int, int] = {}
        for i in range(k + 1, nt):
            trsm_t = g.add_task(
                node=owner(i, k),
                duration=trsm_d,
                priority=prio("trsm", k),
                inputs=[lkk_flow] + tile_dep.pop((i, k), []),
                kind="trsm",
            )
            trsm_flows[i] = g.add_flow(trsm_t, dense_bytes)
        for i in range(k + 1, nt):
            syrk_t = g.add_task(
                node=owner(i, i),
                duration=syrk_d,
                priority=prio("syrk", k),
                inputs=[trsm_flows[i]] + tile_dep.pop((i, i), []),
                kind="syrk",
            )
            tile_dep[(i, i)] = [g.add_flow(syrk_t, dense_bytes)]
            for j in range(k + 1, i):
                gemm_t = g.add_task(
                    node=owner(i, j),
                    duration=gemm_d,
                    priority=prio("gemm", k),
                    inputs=[trsm_flows[i], trsm_flows[j]]
                    + tile_dep.pop((i, j), []),
                    kind="gemm",
                )
                tile_dep[(i, j)] = [g.add_flow(gemm_t, dense_bytes)]
    return g
