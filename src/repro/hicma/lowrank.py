"""Low-rank tiles: compression, recompression, arithmetic helpers.

A tile A (m×n) is stored as ``A ≈ U @ V.T`` with U (m×k), V (n×k) — HiCMA's
packed U×V format.  Compression truncates the SVD at the accuracy threshold
(relative to the largest singular value, as HiCMA's ``fixed accuracy``
mode); recompression rounds a sum of low-rank terms back down with the
standard QR+SVD scheme.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import HicmaError

__all__ = ["LowRankTile", "compress_dense", "recompress"]


class LowRankTile:
    """A U·Vᵀ factorization of a tile."""

    __slots__ = ("u", "v")

    def __init__(self, u: np.ndarray, v: np.ndarray):
        if u.ndim != 2 or v.ndim != 2 or u.shape[1] != v.shape[1]:
            raise HicmaError(
                f"inconsistent low-rank factors: U{u.shape} V{v.shape}"
            )
        self.u = u
        self.v = v

    @property
    def rank(self) -> int:
        """Number of columns in the U/V factors."""
        return self.u.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """Logical (rows, cols) of the represented tile."""
        return (self.u.shape[0], self.v.shape[0])

    @property
    def nbytes(self) -> int:
        """Memory in packed U×V format (what travels on the network)."""
        return self.u.nbytes + self.v.nbytes

    def to_dense(self) -> np.ndarray:
        """Materialize U·Vᵀ."""
        return self.u @ self.v.T

    def copy(self) -> "LowRankTile":
        """Deep copy of both factors."""
        return LowRankTile(self.u.copy(), self.v.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LowRankTile({self.shape[0]}x{self.shape[1]}, rank={self.rank})"


def _truncate_rank(s: np.ndarray, tol: float, maxrank: Optional[int]) -> int:
    """Rank needed so discarded singular values are below tol·σ₁."""
    if s.size == 0 or s[0] == 0.0:
        return 1
    k = int(np.sum(s > tol * s[0]))
    k = max(k, 1)
    if maxrank is not None:
        k = min(k, maxrank)
    return k


def compress_dense(
    a: np.ndarray,
    tol: float,
    maxrank: Optional[int] = None,
    method: str = "svd",
    oversampling: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> LowRankTile:
    """Compress a dense tile to the accuracy threshold.

    ``method="svd"`` is the exact (deterministic) truncated SVD;
    ``method="rsvd"`` is the Halko–Martinsson–Tropp randomized SVD that
    production HiCMA/STARS-H use for large tiles: project onto a random
    ``maxrank + oversampling``-dimensional subspace, orthonormalize, and
    SVD the small core.  RSVD requires ``maxrank``.
    """
    if a.ndim != 2:
        raise HicmaError("compress_dense expects a matrix")
    if tol <= 0:
        raise HicmaError("tolerance must be positive")
    if method == "svd":
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        k = _truncate_rank(s, tol, maxrank)
        return LowRankTile(u[:, :k] * s[:k], vt[:k].T)
    if method != "rsvd":
        raise HicmaError(f"unknown compression method {method!r}")
    if maxrank is None:
        raise HicmaError("rsvd compression requires maxrank")
    rng = rng or np.random.default_rng(0)
    m, n = a.shape
    sketch = min(maxrank + oversampling, min(m, n))
    omega = rng.standard_normal((n, sketch))
    q, _ = np.linalg.qr(a @ omega)
    # One power iteration sharpens the subspace for slowly decaying spectra.
    q, _ = np.linalg.qr(a @ (a.T @ q))
    b = q.T @ a  # sketch × n core
    ub, s, vt = np.linalg.svd(b, full_matrices=False)
    k = _truncate_rank(s, tol, maxrank)
    return LowRankTile(q @ (ub[:, :k] * s[:k]), vt[:k].T)


def recompress(
    u: np.ndarray, v: np.ndarray, tol: float, maxrank: Optional[int] = None
) -> LowRankTile:
    """Round U·Vᵀ (typically a sum of low-rank terms stacked column-wise)
    back down to minimal rank: QR of both factors, SVD of the small core."""
    if u.shape[1] != v.shape[1]:
        raise HicmaError("recompress: factor rank mismatch")
    qu, ru = np.linalg.qr(u)
    qv, rv = np.linalg.qr(v)
    uu, s, vvt = np.linalg.svd(ru @ rv.T)
    k = _truncate_rank(s, tol, maxrank)
    return LowRankTile(qu @ (uu[:, :k] * s[:k]), qv @ vvt[:k].T)
