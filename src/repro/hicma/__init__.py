"""HiCMA: tile low-rank (TLR) Cholesky factorization.

Two complementary halves:

- **Real numerics** (:mod:`starsh`, :mod:`lowrank`, :mod:`kernels`,
  :mod:`tlr`, :mod:`cholesky`): a working TLR Cholesky on NumPy — squared-
  exponential (st-2d-sqexp) kernel matrices, SVD tile compression, low-rank
  TRSM/SYRK/GEMM with QR-based recompression — validated against dense
  Cholesky at laptop scale.  This is the substitute for HiCMA + STARS-H.
- **Simulation models** (:mod:`ranks`, :mod:`timing`, :mod:`dag`): a rank-
  distribution model calibrated to both the paper's reported statistics and
  our own measured ranks, kernel flop/time models, and a task-graph builder
  producing the two-flow TLR Cholesky DAG the paper runs at N = 360,000 —
  executable on the simulated PaRSEC runtime at any scale.
"""

from repro.hicma.starsh import SqExpProblem
from repro.hicma.lowrank import LowRankTile, compress_dense, recompress
from repro.hicma.tlr import TLRMatrix
from repro.hicma.cholesky import tlr_cholesky, dense_tiled_cholesky
from repro.hicma.solve import tlr_solve, tlr_forward_solve, tlr_backward_solve
from repro.hicma.ranks import RankModel
from repro.hicma.timing import KernelTimeModel
from repro.hicma.dag import (
    build_tlr_cholesky_graph,
    build_dense_cholesky_graph,
    block_cyclic_node,
)

__all__ = [
    "SqExpProblem",
    "LowRankTile",
    "compress_dense",
    "recompress",
    "TLRMatrix",
    "tlr_cholesky",
    "dense_tiled_cholesky",
    "tlr_solve",
    "tlr_forward_solve",
    "tlr_backward_solve",
    "RankModel",
    "KernelTimeModel",
    "build_tlr_cholesky_graph",
    "build_dense_cholesky_graph",
    "block_cyclic_node",
]
