"""TLR and dense tiled Cholesky factorizations (the numerical HiCMA).

Right-looking tile Cholesky.  For the TLR variant with band 1, the paper's
configuration, the update kernels operate directly on the low-rank format
(``trsm_lr``/``syrk_lr``/``gemm_lr``).  Factorization happens in place; the
input container holds L afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import HicmaError
from repro.hicma.kernels import (
    gemm_dense,
    gemm_lr,
    potrf,
    syrk_dense,
    syrk_lr,
    trsm_dense,
    trsm_lr,
)
from repro.hicma.lowrank import LowRankTile
from repro.hicma.tlr import TLRMatrix

__all__ = ["tlr_cholesky", "dense_tiled_cholesky", "CholeskyStats"]


@dataclass
class CholeskyStats:
    """Counters from one factorization (kernel counts mirror the DAG)."""

    potrf: int = 0
    trsm: int = 0
    syrk: int = 0
    gemm: int = 0
    final_ranks: list = field(default_factory=list)

    @property
    def total_tasks(self) -> int:
        """Total kernel invocations."""
        return self.potrf + self.trsm + self.syrk + self.gemm


def tlr_cholesky(
    a: TLRMatrix, tol: float, maxrank: Optional[int] = None
) -> CholeskyStats:
    """Factorize a TLR matrix in place: A = L·Lᵀ (lower tiles become L).

    Supports any band size: tiles with ``|i − j| < band`` are dense and the
    update kernels dispatch on the dense/low-rank combination
    (:func:`~repro.hicma.kernels.gemm_mixed` et al.).
    """
    from repro.hicma.kernels import gemm_mixed, syrk_mixed, trsm_mixed

    nt = a.nt
    stats = CholeskyStats()
    for k in range(nt):
        l_kk = potrf(a.tile(k, k))
        a.set_tile(k, k, l_kk)
        stats.potrf += 1
        for i in range(k + 1, nt):
            a.set_tile(i, k, trsm_mixed(l_kk, a.tile(i, k)))
            stats.trsm += 1
        for i in range(k + 1, nt):
            a_ik = a.tile(i, k)
            a.set_tile(i, i, syrk_mixed(a.tile(i, i), a_ik))
            stats.syrk += 1
            for j in range(k + 1, i):
                a.set_tile(
                    i, j,
                    gemm_mixed(a.tile(i, j), a_ik, a.tile(j, k), tol, maxrank),
                )
                stats.gemm += 1
    for (i, j), tile in a._tiles.items():
        if isinstance(tile, LowRankTile):
            stats.final_ranks.append(tile.rank)
    return stats


def dense_tiled_cholesky(a: np.ndarray, tile_size: int) -> tuple[np.ndarray, CholeskyStats]:
    """The DPLASMA substrate: dense tile Cholesky; returns (L, stats)."""
    n = a.shape[0]
    if a.shape != (n, n):
        raise HicmaError("dense_tiled_cholesky expects a square matrix")
    if n % tile_size != 0:
        raise HicmaError("matrix size must be a multiple of the tile size")
    nt = n // tile_size
    b = tile_size
    l = a.copy()  # diagonal tiles stay symmetric through the updates
    stats = CholeskyStats()

    def blk(i, j):
        return l[i * b : (i + 1) * b, j * b : (j + 1) * b]

    def setblk(i, j, val):
        l[i * b : (i + 1) * b, j * b : (j + 1) * b] = val

    for k in range(nt):
        setblk(k, k, potrf(blk(k, k)))
        stats.potrf += 1
        for i in range(k + 1, nt):
            setblk(i, k, trsm_dense(blk(k, k), blk(i, k)))
            stats.trsm += 1
        for i in range(k + 1, nt):
            setblk(i, i, syrk_dense(blk(i, i), blk(i, k)))
            stats.syrk += 1
            for j in range(k + 1, i):
                setblk(i, j, gemm_dense(blk(i, j), blk(i, k), blk(j, k)))
                stats.gemm += 1
    # Only the lower triangle is meaningful; zero the rest.
    return np.tril(l), stats
