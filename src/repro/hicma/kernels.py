"""Tile kernels: dense BLAS/LAPACK wrappers and their low-rank variants.

Naming follows HiCMA/DPLASMA: the right-looking tile Cholesky at step k runs

- ``potrf`` on the diagonal tile (k,k);
- ``trsm`` on every tile (i,k), i>k (panel);
- ``syrk`` updating each diagonal tile (i,i) with panel tile (i,k);
- ``gemm`` updating each off-diagonal tile (i,j) with panel tiles (i,k),
  (j,k).

With band size 1 (the paper's configuration) every off-diagonal tile is
low-rank, so ``trsm``/``syrk``/``gemm`` operate on U·Vᵀ factors and only
``potrf``/``syrk`` touch dense data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg as sla

from repro.errors import HicmaError
from repro.hicma.lowrank import LowRankTile, recompress

__all__ = [
    "potrf",
    "trsm_dense",
    "syrk_dense",
    "gemm_dense",
    "trsm_lr",
    "syrk_lr",
    "gemm_lr",
]


# -- dense kernels (DPLASMA substrate) ---------------------------------------


def potrf(a: np.ndarray) -> np.ndarray:
    """Cholesky of a diagonal tile: A = L·Lᵀ, returns L (lower)."""
    try:
        return np.linalg.cholesky(a)
    except np.linalg.LinAlgError as exc:
        raise HicmaError(f"potrf failed: {exc}") from exc


def trsm_dense(l_kk: np.ndarray, a_ik: np.ndarray) -> np.ndarray:
    """A_ik ← A_ik · L_kkᵀ⁻¹ (right, lower, transposed)."""
    # Solve X · L^T = A  ⇔  L · X^T = A^T.
    return sla.solve_triangular(l_kk, a_ik.T, lower=True).T


def syrk_dense(a_ii: np.ndarray, a_ik: np.ndarray) -> np.ndarray:
    """A_ii ← A_ii − A_ik · A_ikᵀ."""
    return a_ii - a_ik @ a_ik.T


def gemm_dense(a_ij: np.ndarray, a_ik: np.ndarray, a_jk: np.ndarray) -> np.ndarray:
    """A_ij ← A_ij − A_ik · A_jkᵀ."""
    return a_ij - a_ik @ a_jk.T


# -- low-rank kernels (HiCMA) -------------------------------------------------


def trsm_lr(l_kk: np.ndarray, a_ik: LowRankTile) -> LowRankTile:
    """(U Vᵀ) L⁻ᵀ = U (L⁻¹ V)ᵀ — rank is preserved, only V changes."""
    v_new = sla.solve_triangular(l_kk, a_ik.v, lower=True)
    return LowRankTile(a_ik.u, v_new)


def syrk_lr(a_ii: np.ndarray, a_ik: LowRankTile) -> np.ndarray:
    """A_ii ← A_ii − (U Vᵀ)(U Vᵀ)ᵀ = A_ii − U (VᵀV) Uᵀ (dense result)."""
    w = a_ik.v.T @ a_ik.v  # k×k gram matrix
    return a_ii - a_ik.u @ w @ a_ik.u.T


def gemm_lr(
    c_ij: LowRankTile,
    a_ik: LowRankTile,
    a_jk: LowRankTile,
    tol: float,
    maxrank: Optional[int] = None,
) -> LowRankTile:
    """C_ij ← C_ij − A_ik · A_jkᵀ, all low-rank, with recompression.

    A_ik A_jkᵀ = U₁ (V₁ᵀ V₂) U₂ᵀ — a rank-min(k₁,k₂) product; the update is
    formed as a stacked sum and rounded back down (HiCMA's LR GEMM).
    """
    m = a_ik.v.T @ a_jk.v  # k1×k2 core
    u_p = a_ik.u @ m  # m×k2
    v_p = a_jk.u  # n×k2
    u_stack = np.hstack([c_ij.u, -u_p])
    v_stack = np.hstack([c_ij.v, v_p])
    return recompress(u_stack, v_stack, tol, maxrank)


# -- mixed dense/low-rank kernels (band sizes > 1) ----------------------------


def _product_lr(a, b) -> LowRankTile:
    """A · Bᵀ as a low-rank tile, for any dense/LR combination where at
    least one operand is low-rank."""
    a_lr = isinstance(a, LowRankTile)
    b_lr = isinstance(b, LowRankTile)
    if a_lr and b_lr:
        return LowRankTile(a.u @ (a.v.T @ b.v), b.u)
    if a_lr:
        # (U₁V₁ᵀ)Bᵀ = U₁ (B V₁)ᵀ
        return LowRankTile(a.u, b @ a.v)
    if b_lr:
        # A(U₂V₂ᵀ)ᵀ = (A V₂) U₂ᵀ
        return LowRankTile(a @ b.v, b.u)
    raise HicmaError("_product_lr requires at least one low-rank operand")


def gemm_mixed(
    c_ij,
    a_ik,
    a_jk,
    tol: float,
    maxrank: Optional[int] = None,
):
    """C_ij ← C_ij − A_ik · A_jkᵀ for any dense/low-rank tile combination
    (needed when the dense band is wider than one tile).

    Returns a tile of the same class as ``c_ij``.
    """
    c_dense = isinstance(c_ij, np.ndarray)
    a_dense = isinstance(a_ik, np.ndarray)
    b_dense = isinstance(a_jk, np.ndarray)
    if c_dense:
        if a_dense and b_dense:
            return gemm_dense(c_ij, a_ik, a_jk)
        p = _product_lr(a_ik, a_jk)
        return c_ij - p.to_dense()
    if a_dense and b_dense:
        # Dense product subtracted from a low-rank target: compress the
        # product at the working accuracy, then stack + recompress.
        from repro.hicma.lowrank import compress_dense

        p = compress_dense(a_ik @ a_jk.T, tol, maxrank)
    else:
        p = _product_lr(a_ik, a_jk)
    u_stack = np.hstack([c_ij.u, -p.u])
    v_stack = np.hstack([c_ij.v, p.v])
    return recompress(u_stack, v_stack, tol, maxrank)


def syrk_mixed(a_ii: np.ndarray, a_ik) -> np.ndarray:
    """A_ii ← A_ii − A_ik·A_ikᵀ for a dense or low-rank panel tile."""
    if isinstance(a_ik, np.ndarray):
        return syrk_dense(a_ii, a_ik)
    return syrk_lr(a_ii, a_ik)


def trsm_mixed(l_kk: np.ndarray, a_ik):
    """A_ik ← A_ik·L_kk⁻ᵀ for a dense or low-rank panel tile."""
    if isinstance(a_ik, np.ndarray):
        return trsm_dense(l_kk, a_ik)
    return trsm_lr(l_kk, a_ik)
