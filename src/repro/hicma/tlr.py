"""The TLR matrix container: dense band + low-rank off-band tiles."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import HicmaError
from repro.hicma.lowrank import LowRankTile, compress_dense
from repro.hicma.starsh import SqExpProblem

__all__ = ["TLRMatrix"]

Tile = Union[np.ndarray, LowRankTile]


class TLRMatrix:
    """Lower-triangular storage of a symmetric matrix in TLR format.

    Tiles with ``|i - j| < band`` are dense; the rest are compressed to
    ``U·Vᵀ``.  Only the lower triangle (i ≥ j) is stored.
    """

    def __init__(self, n: int, tile_size: int, band: int = 1):
        if n <= 0 or tile_size <= 0:
            raise HicmaError("matrix and tile sizes must be positive")
        if n % tile_size != 0:
            raise HicmaError(
                f"matrix size {n} must be a multiple of tile size {tile_size}"
            )
        if band < 1:
            raise HicmaError("band must be at least 1 (the diagonal)")
        self.n = n
        self.tile_size = tile_size
        self.band = band
        self.nt = n // tile_size
        self._tiles: dict[tuple[int, int], Tile] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_problem(
        cls,
        problem: SqExpProblem,
        tile_size: int,
        tol: float,
        maxrank: Optional[int] = None,
        band: int = 1,
    ) -> "TLRMatrix":
        """Compress a kernel-matrix problem into TLR form (HiCMA phase 1)."""
        mat = cls(problem.n, tile_size, band)
        for i in range(mat.nt):
            for j in range(i + 1):
                dense = problem.tile(i, j, tile_size)
                if mat.is_dense_tile(i, j):
                    mat.set_tile(i, j, dense)
                else:
                    mat.set_tile(i, j, compress_dense(dense, tol, maxrank))
        return mat

    # -- accessors -----------------------------------------------------------

    def is_dense_tile(self, i: int, j: int) -> bool:
        """True when tile (i, j) lies on the dense band."""
        return abs(i - j) < self.band

    def tile(self, i: int, j: int) -> Tile:
        """The stored tile at (i, j), lower triangle only."""
        if j > i:
            raise HicmaError("TLRMatrix stores the lower triangle only")
        try:
            return self._tiles[(i, j)]
        except KeyError:
            raise HicmaError(f"tile ({i},{j}) not set") from None

    def set_tile(self, i: int, j: int, tile: Tile) -> None:
        """Store a tile, enforcing the dense-band/off-band class contract."""
        if j > i:
            raise HicmaError("TLRMatrix stores the lower triangle only")
        expect_dense = self.is_dense_tile(i, j)
        if expect_dense and not isinstance(tile, np.ndarray):
            raise HicmaError(f"tile ({i},{j}) must be dense (band)")
        if not expect_dense and not isinstance(tile, LowRankTile):
            raise HicmaError(f"tile ({i},{j}) must be low-rank (off band)")
        self._tiles[(i, j)] = tile

    # -- statistics ------------------------------------------------------------

    def ranks(self) -> np.ndarray:
        """Matrix of tile ranks (0 on the dense band / upper triangle)."""
        out = np.zeros((self.nt, self.nt), dtype=int)
        for (i, j), tile in self._tiles.items():
            if isinstance(tile, LowRankTile):
                out[i, j] = tile.rank
        return out

    def mean_offband_rank(self) -> float:
        """Average rank over the low-rank tiles."""
        ranks = [
            t.rank for t in self._tiles.values() if isinstance(t, LowRankTile)
        ]
        return float(np.mean(ranks)) if ranks else 0.0

    def max_offband_rank(self) -> int:
        """Largest rank over the low-rank tiles."""
        ranks = [
            t.rank for t in self._tiles.values() if isinstance(t, LowRankTile)
        ]
        return max(ranks) if ranks else 0

    def compression_bytes(self) -> int:
        """Bytes stored, all tiles, packed format."""
        total = 0
        for tile in self._tiles.values():
            total += tile.nbytes
        return total

    # -- conversion --------------------------------------------------------------

    def to_dense(self, symmetrize: bool = True) -> np.ndarray:
        """Reassemble the full matrix (validation only)."""
        a = np.zeros((self.n, self.n))
        b = self.tile_size
        for (i, j), tile in self._tiles.items():
            block = tile if isinstance(tile, np.ndarray) else tile.to_dense()
            a[i * b : (i + 1) * b, j * b : (j + 1) * b] = block
            if symmetrize and i != j:
                a[j * b : (j + 1) * b, i * b : (i + 1) * b] = block.T
        return a

    def lower_dense(self) -> np.ndarray:
        """The lower triangle only (for factor comparison)."""
        return np.tril(self.to_dense(symmetrize=False))
