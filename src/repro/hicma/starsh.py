"""st-2d-sqexp problem generator (the STARS-H substitute).

Generates the spatial-statistics covariance matrices HiCMA factorizes
(§6.4.2 runs problem type *st-2d-sqexp*): points on a perturbed 2D grid,
squared-exponential covariance

    K(x, y) = exp(-‖x − y‖² / (2 β²)) + ν δ_xy

with a nugget ν for positive definiteness.  Points are ordered along a
Z-order (Morton) space-filling curve so that index distance tracks spatial
distance — this is what makes off-diagonal tiles low-rank, exactly as
STARS-H does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HicmaError

__all__ = ["SqExpProblem", "morton_order"]


def _interleave_bits(x: np.ndarray, y: np.ndarray, bits: int = 16) -> np.ndarray:
    """Morton code of integer coordinate pairs."""
    code = np.zeros(x.shape, dtype=np.uint64)
    for b in range(bits):
        code |= ((x >> b) & 1).astype(np.uint64) << np.uint64(2 * b)
        code |= ((y >> b) & 1).astype(np.uint64) << np.uint64(2 * b + 1)
    return code


def morton_order(points: np.ndarray) -> np.ndarray:
    """Permutation sorting 2D points along a Z-order curve."""
    if points.ndim != 2 or points.shape[1] != 2:
        raise HicmaError("morton_order expects an (N, 2) array")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    scaled = ((points - lo) / span * (2**16 - 1)).astype(np.uint64)
    return np.argsort(_interleave_bits(scaled[:, 0], scaled[:, 1]), kind="stable")


class SqExpProblem:
    """A squared-exponential covariance problem over N quasi-grid points."""

    def __init__(
        self,
        n: int,
        beta: float = 0.1,
        nugget: float = 1e-4,
        grid_noise: float = 0.4,
        seed: int = 0,
    ):
        if n <= 0:
            raise HicmaError("problem size must be positive")
        if beta <= 0:
            raise HicmaError("correlation length beta must be positive")
        self.n = n
        self.beta = beta
        self.nugget = nugget
        rng = np.random.default_rng(seed)
        side = int(np.ceil(np.sqrt(n)))
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        pts = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)[:n]
        pts += rng.uniform(-grid_noise, grid_noise, pts.shape)
        pts /= side  # unit square
        self.points = pts[morton_order(pts)]

    def block(self, rows: slice, cols: slice) -> np.ndarray:
        """Materialize the covariance block K[rows, cols] on demand."""
        p = self.points[rows]
        q = self.points[cols]
        d2 = ((p[:, None, :] - q[None, :, :]) ** 2).sum(axis=2)
        k = np.exp(-d2 / (2.0 * self.beta**2))
        if rows == cols or (
            rows.start == cols.start and rows.stop == cols.stop
        ):
            k = k + self.nugget * np.eye(k.shape[0])
        return k

    def tile(self, i: int, j: int, tile_size: int) -> np.ndarray:
        """Covariance tile (i, j) for a given tile size."""
        ri = slice(i * tile_size, min((i + 1) * tile_size, self.n))
        rj = slice(j * tile_size, min((j + 1) * tile_size, self.n))
        return self.block(ri, rj)

    def dense(self) -> np.ndarray:
        """The full matrix (small problems / validation only)."""
        if self.n > 4096:
            raise HicmaError("refusing to materialize a dense matrix this large")
        return self.block(slice(0, self.n), slice(0, self.n))
