"""Kernel flop counts and execution-time models.

Flop counts follow the low-rank kernel algebra of :mod:`repro.hicma.kernels`:

- ``potrf(b)``: b³/3 (dense, GEMM-like rate);
- ``trsm_lr(b, r)``: a triangular solve applied to V (b×r): b²·r;
- ``syrk_lr(b, r)``: Gram matrix b·r² plus the dense update b²·r (+ b·r²);
- ``gemm_lr(b, r)``: core products ~b·r² plus QR+SVD recompression of the
  stacked rank-2r factors: ≈ 6·b·(2r)² + O(r³) — the dominant cost, and far
  less compute-dense than a dense GEMM, which is why HiCMA stresses the
  network (§6.4.1).

The dense band's POTRF/TRSM panel kernels in HiCMA-PaRSEC use parallel
(multi-core) implementations on the large band tiles; ``diag_cores`` models
that, keeping the diagonal chain from dominating the makespan the way a
strictly single-core panel would.
"""

from __future__ import annotations

from repro.config import ComputeConfig
from repro.errors import HicmaError

__all__ = ["KernelTimeModel"]


class KernelTimeModel:
    """Maps (kernel, tile size, ranks) to simulated execution seconds."""

    def __init__(self, compute: ComputeConfig | None = None, diag_cores: int = 4):
        if diag_cores < 1:
            raise HicmaError("diag_cores must be at least 1")
        self.compute = compute or ComputeConfig()
        self.diag_cores = diag_cores

    # -- flop counts -------------------------------------------------------

    @staticmethod
    def potrf_flops(b: int) -> float:
        """Dense Cholesky of a b×b tile."""
        return b**3 / 3.0

    @staticmethod
    def trsm_flops(b: int, r: int) -> float:
        """Triangular solve applied to a rank-r V factor."""
        return float(b) * b * r

    @staticmethod
    def syrk_flops(b: int, r: int) -> float:
        """Low-rank SYRK into a dense diagonal tile."""
        return float(b) * b * r + 2.0 * b * r * r

    @staticmethod
    def gemm_flops(b: int, r: int) -> float:
        """LR×LR GEMM including the QR+SVD recompression (dominant)."""
        rs = 2.0 * r  # stacked rank before recompression
        return 6.0 * b * rs * rs + 20.0 * rs**3 + 2.0 * b * r * r

    # -- durations -----------------------------------------------------------

    def potrf(self, b: int) -> float:
        """POTRF duration (multi-core panel kernel, see diag_cores)."""
        return self.potrf_flops(b) / (self.compute.flops_per_core * self.diag_cores)

    def trsm(self, b: int, r: int) -> float:
        """Low-rank TRSM duration."""
        return self.trsm_flops(b, r) / self.compute.flops_per_core

    def syrk(self, b: int, r: int) -> float:
        """Low-rank SYRK duration."""
        return self.syrk_flops(b, r) / self.compute.lr_flops_per_core

    def gemm(self, b: int, r: int) -> float:
        """Low-rank GEMM duration."""
        return self.gemm_flops(b, r) / self.compute.lr_flops_per_core

    def compress(self, b: int, maxrank: int, oversampling: int = 10) -> float:
        """Duration of compressing one off-band tile (HiCMA phase 1).

        Randomized SVD with one power iteration: two b×b×s sketch products
        plus QR/SVD of the b×s panel, s = maxrank + oversampling.
        """
        s = maxrank + oversampling
        flops = 4.0 * b * b * s + 6.0 * b * s * s
        return flops / self.compute.flops_per_core

    def generate(self, b: int) -> float:
        """Duration of materializing one b×b kernel-matrix tile."""
        return 20.0 * b * b / self.compute.flops_per_core

    # -- dense and mixed variants (band sizes > 1) -----------------------

    def trsm_dense(self, b: int) -> float:
        """Dense TRSM duration (band tiles)."""
        return float(b) ** 3 / self.compute.flops_per_core

    def syrk_dense(self, b: int) -> float:
        """Dense SYRK duration (band tiles)."""
        return float(b) ** 3 / self.compute.flops_per_core

    def gemm_mixed(
        self, b: int, r: int, c_dense: bool, a_dense: bool, b_dense: bool
    ) -> float:
        """Duration of C ← C − A·Bᵀ for a dense/LR tile combination."""
        if a_dense and b_dense:
            # Full dense product (then possibly compressed into an LR C).
            flops = 2.0 * b**3
            if not c_dense:
                flops += 6.0 * b * (2.0 * r) ** 2  # compression + recompress
            return flops / self.compute.flops_per_core
        if c_dense:
            # LR product evaluated into a dense tile: O(b²·r).
            return (2.0 * b * b * r) / self.compute.flops_per_core
        return self.gemm(b, r)

    def total_flops(self, nt: int, b: int, mean_rank: float) -> float:
        """Rough total flop count of a factorization (for roofline checks)."""
        r = mean_rank
        return (
            nt * self.potrf_flops(b)
            + nt * (nt - 1) / 2 * self.trsm_flops(b, int(r))
            + nt * (nt - 1) / 2 * self.syrk_flops(b, int(r))
            + nt * (nt - 1) * (nt - 2) / 6 * self.gemm_flops(b, int(r))
        )
