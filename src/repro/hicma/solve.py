"""Triangular solves with a TLR Cholesky factor.

HiCMA's end use (the geostatistics application the paper cites [6]) needs
to *solve* with the factor, not just form it: ``A x = b`` via
``L y = b`` then ``Lᵀ x = y``.  The off-band factor tiles are U·Vᵀ, so the
update GEMVs run in low-rank form: ``(U Vᵀ) x = U (Vᵀ x)`` — O(b·r)
instead of O(b²) per tile, the same asymptotic saving as the
factorization's.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.errors import HicmaError
from repro.hicma.lowrank import LowRankTile
from repro.hicma.tlr import TLRMatrix

__all__ = ["tlr_forward_solve", "tlr_backward_solve", "tlr_solve"]


def _check(factor: TLRMatrix, b: np.ndarray) -> None:
    if b.shape[0] != factor.n:
        raise HicmaError(
            f"rhs length {b.shape[0]} does not match matrix size {factor.n}"
        )


def _apply_tile(tile, x: np.ndarray) -> np.ndarray:
    """tile @ x, exploiting the low-rank form when available."""
    if isinstance(tile, LowRankTile):
        return tile.u @ (tile.v.T @ x)
    return tile @ x


def _apply_tile_t(tile, x: np.ndarray) -> np.ndarray:
    """tileᵀ @ x in low-rank form."""
    if isinstance(tile, LowRankTile):
        return tile.v @ (tile.u.T @ x)
    return tile.T @ x


def tlr_forward_solve(factor: TLRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve L y = b where ``factor`` holds L in TLR form."""
    _check(factor, b)
    nb = factor.tile_size
    y = np.array(b, dtype=float, copy=True)
    for i in range(factor.nt):
        lo, hi = i * nb, (i + 1) * nb
        for j in range(i):
            y[lo:hi] -= _apply_tile(
                factor.tile(i, j), y[j * nb : (j + 1) * nb]
            )
        y[lo:hi] = sla.solve_triangular(factor.tile(i, i), y[lo:hi], lower=True)
    return y


def tlr_backward_solve(factor: TLRMatrix, y: np.ndarray) -> np.ndarray:
    """Solve Lᵀ x = y where ``factor`` holds L in TLR form."""
    _check(factor, y)
    nb = factor.tile_size
    x = np.array(y, dtype=float, copy=True)
    for i in reversed(range(factor.nt)):
        lo, hi = i * nb, (i + 1) * nb
        for j in range(i + 1, factor.nt):
            # Column i of L below the diagonal is tile (j, i); Lᵀ uses it
            # transposed.
            x[lo:hi] -= _apply_tile_t(
                factor.tile(j, i), x[j * nb : (j + 1) * nb]
            )
        x[lo:hi] = sla.solve_triangular(
            factor.tile(i, i), x[lo:hi], lower=True, trans="T"
        )
    return x


def tlr_solve(factor: TLRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve A x = b given A = L·Lᵀ in TLR form."""
    return tlr_backward_solve(factor, tlr_forward_solve(factor, b))
