"""Rank-distribution model for st-2d-sqexp TLR matrices.

For paper-scale DAGs (N = 360,000) we cannot SVD every tile, so tile ranks
come from a model calibrated against two sources:

- the paper's reported statistics at N = 360,000, tile 1200 (§6.4.2):
  average off-band rank 10.44 (≈196 KiB per packed U×V tile) and maximum
  low-rank tile rank 29 (544 KiB);
- ranks measured from our real compression (:mod:`repro.hicma.tlr`) at
  laptop scale, which show the same shape: rank decays roughly
  exponentially with tile distance from the diagonal (spatial distance for
  Morton-ordered sqexp points) and grows sublinearly with tile size.

Model:  ``rank(i, j) = 1 + (r_near(b) − 1) · exp(−λ · |i−j| / NT)`` with
``r_near(b) = 29 · (b / 1200)^0.5`` capped at ``maxrank``, λ = 4.7.
The λ value makes the N = 360,000, b = 1200 average land on 10.44.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HicmaError

__all__ = ["RankModel"]


class RankModel:
    """Deterministic tile-rank model for a given matrix/tile configuration."""

    #: Decay rate of rank with normalized diagonal distance.
    LAMBDA = 4.7
    #: Near-diagonal rank at the reference tile size (paper: max rank 29).
    R_NEAR_REF = 29.0
    #: Reference tile size for the calibration point.
    B_REF = 1200
    #: Growth exponent of rank with tile size.
    SIZE_EXPONENT = 0.5

    def __init__(self, nt: int, tile_size: int, maxrank: int = 150):
        if nt < 1:
            raise HicmaError("need at least one tile")
        if maxrank < 1:
            raise HicmaError("maxrank must be positive")
        self.nt = nt
        self.tile_size = tile_size
        self.maxrank = maxrank
        self.r_near = min(
            float(maxrank),
            self.R_NEAR_REF * (tile_size / self.B_REF) ** self.SIZE_EXPONENT,
        )

    def rank(self, i: int, j: int) -> int:
        """Rank of off-diagonal tile (i, j); diagonal tiles are dense."""
        d = abs(i - j)
        if d == 0:
            raise HicmaError("diagonal tiles are dense (band)")
        r = 1.0 + (self.r_near - 1.0) * np.exp(-self.LAMBDA * d / self.nt)
        return int(max(1, min(self.maxrank, round(r))))

    def mean_rank(self) -> float:
        """Average off-band rank (weighted by tiles per diagonal distance)."""
        total = 0.0
        count = 0
        for d in range(1, self.nt):
            n_tiles = self.nt - d
            total += n_tiles * self.rank(0, d)
            count += n_tiles
        return total / count if count else 0.0

    def max_rank(self) -> int:
        """Rank of the nearest off-diagonal tile (the largest)."""
        return self.rank(0, 1) if self.nt > 1 else 0

    def tile_bytes(self, i: int, j: int) -> int:
        """Packed U×V bytes of tile (i, j) — what travels on the wire."""
        return 2 * self.tile_size * self.rank(i, j) * 8
